//! # EMCC — Eager Memory Cryptography in Caches
//!
//! A full reproduction of *"Eager Memory Cryptography in Caches"*
//! (Wang, Kotra, Jian — MICRO 2022) as a cycle-level secure-memory
//! simulator, built from scratch in Rust.
//!
//! Secure memory systems encrypt and integrity-protect every 64 B block
//! with counter-mode AES; the counters themselves must be fetched and
//! cached. This crate models the full stack — cores, L1/L2, a sliced LLC
//! over a mesh NoC, a secure memory controller with a counter cache and
//! integrity tree, and DDR4 DRAM — and implements the paper's EMCC scheme:
//! caching and *using* counters directly in L2 so that counter access and
//! counter-mode AES overlap with the data's journey from DRAM to L2.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`sim`] — event queue, time, statistics, RNG,
//! * [`crypto`] — AES-128, counter-mode OTPs, GF(2⁶⁴) MACs,
//! * [`counters`] — monolithic / SC-64 / Morphable counters + integrity
//!   tree,
//! * [`cache`] — set-associative arrays and MSHRs,
//! * [`noc`] — the Fig 4 mesh and Fig 3 latency model,
//! * [`dram`] — DDR4 banks, FR-FCFS-capped scheduling, channels,
//! * [`secmem`] — MC building blocks + a functional secure memory,
//! * [`system`] — the assembled simulator and the EMCC L2 logic,
//! * [`workloads`] — synthetic graphBIG / SPEC / PARSEC stand-ins.
//!
//! # Quick start
//!
//! ```no_run
//! use emcc::prelude::*;
//!
//! let cfg = SystemConfig::table_i(SecurityScheme::Emcc);
//! let sources = Benchmark::Canneal.build_scaled(1, 4, WorkloadScale::Test);
//! let report = SecureSystem::new(cfg).run(sources, 10_000);
//! println!("{} IPC = {:.3}", report.benchmark, report.ipc());
//! ```

pub use emcc_cache as cache;
pub use emcc_counters as counters;
pub use emcc_crypto as crypto;
pub use emcc_dram as dram;
pub use emcc_noc as noc;
pub use emcc_secmem as secmem;
pub use emcc_sim as sim;
pub use emcc_system as system;
pub use emcc_workloads as workloads;

/// The most common imports for running experiments.
pub mod prelude {
    pub use emcc_secmem::SecurityScheme;
    pub use emcc_sim::Time;
    pub use emcc_system::{SecureSystem, SimReport, SystemConfig};
    pub use emcc_workloads::presets::WorkloadScale;
    pub use emcc_workloads::Benchmark;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        let _ = crate::prelude::SystemConfig::table_i(crate::prelude::SecurityScheme::NonSecure);
        let _ = crate::crypto::Aes128::new([0u8; 16]);
        let _ = crate::counters::CounterDesign::Morphable;
    }
}
