//! Property tests for the NoC: slice-map partition balance and mesh
//! distance metric laws.
//!
//! The slice map must behave as a balanced partition of the address
//! space for the LLC occupancy model to hold, and mesh hop counts must
//! form a metric (symmetric, triangle-inequality-consistent) for the
//! latency model built on them to be physically sensible.

use emcc_noc::{Mesh, NocLatency, Node, SliceMap};
use emcc_sim::LineAddr;
use proptest::prelude::*;

/// All nodes of a mesh: every core tile plus every memory controller.
fn all_nodes(mesh: &Mesh) -> Vec<Node> {
    (0..mesh.num_cores())
        .map(Node::Core)
        .chain((0..mesh.num_mcs()).map(Node::Mc))
        .collect()
}

proptest! {
    /// Every address lands on a valid slice, deterministically.
    #[test]
    fn slice_map_total_and_deterministic(
        num_slices in 1usize..=32,
        line in any::<u64>(),
    ) {
        let m = SliceMap::new(num_slices);
        let s = m.slice_of(LineAddr::new(line));
        prop_assert!(s < num_slices);
        prop_assert_eq!(s, m.slice_of(LineAddr::new(line)));
    }

    /// The map partitions dense and strided address windows near-evenly:
    /// every slice is hit, and no slice's occupancy strays more than 30%
    /// from the mean. A lopsided hash would break the per-slice occupancy
    /// assumptions of the LLC model.
    #[test]
    fn slice_map_partitions_evenly(
        num_slices in 2usize..=32,
        base in 0u64..1_000_000,
        stride in 1u64..=256,
    ) {
        let m = SliceMap::new(num_slices);
        let samples = 2_000 * num_slices as u64;
        let mut counts = vec![0u64; num_slices];
        for i in 0..samples {
            counts[m.slice_of(LineAddr::new(base + i * stride))] += 1;
        }
        let mean = samples as f64 / num_slices as f64;
        for (s, &c) in counts.iter().enumerate() {
            prop_assert!(c > 0, "slice {} never hit (stride {})", s, stride);
            let dev = (c as f64 - mean).abs() / mean;
            prop_assert!(dev < 0.30,
                "slice {} occupancy off mean by {:.2} (stride {})", s, dev, stride);
        }
    }

    /// Hop counts form a metric on every mesh shape: zero exactly on
    /// self-positions, symmetric, and triangle-inequality-consistent
    /// across all node triples (cores and MCs alike).
    #[test]
    fn mesh_hops_form_a_metric(
        cols in 2u32..=7,
        rows in 2u32..=7,
    ) {
        let mesh = Mesh::grid(cols, rows);
        let nodes = all_nodes(&mesh);
        for &a in &nodes {
            prop_assert_eq!(mesh.hops(a, a), 0);
            for &b in &nodes {
                prop_assert_eq!(mesh.hops(a, b), mesh.hops(b, a));
                prop_assert!(mesh.hops(a, b) <= (cols - 1) + (rows - 1));
                for &c in &nodes {
                    prop_assert!(
                        mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c),
                        "triangle violated: {:?} -> {:?} -> {:?}", a, b, c);
                }
            }
        }
    }

    /// The latency model inherits the metric laws: `between` is symmetric
    /// for either payload kind, strictly increasing in hop count, and a
    /// payload never makes a message faster.
    #[test]
    fn latency_respects_hop_metric(
        cols in 2u32..=6,
        rows in 2u32..=6,
        a_pick in any::<u64>(),
        b_pick in any::<u64>(),
    ) {
        let mesh = Mesh::grid(cols, rows);
        let lat = NocLatency::calibrated();
        let nodes = all_nodes(&mesh);
        let a = nodes[(a_pick % nodes.len() as u64) as usize];
        let b = nodes[(b_pick % nodes.len() as u64) as usize];
        for payload in [false, true] {
            prop_assert_eq!(
                lat.between(&mesh, a, b, payload),
                lat.between(&mesh, b, a, payload));
        }
        prop_assert!(lat.between(&mesh, a, b, true) >= lat.between(&mesh, a, b, false));
        let h = mesh.hops(a, b);
        prop_assert!(lat.one_way(h + 1, false) > lat.one_way(h, false));
    }
}

/// The Figure 4 mesh is a fixed topology, so its metric laws are checked
/// exhaustively rather than sampled.
#[test]
fn xeon_mesh_hops_form_a_metric() {
    let mesh = Mesh::xeon_w3175x();
    let nodes = all_nodes(&mesh);
    for &a in &nodes {
        assert_eq!(mesh.hops(a, a), 0);
        for &b in &nodes {
            assert_eq!(mesh.hops(a, b), mesh.hops(b, a));
            for &c in &nodes {
                assert!(mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c));
            }
        }
    }
}
