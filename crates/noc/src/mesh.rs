//! Mesh topology and hop counts.

/// A node on the mesh: a core tile (core + L2 + LLC slice) or a memory
/// controller tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// Core tile `i` (its LLC slice shares the position).
    Core(usize),
    /// Memory controller `i`.
    Mc(usize),
}

/// A 2-D mesh of core tiles and memory controllers with XY routing.
///
/// Positions follow the paper's Figure 4: a 6-column × 5-row grid with
/// MC1 on the left of row 1 and MC2 on the right of row 3; the remaining
/// 28 slots are core tiles numbered row-major.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mesh {
    cols: u32,
    rows: u32,
    core_pos: Vec<(u32, u32)>,
    mc_pos: Vec<(u32, u32)>,
}

impl Mesh {
    /// The Xeon W-3175X-like mesh of Figure 4: 6×5, 28 cores, 2 MCs.
    pub fn xeon_w3175x() -> Self {
        let cols = 6;
        let rows = 5;
        let mc_pos = vec![(1, 0), (3, 5)];
        let mut core_pos = Vec::with_capacity(28);
        for r in 0..rows {
            for c in 0..cols {
                if !mc_pos.contains(&(r, c)) {
                    core_pos.push((r, c));
                }
            }
        }
        debug_assert_eq!(core_pos.len(), 28);
        Mesh {
            cols,
            rows,
            core_pos,
            mc_pos,
        }
    }

    /// A generic `cols × rows` mesh with MCs at mid-left and mid-right and
    /// all other slots core tiles. Used for scaling studies.
    ///
    /// # Panics
    ///
    /// Panics if the grid has fewer than 4 slots.
    pub fn grid(cols: u32, rows: u32) -> Self {
        assert!(cols * rows >= 4, "mesh too small");
        let mc_pos = vec![(rows / 4, 0), (3 * rows / 4, cols - 1)];
        let mut core_pos = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if !mc_pos.contains(&(r, c)) {
                    core_pos.push((r, c));
                }
            }
        }
        Mesh {
            cols,
            rows,
            core_pos,
            mc_pos,
        }
    }

    /// Number of core tiles (and LLC slices).
    pub fn num_cores(&self) -> usize {
        self.core_pos.len()
    }

    /// Number of memory controllers.
    pub fn num_mcs(&self) -> usize {
        self.mc_pos.len()
    }

    /// Grid dimensions as `(cols, rows)`.
    pub fn dims(&self) -> (u32, u32) {
        (self.cols, self.rows)
    }

    fn pos(&self, n: Node) -> (u32, u32) {
        match n {
            Node::Core(i) => self.core_pos[i],
            Node::Mc(i) => self.mc_pos[i],
        }
    }

    /// Manhattan (XY-routed) hop count between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if a node index is out of range.
    pub fn hops(&self, a: Node, b: Node) -> u32 {
        let (ra, ca) = self.pos(a);
        let (rb, cb) = self.pos(b);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }

    /// Hop count between two core tiles (an L2 and an LLC slice).
    pub fn hops_core_to_core(&self, a: usize, b: usize) -> u32 {
        self.hops(Node::Core(a), Node::Core(b))
    }

    /// Hop count from a core tile to a memory controller.
    pub fn hops_core_to_mc(&self, core: usize, mc: usize) -> u32 {
        self.hops(Node::Core(core), Node::Mc(mc))
    }

    /// Mean hop count over all ordered core-tile pairs (self-pairs
    /// included, which have 0 hops — the slice co-located with the L2).
    pub fn mean_core_to_core_hops(&self) -> f64 {
        let n = self.num_cores();
        let mut total = 0u64;
        for a in 0..n {
            for b in 0..n {
                total += u64::from(self.hops_core_to_core(a, b));
            }
        }
        total as f64 / (n * n) as f64
    }

    /// Mean hop count from core tiles to a given MC.
    pub fn mean_core_to_mc_hops(&self, mc: usize) -> f64 {
        let n = self.num_cores();
        let total: u64 = (0..n).map(|c| u64::from(self.hops_core_to_mc(c, mc))).sum();
        total as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_shape() {
        let m = Mesh::xeon_w3175x();
        assert_eq!(m.num_cores(), 28);
        assert_eq!(m.num_mcs(), 2);
        assert_eq!(m.dims(), (6, 5));
    }

    #[test]
    fn hops_symmetric_and_zero_on_self() {
        let m = Mesh::xeon_w3175x();
        for a in 0..28 {
            assert_eq!(m.hops_core_to_core(a, a), 0);
            for b in 0..28 {
                assert_eq!(m.hops_core_to_core(a, b), m.hops_core_to_core(b, a));
            }
        }
    }

    #[test]
    fn figure4_example_route() {
        // Figure 4's example: core 0 (top-left) to slice 24. Core 0 is at
        // (0,0); core 24 is in the bottom row. The route must be several
        // hops long.
        let m = Mesh::xeon_w3175x();
        let h = m.hops_core_to_core(0, 24);
        assert!(h >= 5, "expected a long route, got {h} hops");
    }

    #[test]
    fn max_hops_bounded_by_dimensions() {
        let m = Mesh::xeon_w3175x();
        for a in 0..28 {
            for b in 0..28 {
                assert!(m.hops_core_to_core(a, b) <= 5 + 4);
            }
        }
    }

    #[test]
    fn mean_hops_in_expected_range() {
        // Uniform pairs on a 6x5 mesh average ~3.5 hops; this pins the
        // calibration the latency model depends on.
        let m = Mesh::xeon_w3175x();
        let mean = m.mean_core_to_core_hops();
        assert!((3.0..4.0).contains(&mean), "mean hops {mean}");
    }

    #[test]
    fn mc_positions_reachable() {
        let m = Mesh::xeon_w3175x();
        assert!(m.mean_core_to_mc_hops(0) > 0.0);
        assert!(m.mean_core_to_mc_hops(1) > 0.0);
    }

    #[test]
    fn generic_grid() {
        let m = Mesh::grid(8, 8);
        assert_eq!(m.num_cores(), 62);
        assert_eq!(m.num_mcs(), 2);
        // Bigger meshes have longer average routes (§III-B: "as the number
        // of cores increases ... latency of accessing LLC increases").
        assert!(m.mean_core_to_core_hops() > Mesh::xeon_w3175x().mean_core_to_core_hops());
    }
}
