//! Static address → LLC-slice mapping.
//!
//! Like Intel's (undisclosed) slice hash, the mapping must spread
//! consecutive lines across slices while being a pure function of the
//! address (Figure 4: "the L2 uses X's address and a static mapping
//! function to determine the LLC slice"). We use a xor-folded multiplicative
//! hash, which gives near-uniform occupancy even for strided streams.

use emcc_sim::LineAddr;

/// A static, stateless map from line address to LLC slice id.
///
/// # Examples
///
/// ```
/// use emcc_noc::SliceMap;
/// use emcc_sim::LineAddr;
///
/// let map = SliceMap::new(28);
/// let s = map.slice_of(LineAddr::new(12345));
/// assert!(s < 28);
/// // Pure function: same address, same slice.
/// assert_eq!(s, map.slice_of(LineAddr::new(12345)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceMap {
    num_slices: usize,
}

impl SliceMap {
    /// Creates a map over `num_slices` slices.
    ///
    /// # Panics
    ///
    /// Panics if `num_slices` is zero.
    pub fn new(num_slices: usize) -> Self {
        assert!(num_slices > 0, "need at least one slice");
        SliceMap { num_slices }
    }

    /// Number of slices.
    pub fn num_slices(&self) -> usize {
        self.num_slices
    }

    /// The slice owning `line`.
    pub fn slice_of(&self, line: LineAddr) -> usize {
        let x = line.get().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let folded = (x >> 32) ^ x;
        (folded % self.num_slices as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_and_deterministic() {
        let m = SliceMap::new(28);
        for i in 0..10_000u64 {
            let s = m.slice_of(LineAddr::new(i));
            assert!(s < 28);
            assert_eq!(s, m.slice_of(LineAddr::new(i)));
        }
    }

    #[test]
    fn sequential_lines_spread_uniformly() {
        let m = SliceMap::new(28);
        let mut counts = [0u32; 28];
        let n = 28_000;
        for i in 0..n {
            counts[m.slice_of(LineAddr::new(i))] += 1;
        }
        let expect = n as f64 / 28.0;
        for (s, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(dev < 0.15, "slice {s} occupancy off by {dev:.2}");
        }
    }

    #[test]
    fn strided_access_still_spreads() {
        // 8 KB stride (128 lines) — the pathological pattern for simple
        // modulo mappings.
        let m = SliceMap::new(28);
        let mut counts = [0u32; 28];
        for i in 0..28_000u64 {
            counts[m.slice_of(LineAddr::new(i * 128))] += 1;
        }
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert_eq!(nonzero, 28, "strided stream must touch all slices");
    }

    #[test]
    fn single_slice_map() {
        let m = SliceMap::new(1);
        assert_eq!(m.slice_of(LineAddr::new(999)), 0);
    }
}
