//! Network-on-chip model: mesh topology, non-uniform latency, slice map.
//!
//! Modern server CPUs split the LLC into per-core slices connected by a
//! mesh NoC (the paper's Figure 4 shows the Xeon W-3175X: a 6×5 grid of 28
//! core tiles and two memory controllers). A request from an L2 travels a
//! variable number of hops to the slice that owns the address, which is why
//! LLC hit latency is *non-uniform* (Figure 3: 16–29 ns, mean 23 ns) — the
//! effect that makes counter accesses in LLC expensive and motivates EMCC.
//!
//! # Examples
//!
//! ```
//! use emcc_noc::{Mesh, NocLatency};
//!
//! let mesh = Mesh::xeon_w3175x();
//! assert_eq!(mesh.num_cores(), 28);
//! let lat = NocLatency::calibrated();
//! // Requests to a far slice cost more than to an adjacent one.
//! let near = mesh.hops_core_to_core(0, 1);
//! let far = mesh.hops_core_to_core(0, 27);
//! assert!(lat.one_way(far, false) > lat.one_way(near, false));
//! ```

pub mod latency;
pub mod mesh;
pub mod slice_map;

pub use latency::NocLatency;
pub use mesh::{Mesh, Node};
pub use slice_map::SliceMap;
