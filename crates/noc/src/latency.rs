//! NoC latency model calibrated against the paper's measurements.
//!
//! One-way message latency is `base + per_hop × hops`, plus a payload
//! serialization term when the message carries a 64 B line (the paper's
//! 'M' effect in Figure 13: transmitting actual counters takes longer than
//! a request). The constants are calibrated so that
//!
//! * mean one-way L2→slice latency ≈ 7.5 ns (paper's Appendix),
//! * mean LLC hit latency (4 ns L2 tag + request + 4 ns slice SRAM +
//!   response) ≈ 23 ns with a 16–29 ns spread (Figure 3),
//! * slice↔MC round trip ≈ 17 ns and L2↔MC round trip ≈ 34 ns (Table I).

use emcc_sim::Time;

use crate::mesh::{Mesh, Node};

/// Latency parameters for mesh traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NocLatency {
    /// Fixed cost of injection + ejection + destination queue.
    pub base: Time,
    /// Cost per router-to-router hop.
    pub per_hop: Time,
    /// Extra serialization for messages carrying a 64 B payload.
    pub payload: Time,
}

impl NocLatency {
    /// Constants calibrated to the paper's measurements (see module docs).
    pub fn calibrated() -> Self {
        NocLatency {
            base: Time::from_ps(3_100),
            per_hop: Time::from_ps(1_250),
            payload: Time::from_ps(500),
        }
    }

    /// One-way latency for a message crossing `hops` hops.
    pub fn one_way(&self, hops: u32, has_payload: bool) -> Time {
        let mut t = self.base + self.per_hop * u64::from(hops);
        if has_payload {
            t += self.payload;
        }
        t
    }

    /// One-way latency between two mesh nodes.
    pub fn between(&self, mesh: &Mesh, a: Node, b: Node, has_payload: bool) -> Time {
        self.one_way(mesh.hops(a, b), has_payload)
    }

    /// Mean one-way latency over all ordered core pairs (no payload).
    pub fn mean_core_to_core(&self, mesh: &Mesh) -> Time {
        Time::from_ns_f64(
            self.base.as_ns_f64() + self.per_hop.as_ns_f64() * mesh.mean_core_to_core_hops(),
        )
    }
}

impl Default for NocLatency {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SRAM access in an LLC slice (paper's appendix: ≤ 4 ns via Cacti).
    const SLICE_SRAM_NS: f64 = 4.0;
    /// L2 lookup before the miss goes to the NoC (6 ns hit − 2 ns data read).
    const L2_TAG_NS: f64 = 4.0;

    #[test]
    fn mean_one_way_near_7_5ns() {
        let mesh = Mesh::xeon_w3175x();
        let lat = NocLatency::calibrated();
        let mean = lat.mean_core_to_core(&mesh).as_ns_f64();
        assert!((7.0..8.0).contains(&mean), "mean one-way {mean} ns");
    }

    #[test]
    fn mean_llc_hit_latency_near_23ns() {
        // Reconstruct the Fig 3 quantity: L2 tag + request + SRAM + response.
        let mesh = Mesh::xeon_w3175x();
        let lat = NocLatency::calibrated();
        let mut total = 0.0;
        let n = mesh.num_cores();
        for a in 0..n {
            for b in 0..n {
                let h = mesh.hops_core_to_core(a, b);
                total += L2_TAG_NS
                    + lat.one_way(h, false).as_ns_f64()
                    + SLICE_SRAM_NS
                    + lat.one_way(h, true).as_ns_f64();
            }
        }
        let mean = total / (n * n) as f64;
        assert!((21.5..24.5).contains(&mean), "mean LLC hit {mean} ns");
    }

    #[test]
    fn llc_hit_spread_covers_paper_range() {
        let mesh = Mesh::xeon_w3175x();
        let lat = NocLatency::calibrated();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for a in 0..mesh.num_cores() {
            for b in 0..mesh.num_cores() {
                let h = mesh.hops_core_to_core(a, b);
                let t = L2_TAG_NS
                    + lat.one_way(h, false).as_ns_f64()
                    + SLICE_SRAM_NS
                    + lat.one_way(h, true).as_ns_f64();
                lo = lo.min(t);
                hi = hi.max(t);
            }
        }
        // Paper Fig 3 support is 16..29 ns; allow modest excess at the
        // corner-to-corner tail.
        assert!((14.0..=18.0).contains(&lo), "min LLC hit {lo} ns");
        assert!((27.0..=38.0).contains(&hi), "max LLC hit {hi} ns");
    }

    #[test]
    fn slice_to_mc_round_trip_near_17ns() {
        // Table I: "NoC Lat Between LLC and MC 17ns". Requests carry no
        // payload; responses carry a line.
        let mesh = Mesh::xeon_w3175x();
        let lat = NocLatency::calibrated();
        let mut total = 0.0;
        for s in 0..mesh.num_cores() {
            let h = mesh.hops(Node::Core(s), Node::Mc(0));
            total += lat.one_way(h, false).as_ns_f64() + lat.one_way(h, true).as_ns_f64();
        }
        let mean = total / mesh.num_cores() as f64;
        assert!(
            (14.0..20.0).contains(&mean),
            "slice<->MC round trip {mean} ns"
        );
    }

    #[test]
    fn payload_adds_latency() {
        let lat = NocLatency::calibrated();
        assert!(lat.one_way(3, true) > lat.one_way(3, false));
    }

    #[test]
    fn zero_hops_still_costs_base() {
        let lat = NocLatency::calibrated();
        assert_eq!(lat.one_way(0, false), lat.base);
    }
}
