//! Timing invariants of the DRAM model under randomized load.

use emcc_dram::{Dram, DramConfig, DramRequest, RequestClass};
use emcc_sim::{LineAddr, Rng64, Time};

/// Drives a channel with `n` random requests, returning completions in
/// issue order.
fn drive(channels: usize, n: u64, seed: u64) -> Vec<(u64, Time, bool)> {
    let mut dram = Dram::new(DramConfig::table_i(channels));
    let mut rng = Rng64::new(seed);
    let mut out = Vec::new();
    let mut now = Time::ZERO;
    let mut issued = 0u64;
    while out.len() < n as usize {
        // Feed a new request every ~5 ns until all are queued.
        if issued < n {
            let line = LineAddr::new(rng.below(1 << 26));
            let is_write = rng.chance(0.3);
            let req = if is_write {
                DramRequest::write(issued, line, RequestClass::Data)
            } else {
                DramRequest::read(issued, line, RequestClass::Data)
            };
            if dram.enqueue(req, now).is_ok() {
                issued += 1;
            }
        }
        let r = dram.pump(now);
        for c in r.completions {
            out.push((c.id, c.done, c.is_write));
        }
        now = match r.next_wake {
            Some(w) if w > now => w,
            _ => now + Time::from_ns(5),
        };
    }
    out
}

#[test]
fn single_channel_bus_is_serialized() {
    // One channel has one data bus: completions must be spaced by at
    // least one burst (2.5 ns).
    let mut dones: Vec<Time> = drive(1, 400, 7).into_iter().map(|(_, d, _)| d).collect();
    dones.sort();
    for w in dones.windows(2) {
        let gap = w[1] - w[0];
        assert!(
            gap >= Time::from_ns_f64(2.5),
            "bus double-booked: gap {gap}"
        );
    }
}

#[test]
fn all_requests_complete_exactly_once() {
    let comps = drive(1, 500, 13);
    let mut ids: Vec<u64> = comps.iter().map(|c| c.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 500, "every request completes exactly once");
}

#[test]
fn completions_never_precede_minimum_latency() {
    // No access can beat a row-buffer hit (tCL + burst = 16.25 ns).
    for (_, done, _) in drive(1, 300, 21) {
        assert!(
            done >= Time::from_ns_f64(16.25),
            "impossible latency {done}"
        );
    }
}

#[test]
fn eight_channels_interleave_independent_buses() {
    // Eight buses allow completions closer together than one burst.
    let mut dones: Vec<Time> = drive(8, 400, 7).into_iter().map(|(_, d, _)| d).collect();
    dones.sort();
    let tight = dones
        .windows(2)
        .filter(|w| w[1] - w[0] < Time::from_ns_f64(2.5))
        .count();
    assert!(tight > 0, "8 channels should overlap bursts across buses");
}

#[test]
fn deterministic_under_same_seed() {
    let a = drive(1, 200, 99);
    let b = drive(1, 200, 99);
    assert_eq!(a, b);
}
