//! Per-class DRAM statistics: queuing delay and bus occupancy.

use emcc_sim::stats::RunningMean;
use emcc_sim::Time;

use crate::request::RequestClass;

/// Statistics for one (class, direction) bucket.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BucketStats {
    /// Completed requests.
    pub count: u64,
    /// Queuing delay in ns: enqueue → first DRAM command (the paper's
    /// Figure 22 definition).
    pub queuing_ns: RunningMean,
    /// Data-bus busy time attributable to this bucket.
    pub bus_busy: Time,
}

impl BucketStats {
    fn merge(&mut self, other: &BucketStats) {
        self.count += other.count;
        self.queuing_ns.merge(&other.queuing_ns);
        self.bus_busy += other.bus_busy;
    }
}

/// Aggregated DRAM statistics, indexed by [`RequestClass`] and direction.
///
/// # Examples
///
/// ```
/// use emcc_dram::{DramStats, RequestClass};
///
/// let s = DramStats::default();
/// assert_eq!(s.bucket(RequestClass::Data, false).count, 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DramStats {
    buckets: [[BucketStats; 2]; 5],
    /// Row-buffer hits among completed accesses.
    pub row_hits: u64,
    /// Row activations (closed-row accesses).
    pub row_opens: u64,
    /// Row conflicts (precharge + activate).
    pub row_conflicts: u64,
}

impl DramStats {
    /// The bucket for a class and direction (`is_write`).
    pub fn bucket(&self, class: RequestClass, is_write: bool) -> &BucketStats {
        &self.buckets[class.index()][usize::from(is_write)]
    }

    pub(crate) fn bucket_mut(&mut self, class: RequestClass, is_write: bool) -> &mut BucketStats {
        &mut self.buckets[class.index()][usize::from(is_write)]
    }

    /// Total completed requests across buckets.
    pub fn total_requests(&self) -> u64 {
        self.buckets.iter().flatten().map(|b| b.count).sum()
    }

    /// Total bus busy time across buckets.
    pub fn total_bus_busy(&self) -> Time {
        self.buckets.iter().flatten().map(|b| b.bus_busy).sum()
    }

    /// Bus busy time for one class (both directions).
    pub fn bus_busy_for(&self, class: RequestClass) -> Time {
        self.buckets[class.index()].iter().map(|b| b.bus_busy).sum()
    }

    /// Completed request count for one class (both directions).
    pub fn count_for(&self, class: RequestClass) -> u64 {
        self.buckets[class.index()].iter().map(|b| b.count).sum()
    }

    /// Merges another stats block (used to aggregate channels).
    pub fn merge(&mut self, other: &DramStats) {
        for (mine, theirs) in self
            .buckets
            .iter_mut()
            .flatten()
            .zip(other.buckets.iter().flatten())
        {
            mine.merge(theirs);
        }
        self.row_hits += other.row_hits;
        self.row_opens += other.row_opens;
        self.row_conflicts += other.row_conflicts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_start_empty() {
        let s = DramStats::default();
        assert_eq!(s.total_requests(), 0);
        assert_eq!(s.total_bus_busy(), Time::ZERO);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = DramStats::default();
        a.bucket_mut(RequestClass::Data, false).count = 3;
        a.bucket_mut(RequestClass::Data, false).bus_busy = Time::from_ns(10);
        let mut b = DramStats::default();
        b.bucket_mut(RequestClass::Data, false).count = 4;
        b.bucket_mut(RequestClass::Counter, true).count = 1;
        b.row_hits = 2;
        a.merge(&b);
        assert_eq!(a.bucket(RequestClass::Data, false).count, 7);
        assert_eq!(a.bucket(RequestClass::Counter, true).count, 1);
        assert_eq!(a.total_requests(), 8);
        assert_eq!(a.row_hits, 2);
        assert_eq!(a.bus_busy_for(RequestClass::Data), Time::from_ns(10));
    }

    #[test]
    fn count_for_sums_directions() {
        let mut s = DramStats::default();
        s.bucket_mut(RequestClass::Counter, false).count = 2;
        s.bucket_mut(RequestClass::Counter, true).count = 5;
        assert_eq!(s.count_for(RequestClass::Counter), 7);
    }
}
