//! Per-channel FR-FCFS-capped scheduler with banks and write drain.

use emcc_sim::{LineAddr, Time};

use crate::config::DramConfig;
use crate::mapping::AddressMapping;
use crate::request::{DramRequest, Pending, RequestClass, RequestId};
use crate::stats::DramStats;
use crate::QueueFull;

/// A finished DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The caller token from the request.
    pub id: RequestId,
    /// Time the last data beat leaves the channel.
    pub done: Time,
    /// Whether the access was a write.
    pub is_write: bool,
    /// The request's traffic class.
    pub class: RequestClass,
    /// The accessed line.
    pub line: LineAddr,
    /// True if the access hit an open row buffer.
    pub row_hit: bool,
    /// When the request entered the channel queue (critical-path
    /// attribution: `issued - enqueued` is the scheduling delay).
    pub enqueued: Time,
    /// When the scheduler issued the request to a bank.
    pub issued: Time,
}

/// Result of running a channel's scheduler.
#[derive(Debug, Clone, Default)]
pub struct PumpResult {
    /// Requests issued by this pump, with their completion times.
    pub completions: Vec<Completion>,
    /// When the scheduler next needs to run, if work remains.
    pub next_wake: Option<Time>,
}

#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<u64>,
    ready_at: Time,
    last_access: Time,
    hit_streak: u32,
}

impl Default for BankState {
    fn default() -> Self {
        BankState {
            open_row: None,
            ready_at: Time::ZERO,
            last_access: Time::ZERO,
            hit_streak: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowOutcome {
    Hit,
    Closed,
    Conflict,
}

/// One DRAM channel: read/write queues, banks, the shared data bus.
#[derive(Debug)]
pub struct DramChannel {
    config: DramConfig,
    mapping: AddressMapping,
    read_q: Vec<Pending>,
    write_q: Vec<Pending>,
    banks: Vec<BankState>,
    rank_next_refresh: Vec<Time>,
    bus_free_at: Time,
    next_issue_at: Time,
    draining: bool,
    stats: DramStats,
}

impl DramChannel {
    /// Creates an idle channel.
    pub fn new(config: DramConfig) -> Self {
        let refi = config.t_refi;
        DramChannel {
            config,
            mapping: AddressMapping::new(config.channels),
            read_q: Vec::new(),
            write_q: Vec::new(),
            banks: vec![BankState::default(); config.banks()],
            rank_next_refresh: (0..config.ranks)
                .map(|r| refi * (r as u64 + 1) / config.ranks as u64)
                .collect(),
            bus_free_at: Time::ZERO,
            next_issue_at: Time::ZERO,
            draining: false,
            stats: DramStats::default(),
        }
    }

    /// Queues a request.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the direction's queue is at capacity.
    pub fn enqueue(&mut self, req: DramRequest, now: Time) -> Result<(), QueueFull> {
        let q = if req.is_write {
            &mut self.write_q
        } else {
            &mut self.read_q
        };
        if q.len() >= self.config.queue_capacity {
            return Err(QueueFull);
        }
        q.push(Pending {
            req,
            enqueued_at: now,
        });
        Ok(())
    }

    /// True if a request of the given direction can be queued.
    pub fn can_accept(&self, is_write: bool) -> bool {
        let q = if is_write {
            &self.write_q
        } else {
            &self.read_q
        };
        q.len() < self.config.queue_capacity
    }

    /// Queued requests in both directions.
    pub fn queued(&self) -> usize {
        self.read_q.len() + self.write_q.len()
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Clears statistics without touching timing state.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    fn bank_index(&self, line: LineAddr) -> usize {
        let loc = self.mapping.locate(line);
        loc.rank * self.config.banks_per_rank + loc.bank
    }

    fn apply_refresh(&mut self, now: Time) {
        for rank in 0..self.config.ranks {
            while self.rank_next_refresh[rank] <= now {
                let start = self.rank_next_refresh[rank];
                let end = start + self.config.t_rfc;
                let base = rank * self.config.banks_per_rank;
                for b in 0..self.config.banks_per_rank {
                    let bank = &mut self.banks[base + b];
                    bank.ready_at = bank.ready_at.max(end);
                    bank.open_row = None;
                }
                self.rank_next_refresh[rank] += self.config.t_refi;
            }
        }
    }

    fn row_outcome(&self, bank: &BankState, row: u64, at: Time) -> RowOutcome {
        match bank.open_row {
            None => RowOutcome::Closed,
            Some(open) => {
                if bank.last_access + self.config.row_timeout <= at {
                    // Timeout policy auto-precharged the row in the
                    // background; the next access pays activate only.
                    RowOutcome::Closed
                } else if open == row {
                    RowOutcome::Hit
                } else {
                    RowOutcome::Conflict
                }
            }
        }
    }

    /// Picks a request index from `q` per FR-FCFS-capped: among requests
    /// whose bank is ready at `now`, row hits win (unless the bank's hit
    /// streak exceeded the cap), ties broken by age. Returns the chosen
    /// index, or the earliest bank-ready time if none is ready.
    fn pick(&self, q: &[Pending], now: Time) -> Result<usize, Option<Time>> {
        let mut best: Option<(bool, usize)> = None; // (is_hit, idx)
        let mut earliest: Option<Time> = None;
        for (i, p) in q.iter().enumerate() {
            let bank = &self.banks[self.bank_index(p.req.line)];
            if bank.ready_at > now {
                earliest = Some(match earliest {
                    None => bank.ready_at,
                    Some(e) => e.min(bank.ready_at),
                });
                continue;
            }
            let row = self.mapping.locate(p.req.line).row;
            let hit = self.row_outcome(bank, row, now) == RowOutcome::Hit
                && bank.hit_streak < self.config.frfcfs_cap;
            match best {
                None => best = Some((hit, i)),
                Some((best_hit, _)) => {
                    // Hits beat non-hits; within a class, age (queue
                    // order) wins, so never replace an equal class.
                    if hit && !best_hit {
                        best = Some((hit, i));
                    }
                }
            }
        }
        match best {
            Some((_, i)) => Ok(i),
            None => Err(earliest),
        }
    }

    fn issue(&mut self, pending: Pending, now: Time) -> Completion {
        let cfg = self.config;
        let bank_idx = self.bank_index(pending.req.line);
        let row = self.mapping.locate(pending.req.line).row;
        let outcome = self.row_outcome(&self.banks[bank_idx], row, now);
        let access_latency = match outcome {
            RowOutcome::Hit => cfg.row_hit_latency(),
            RowOutcome::Closed => cfg.row_closed_latency(),
            RowOutcome::Conflict => cfg.row_conflict_latency(),
        };

        let data_ready = now + access_latency;
        let bus_start = (data_ready.saturating_sub(cfg.burst)).max(self.bus_free_at);
        let done = bus_start + cfg.burst;
        self.bus_free_at = done;

        let bank = &mut self.banks[bank_idx];
        bank.open_row = Some(row);
        bank.last_access = done;
        bank.ready_at = match outcome {
            RowOutcome::Hit => now + cfg.burst, // CAS-to-CAS pipelining
            RowOutcome::Closed => now + cfg.t_rcd,
            RowOutcome::Conflict => now + cfg.t_rp + cfg.t_rcd,
        };
        bank.hit_streak = match outcome {
            RowOutcome::Hit => bank.hit_streak + 1,
            _ => 0,
        };

        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Closed => self.stats.row_opens += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        let bucket = self
            .stats
            .bucket_mut(pending.req.class, pending.req.is_write);
        bucket.count += 1;
        bucket.queuing_ns.add_time(now - pending.enqueued_at);
        bucket.bus_busy += cfg.burst;

        Completion {
            id: pending.req.id,
            done,
            is_write: pending.req.is_write,
            class: pending.req.class,
            line: pending.req.line,
            row_hit: outcome == RowOutcome::Hit,
            enqueued: pending.enqueued_at,
            issued: now,
        }
    }

    /// Runs the scheduler at `now`: issues at most one request (command
    /// bandwidth is one per burst slot) and reports when to run next.
    pub fn pump(&mut self, now: Time) -> PumpResult {
        self.apply_refresh(now);
        let mut result = PumpResult::default();

        if self.next_issue_at > now {
            if self.queued() > 0 {
                result.next_wake = Some(self.next_issue_at);
            }
            return result;
        }

        // Write-drain hysteresis.
        if self.write_q.len() >= self.config.write_high_watermark {
            self.draining = true;
        } else if self.write_q.len() <= self.config.write_low_watermark {
            self.draining = false;
        }

        // Pick the queue: drain mode forces writes; otherwise reads first,
        // opportunistically serving writes when no read exists.
        let use_writes = self.draining || self.read_q.is_empty();
        let (primary_is_write, primary_pick) = if use_writes {
            (true, self.pick(&self.write_q, now))
        } else {
            (false, self.pick(&self.read_q, now))
        };

        match primary_pick {
            Ok(idx) => {
                let pending = if primary_is_write {
                    self.write_q.remove(idx)
                } else {
                    self.read_q.remove(idx)
                };
                let completion = self.issue(pending, now);
                self.next_issue_at = now + self.config.burst;
                result.completions.push(completion);
                if self.queued() > 0 {
                    result.next_wake = Some(self.next_issue_at);
                }
            }
            Err(earliest) => {
                // Nothing ready in the primary queue; consider the other
                // queue's earliest readiness too so we never stall.
                let other = if primary_is_write {
                    &self.read_q
                } else {
                    &self.write_q
                };
                let other_earliest = if other.is_empty() || self.draining {
                    None
                } else {
                    match self.pick(other, now) {
                        Ok(_) => Some(now + Time::from_ps(1)),
                        Err(e) => e,
                    }
                };
                // In non-drain mode with an empty read queue we already
                // picked writes; here both were unready.
                result.next_wake = match (earliest, other_earliest) {
                    (None, None) => None,
                    (Some(a), None) | (None, Some(a)) => Some(a),
                    (Some(a), Some(b)) => Some(a.min(b)),
                };
                // Opportunistic issue from the other queue when the
                // primary has no ready candidate but the other does.
                if !self.draining {
                    if let Some(w) = other_earliest {
                        if w <= now + Time::from_ps(1) {
                            let q = if primary_is_write {
                                // primary was writes (read_q empty) — other is reads
                                &self.read_q
                            } else {
                                &self.write_q
                            };
                            if let Ok(idx) = self.pick(q, now) {
                                let pending = if primary_is_write {
                                    self.read_q.remove(idx)
                                } else {
                                    self.write_q.remove(idx)
                                };
                                let completion = self.issue(pending, now);
                                self.next_issue_at = now + self.config.burst;
                                result.completions.push(completion);
                                result.next_wake = if self.queued() > 0 {
                                    Some(self.next_issue_at)
                                } else {
                                    None
                                };
                            }
                        }
                    }
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan() -> DramChannel {
        DramChannel::new(DramConfig::table_i(1))
    }

    fn rd(id: u64, line: u64) -> DramRequest {
        DramRequest::read(id, LineAddr::new(line), RequestClass::Data)
    }

    fn wr(id: u64, line: u64) -> DramRequest {
        DramRequest::write(id, LineAddr::new(line), RequestClass::Data)
    }

    #[test]
    fn single_read_completes_with_closed_row_latency() {
        let mut c = chan();
        c.enqueue(rd(1, 0), Time::ZERO).unwrap();
        let r = c.pump(Time::ZERO);
        assert_eq!(r.completions.len(), 1);
        assert_eq!(r.completions[0].done, Time::from_ns_f64(30.0));
        assert!(!r.completions[0].row_hit);
    }

    #[test]
    fn row_hit_detected_within_timeout() {
        let mut c = chan();
        c.enqueue(rd(1, 0), Time::ZERO).unwrap();
        c.pump(Time::ZERO);
        let t = Time::from_ns(100);
        c.enqueue(rd(2, 1), t).unwrap();
        let r = c.pump(t);
        assert!(r.completions[0].row_hit);
    }

    #[test]
    fn row_times_out_after_500ns() {
        let mut c = chan();
        c.enqueue(rd(1, 0), Time::ZERO).unwrap();
        c.pump(Time::ZERO);
        let t = Time::from_ns(900); // beyond last_access + 500ns
        c.enqueue(rd(2, 1), t).unwrap();
        let r = c.pump(t);
        assert!(!r.completions[0].row_hit);
        // Closed, not conflict: timeout precharged in the background.
        assert_eq!(r.completions[0].done - t, Time::from_ns_f64(30.0));
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut c = chan();
        c.enqueue(rd(1, 0), Time::ZERO).unwrap();
        let r1 = c.pump(Time::ZERO);
        let t = r1.completions[0].done + Time::from_ns(50);
        // Same bank, different row: +16 banks * 8 ranks * 128 col stride.
        let conflict_line = 128 * 16 * 8 * 16; // row bits change, XOR keeps bank
        let loc_a = AddressMapping::new(1).locate(LineAddr::new(0));
        let loc_b = AddressMapping::new(1).locate(LineAddr::new(conflict_line));
        assert_eq!((loc_a.rank, loc_a.bank), (loc_b.rank, loc_b.bank));
        assert_ne!(loc_a.row, loc_b.row);
        c.enqueue(rd(2, conflict_line), t).unwrap();
        let r2 = c.pump(t);
        assert_eq!(r2.completions[0].done - t, Time::from_ns_f64(43.75));
    }

    #[test]
    fn frfcfs_prefers_row_hits() {
        let mut c = chan();
        // Open row 0 of bank (0,0).
        c.enqueue(rd(1, 0), Time::ZERO).unwrap();
        let r = c.pump(Time::ZERO);
        let t = r.completions[0].done;
        // Old request to a conflicting row, young request hitting the
        // open row: the young hit should issue first.
        let conflict_line = 128 * 16 * 8 * 16;
        c.enqueue(rd(2, conflict_line), t).unwrap();
        c.enqueue(rd(3, 1), t).unwrap();
        let r = c.pump(t);
        assert_eq!(r.completions[0].id, 3, "row hit must bypass older conflict");
    }

    #[test]
    fn frfcfs_cap_limits_bypassing() {
        let mut c = chan();
        c.enqueue(rd(0, 0), Time::ZERO).unwrap();
        let mut t = c.pump(Time::ZERO).completions[0].done;
        let conflict_line = 128 * 16 * 8 * 16;
        // The old conflicting request waits while hits stream past — but
        // only up to the cap (4).
        c.enqueue(rd(100, conflict_line), t).unwrap();
        let mut served_before_old = 0;
        for i in 0..10 {
            c.enqueue(rd(i + 1, 1 + i), t).unwrap();
        }
        for _ in 0..20 {
            let r = c.pump(t);
            if let Some(comp) = r.completions.first() {
                if comp.id == 100 {
                    break;
                }
                served_before_old += 1;
                t = t.max(comp.done);
            }
            t = r.next_wake.unwrap_or(t + Time::from_ns(1));
        }
        assert!(
            served_before_old <= 4,
            "cap must bound bypassing, saw {served_before_old}"
        );
    }

    #[test]
    fn reads_prioritized_over_writes() {
        let mut c = chan();
        c.enqueue(wr(1, 1_000_000), Time::ZERO).unwrap();
        c.enqueue(rd(2, 0), Time::ZERO).unwrap();
        let r = c.pump(Time::ZERO);
        assert_eq!(r.completions[0].id, 2);
    }

    #[test]
    fn write_drain_kicks_in_at_watermark() {
        let mut c = chan();
        let hw = c.config.write_high_watermark;
        for i in 0..hw {
            c.enqueue(wr(i as u64, (i as u64) * 200_000), Time::ZERO)
                .unwrap();
        }
        c.enqueue(rd(9999, 7), Time::ZERO).unwrap();
        let r = c.pump(Time::ZERO);
        assert!(
            r.completions[0].is_write,
            "drain mode must serve writes before reads"
        );
    }

    #[test]
    fn saturated_row_hits_reach_bus_bandwidth() {
        // 256 sequential lines in one row: throughput must approach one
        // burst (2.5 ns) per access, not one access latency (16 ns).
        let mut c = chan();
        for i in 0..128 {
            c.enqueue(rd(i, i), Time::ZERO).unwrap();
        }
        let mut t = Time::ZERO;
        let mut last_done = Time::ZERO;
        let mut completed = 0;
        while completed < 128 {
            let r = c.pump(t);
            for comp in &r.completions {
                completed += 1;
                last_done = last_done.max(comp.done);
            }
            match r.next_wake {
                Some(w) => t = w,
                None => break,
            }
        }
        assert_eq!(completed, 128);
        let per_access = last_done.as_ns_f64() / 128.0;
        assert!(
            per_access < 4.0,
            "per-access time {per_access:.2} ns exceeds pipelined bound"
        );
    }

    #[test]
    fn refresh_stalls_banks() {
        let mut c = chan();
        // First refresh of rank 0 is at tREFI/8 = 975 ns.
        let t = Time::from_ns(980);
        c.enqueue(rd(1, 0), t).unwrap();
        let r = c.pump(t);
        // The bank is blocked until refresh completes (975 + 350 = 1325 ns).
        match r.completions.first() {
            Some(comp) => assert!(comp.done >= Time::from_ns(1325)),
            None => assert!(r.next_wake.unwrap() >= Time::from_ns(1325)),
        }
    }

    #[test]
    fn queuing_delay_recorded() {
        let mut c = chan();
        c.enqueue(rd(1, 0), Time::ZERO).unwrap();
        c.enqueue(rd(2, 1_000_000), Time::ZERO).unwrap();
        let mut t = Time::ZERO;
        for _ in 0..10 {
            let r = c.pump(t);
            match r.next_wake {
                Some(w) => t = w,
                None => break,
            }
        }
        let b = c.stats().bucket(RequestClass::Data, false);
        assert_eq!(b.count, 2);
        // The second request waited at least one issue slot.
        assert!(b.queuing_ns.max().unwrap() > 0.0);
    }
}
