//! DDR4 DRAM timing model (the role Ramulator plays in the paper).
//!
//! Models the Table I memory system: DDR4-3200 with tCL = tRCD = tRP =
//! 13.75 ns, tRFC = 350 ns, a 500 ns row-buffer timeout policy, 256-entry
//! read/write queues, FR-FCFS-capped bank scheduling with write draining,
//! 8 ranks × 16 banks per channel, and either 1 or 8 channels with the
//! paper's bits-8..10 channel interleaving (§VI-D).
//!
//! The model is request-level: each 64 B access occupies its bank for the
//! appropriate activate/column timing and the shared data bus for one
//! burst; queuing delay (enqueue → first command) is tracked per request
//! class, which is exactly what Figure 22 reports.
//!
//! # Examples
//!
//! ```
//! use emcc_dram::{Dram, DramConfig, DramRequest, RequestClass};
//! use emcc_sim::{LineAddr, Time};
//!
//! let mut dram = Dram::new(DramConfig::table_i(1));
//! let t0 = Time::ZERO;
//! dram.enqueue(DramRequest::read(1, LineAddr::new(0), RequestClass::Data), t0)
//!     .unwrap();
//! let issued = dram.pump(t0);
//! assert_eq!(issued.completions.len(), 1);
//! // A cold access pays activate + CAS + burst.
//! assert!(issued.completions[0].done > Time::from_ns(27));
//! ```

pub mod channel;
pub mod config;
pub mod fault;
pub mod mapping;
pub mod request;
pub mod stats;

pub use channel::{Completion, PumpResult};
pub use config::DramConfig;
pub use fault::{FaultClass, FaultConfig, FaultEvent, FaultModel, FaultStats, PlantedFault};
pub use mapping::AddressMapping;
pub use request::{DramRequest, RequestClass, RequestId};
pub use stats::DramStats;

use emcc_sim::{LineAddr, Time};

use channel::DramChannel;

/// Error returned when a channel's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dram queue full")
    }
}

impl std::error::Error for QueueFull {}

/// The full DRAM subsystem: one or more channels behind an address map.
#[derive(Debug)]
pub struct Dram {
    config: DramConfig,
    mapping: AddressMapping,
    channels: Vec<DramChannel>,
}

impl Dram {
    /// Creates a DRAM with the given configuration.
    pub fn new(config: DramConfig) -> Self {
        let mapping = AddressMapping::new(config.channels);
        let channels = (0..config.channels)
            .map(|_| DramChannel::new(config))
            .collect();
        Dram {
            config,
            mapping,
            channels,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The address mapping (exposed so the MC can route invalidations).
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Enqueues a request on the owning channel.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the channel's read or write queue has no
    /// free entry; the caller must retry later (the MC models this as
    /// back-pressure toward the LLC).
    pub fn enqueue(&mut self, req: DramRequest, now: Time) -> Result<(), QueueFull> {
        let ch = self.mapping.channel_of(req.line);
        self.channels[ch].enqueue(req, now)
    }

    /// True if the owning channel for `line` can accept another request of
    /// the given direction.
    pub fn can_accept(&self, line: LineAddr, is_write: bool) -> bool {
        self.channels[self.mapping.channel_of(line)].can_accept(is_write)
    }

    /// Runs all channel schedulers at `now`, collecting issued completions
    /// and the earliest next wake-up across channels.
    pub fn pump(&mut self, now: Time) -> PumpResult {
        let mut out = PumpResult::default();
        for ch in &mut self.channels {
            let r = ch.pump(now);
            out.completions.extend(r.completions);
            out.next_wake = match (out.next_wake, r.next_wake) {
                (None, w) => w,
                (w, None) => w,
                (Some(a), Some(b)) => Some(a.min(b)),
            };
        }
        out
    }

    /// Aggregated statistics across channels.
    pub fn stats(&self) -> DramStats {
        let mut s = DramStats::default();
        for ch in &self.channels {
            s.merge(ch.stats());
        }
        s
    }

    /// Clears accumulated statistics (bank/queue *state* is preserved) —
    /// used at the end of a warmup phase.
    pub fn reset_stats(&mut self) {
        for ch in &mut self.channels {
            ch.reset_stats();
        }
    }

    /// Total requests currently queued (both directions, all channels).
    pub fn queued(&self) -> usize {
        self.channels.iter().map(|c| c.queued()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(id: u64, line: u64) -> DramRequest {
        DramRequest::read(id, LineAddr::new(line), RequestClass::Data)
    }

    #[test]
    fn cold_read_latency_is_activate_plus_cas() {
        let mut d = Dram::new(DramConfig::table_i(1));
        d.enqueue(read(1, 0), Time::ZERO).unwrap();
        let r = d.pump(Time::ZERO);
        let done = r.completions[0].done;
        // tRCD + tCL + burst = 13.75 + 13.75 + 2.5 = 30 ns (the paper's
        // "row buffer miss ≈ 30ns").
        assert_eq!(done, Time::from_ns_f64(30.0));
    }

    #[test]
    fn row_hit_is_faster() {
        let mut d = Dram::new(DramConfig::table_i(1));
        d.enqueue(read(1, 0), Time::ZERO).unwrap();
        let r1 = d.pump(Time::ZERO);
        let t1 = r1.completions[0].done;
        // Second access to the same row, right after.
        d.enqueue(read(2, 1), t1).unwrap();
        let r2 = d.pump(t1);
        let hit_latency = r2.completions[0].done - t1;
        // tCL + burst = 16.25 ns (paper: "row buffer hit ≈ 16ns").
        assert_eq!(hit_latency, Time::from_ns_f64(16.25));
    }

    #[test]
    fn eight_channels_split_traffic() {
        let mut d = Dram::new(DramConfig::table_i(8));
        // Lines 0..8 with channel = line bits 2..4: lines 0..3 → ch 0,
        // 4..7 → ch 1.
        for i in 0..8 {
            d.enqueue(read(i, i), Time::ZERO).unwrap();
        }
        let r = d.pump(Time::ZERO);
        // At least two channels issued immediately.
        assert!(r.completions.len() >= 2);
    }

    #[test]
    fn queue_full_reported() {
        let mut d = Dram::new(DramConfig::table_i(1));
        let cap = d.config().queue_capacity as u64;
        for i in 0..cap {
            d.enqueue(read(i, i * 1_000_000), Time::ZERO).unwrap();
        }
        assert!(d.enqueue(read(999, 42), Time::ZERO).is_err());
        assert!(!d.can_accept(LineAddr::new(42), false));
    }
}
