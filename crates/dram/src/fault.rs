//! Deterministic DRAM fault injection.
//!
//! The paper's safety argument (§IV-D) is that any corruption of memory —
//! data, its co-located MAC, counter blocks, or integrity-tree nodes — is
//! *detected* by MAC verification, raising an ECC-style interrupt whether
//! verification runs at the MC or, under EMCC, in the L2. This module
//! supplies the adversary/fault side of that argument for the timing
//! simulator: a seeded, fully deterministic [`FaultModel`] that decides,
//! per DRAM read completion, whether the returned line is corrupted.
//!
//! Fault decisions are pure functions of `(seed, line, nth-read-of-line,
//! class)` — no sequential RNG state — so the injected fault set does not
//! depend on request interleaving and campaigns are reproducible across
//! machines and worker counts.
//!
//! Semantics by [`FaultClass`]:
//!
//! * [`BitFlip`](FaultClass::BitFlip) — a stored cell flipped; the line
//!   stays corrupted until the next write overwrites it.
//! * [`MacCorrupt`](FaultClass::MacCorrupt) — same persistence, but the
//!   flip lands in the line's co-located 56-bit MAC rather than its data.
//! * [`StuckLine`](FaultClass::StuckLine) — a hard stuck-at fault; writes
//!   do *not* repair it, every subsequent read of the line is corrupt.
//! * [`Replay`](FaultClass::Replay) — the line reverts to a stale
//!   (ciphertext, MAC) snapshot; persists until overwritten.
//! * [`TransientRead`](FaultClass::TransientRead) — a one-off read error
//!   (bus/sense glitch); the stored line is intact and a re-read succeeds.
//!
//! # Examples
//!
//! ```
//! use emcc_dram::{FaultClass, FaultConfig, FaultModel, RequestClass};
//! use emcc_sim::LineAddr;
//!
//! // Corrupt the 3rd read (index 2) of line 9 with a bit flip.
//! let cfg = FaultConfig::planted_at(7, LineAddr::new(9), FaultClass::BitFlip, 2);
//! let mut model = FaultModel::new(cfg);
//! let read = |m: &mut FaultModel| m.on_read(LineAddr::new(9), RequestClass::Data);
//! assert!(read(&mut model).is_none());
//! assert!(read(&mut model).is_none());
//! assert!(read(&mut model).is_some()); // injected here ...
//! assert!(read(&mut model).is_some()); // ... and persistent after.
//! model.on_write(LineAddr::new(9));
//! assert!(read(&mut model).is_none()); // overwrite repairs a bit flip.
//! ```

use std::collections::{HashMap, HashSet};

use emcc_sim::{LineAddr, Rng64};

use crate::request::RequestClass;

/// The fault classes the model can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultClass {
    /// A flipped bit in the stored data (repaired by the next write).
    BitFlip,
    /// A flipped bit in the line's co-located MAC (repaired by the next
    /// write).
    MacCorrupt,
    /// A hard stuck-at fault: never repaired, every read is corrupt.
    StuckLine,
    /// The line reverts to a stale snapshot (replay attack / lost write).
    Replay,
    /// A transient read error; the stored line is intact.
    TransientRead,
}

impl FaultClass {
    /// All classes, in report order.
    pub const fn all() -> [FaultClass; 5] {
        [
            FaultClass::BitFlip,
            FaultClass::MacCorrupt,
            FaultClass::StuckLine,
            FaultClass::Replay,
            FaultClass::TransientRead,
        ]
    }

    /// Index into per-class stat arrays.
    pub const fn index(self) -> usize {
        match self {
            FaultClass::BitFlip => 0,
            FaultClass::MacCorrupt => 1,
            FaultClass::StuckLine => 2,
            FaultClass::Replay => 3,
            FaultClass::TransientRead => 4,
        }
    }

    /// Whether the corruption outlives the read that first observed it
    /// (until the next write, or forever for stuck lines).
    pub const fn is_persistent(self) -> bool {
        !matches!(self, FaultClass::TransientRead)
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultClass::BitFlip => "bit-flip",
            FaultClass::MacCorrupt => "mac-corrupt",
            FaultClass::StuckLine => "stuck-line",
            FaultClass::Replay => "replay",
            FaultClass::TransientRead => "transient-read",
        };
        f.write_str(s)
    }
}

/// A fault pinned to an address: fires on the `on_read`-th read (0-based)
/// of `line`, regardless of rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlantedFault {
    /// The target line.
    pub line: LineAddr,
    /// What to inject.
    pub class: FaultClass,
    /// Which read of the line triggers the injection (0 = first read).
    pub on_read: u64,
}

/// Fault-campaign configuration: per-class random rates plus explicitly
/// planted faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the per-read fault rolls.
    pub seed: u64,
    /// Per-[`FaultClass`] probability (by [`FaultClass::index`]) that a
    /// DRAM read completion of an eligible line injects that fault.
    pub rates: [f64; 5],
    /// Eligible traffic: `[data, counter, tree-node]`. Write and overflow
    /// traffic is never sampled (corruption there is observed via later
    /// reads of the same lines).
    pub targets: [bool; 3],
    /// Address-directed faults, applied on top of the random rates.
    pub planted: Vec<PlantedFault>,
}

// Fault configurations are part of `SystemConfig`, which serves as a
// run-cache memoization key. The rates are always finite literals from a
// sweep (never NaN), so bitwise equality/hashing is exact and `Eq` is
// sound — the same reasoning as `EmccConfig`.
impl Eq for FaultConfig {}

impl std::hash::Hash for FaultConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let FaultConfig {
            seed,
            rates,
            targets,
            planted,
        } = self;
        seed.hash(state);
        for r in rates {
            r.to_bits().hash(state);
        }
        targets.hash(state);
        planted.hash(state);
    }
}

impl FaultConfig {
    /// A configuration injecting only `class`, uniformly at `rate` per
    /// eligible read, on all line kinds.
    pub fn uniform(seed: u64, class: FaultClass, rate: f64) -> Self {
        let mut rates = [0.0; 5];
        rates[class.index()] = rate;
        FaultConfig {
            seed,
            rates,
            targets: [true; 3],
            planted: Vec::new(),
        }
    }

    /// A configuration with a single planted fault and no random rates.
    pub fn planted_at(seed: u64, line: LineAddr, class: FaultClass, on_read: u64) -> Self {
        FaultConfig {
            seed,
            rates: [0.0; 5],
            targets: [true; 3],
            planted: vec![PlantedFault {
                line,
                class,
                on_read,
            }],
        }
    }

    /// Builder-style restriction to specific line kinds
    /// (`[data, counter, tree-node]`).
    pub fn with_targets(mut self, targets: [bool; 3]) -> Self {
        self.targets = targets;
        self
    }

    fn class_eligible(&self, class: RequestClass) -> bool {
        match class {
            RequestClass::Data => self.targets[0],
            RequestClass::Counter => self.targets[1],
            RequestClass::TreeNode => self.targets[2],
            RequestClass::OverflowL0 | RequestClass::OverflowHigher => false,
        }
    }
}

/// One corrupted read observed by the memory pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The fault behind the corruption.
    pub class: FaultClass,
    /// True the first time this fault manifests; false on re-reads of an
    /// already-corrupted line (retries, stuck lines).
    pub fresh: bool,
}

/// Running injection statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Fresh injections by [`FaultClass::index`].
    pub injected: [u64; 5],
    /// Total corrupted reads returned (fresh + re-reads of corrupt lines).
    pub faulty_reads: u64,
}

impl FaultStats {
    /// Total fresh injections across classes.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }
}

/// The deterministic fault injector.
///
/// Owned by the memory pipeline; consulted once per DRAM read completion
/// ([`on_read`](Self::on_read)) and once per write completion
/// ([`on_write`](Self::on_write), which repairs everything but stuck
/// lines).
#[derive(Debug, Clone)]
pub struct FaultModel {
    cfg: FaultConfig,
    /// Reads observed per line (indexes planted faults and rate rolls).
    reads: HashMap<LineAddr, u64>,
    /// Lines currently holding corrupted contents (repaired by writes).
    corrupted: HashMap<LineAddr, FaultClass>,
    /// Hard-stuck lines (never repaired).
    stuck: HashSet<LineAddr>,
    stats: FaultStats,
}

impl FaultModel {
    /// Creates a model from a configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultModel {
            cfg,
            reads: HashMap::new(),
            corrupted: HashMap::new(),
            stuck: HashSet::new(),
            stats: FaultStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Injection statistics so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Decides whether a read completion of `line` returns corrupted
    /// contents. Call exactly once per DRAM read completion.
    pub fn on_read(&mut self, line: LineAddr, class: RequestClass) -> Option<FaultEvent> {
        let n = self.reads.entry(line).or_insert(0);
        let nth = *n;
        *n += 1;

        // Existing corruption dominates: the stored line is already bad.
        if self.stuck.contains(&line) {
            self.stats.faulty_reads += 1;
            return Some(FaultEvent {
                class: FaultClass::StuckLine,
                fresh: false,
            });
        }
        if let Some(&c) = self.corrupted.get(&line) {
            self.stats.faulty_reads += 1;
            return Some(FaultEvent {
                class: c,
                fresh: false,
            });
        }

        if !self.cfg.class_eligible(class) {
            return None;
        }

        // Planted faults fire exactly on their scheduled read.
        let planted = self
            .cfg
            .planted
            .iter()
            .find(|p| p.line == line && p.on_read == nth)
            .map(|p| p.class);
        let injected = planted.or_else(|| self.roll(line, nth));
        let class = injected?;
        self.inject(line, class);
        self.stats.faulty_reads += 1;
        Some(FaultEvent { class, fresh: true })
    }

    /// Notes a write completion: overwrites repair soft corruption but not
    /// stuck-at faults.
    pub fn on_write(&mut self, line: LineAddr) {
        self.corrupted.remove(&line);
    }

    /// Whether `line` currently holds corrupted contents.
    pub fn is_corrupted(&self, line: LineAddr) -> bool {
        self.stuck.contains(&line) || self.corrupted.contains_key(&line)
    }

    fn inject(&mut self, line: LineAddr, class: FaultClass) {
        self.stats.injected[class.index()] += 1;
        match class {
            FaultClass::StuckLine => {
                self.stuck.insert(line);
            }
            FaultClass::TransientRead => {}
            FaultClass::BitFlip | FaultClass::MacCorrupt | FaultClass::Replay => {
                self.corrupted.insert(line, class);
            }
        }
    }

    /// Stateless per-(line, nth-read) fault roll: one uniform draw per
    /// class, in class order, first hit wins.
    fn roll(&self, line: LineAddr, nth: u64) -> Option<FaultClass> {
        let key = self.cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ line.get().wrapping_mul(0xD129_0163_2BF6_D8B7)
            ^ nth.wrapping_mul(0xA24B_AED4_963E_E407);
        let mut rng = Rng64::new(key);
        for class in FaultClass::all() {
            let rate = self.cfg.rates[class.index()];
            if rate > 0.0 && rng.chance(rate) {
                return Some(class);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_read(m: &mut FaultModel, line: u64) -> Option<FaultEvent> {
        m.on_read(LineAddr::new(line), RequestClass::Data)
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let mut m = FaultModel::new(FaultConfig::uniform(1, FaultClass::BitFlip, 0.0));
        for i in 0..1000 {
            assert!(data_read(&mut m, i).is_none());
        }
        assert_eq!(m.stats().total_injected(), 0);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut m = FaultModel::new(FaultConfig::uniform(2, FaultClass::TransientRead, 0.1));
        let mut hits = 0;
        for i in 0..10_000 {
            if data_read(&mut m, i).is_some() {
                hits += 1;
            }
        }
        assert!((700..1300).contains(&hits), "got {hits} faults at 10%");
    }

    #[test]
    fn decisions_are_order_independent() {
        let cfg = FaultConfig::uniform(3, FaultClass::BitFlip, 0.05);
        let mut fwd = FaultModel::new(cfg.clone());
        let mut rev = FaultModel::new(cfg);
        let forward: Vec<bool> = (0..500).map(|i| data_read(&mut fwd, i).is_some()).collect();
        let mut backward: Vec<(u64, bool)> = (0..500)
            .rev()
            .map(|i| (i, data_read(&mut rev, i).is_some()))
            .collect();
        backward.sort_by_key(|&(i, _)| i);
        let backward: Vec<bool> = backward.into_iter().map(|(_, f)| f).collect();
        assert_eq!(forward, backward, "fault rolls must not depend on order");
    }

    #[test]
    fn persistent_faults_survive_until_write() {
        for class in [
            FaultClass::BitFlip,
            FaultClass::MacCorrupt,
            FaultClass::Replay,
        ] {
            let mut m = FaultModel::new(FaultConfig::planted_at(1, LineAddr::new(4), class, 0));
            assert_eq!(data_read(&mut m, 4).map(|e| e.fresh), Some(true));
            assert_eq!(data_read(&mut m, 4).map(|e| e.fresh), Some(false));
            m.on_write(LineAddr::new(4));
            assert!(
                data_read(&mut m, 4).is_none(),
                "{class} must repair on write"
            );
        }
    }

    #[test]
    fn stuck_lines_survive_writes() {
        let mut m = FaultModel::new(FaultConfig::planted_at(
            1,
            LineAddr::new(8),
            FaultClass::StuckLine,
            0,
        ));
        assert!(data_read(&mut m, 8).is_some());
        m.on_write(LineAddr::new(8));
        let e = data_read(&mut m, 8).expect("stuck line stays corrupt");
        assert_eq!(e.class, FaultClass::StuckLine);
        assert!(!e.fresh);
    }

    #[test]
    fn transient_faults_clear_on_reread() {
        let mut m = FaultModel::new(FaultConfig::planted_at(
            1,
            LineAddr::new(2),
            FaultClass::TransientRead,
            1,
        ));
        assert!(data_read(&mut m, 2).is_none());
        assert!(data_read(&mut m, 2).is_some()); // the scheduled glitch
        assert!(data_read(&mut m, 2).is_none()); // retry succeeds
    }

    #[test]
    fn target_mask_filters_classes() {
        let cfg =
            FaultConfig::uniform(5, FaultClass::BitFlip, 1.0).with_targets([false, true, false]);
        let mut m = FaultModel::new(cfg);
        assert!(m.on_read(LineAddr::new(1), RequestClass::Data).is_none());
        assert!(m
            .on_read(LineAddr::new(1), RequestClass::TreeNode)
            .is_none());
        assert!(m.on_read(LineAddr::new(1), RequestClass::Counter).is_some());
        // Overflow traffic is never sampled.
        assert!(m
            .on_read(LineAddr::new(2), RequestClass::OverflowL0)
            .is_none());
    }

    #[test]
    fn stats_count_fresh_and_rereads() {
        let mut m = FaultModel::new(FaultConfig::planted_at(
            9,
            LineAddr::new(3),
            FaultClass::BitFlip,
            0,
        ));
        data_read(&mut m, 3);
        data_read(&mut m, 3);
        data_read(&mut m, 5);
        let s = m.stats();
        assert_eq!(s.injected[FaultClass::BitFlip.index()], 1);
        assert_eq!(s.faulty_reads, 2);
    }
}
