//! DRAM configuration (Table I).

use emcc_sim::Time;

/// Static DRAM parameters.
///
/// # Examples
///
/// ```
/// use emcc_dram::DramConfig;
///
/// let c = DramConfig::table_i(1);
/// assert_eq!(c.channels, 1);
/// assert_eq!(c.ranks, 8);
/// assert_eq!(c.t_cl.as_ns_f64(), 13.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Number of channels (the paper evaluates 1 and 8).
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// CAS latency.
    pub t_cl: Time,
    /// RAS-to-CAS (activate) latency.
    pub t_rcd: Time,
    /// Precharge latency.
    pub t_rp: Time,
    /// Refresh cycle time.
    pub t_rfc: Time,
    /// Refresh interval per rank.
    pub t_refi: Time,
    /// One 64 B burst on the data bus (BL8 at the configured data rate).
    pub burst: Time,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Open rows auto-precharge after this idle time (Table I: 500 ns
    /// timeout policy).
    pub row_timeout: Time,
    /// Read-queue and write-queue capacity, each (Table I: 256 entries).
    pub queue_capacity: usize,
    /// FR-FCFS cap: how many younger row-hit requests may bypass the
    /// oldest request per bank before age wins.
    pub frfcfs_cap: u32,
    /// Write drain starts when the write queue reaches this fill.
    pub write_high_watermark: usize,
    /// Write drain stops when the write queue falls back to this fill.
    pub write_low_watermark: usize,
}

impl DramConfig {
    /// The paper's Table I configuration with the given channel count.
    ///
    /// DDR4-3200: 3.2 GT/s × 8 B bus ⇒ a 64 B line takes 2.5 ns on the
    /// bus. tCL = tRCD = tRP = 13.75 ns, tRFC = 350 ns.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is not a power of two (required by the
    /// bit-sliced channel interleaving).
    pub fn table_i(channels: usize) -> Self {
        assert!(
            channels.is_power_of_two(),
            "channels must be a power of two"
        );
        DramConfig {
            channels,
            ranks: 8,
            banks_per_rank: 16,
            t_cl: Time::from_ns_f64(13.75),
            t_rcd: Time::from_ns_f64(13.75),
            t_rp: Time::from_ns_f64(13.75),
            t_rfc: Time::from_ns(350),
            t_refi: Time::from_ns(7_800),
            burst: Time::from_ns_f64(2.5),
            row_bytes: 8192,
            row_timeout: Time::from_ns(500),
            queue_capacity: 256,
            frfcfs_cap: 4,
            write_high_watermark: 192,
            write_low_watermark: 64,
        }
    }

    /// Total banks per channel.
    pub fn banks(&self) -> usize {
        self.ranks * self.banks_per_rank
    }

    /// Lines per row buffer.
    pub fn lines_per_row(&self) -> u64 {
        self.row_bytes / emcc_sim::mem::LINE_BYTES
    }

    /// Latency of a row-buffer hit (CAS + burst).
    pub fn row_hit_latency(&self) -> Time {
        self.t_cl + self.burst
    }

    /// Latency of an access to a closed row (activate + CAS + burst).
    pub fn row_closed_latency(&self) -> Time {
        self.t_rcd + self.t_cl + self.burst
    }

    /// Latency of a row conflict (precharge + activate + CAS + burst).
    pub fn row_conflict_latency(&self) -> Time {
        self.t_rp + self.t_rcd + self.t_cl + self.burst
    }

    /// Peak data bandwidth per channel in bytes/second.
    pub fn peak_bandwidth(&self) -> f64 {
        64.0 / (self.burst.as_ns_f64() * 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latencies() {
        let c = DramConfig::table_i(1);
        // §I: "DRAM latency (e.g., 16ns and 30ns under row buffer hit and
        // miss, respectively)".
        assert_eq!(c.row_hit_latency(), Time::from_ns_f64(16.25));
        assert_eq!(c.row_closed_latency(), Time::from_ns_f64(30.0));
        assert_eq!(c.row_conflict_latency(), Time::from_ns_f64(43.75));
    }

    #[test]
    fn bank_geometry() {
        let c = DramConfig::table_i(1);
        assert_eq!(c.banks(), 128);
        assert_eq!(c.lines_per_row(), 128);
    }

    #[test]
    fn peak_bandwidth_is_25_6_gbps() {
        let c = DramConfig::table_i(1);
        let gb = c.peak_bandwidth() / 1e9;
        assert!((gb - 25.6).abs() < 0.01, "peak {gb} GB/s");
    }

    #[test]
    #[should_panic]
    fn non_pow2_channels_rejected() {
        let _ = DramConfig::table_i(3);
    }
}
