//! Physical address → channel/rank/bank/row mapping.
//!
//! Channel interleaving follows the paper exactly: with 8 channels, "bits
//! 8 to 10 of the memory address" are the channel id (§VI-D) — i.e. bits
//! 2..4 of the line index. Bank selection is XOR-based like Skylake
//! (Table I cites DRAMA): the bank index is the XOR of address bits with
//! low row bits, which spreads strided streams across banks.

use emcc_sim::LineAddr;

/// Decoded location of a line in the DRAM system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramLocation {
    /// Channel id.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank within the rank.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
}

/// The address-mapping function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    channels: usize,
}

/// Column bits within a row: 8 KB rows = 128 lines.
const COL_BITS: u32 = 7;
/// 16 banks per rank.
const BANK_BITS: u32 = 4;
/// 8 ranks.
const RANK_BITS: u32 = 3;

impl AddressMapping {
    /// Creates a mapping for the given channel count (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `channels` is not a power of two.
    pub fn new(channels: usize) -> Self {
        assert!(
            channels.is_power_of_two(),
            "channels must be a power of two"
        );
        AddressMapping { channels }
    }

    /// The channel for a line: byte-address bits 8..(8+log2(channels)).
    pub fn channel_of(&self, line: LineAddr) -> usize {
        if self.channels == 1 {
            return 0;
        }
        let shift = 2; // byte bit 8 == line bit 2
        ((line.get() >> shift) as usize) & (self.channels - 1)
    }

    /// Full location decode.
    pub fn locate(&self, line: LineAddr) -> DramLocation {
        let channel = self.channel_of(line);
        // Strip channel bits so each channel sees a dense address space.
        let l = if self.channels == 1 {
            line.get()
        } else {
            let low = line.get() & 0b11;
            let high = line.get() >> (2 + self.channels.trailing_zeros());
            (high << 2) | low
        };
        let col_shift = COL_BITS;
        let bank_raw = (l >> col_shift) & ((1 << BANK_BITS) - 1);
        let rank = ((l >> (col_shift + BANK_BITS)) & ((1 << RANK_BITS) - 1)) as usize;
        let row = l >> (col_shift + BANK_BITS + RANK_BITS);
        // XOR low row bits into the bank index (Skylake-like permutation).
        let bank = ((bank_raw ^ (row & ((1 << BANK_BITS) - 1))) & ((1 << BANK_BITS) - 1)) as usize;
        DramLocation {
            channel,
            rank,
            bank,
            row,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_channel_maps_everything_to_zero() {
        let m = AddressMapping::new(1);
        for i in [0u64, 5, 1 << 20, u32::MAX as u64] {
            assert_eq!(m.channel_of(LineAddr::new(i)), 0);
        }
    }

    #[test]
    fn eight_channel_bits_8_to_10() {
        let m = AddressMapping::new(8);
        // Byte address 0x100 (bit 8 set) = line 4 → channel 1.
        assert_eq!(m.channel_of(LineAddr::new(4)), 1);
        // Byte address 0x400 (bit 10 set) = line 16 → channel 4.
        assert_eq!(m.channel_of(LineAddr::new(16)), 4);
        // Lines 0..3 share channel 0 (bits 8..10 clear).
        for i in 0..4 {
            assert_eq!(m.channel_of(LineAddr::new(i)), 0);
        }
    }

    #[test]
    fn consecutive_lines_share_a_row() {
        let m = AddressMapping::new(1);
        let a = m.locate(LineAddr::new(0));
        let b = m.locate(LineAddr::new(1));
        assert_eq!((a.rank, a.bank, a.row), (b.rank, b.bank, b.row));
    }

    #[test]
    fn row_stride_changes_bank_via_xor() {
        // Accesses with an 8 KB-row stride land in *different* banks
        // thanks to the XOR permutation — the anti-conflict property.
        let m = AddressMapping::new(1);
        let lines_per_bank_stride = 128 * 16 * 8; // col * banks * ranks
        let a = m.locate(LineAddr::new(0));
        let b = m.locate(LineAddr::new(lines_per_bank_stride));
        assert_eq!(a.rank, b.rank);
        assert_ne!((a.bank, a.row), (b.bank, b.row));
        assert_ne!(a.bank, b.bank, "XOR permutation must shift the bank");
    }

    #[test]
    fn location_fields_in_range() {
        let m = AddressMapping::new(8);
        let mut rng = emcc_sim::Rng64::new(4);
        for _ in 0..10_000 {
            let loc = m.locate(LineAddr::new(rng.below(1 << 31)));
            assert!(loc.channel < 8);
            assert!(loc.rank < 8);
            assert!(loc.bank < 16);
        }
    }

    #[test]
    fn channel_stripping_keeps_rows_dense() {
        let m = AddressMapping::new(8);
        // Two lines differing only in channel bits decode to the same
        // in-channel location.
        let a = m.locate(LineAddr::new(0));
        let b = m.locate(LineAddr::new(4)); // channel 1, same dense addr
        assert_eq!((a.rank, a.bank, a.row), (b.rank, b.bank, b.row));
        assert_ne!(
            m.channel_of(LineAddr::new(0)),
            m.channel_of(LineAddr::new(4))
        );
    }
}
