//! DRAM request descriptors and classification.

use emcc_sim::{LineAddr, Time};

/// Caller-assigned request identifier, echoed in completions.
pub type RequestId = u64;

/// What kind of traffic a DRAM access belongs to.
///
/// These classes drive the Figure 15 bandwidth breakdown (data / counters /
/// level-0 overflow / higher-level overflow) and the Figure 22 queuing-
/// delay report (counter vs data, read vs write).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RequestClass {
    /// Ordinary program data (includes the co-located MAC/ECC — no extra
    /// traffic, per §V).
    Data,
    /// Counter blocks (integrity-tree level 0).
    Counter,
    /// Integrity-tree nodes above level 0.
    TreeNode,
    /// Re-encryption traffic caused by a level-0 counter overflow.
    OverflowL0,
    /// Re-encryption traffic caused by a level-1-or-higher overflow.
    OverflowHigher,
}

impl RequestClass {
    /// All classes, in report order.
    pub const fn all() -> [RequestClass; 5] {
        [
            RequestClass::Data,
            RequestClass::Counter,
            RequestClass::TreeNode,
            RequestClass::OverflowL0,
            RequestClass::OverflowHigher,
        ]
    }

    /// Index into per-class stat arrays.
    pub const fn index(self) -> usize {
        match self {
            RequestClass::Data => 0,
            RequestClass::Counter => 1,
            RequestClass::TreeNode => 2,
            RequestClass::OverflowL0 => 3,
            RequestClass::OverflowHigher => 4,
        }
    }
}

impl std::fmt::Display for RequestClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RequestClass::Data => "data",
            RequestClass::Counter => "counter",
            RequestClass::TreeNode => "tree-node",
            RequestClass::OverflowL0 => "overflow-L0",
            RequestClass::OverflowHigher => "overflow-L1+",
        };
        f.write_str(s)
    }
}

/// One 64 B DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Caller token echoed in the completion.
    pub id: RequestId,
    /// Line address (pre-mapping).
    pub line: LineAddr,
    /// Write-back (true) or read (false).
    pub is_write: bool,
    /// Traffic class for statistics.
    pub class: RequestClass,
}

impl DramRequest {
    /// A read request.
    pub fn read(id: RequestId, line: LineAddr, class: RequestClass) -> Self {
        DramRequest {
            id,
            line,
            is_write: false,
            class,
        }
    }

    /// A write-back request.
    pub fn write(id: RequestId, line: LineAddr, class: RequestClass) -> Self {
        DramRequest {
            id,
            line,
            is_write: true,
            class,
        }
    }
}

/// Internal queued form: request plus its arrival time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pending {
    pub req: DramRequest,
    pub enqueued_at: Time,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_unique_and_dense() {
        let mut seen = [false; 5];
        for c in RequestClass::all() {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn constructors() {
        let r = DramRequest::read(7, LineAddr::new(1), RequestClass::Counter);
        assert!(!r.is_write);
        let w = DramRequest::write(8, LineAddr::new(2), RequestClass::Data);
        assert!(w.is_write);
    }

    #[test]
    fn display_names() {
        assert_eq!(RequestClass::OverflowL0.to_string(), "overflow-L0");
    }
}
