//! Synthetic power-law graph in CSR form.
//!
//! Stands in for the LDBC Graphalytics Facebook-like dataset the paper
//! feeds to graphBIG. Degrees follow a Zipf distribution, so a small set
//! of hub vertices absorbs a large share of edge endpoints — the
//! structural property that makes graph traversals irregular yet gives
//! counter blocks some reuse.

use emcc_sim::rng::ZipfTable;
use emcc_sim::Rng64;

/// A directed graph in compressed-sparse-row form.
///
/// # Examples
///
/// ```
/// use emcc_workloads::Graph;
///
/// let g = Graph::power_law(1000, 8, 0.8, 42);
/// assert_eq!(g.num_vertices(), 1000);
/// assert!(g.num_edges() > 0);
/// let d0 = g.neighbors(0).len();
/// assert_eq!(d0, g.degree(0));
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

impl Graph {
    /// Builds a power-law graph: `n` vertices, `avg_degree` mean
    /// out-degree, Zipf exponent `theta` over destination popularity.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `avg_degree` is zero.
    pub fn power_law(n: usize, avg_degree: usize, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one vertex");
        assert!(avg_degree > 0, "need a positive degree");
        let mut rng = Rng64::new(seed);
        // Destination popularity is Zipf over a shuffled identity so hubs
        // are scattered across the vertex id space (and thus memory).
        let zipf = ZipfTable::new(n, theta);
        let mut popularity: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut popularity);

        // Out-degrees are also skewed: hubs have more edges.
        let mut degrees = vec![0u32; n];
        let total_edges = n * avg_degree;
        for _ in 0..total_edges {
            degrees[rng.zipf(&zipf)] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for d in &degrees {
            let last = *offsets.last().expect("non-empty");
            offsets.push(last + d);
        }
        let mut edges = Vec::with_capacity(total_edges);
        for &degree in degrees.iter() {
            for _ in 0..degree {
                edges.push(popularity[rng.zipf(&zipf)]);
            }
        }
        Graph { offsets, edges }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let s = self.offsets[v] as usize;
        let e = self.offsets[v + 1] as usize;
        &self.edges[s..e]
    }

    /// Global edge-array slot of neighbor `i` of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `i` are out of range.
    pub fn edge_slot(&self, v: usize, i: usize) -> usize {
        assert!(i < self.degree(v), "neighbor index out of range");
        self.offsets[v] as usize + i
    }

    /// Byte offset of the CSR offsets array entry for `v` within the
    /// graph's virtual layout (see [`layout`](#virtual-layout) below).
    ///
    /// # Virtual layout
    ///
    /// The graph occupies one contiguous virtual region:
    /// `[offsets array | edges array | per-vertex property array]`, with
    /// 4 B offsets, 4 B edge ids and 8 B properties — the layout graphBIG's
    /// CSR kernels stream through.
    pub fn offsets_vaddr(&self, v: usize) -> u64 {
        (v as u64) * 4
    }

    /// Byte offset of edge slot `e` in the virtual layout.
    pub fn edge_vaddr(&self, e: usize) -> u64 {
        self.edges_base() + (e as u64) * 4
    }

    /// Byte offset of vertex `v`'s property in the virtual layout.
    pub fn property_vaddr(&self, v: usize) -> u64 {
        self.properties_base() + (v as u64) * 8
    }

    /// First byte of the edges array.
    pub fn edges_base(&self) -> u64 {
        (self.offsets.len() as u64) * 4
    }

    /// First byte of the property array.
    pub fn properties_base(&self) -> u64 {
        self.edges_base() + (self.edges.len() as u64) * 4
    }

    /// Total bytes of the virtual layout.
    pub fn footprint_bytes(&self) -> u64 {
        self.properties_base() + (self.num_vertices() as u64) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_parameters() {
        let g = Graph::power_law(500, 10, 0.8, 1);
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(g.num_edges(), 5000);
        let sum: usize = (0..500).map(|v| g.degree(v)).sum();
        assert_eq!(sum, 5000);
    }

    #[test]
    fn degrees_are_skewed() {
        let g = Graph::power_law(1000, 10, 0.9, 7);
        let mut degs: Vec<usize> = (0..1000).map(|v| g.degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = degs[..10].iter().sum();
        // Top-1% of vertices should hold far more than 1% of edges.
        assert!(
            top10 * 100 > g.num_edges() * 5,
            "top-10 vertices hold only {top10} of {} edges",
            g.num_edges()
        );
    }

    #[test]
    fn edges_in_range() {
        let g = Graph::power_law(300, 6, 0.8, 3);
        for v in 0..300 {
            for &dst in g.neighbors(v) {
                assert!((dst as usize) < 300);
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Graph::power_law(200, 5, 0.8, 9);
        let b = Graph::power_law(200, 5, 0.8, 9);
        assert_eq!(a.edges, b.edges);
        let c = Graph::power_law(200, 5, 0.8, 10);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn layout_regions_disjoint_and_ordered() {
        let g = Graph::power_law(100, 4, 0.8, 1);
        assert!(g.offsets_vaddr(99) < g.edges_base());
        assert!(g.edge_vaddr(g.num_edges() - 1) < g.properties_base());
        assert!(g.property_vaddr(99) < g.footprint_bytes());
    }

    #[test]
    fn footprint_scales_with_size() {
        let small = Graph::power_law(100, 4, 0.8, 1);
        let big = Graph::power_law(1000, 4, 0.8, 1);
        assert!(big.footprint_bytes() > small.footprint_bytes());
    }
}
