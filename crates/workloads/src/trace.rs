//! Memory-access traces and trace sources.

use emcc_sim::LineAddr;

/// One memory access as the core model consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Physical line touched (post huge-page translation).
    pub line: LineAddr,
    /// Store (true) or load (false).
    pub is_write: bool,
    /// Non-memory instructions executed before this access.
    pub gap: u32,
    /// True when the access's address depends on the previous load's data
    /// (pointer chasing) — it cannot issue until that load completes.
    pub depends_on_prev: bool,
}

impl MemOp {
    /// A load.
    pub fn load(line: LineAddr, gap: u32) -> Self {
        MemOp {
            line,
            is_write: false,
            gap,
            depends_on_prev: false,
        }
    }

    /// A load whose address depends on the previous load.
    pub fn dependent_load(line: LineAddr, gap: u32) -> Self {
        MemOp {
            line,
            is_write: false,
            gap,
            depends_on_prev: true,
        }
    }

    /// A store.
    pub fn store(line: LineAddr, gap: u32) -> Self {
        MemOp {
            line,
            is_write: true,
            gap,
            depends_on_prev: false,
        }
    }
}

/// An endless producer of memory operations for one hardware thread.
///
/// Sources never run dry: finite recorded traces replay cyclically, which
/// matches the paper's methodology of simulating a fixed time window from
/// a representative region.
///
/// Sources are `Send` so whole simulations can run on worker threads (the
/// bench harness executes independent runs in parallel; each simulation
/// itself stays single-threaded).
pub trait TraceSource: Send {
    /// The next memory operation.
    fn next_op(&mut self) -> MemOp;

    /// Human-readable benchmark name.
    fn name(&self) -> &str;
}

/// A recorded, finite trace.
///
/// # Examples
///
/// ```
/// use emcc_workloads::{MemOp, Trace};
/// use emcc_sim::LineAddr;
///
/// let t = Trace::new("demo", vec![MemOp::load(LineAddr::new(1), 10)]);
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    name: String,
    ops: Vec<MemOp>,
}

impl Trace {
    /// Wraps recorded operations.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty (a cursor could never produce anything).
    pub fn new(name: impl Into<String>, ops: Vec<MemOp>) -> Self {
        assert!(!ops.is_empty(), "trace must contain at least one op");
        Trace {
            name: name.into(),
            ops,
        }
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Always false: construction requires at least one op.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }

    /// The trace's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A cyclic cursor starting at `offset` (wrapped into range).
    pub fn cursor(self, offset: usize) -> TraceCursor {
        let len = self.ops.len();
        TraceCursor {
            trace: self,
            pos: offset % len,
        }
    }

    /// Fraction of writes in the trace.
    pub fn write_ratio(&self) -> f64 {
        let w = self.ops.iter().filter(|o| o.is_write).count();
        w as f64 / self.ops.len() as f64
    }

    /// Mean instruction gap between accesses.
    pub fn mean_gap(&self) -> f64 {
        let g: u64 = self.ops.iter().map(|o| u64::from(o.gap)).sum();
        g as f64 / self.ops.len() as f64
    }
}

/// Cyclic replay of a [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceCursor {
    trace: Trace,
    pos: usize,
}

impl TraceSource for TraceCursor {
    fn next_op(&mut self) -> MemOp {
        let op = self.trace.ops[self.pos];
        self.pos = (self.pos + 1) % self.trace.ops.len();
        op
    }

    fn name(&self) -> &str {
        self.trace.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops3() -> Vec<MemOp> {
        vec![
            MemOp::load(LineAddr::new(1), 5),
            MemOp::store(LineAddr::new(2), 0),
            MemOp::dependent_load(LineAddr::new(3), 2),
        ]
    }

    #[test]
    fn cursor_cycles() {
        let mut c = Trace::new("t", ops3()).cursor(0);
        let first: Vec<u64> = (0..6).map(|_| c.next_op().line.get()).collect();
        assert_eq!(first, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn cursor_offset_wraps() {
        let mut c = Trace::new("t", ops3()).cursor(5);
        assert_eq!(c.next_op().line.get(), 3);
    }

    #[test]
    fn ratios() {
        let t = Trace::new("t", ops3());
        assert!((t.write_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert!((t.mean_gap() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn op_constructors() {
        let l = MemOp::dependent_load(LineAddr::new(9), 1);
        assert!(l.depends_on_prev && !l.is_write);
        let s = MemOp::store(LineAddr::new(9), 1);
        assert!(s.is_write && !s.depends_on_prev);
    }

    #[test]
    #[should_panic]
    fn empty_trace_rejected() {
        let _ = Trace::new("empty", vec![]);
    }
}
