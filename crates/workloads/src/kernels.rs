//! The eight graphBIG kernels as trace recorders.
//!
//! Each kernel runs a faithful (if simplified) version of its algorithm
//! over a [`crate::Graph`] and records the memory accesses the CSR
//! data structures incur, through the huge-page mapper. Vertices are
//! stride-partitioned across threads, as graphBIG's OpenMP kernels do.

use emcc_sim::Rng64;

use crate::graph::Graph;
use crate::paging::HugePager;
use crate::trace::{MemOp, Trace};

/// Records translated memory operations until a target count is reached.
#[derive(Debug)]
pub struct Recorder {
    pager: HugePager,
    ops: Vec<MemOp>,
    target: usize,
}

impl Recorder {
    /// Creates a recorder with its own huge-page mapping.
    pub fn new(seed: u64, target: usize) -> Self {
        Recorder {
            pager: HugePager::new(seed, 1 << 31), // 128 GB physical space
            ops: Vec::with_capacity(target),
            target,
        }
    }

    /// True once the target op count is reached.
    pub fn full(&self) -> bool {
        self.ops.len() >= self.target
    }

    /// Records a load of the line containing byte `vaddr`.
    pub fn read(&mut self, vaddr: u64, gap: u32) {
        let line = self.pager.translate(emcc_sim::PhysAddr::new(vaddr).line());
        self.ops.push(MemOp::load(line, gap));
    }

    /// Records a load whose address depended on the previous load.
    pub fn read_dep(&mut self, vaddr: u64, gap: u32) {
        let line = self.pager.translate(emcc_sim::PhysAddr::new(vaddr).line());
        self.ops.push(MemOp::dependent_load(line, gap));
    }

    /// Records a store.
    pub fn write(&mut self, vaddr: u64, gap: u32) {
        let line = self.pager.translate(emcc_sim::PhysAddr::new(vaddr).line());
        self.ops.push(MemOp::store(line, gap));
    }

    /// Finishes recording, truncating any overshoot past the target.
    ///
    /// # Panics
    ///
    /// Panics if nothing was recorded.
    pub fn into_trace(self, name: &str) -> Trace {
        let mut ops = self.ops;
        ops.truncate(self.target);
        Trace::new(name, ops)
    }
}

/// Which graph kernel to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKernel {
    /// PageRank: stream vertices, gather neighbor ranks, scatter own rank.
    PageRank,
    /// Greedy graph coloring: gather neighbor colors, pick the smallest.
    GraphColoring,
    /// Connected components by label propagation.
    ConnectedComp,
    /// Degree centrality: stream edges, increment destination counters.
    DegreeCentrality,
    /// Depth-first traversal with an explicit stack.
    Dfs,
    /// Breadth-first traversal with a frontier queue.
    Bfs,
    /// Triangle counting by neighbor-list intersection.
    TriangleCount,
    /// Single-source shortest path (Bellman-Ford-style relaxations).
    ShortestPath,
}

impl GraphKernel {
    /// graphBIG-style kernel name used in the paper's figures.
    pub fn paper_name(self) -> &'static str {
        match self {
            GraphKernel::PageRank => "pageRank",
            GraphKernel::GraphColoring => "graphColoring",
            GraphKernel::ConnectedComp => "connectedComp",
            GraphKernel::DegreeCentrality => "degreeCentr",
            GraphKernel::Dfs => "DFS",
            GraphKernel::Bfs => "BFS",
            GraphKernel::TriangleCount => "triangleCount",
            GraphKernel::ShortestPath => "shortestPath",
        }
    }

    /// Records `target` operations of this kernel for one thread.
    ///
    /// `thread` / `threads` select the stride partition; each thread uses
    /// its own pager seed so multi-programmed copies do not alias.
    pub fn record(
        self,
        graph: &Graph,
        seed: u64,
        target: usize,
        thread: usize,
        threads: usize,
    ) -> Trace {
        let mut rec = Recorder::new(seed ^ (thread as u64) << 32, target);
        let mut rng = Rng64::new(seed.wrapping_add(thread as u64 * 0x9E37));
        match self {
            GraphKernel::PageRank => pagerank(graph, &mut rec, thread, threads),
            GraphKernel::GraphColoring => coloring(graph, &mut rec, thread, threads),
            GraphKernel::ConnectedComp => connected(graph, &mut rec, thread, threads),
            GraphKernel::DegreeCentrality => degree(graph, &mut rec, thread, threads),
            GraphKernel::Dfs => dfs(graph, &mut rec, &mut rng),
            GraphKernel::Bfs => bfs(graph, &mut rec, &mut rng),
            GraphKernel::TriangleCount => triangles(graph, &mut rec, thread, threads),
            GraphKernel::ShortestPath => sssp(graph, &mut rec, &mut rng),
        }
        rec.into_trace(self.paper_name())
    }
}

fn pagerank(g: &Graph, rec: &mut Recorder, thread: usize, threads: usize) {
    while !rec.full() {
        for v in (thread..g.num_vertices()).step_by(threads) {
            rec.read(g.offsets_vaddr(v), 4);
            for i in 0..g.degree(v) {
                rec.read(g.edge_vaddr(edge_index(g, v, i)), 2);
                let dst = g.neighbors(v)[i] as usize;
                rec.read_dep(g.property_vaddr(dst), 3);
                if rec.full() {
                    return;
                }
            }
            rec.write(g.property_vaddr(v), 6);
            if rec.full() {
                return;
            }
        }
    }
}

fn coloring(g: &Graph, rec: &mut Recorder, thread: usize, threads: usize) {
    while !rec.full() {
        for v in (thread..g.num_vertices()).step_by(threads) {
            rec.read(g.offsets_vaddr(v), 3);
            for (i, &dst) in g.neighbors(v).iter().enumerate() {
                rec.read(g.edge_vaddr(edge_index(g, v, i)), 2);
                rec.read_dep(g.property_vaddr(dst as usize), 4);
                if rec.full() {
                    return;
                }
            }
            rec.write(g.property_vaddr(v), 8);
            if rec.full() {
                return;
            }
        }
    }
}

fn connected(g: &Graph, rec: &mut Recorder, thread: usize, threads: usize) {
    while !rec.full() {
        for v in (thread..g.num_vertices()).step_by(threads) {
            rec.read(g.offsets_vaddr(v), 3);
            rec.read(g.property_vaddr(v), 2);
            for (i, &dst) in g.neighbors(v).iter().enumerate() {
                rec.read(g.edge_vaddr(edge_index(g, v, i)), 2);
                // Label propagation: read the neighbor label, maybe write
                // ours back.
                rec.read_dep(g.property_vaddr(dst as usize), 2);
                rec.write(g.property_vaddr(v), 4);
                if rec.full() {
                    return;
                }
            }
        }
    }
}

fn degree(g: &Graph, rec: &mut Recorder, thread: usize, threads: usize) {
    while !rec.full() {
        for v in (thread..g.num_vertices()).step_by(threads) {
            rec.read(g.offsets_vaddr(v), 2);
            for (i, &dst) in g.neighbors(v).iter().enumerate() {
                rec.read(g.edge_vaddr(edge_index(g, v, i)), 1);
                // Increment the destination's in-degree: RMW.
                rec.read_dep(g.property_vaddr(dst as usize), 1);
                rec.write(g.property_vaddr(dst as usize), 1);
                if rec.full() {
                    return;
                }
            }
        }
    }
}

fn dfs(g: &Graph, rec: &mut Recorder, rng: &mut Rng64) {
    let n = g.num_vertices();
    let mut stack: Vec<usize> = Vec::new();
    let mut visited = vec![false; n];
    let mut visited_count = 0;
    while !rec.full() {
        if stack.is_empty() {
            if visited_count >= n {
                visited.iter_mut().for_each(|v| *v = false);
                visited_count = 0;
            }
            stack.push(rng.index(n));
        }
        let v = stack.pop().expect("stack non-empty");
        // Visited check: dependent on the popped vertex id.
        rec.read_dep(g.property_vaddr(v), 3);
        if visited[v] {
            continue;
        }
        visited[v] = true;
        visited_count += 1;
        rec.write(g.property_vaddr(v), 1);
        rec.read_dep(g.offsets_vaddr(v), 2);
        for (i, &dst) in g.neighbors(v).iter().enumerate() {
            rec.read(g.edge_vaddr(edge_index(g, v, i)), 1);
            if !visited[dst as usize] {
                stack.push(dst as usize);
            }
            if rec.full() {
                return;
            }
        }
    }
}

fn bfs(g: &Graph, rec: &mut Recorder, rng: &mut Rng64) {
    use std::collections::VecDeque;
    let n = g.num_vertices();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut visited = vec![false; n];
    let mut visited_count = 0;
    while !rec.full() {
        if queue.is_empty() {
            if visited_count >= n {
                visited.iter_mut().for_each(|v| *v = false);
                visited_count = 0;
            }
            queue.push_back(rng.index(n));
        }
        let v = queue.pop_front().expect("queue non-empty");
        rec.read_dep(g.property_vaddr(v), 3);
        if visited[v] {
            continue;
        }
        visited[v] = true;
        visited_count += 1;
        rec.write(g.property_vaddr(v), 1);
        rec.read_dep(g.offsets_vaddr(v), 2);
        for (i, &dst) in g.neighbors(v).iter().enumerate() {
            rec.read(g.edge_vaddr(edge_index(g, v, i)), 1);
            if !visited[dst as usize] {
                queue.push_back(dst as usize);
            }
            if rec.full() {
                return;
            }
        }
    }
}

fn triangles(g: &Graph, rec: &mut Recorder, thread: usize, threads: usize) {
    while !rec.full() {
        for v in (thread..g.num_vertices()).step_by(threads) {
            rec.read(g.offsets_vaddr(v), 2);
            for (i, &u) in g.neighbors(v).iter().enumerate() {
                rec.read(g.edge_vaddr(edge_index(g, v, i)), 1);
                // Intersect: walk u's neighbor list (dependent on u).
                rec.read_dep(g.offsets_vaddr(u as usize), 2);
                let du = g.degree(u as usize).min(8);
                for j in 0..du {
                    rec.read(g.edge_vaddr(edge_index(g, u as usize, j)), 1);
                    if rec.full() {
                        return;
                    }
                }
                if rec.full() {
                    return;
                }
            }
        }
    }
}

fn sssp(g: &Graph, rec: &mut Recorder, rng: &mut Rng64) {
    use std::collections::VecDeque;
    let n = g.num_vertices();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut dist = vec![u32::MAX; n];
    while !rec.full() {
        if queue.is_empty() {
            let s = rng.index(n);
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[s] = 0;
            queue.push_back(s);
        }
        let v = queue.pop_front().expect("queue non-empty");
        rec.read_dep(g.property_vaddr(v), 2); // dist[v]
        rec.read_dep(g.offsets_vaddr(v), 2);
        for (i, &dst) in g.neighbors(v).iter().enumerate() {
            rec.read(g.edge_vaddr(edge_index(g, v, i)), 1);
            rec.read_dep(g.property_vaddr(dst as usize), 2); // dist[dst]
            let nd = dist[v].saturating_add(1);
            if nd < dist[dst as usize] {
                dist[dst as usize] = nd;
                rec.write(g.property_vaddr(dst as usize), 2);
                queue.push_back(dst as usize);
            }
            if rec.full() {
                return;
            }
        }
    }
}

/// Global edge-array index of neighbor `i` of vertex `v`.
fn edge_index(g: &Graph, v: usize, i: usize) -> usize {
    g.edge_slot(v, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> Graph {
        Graph::power_law(2_000, 8, 0.8, 11)
    }

    #[test]
    fn all_kernels_record_target_ops() {
        let g = small_graph();
        for k in [
            GraphKernel::PageRank,
            GraphKernel::GraphColoring,
            GraphKernel::ConnectedComp,
            GraphKernel::DegreeCentrality,
            GraphKernel::Dfs,
            GraphKernel::Bfs,
            GraphKernel::TriangleCount,
            GraphKernel::ShortestPath,
        ] {
            let t = k.record(&g, 5, 5_000, 0, 4);
            assert_eq!(t.len(), 5_000, "{k:?} recorded wrong count");
        }
    }

    #[test]
    fn kernels_have_distinct_write_ratios() {
        let g = small_graph();
        let tri = GraphKernel::TriangleCount.record(&g, 5, 10_000, 0, 4);
        let deg = GraphKernel::DegreeCentrality.record(&g, 5, 10_000, 0, 4);
        // Triangle counting is read-dominated; degree centrality does RMW.
        assert!(tri.write_ratio() < 0.05);
        assert!(deg.write_ratio() > 0.2);
    }

    #[test]
    fn traversals_are_dependence_heavy() {
        let g = small_graph();
        let bfs = GraphKernel::Bfs.record(&g, 5, 10_000, 0, 1);
        let deps = bfs.ops().iter().filter(|o| o.depends_on_prev).count();
        assert!(
            deps * 5 > bfs.len(),
            "BFS should have >20% dependent loads, got {deps}"
        );
    }

    #[test]
    fn threads_partition_vertices() {
        let g = small_graph();
        let t0 = GraphKernel::PageRank.record(&g, 5, 2_000, 0, 4);
        let t1 = GraphKernel::PageRank.record(&g, 5, 2_000, 1, 4);
        // Different partitions + different pager seeds ⇒ different lines.
        let l0: std::collections::HashSet<u64> = t0.ops().iter().map(|o| o.line.get()).collect();
        let l1: std::collections::HashSet<u64> = t1.ops().iter().map(|o| o.line.get()).collect();
        let shared = l0.intersection(&l1).count();
        assert!(shared * 10 < l0.len(), "partitions overlap too much");
    }

    #[test]
    fn deterministic_recording() {
        let g = small_graph();
        let a = GraphKernel::Dfs.record(&g, 5, 3_000, 0, 4);
        let b = GraphKernel::Dfs.record(&g, 5, 3_000, 0, 4);
        assert_eq!(a.ops(), b.ops());
    }
}
