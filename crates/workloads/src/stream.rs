//! Regular (cache-friendly) benchmark analogs for SPEC/PARSEC.
//!
//! The paper's Figure 24 checks that EMCC's speculative counter accesses
//! stay harmless for fifteen *regular* programs. These workloads share a
//! template: mostly-streaming sweeps over a few arrays plus a compute-heavy
//! phase with a small resident working set, parameterized per benchmark.

use emcc_sim::Rng64;

use crate::paging::HugePager;
use crate::trace::{MemOp, Trace};

/// Parameters for the regular-workload template.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamProfile {
    /// Benchmark name (paper's label).
    pub name: &'static str,
    /// Total touched bytes across the streamed arrays.
    pub footprint_bytes: u64,
    /// Number of parallel streams (arrays swept together).
    pub streams: u32,
    /// Fraction of accesses that are scattered (cold, random) rather than
    /// streaming.
    pub scatter_fraction: f64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Mean instruction gap between accesses (memory intensity knob).
    pub mean_gap: u32,
    /// Fraction of accesses that hit a small hot working set (fits in L2).
    pub hot_fraction: f64,
}

impl StreamProfile {
    /// Records `target` ops of this profile.
    pub fn record(&self, seed: u64, target: usize) -> Trace {
        let mut pager = HugePager::new(seed, 1 << 31);
        let mut rng = Rng64::new(seed ^ 0x57AE);
        let lines = (self.footprint_bytes / 64).max(64);
        let hot_lines = 4096; // 256 KB hot set — L2 resident
        let stride_cursor: &mut Vec<u64> = &mut (0..self.streams as u64)
            .map(|s| s * (lines / u64::from(self.streams).max(1)))
            .collect();
        let mut ops = Vec::with_capacity(target);
        let mut s = 0usize;
        while ops.len() < target {
            let gap = self.gap(&mut rng);
            let u = rng.unit_f64();
            let (line, dep) = if u < self.hot_fraction {
                (rng.below(hot_lines), false)
            } else if u < self.hot_fraction + self.scatter_fraction {
                (rng.below(lines), true)
            } else {
                // Next element of the round-robin stream.
                let c = &mut stride_cursor[s];
                *c = (*c + 1) % lines;
                let line = *c;
                s = (s + 1) % self.streams as usize;
                (line, false)
            };
            let pa = pager.translate(emcc_sim::LineAddr::new(line));
            let op = if rng.chance(self.write_fraction) {
                MemOp::store(pa, gap)
            } else if dep {
                MemOp::dependent_load(pa, gap)
            } else {
                MemOp::load(pa, gap)
            };
            ops.push(op);
        }
        Trace::new(self.name, ops)
    }

    fn gap(&self, rng: &mut Rng64) -> u32 {
        // Jitter the gap ±50% around the mean.
        let lo = u64::from(self.mean_gap) / 2;
        let hi = u64::from(self.mean_gap) * 3 / 2;
        rng.range_inclusive(lo.max(1), hi.max(2)) as u32
    }
}

const MB: u64 = 1024 * 1024;

/// The fifteen regular SPEC/PARSEC profiles of Figure 24.
pub fn regular_profiles() -> Vec<StreamProfile> {
    // Footprints/intensities follow each program's published character:
    // compute-bound ones (blackscholes, exchange2, leela, deepsjeng) have
    // tiny effective footprints and long gaps; streaming ones (bwaves,
    // streamcluster, cactuBSSN, facesim) sweep big arrays.
    vec![
        profile("blackscholes", 16 * MB, 2, 0.01, 0.10, 120, 0.70),
        profile("bodytrack", 64 * MB, 4, 0.05, 0.15, 80, 0.55),
        profile("ferret", 128 * MB, 4, 0.10, 0.10, 60, 0.45),
        profile("freqmine", 192 * MB, 2, 0.12, 0.15, 70, 0.40),
        profile("streamcluster", 256 * MB, 2, 0.03, 0.05, 25, 0.15),
        profile("x264", 96 * MB, 6, 0.04, 0.25, 60, 0.50),
        profile("facesim", 256 * MB, 6, 0.05, 0.30, 40, 0.25),
        profile("fluidanimate", 192 * MB, 4, 0.06, 0.30, 50, 0.35),
        profile("bwaves_s", 512 * MB, 8, 0.01, 0.25, 30, 0.10),
        profile("exchange2_s", 8 * MB, 1, 0.01, 0.10, 200, 0.85),
        profile("perlbench_s", 48 * MB, 2, 0.10, 0.20, 90, 0.60),
        profile("cactuBSSN_s", 384 * MB, 8, 0.02, 0.30, 35, 0.15),
        profile("deepsjeng_s", 24 * MB, 1, 0.08, 0.15, 110, 0.70),
        profile("leela_s", 16 * MB, 1, 0.05, 0.10, 140, 0.75),
        profile("x264_s", 96 * MB, 6, 0.04, 0.25, 60, 0.50),
    ]
}

fn profile(
    name: &'static str,
    footprint_bytes: u64,
    streams: u32,
    scatter_fraction: f64,
    write_fraction: f64,
    mean_gap: u32,
    hot_fraction: f64,
) -> StreamProfile {
    StreamProfile {
        name,
        footprint_bytes,
        streams,
        scatter_fraction,
        write_fraction,
        mean_gap,
        hot_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_profiles_with_unique_names_exist() {
        let ps = regular_profiles();
        assert_eq!(ps.len(), 15);
        // x264 appears as both PARSEC x264 and SPEC x264_s — distinct labels.
        let names: std::collections::HashSet<&str> = ps.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn recording_hits_target() {
        let p = &regular_profiles()[0];
        let t = p.record(3, 10_000);
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.name(), "blackscholes");
    }

    #[test]
    fn compute_bound_profiles_have_long_gaps() {
        let ps = regular_profiles();
        let black = ps.iter().find(|p| p.name == "blackscholes").unwrap();
        let stream = ps.iter().find(|p| p.name == "streamcluster").unwrap();
        let tb = black.record(1, 20_000);
        let ts = stream.record(1, 20_000);
        assert!(tb.mean_gap() > 2.0 * ts.mean_gap());
    }

    #[test]
    fn hot_fraction_concentrates_lines() {
        let hot = profile("hot", 256 * MB, 2, 0.0, 0.0, 10, 0.9).record(1, 20_000);
        let cold = profile("cold", 256 * MB, 2, 0.0, 0.0, 10, 0.0).record(1, 20_000);
        let distinct = |t: &Trace| {
            t.ops()
                .iter()
                .map(|o| o.line.get())
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        assert!(distinct(&hot) * 3 < distinct(&cold));
    }

    #[test]
    fn write_fraction_respected() {
        let t = profile("w", 64 * MB, 2, 0.0, 0.3, 10, 0.0).record(5, 50_000);
        assert!((t.write_ratio() - 0.3).abs() < 0.02);
    }
}
