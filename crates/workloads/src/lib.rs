//! Synthetic workload generators standing in for the paper's benchmarks.
//!
//! The paper evaluates eight graphBIG kernels on an LDBC Facebook-like
//! graph, three irregular SPEC/PARSEC programs (canneal, omnetpp, mcf) and
//! fifteen regular SPEC/PARSEC programs. None of those binaries or traces
//! are available here, so each benchmark is a *generator* that reproduces
//! the properties secure-memory performance depends on:
//!
//! * **footprint** (drives counter miss rates in MC/LLC — Figs 6/7),
//! * **irregularity** (pointer-chase vs streaming mix, Zipf-skewed graph
//!   structure — drives LLC miss rate and MLP),
//! * **read/write ratio** (drives counter updates, overflows and write
//!   drain — Figs 15/22/23),
//! * **memory intensity** (instructions between accesses — drives
//!   bandwidth utilization, Fig 15).
//!
//! The graph kernels genuinely traverse a synthetic power-law graph in CSR
//! form and record the resulting accesses, so page-level counter locality
//! is structural, not statistically faked. Virtual addresses go through a
//! 2 MB huge-page mapping (§V: all experiments run under 2 MB pages).
//!
//! # Examples
//!
//! ```
//! use emcc_workloads::{Benchmark, TraceSource};
//! use emcc_workloads::kernels::GraphKernel;
//! use emcc_workloads::presets::WorkloadScale;
//!
//! let bfs = Benchmark::Graph(GraphKernel::Bfs);
//! let mut sources = bfs.build_scaled(42, 4, WorkloadScale::Test);
//! assert_eq!(sources.len(), 4); // one stream per core
//! let op = sources[0].next_op();
//! assert!(op.gap < 1_000); // a plausible op is always produced
//! ```

pub mod graph;
pub mod kernels;
pub mod paging;
pub mod phases;
pub mod pointer;
pub mod presets;
pub mod stream;
pub mod trace;

pub use graph::Graph;
pub use paging::HugePager;
pub use presets::Benchmark;
pub use trace::{MemOp, Trace, TraceCursor, TraceSource};
