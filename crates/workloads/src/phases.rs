//! Phase-structured synthetic traces for the fuzzer.
//!
//! Real programs alternate between access regimes — streaming scans,
//! pointer chasing, skewed graph traversal, page-granular hopping — and
//! the secure-memory schemes respond very differently to each (counter
//! locality, MSHR pressure, overflow drain). The fuzzer therefore builds
//! its traces from short *phases*, each a caricature of one regime,
//! concatenated in a seed-determined order. Everything here is a pure
//! function of `(seed, footprint, count)` so a fuzz case replays
//! bit-for-bit from its seed.

use emcc_sim::rng::ZipfTable;
use emcc_sim::{LineAddr, Rng64};

use crate::trace::MemOp;

/// One access regime within a generated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Strided sequential sweep with occasional stores.
    Stream,
    /// Dependent-load chain over random lines (pointer chasing).
    Pointer,
    /// Zipf-skewed vertex access with neighbour bursts.
    Graph,
    /// Hops between 64-line (4 KB page) regions, touching a few lines in
    /// each — stresses counter-block coverage boundaries.
    Paging,
}

impl PhaseKind {
    /// All phase kinds, in the fixed order the mixer cycles through.
    pub fn all() -> [PhaseKind; 4] {
        [
            PhaseKind::Stream,
            PhaseKind::Pointer,
            PhaseKind::Graph,
            PhaseKind::Paging,
        ]
    }

    /// Short name for labels and corpus files.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Stream => "stream",
            PhaseKind::Pointer => "pointer",
            PhaseKind::Graph => "graph",
            PhaseKind::Paging => "paging",
        }
    }
}

/// Lines per 4 KB page — the paging phase's hop granularity.
const PAGE_LINES: u64 = 64;

/// Generates `count` operations of one phase over lines `0..footprint`.
///
/// # Panics
///
/// Panics if `footprint` is zero.
pub fn phase_ops(kind: PhaseKind, rng: &mut Rng64, footprint: u64, count: usize) -> Vec<MemOp> {
    assert!(footprint > 0, "phase needs a non-empty footprint");
    let mut ops = Vec::with_capacity(count);
    match kind {
        PhaseKind::Stream => {
            let stride = [1, 2, 4][rng.index(3)];
            let write_p = 0.05 + 0.35 * rng.unit_f64();
            let mut line = rng.below(footprint);
            for _ in 0..count {
                let gap = rng.below(8) as u32;
                let addr = LineAddr::new(line);
                ops.push(if rng.chance(write_p) {
                    MemOp::store(addr, gap)
                } else {
                    MemOp::load(addr, gap)
                });
                line = (line + stride) % footprint;
            }
        }
        PhaseKind::Pointer => {
            for _ in 0..count {
                let addr = LineAddr::new(rng.below(footprint));
                let gap = rng.below(4) as u32;
                ops.push(MemOp::dependent_load(addr, gap));
            }
        }
        PhaseKind::Graph => {
            let table = ZipfTable::new(footprint.min(4096) as usize, 0.8);
            let mut i = 0;
            while i < count {
                let vertex = rng.zipf(&table) as u64 % footprint;
                // Vertex read, then a short neighbour burst, then an
                // occasional rank-style writeback of the vertex.
                ops.push(MemOp::load(LineAddr::new(vertex), rng.below(6) as u32));
                i += 1;
                let burst = rng.index(4);
                for _ in 0..burst {
                    if i >= count {
                        break;
                    }
                    let n = (vertex + 1 + rng.below(8)) % footprint;
                    ops.push(MemOp::dependent_load(LineAddr::new(n), 0));
                    i += 1;
                }
                if i < count && rng.chance(0.2) {
                    ops.push(MemOp::store(LineAddr::new(vertex), 0));
                    i += 1;
                }
            }
        }
        PhaseKind::Paging => {
            let pages = footprint.div_ceil(PAGE_LINES);
            let mut i = 0;
            while i < count {
                let page = rng.below(pages);
                let touches = 1 + rng.index(6);
                for _ in 0..touches {
                    if i >= count {
                        break;
                    }
                    let line = (page * PAGE_LINES + rng.below(PAGE_LINES)) % footprint;
                    let gap = rng.below(16) as u32;
                    ops.push(if rng.chance(0.25) {
                        MemOp::store(LineAddr::new(line), gap)
                    } else {
                        MemOp::load(LineAddr::new(line), gap)
                    });
                    i += 1;
                }
            }
        }
    }
    ops
}

/// Builds a trace of `total` operations mixing all four phases.
///
/// The seed picks the starting phase and each phase's length (8–64 ops),
/// then cycles deterministically through [`PhaseKind::all`].
///
/// # Panics
///
/// Panics if `footprint` or `total` is zero.
pub fn mixed_ops(seed: u64, footprint: u64, total: usize) -> Vec<MemOp> {
    assert!(total > 0, "trace must contain at least one op");
    let mut rng = Rng64::new(seed ^ 0xF0A5_E5E5_D00D_FEED);
    let kinds = PhaseKind::all();
    let mut next = rng.index(kinds.len());
    let mut ops = Vec::with_capacity(total);
    while ops.len() < total {
        let len = (8 + rng.index(57)).min(total - ops.len());
        ops.extend(phase_ops(kinds[next], &mut rng, footprint, len));
        next = (next + 1) % kinds.len();
    }
    ops.truncate(total);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_phase_stays_in_footprint() {
        let mut rng = Rng64::new(11);
        for kind in PhaseKind::all() {
            for ops in [1usize, 7, 100] {
                let v = phase_ops(kind, &mut rng, 37, ops);
                assert_eq!(v.len(), ops, "{} produced wrong count", kind.name());
                assert!(v.iter().all(|o| o.line.get() < 37));
            }
        }
    }

    #[test]
    fn pointer_phase_is_fully_dependent() {
        let mut rng = Rng64::new(5);
        let v = phase_ops(PhaseKind::Pointer, &mut rng, 100, 50);
        assert!(v.iter().all(|o| o.depends_on_prev && !o.is_write));
    }

    #[test]
    fn mixed_is_deterministic_and_sized() {
        let a = mixed_ops(42, 256, 300);
        let b = mixed_ops(42, 256, 300);
        assert_eq!(a, b);
        assert_eq!(a.len(), 300);
        assert_ne!(a, mixed_ops(43, 256, 300));
    }

    #[test]
    fn mixed_contains_reads_and_writes() {
        let v = mixed_ops(1, 512, 1000);
        assert!(v.iter().any(|o| o.is_write));
        assert!(v.iter().any(|o| !o.is_write));
        assert!(v.iter().any(|o| o.depends_on_prev));
    }

    #[test]
    fn tiny_footprint_works() {
        let v = mixed_ops(9, 1, 64);
        assert!(v.iter().all(|o| o.line.get() == 0));
    }
}
