//! Virtual → physical translation under 2 MB huge pages.
//!
//! All of the paper's experiments run under 2 MB huge pages (§III, §V) so
//! that Morphable counter blocks — which cover two *physically* adjacent
//! 4 KB pages — retain their full 8 KB coverage. The pager allocates a
//! random (but deterministic) 2 MB physical frame per touched virtual
//! page, so physical locality within a page is perfect and locality across
//! pages is destroyed, exactly like a real first-touch allocator.

use std::collections::HashMap;

use emcc_sim::{LineAddr, Rng64};

/// Lines per 2 MB huge page.
const LINES_PER_PAGE: u64 = (2 * 1024 * 1024) / emcc_sim::mem::LINE_BYTES;

/// A demand-allocating 2 MB huge-page mapper.
///
/// # Examples
///
/// ```
/// use emcc_workloads::HugePager;
/// use emcc_sim::LineAddr;
///
/// let mut p = HugePager::new(7, 1 << 31);
/// let a = p.translate(LineAddr::new(0));
/// let b = p.translate(LineAddr::new(1));
/// // Same huge page ⇒ adjacent physical lines.
/// assert_eq!(b.get(), a.get() + 1);
/// ```
#[derive(Debug, Clone)]
pub struct HugePager {
    rng: Rng64,
    frames: u64,
    map: HashMap<u64, u64>,
    used: Vec<bool>,
}

impl HugePager {
    /// Creates a pager over a physical space of `phys_lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if the physical space holds fewer than one huge page.
    pub fn new(seed: u64, phys_lines: u64) -> Self {
        let frames = phys_lines / LINES_PER_PAGE;
        assert!(frames > 0, "physical space smaller than one huge page");
        HugePager {
            rng: Rng64::new(seed ^ 0x9A6E_17B5),
            frames,
            map: HashMap::new(),
            used: vec![false; frames as usize],
        }
    }

    /// Translates a virtual line to its physical line, allocating the
    /// containing huge page on first touch.
    pub fn translate(&mut self, virt: LineAddr) -> LineAddr {
        let vpage = virt.get() / LINES_PER_PAGE;
        let offset = virt.get() % LINES_PER_PAGE;
        let frame = match self.map.get(&vpage) {
            Some(&f) => f,
            None => {
                let f = self.alloc_frame();
                self.map.insert(vpage, f);
                f
            }
        };
        LineAddr::new(frame * LINES_PER_PAGE + offset)
    }

    fn alloc_frame(&mut self) -> u64 {
        // Random first-touch placement; linear-probe on collision.
        let mut f = self.rng.below(self.frames);
        let mut probes = 0;
        while self.used[f as usize] {
            f = (f + 1) % self.frames;
            probes += 1;
            assert!(probes <= self.frames, "physical memory exhausted");
        }
        self.used[f as usize] = true;
        f
    }

    /// Number of huge pages allocated so far.
    pub fn allocated_pages(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_page_contiguity() {
        let mut p = HugePager::new(1, 1 << 31);
        let base = p.translate(LineAddr::new(0)).get();
        for i in 1..LINES_PER_PAGE {
            assert_eq!(p.translate(LineAddr::new(i)).get(), base + i);
        }
    }

    #[test]
    fn translation_is_stable() {
        let mut p = HugePager::new(1, 1 << 31);
        let a = p.translate(LineAddr::new(999_999));
        let b = p.translate(LineAddr::new(999_999));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut p = HugePager::new(1, 1 << 31);
        let mut frames = std::collections::HashSet::new();
        for v in 0..100u64 {
            let pa = p.translate(LineAddr::new(v * LINES_PER_PAGE));
            assert!(frames.insert(pa.get() / LINES_PER_PAGE), "frame reused");
        }
        assert_eq!(p.allocated_pages(), 100);
    }

    #[test]
    fn cross_page_locality_destroyed() {
        // Consecutive virtual pages are (almost always) non-adjacent
        // physically — this is what breaks naive counter prefetching.
        let mut p = HugePager::new(3, 1 << 31);
        let mut adjacent = 0;
        for v in 0..200u64 {
            let a = p.translate(LineAddr::new(v * LINES_PER_PAGE)).get();
            let b = p.translate(LineAddr::new((v + 1) * LINES_PER_PAGE)).get();
            if b == a + LINES_PER_PAGE {
                adjacent += 1;
            }
        }
        assert!(adjacent < 20, "too much accidental physical adjacency");
    }

    #[test]
    #[should_panic]
    fn exhaustion_detected() {
        // 4 frames only.
        let mut p = HugePager::new(1, 4 * LINES_PER_PAGE);
        for v in 0..5u64 {
            p.translate(LineAddr::new(v * LINES_PER_PAGE));
        }
    }
}
