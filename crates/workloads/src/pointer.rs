//! Irregular non-graph benchmarks: canneal, omnetpp, mcf analogs.
//!
//! These three SPEC/PARSEC programs are the paper's non-graph irregular
//! workloads. Their defining traits:
//!
//! * **canneal** — simulated annealing over a huge netlist: pairs of
//!   *random* element accesses (two dependent loads each) followed by an
//!   occasional swap (two stores); the largest effective footprint of the
//!   suite and the highest MC counter-miss rate (the paper's Fig 6 —
//!   which is why it gains the most from EMCC, +12.5%).
//! * **omnetpp** — discrete-event simulation: heap operations on an event
//!   queue (semi-regular) mixed with scattered event-object accesses;
//!   moderate intensity.
//! * **mcf** — network-simplex over linked arc/node lists: long dependent
//!   pointer chains with frequent node updates; the highest memory
//!   intensity of the suite (Fig 15's biggest bandwidth consumer).

use emcc_sim::Rng64;

use crate::paging::HugePager;
use crate::trace::{MemOp, Trace};

fn translate(pager: &mut HugePager, vaddr: u64) -> emcc_sim::LineAddr {
    pager.translate(emcc_sim::PhysAddr::new(vaddr).line())
}

/// Records a canneal-like trace: `target` ops over `footprint_bytes`.
pub fn canneal(seed: u64, target: usize, footprint_bytes: u64) -> Trace {
    let mut pager = HugePager::new(seed, 1 << 31);
    let mut rng = Rng64::new(seed ^ 0xCA77EA1);
    let elements = footprint_bytes / 64;
    let mut ops = Vec::with_capacity(target);
    while ops.len() < target {
        // Pick two random elements: read both (dependent: the element id
        // comes from the netlist structure), evaluate, sometimes swap.
        let a = rng.below(elements) * 64;
        let b = rng.below(elements) * 64;
        ops.push(MemOp::dependent_load(translate(&mut pager, a), 6));
        ops.push(MemOp::dependent_load(translate(&mut pager, b), 4));
        if rng.chance(0.25) {
            ops.push(MemOp::store(translate(&mut pager, a), 2));
            ops.push(MemOp::store(translate(&mut pager, b), 2));
        }
    }
    ops.truncate(target);
    Trace::new("canneal", ops)
}

/// Records an omnetpp-like trace.
pub fn omnetpp(seed: u64, target: usize, footprint_bytes: u64) -> Trace {
    let mut pager = HugePager::new(seed, 1 << 31);
    let mut rng = Rng64::new(seed ^ 0x0414E7);
    let heap_bytes = footprint_bytes / 16; // event queue
    let objects = footprint_bytes / 64;
    let mut ops = Vec::with_capacity(target);
    let mut heap_pos: u64 = 1;
    while ops.len() < target {
        // Heap pop: walk log(n) levels of the binary heap array
        // (semi-regular, prefetchable near the root).
        heap_pos = (heap_pos * 2 + rng.below(2)) % (heap_bytes / 16).max(2);
        let mut h = heap_pos;
        for _ in 0..4 {
            ops.push(MemOp::load(translate(&mut pager, h * 16), 8));
            h /= 2;
        }
        // Event object access: scattered, dependent on the heap entry.
        let obj = rng.below(objects) * 64;
        ops.push(MemOp::dependent_load(translate(&mut pager, obj), 14));
        ops.push(MemOp::store(translate(&mut pager, obj), 10));
        // Schedule a follow-up event: heap push (writes along a path).
        let mut p = heap_pos;
        for _ in 0..2 {
            ops.push(MemOp::store(translate(&mut pager, p * 16), 6));
            p = p * 2 + 1;
        }
    }
    ops.truncate(target);
    Trace::new("omnetpp", ops)
}

/// Records an mcf-like trace.
///
/// The network simplex walks several arc chains concurrently, so while
/// each chain is a dependent pointer chase, the *trace* interleaves a few
/// of them — only hops within the same chain depend on the immediately
/// preceding access. That is what gives real mcf both terrible locality
/// *and* the suite's highest bandwidth demand (Fig 15).
pub fn mcf(seed: u64, target: usize, footprint_bytes: u64) -> Trace {
    const CHAINS: usize = 4;
    let mut pager = HugePager::new(seed, 1 << 31);
    let mut rng = Rng64::new(seed ^ 0x33CF);
    let nodes = footprint_bytes / 128; // node + arc records
    let mut ops = Vec::with_capacity(target);
    let mut cur = [0u64; CHAINS];
    for (i, c) in cur.iter_mut().enumerate() {
        *c = rng.below(nodes).wrapping_add(i as u64 * 7919) % nodes;
    }
    let mut which = 0usize;
    while ops.len() < target {
        let c = &mut cur[which];
        // Two fields of the node record; the second depends on the first,
        // the first depends on the *previous hop of this chain*, which the
        // round-robin interleaving usually hides.
        let dep_first = which == 0; // cross-chain switches break the dependence
        let a = translate(&mut pager, *c * 128);
        ops.push(if dep_first {
            MemOp::dependent_load(a, 3)
        } else {
            MemOp::load(a, 2)
        });
        ops.push(MemOp::dependent_load(
            translate(&mut pager, *c * 128 + 64),
            2,
        ));
        *c = (c.wrapping_mul(0x5DEECE66D).wrapping_add(11)) % nodes;
        // Occasional pivot update: write back node state.
        if rng.chance(0.12) {
            ops.push(MemOp::store(translate(&mut pager, *c * 128), 2));
        }
        which = (which + 1) % CHAINS;
    }
    ops.truncate(target);
    Trace::new("mcf", ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn canneal_is_read_heavy_and_scattered() {
        let t = canneal(1, 20_000, 256 * MB);
        assert_eq!(t.len(), 20_000);
        assert!(t.write_ratio() < 0.3);
        // Scattered: the number of distinct lines approaches the op count.
        let distinct: std::collections::HashSet<u64> =
            t.ops().iter().map(|o| o.line.get()).collect();
        assert!(distinct.len() * 2 > t.len());
    }

    #[test]
    fn mcf_has_highest_intensity() {
        let m = mcf(1, 20_000, 256 * MB);
        let o = omnetpp(1, 20_000, 256 * MB);
        assert!(
            m.mean_gap() < o.mean_gap(),
            "mcf must be more memory-intensive than omnetpp"
        );
    }

    #[test]
    fn mcf_mixes_dependence_with_chain_parallelism() {
        // Each chain is a pointer chase (the second field of every record
        // depends on the first), but four chains interleave, so roughly
        // half the ops are issueable in parallel — mcf's high-MAPKI,
        // high-bandwidth signature.
        let m = mcf(1, 20_000, 256 * MB);
        let deps = m.ops().iter().filter(|o| o.depends_on_prev).count();
        let frac = deps as f64 / m.len() as f64;
        assert!(
            (0.35..0.75).contains(&frac),
            "mcf dependent fraction {frac:.2} out of range"
        );
    }

    #[test]
    fn omnetpp_mixes_regular_and_irregular() {
        let t = omnetpp(1, 20_000, 256 * MB);
        let deps = t.ops().iter().filter(|o| o.depends_on_prev).count();
        // Only the scattered object accesses are dependent — a minority.
        assert!(deps * 4 < t.len());
        assert!(t.write_ratio() > 0.2, "heap pushes write");
    }

    #[test]
    fn deterministic() {
        let a = canneal(7, 5_000, 64 * MB);
        let b = canneal(7, 5_000, 64 * MB);
        assert_eq!(a.ops(), b.ops());
    }
}
