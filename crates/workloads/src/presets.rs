//! Named benchmarks and suite builders.

use std::fmt;

use crate::graph::Graph;
use crate::kernels::GraphKernel;
use crate::pointer;
use crate::stream::regular_profiles;
use crate::trace::TraceSource;

const MB: u64 = 1024 * 1024;

/// How big to make the synthetic workloads.
///
/// Counter miss rates depend on footprint relative to the cache sizes, so
/// experiments meant to match the paper should use [`WorkloadScale::Paper`];
/// the smaller scales exist for fast tests and Criterion benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadScale {
    /// Tiny: unit tests (16 MB-class footprints, 2 k-vertex graphs).
    Test,
    /// Medium: Criterion benches (128 MB-class, 100 k-vertex graphs).
    Small,
    /// Full: figure regeneration (256–512 MB-class, 800 k-vertex graphs).
    Paper,
}

impl WorkloadScale {
    /// Graph size as (vertices, average degree).
    ///
    /// Chosen so the traversed structure exceeds the 8 MB LLC by a wide
    /// margin at `Small`/`Paper` scales (counter pressure is the point).
    pub fn graph_size(self) -> (usize, usize) {
        match self {
            WorkloadScale::Test => (2_000, 8),
            WorkloadScale::Small => (400_000, 12),
            WorkloadScale::Paper => (800_000, 16),
        }
    }

    /// Operations to record per core (bounds warmup + measure windows).
    pub fn ops_per_core(self) -> usize {
        match self {
            WorkloadScale::Test => 20_000,
            WorkloadScale::Small => 150_000,
            WorkloadScale::Paper => 400_000,
        }
    }

    /// Footprint multiplier relative to the paper-scale value.
    fn footprint(self, paper_bytes: u64) -> u64 {
        match self {
            WorkloadScale::Test => (paper_bytes / 16).max(16 * MB),
            WorkloadScale::Small => (paper_bytes / 2).max(64 * MB),
            WorkloadScale::Paper => paper_bytes,
        }
    }
}

/// A named benchmark from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// One of the eight graphBIG kernels (multi-threaded over one graph).
    Graph(GraphKernel),
    /// PARSEC canneal (multi-programmed).
    Canneal,
    /// SPEC omnetpp (multi-programmed).
    Omnetpp,
    /// SPEC mcf (multi-programmed).
    Mcf,
    /// One of the fifteen regular SPEC/PARSEC programs (by index into
    /// [`regular_profiles`]).
    Regular(usize),
}

impl Benchmark {
    /// The eleven irregular benchmarks, in the paper's figure order.
    pub fn irregular_suite() -> Vec<Benchmark> {
        let mut v: Vec<Benchmark> = [
            GraphKernel::PageRank,
            GraphKernel::GraphColoring,
            GraphKernel::ConnectedComp,
            GraphKernel::DegreeCentrality,
            GraphKernel::Dfs,
            GraphKernel::Bfs,
            GraphKernel::TriangleCount,
            GraphKernel::ShortestPath,
        ]
        .into_iter()
        .map(Benchmark::Graph)
        .collect();
        v.extend([Benchmark::Canneal, Benchmark::Omnetpp, Benchmark::Mcf]);
        v
    }

    /// The fifteen regular benchmarks of Figure 24.
    pub fn regular_suite() -> Vec<Benchmark> {
        (0..regular_profiles().len())
            .map(Benchmark::Regular)
            .collect()
    }

    /// The benchmark's display name (paper's figure label).
    pub fn name(&self) -> String {
        match self {
            Benchmark::Graph(k) => k.paper_name().to_string(),
            Benchmark::Canneal => "canneal".to_string(),
            Benchmark::Omnetpp => "omnetpp".to_string(),
            Benchmark::Mcf => "mcf".to_string(),
            Benchmark::Regular(i) => regular_profiles()[*i].name.to_string(),
        }
    }

    /// Builds per-core trace sources at paper scale.
    pub fn build(self, seed: u64, cores: usize) -> Vec<Box<dyn TraceSource>> {
        self.build_scaled(seed, cores, WorkloadScale::Paper)
    }

    /// Builds per-core trace sources at an explicit scale.
    ///
    /// Graph kernels are multi-threaded: all cores share one graph, each
    /// records its own vertex partition. SPEC/PARSEC benchmarks are
    /// multi-programmed: each core runs an independent instance with a
    /// distinct seed (the paper's §V methodology).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn build_scaled(
        self,
        seed: u64,
        cores: usize,
        scale: WorkloadScale,
    ) -> Vec<Box<dyn TraceSource>> {
        assert!(cores > 0, "need at least one core");
        let ops = scale.ops_per_core();
        match self {
            Benchmark::Graph(kernel) => {
                let (n, d) = scale.graph_size();
                let graph = cached_graph(n, d, seed);
                (0..cores)
                    .map(|t| {
                        let trace = kernel.record(&graph, seed, ops, t, cores);
                        Box::new(trace.cursor(0)) as Box<dyn TraceSource>
                    })
                    .collect()
            }
            Benchmark::Canneal => Self::multiprogram(cores, |i| {
                pointer::canneal(seed + i, ops, scale.footprint(512 * MB))
            }),
            Benchmark::Omnetpp => Self::multiprogram(cores, |i| {
                pointer::omnetpp(seed + i, ops, scale.footprint(256 * MB))
            }),
            Benchmark::Mcf => Self::multiprogram(cores, |i| {
                pointer::mcf(seed + i, ops, scale.footprint(384 * MB))
            }),
            Benchmark::Regular(idx) => {
                let profiles = regular_profiles();
                let p = profiles[idx];
                let mut scaled = p;
                scaled.footprint_bytes = scale.footprint(p.footprint_bytes);
                Self::multiprogram(cores, |i| scaled.record(seed + i, ops))
            }
        }
    }

    fn multiprogram<F: Fn(u64) -> crate::trace::Trace>(
        cores: usize,
        make: F,
    ) -> Vec<Box<dyn TraceSource>> {
        (0..cores)
            .map(|i| Box::new(make(i as u64 * 7919).cursor(0)) as Box<dyn TraceSource>)
            .collect()
    }
}

/// Process-wide cache of built graphs: experiment sweeps re-run the same
/// benchmark under many configurations, and graph construction dominates
/// workload-build time at paper scale.
fn cached_graph(n: usize, d: usize, seed: u64) -> std::sync::Arc<Graph> {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};
    type GraphCache = Mutex<HashMap<(usize, usize, u64), Arc<Graph>>>;
    static CACHE: OnceLock<GraphCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().expect("graph cache poisoned");
    guard
        .entry((n, d, seed))
        .or_insert_with(|| Arc::new(Graph::power_law(n, d, 0.85, seed)))
        .clone()
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_paper_counts() {
        assert_eq!(Benchmark::irregular_suite().len(), 11);
        assert_eq!(Benchmark::regular_suite().len(), 15);
    }

    #[test]
    fn irregular_suite_order_matches_figures() {
        let names: Vec<String> = Benchmark::irregular_suite()
            .iter()
            .map(|b| b.name())
            .collect();
        assert_eq!(
            names,
            vec![
                "pageRank",
                "graphColoring",
                "connectedComp",
                "degreeCentr",
                "DFS",
                "BFS",
                "triangleCount",
                "shortestPath",
                "canneal",
                "omnetpp",
                "mcf"
            ]
        );
    }

    #[test]
    fn build_produces_one_source_per_core() {
        let srcs = Benchmark::Canneal.build_scaled(1, 4, WorkloadScale::Test);
        assert_eq!(srcs.len(), 4);
        for mut s in srcs {
            let _ = s.next_op();
            assert_eq!(s.name(), "canneal");
        }
    }

    #[test]
    fn graph_benchmark_builds_all_threads() {
        let mut srcs = Benchmark::Graph(GraphKernel::Bfs).build_scaled(1, 4, WorkloadScale::Test);
        let ops: Vec<_> = srcs.iter_mut().map(|s| s.next_op()).collect();
        assert_eq!(ops.len(), 4);
    }

    #[test]
    fn multiprogrammed_instances_do_not_alias() {
        let mut srcs = Benchmark::Mcf.build_scaled(1, 2, WorkloadScale::Test);
        let a: Vec<u64> = (0..100).map(|_| srcs[0].next_op().line.get()).collect();
        let b: Vec<u64> = (0..100).map(|_| srcs[1].next_op().line.get()).collect();
        assert_ne!(a, b, "instances must touch different physical lines");
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::Mcf.to_string(), "mcf");
        assert_eq!(Benchmark::Regular(0).to_string(), "blackscholes");
    }
}
