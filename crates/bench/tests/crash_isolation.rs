//! Crash isolation end-to-end: a panicking simulation inside `run_all`
//! must not take the process down silently — the run exits nonzero but
//! still writes `BENCH_run_all.json` with the failed-run telemetry, and
//! bad configuration is a distinct (exit 2) typed error.

use std::process::Command;

#[test]
fn run_all_contains_panics_and_writes_failure_telemetry() {
    let dir = std::env::temp_dir().join(format!("emcc-crash-isolation-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp workdir");
    // `*` forces every simulation to panic at entry, so the child is fast:
    // the pool contains each unwind, execute() records the failures, and
    // run_all bails before rendering.
    let out = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .current_dir(&dir)
        .env("EMCC_SCALE", "test")
        .env("EMCC_JOBS", "2")
        .env("EMCC_FORCE_PANIC", "*")
        .output()
        .expect("spawn run_all");
    assert_eq!(
        out.status.code(),
        Some(1),
        "failed runs must exit 1; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(dir.join("BENCH_run_all.json"))
        .expect("telemetry must be written even when runs fail");
    assert!(
        json.contains("\"failed_runs\": [\n"),
        "failed_runs must be populated:\n{json}"
    );
    assert!(
        json.contains("EMCC_FORCE_PANIC: simulated crash"),
        "the panic message must be recorded:\n{json}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_scale_is_a_config_error_not_a_crash() {
    let out = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .env("EMCC_SCALE", "huge")
        .output()
        .expect("spawn run_all");
    assert_eq!(out.status.code(), Some(2), "config errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("EMCC_SCALE") && stderr.contains("test|small|paper"),
        "the error must name the variable and the accepted values:\n{stderr}"
    );
}
