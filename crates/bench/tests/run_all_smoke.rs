//! Tier-2 snapshot guard for `run_all --smoke`.
//!
//! The smoke pass runs every figure at `Test` scale, which is fast and
//! bit-deterministic, so its stdout can be diffed byte-for-byte against
//! a committed snapshot. Any change to a figure's numbers — intended or
//! not — must come with a reviewed snapshot update:
//!
//! ```text
//! EMCC_BLESS=1 cargo test -p emcc-bench --test run_all_smoke -- --ignored
//! ```

use std::path::PathBuf;
use std::process::Command;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots/run_all_smoke.txt")
}

#[test]
#[ignore = "tier-2: runs the full figure pipeline (~a minute at Test scale)"]
fn run_all_smoke_matches_snapshot() {
    // Run from a scratch directory so the BENCH_run_all.json telemetry
    // drop does not land in the repo.
    let scratch = std::env::temp_dir().join(format!("emcc-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let output = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .arg("--smoke")
        .current_dir(&scratch)
        .env_remove("EMCC_SCALE")
        .env("EMCC_JOBS", "1")
        .output()
        .expect("spawn run_all");
    let _ = std::fs::remove_dir_all(&scratch);
    assert!(
        output.status.success(),
        "run_all --smoke failed ({}):\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let actual = String::from_utf8(output.stdout).expect("stdout is UTF-8");

    let path = snapshot_path();
    let bless = std::env::var("EMCC_BLESS").is_ok_and(|v| !v.is_empty() && v != "0");
    if bless {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create snapshot dir");
        std::fs::write(&path, &actual).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "snapshot {} unreadable ({e}) — run EMCC_BLESS=1 cargo test -p emcc-bench \
             --test run_all_smoke -- --ignored to create it",
            path.display()
        )
    });
    if actual != expected {
        let first_diff = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, e))| a != e)
            .map(|(n, (a, e))| format!("line {}: got `{a}`, snapshot `{e}`", n + 1))
            .unwrap_or_else(|| {
                format!(
                    "lengths differ ({} vs {} lines)",
                    actual.lines().count(),
                    expected.lines().count()
                )
            });
        panic!(
            "run_all --smoke stdout drifted from the committed snapshot \
             (EMCC_BLESS=1 regenerates after review):\n{first_diff}"
        );
    }
}
