//! Experiment harness: regenerates every table and figure of the paper's
//! characterization (§III) and evaluation (§VI).
//!
//! Each `experiments::figNN` module runs the simulations behind one figure
//! and renders the same rows/series the paper reports. Binaries
//! (`cargo run --release -p emcc-bench --bin fig16`) print one figure;
//! `--bin run_all` regenerates everything (the data behind
//! EXPERIMENTS.md).
//!
//! # Scale
//!
//! Set `EMCC_SCALE=test|small|paper` (default `small`) to trade fidelity
//! for runtime. `paper` uses the largest synthetic footprints and op
//! counts and takes tens of minutes for the full suite.

pub mod crash_campaign;
pub mod experiments;
pub mod fault_campaign;
pub mod pool;
pub mod runner;

pub use pool::{jobs_from_env, run_indexed_catching, EnvError, RunCache, RunRequest};
pub use runner::{scale_from_env, ExhaustedRun, ExpParams, FailedRun, Harness};
