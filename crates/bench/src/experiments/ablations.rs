//! Ablations of EMCC's design choices (beyond the paper's own sweeps).
//!
//! * **L2 counter budget** — §V fixes 32 KB "so the benefits do not simply
//!   come from caching more counters"; we sweep 8/32/128 KB.
//! * **AES start wait** — §IV-D delays AES by one LLC-hit latency to avoid
//!   wasting bandwidth on LLC hits; we compare against starting
//!   immediately (more useless AES work, same or worse perf).
//! * **XPT** — LLC miss prediction on/off for both EMCC and the baseline.

use emcc::prelude::*;
use emcc::system::SystemConfig;

use crate::experiments::FigureData;
use crate::{Harness, RunRequest};

/// Benchmarks used for ablations (a representative subset keeps runtime
/// manageable; canneal/mcf/BFS bracket the behaviours).
fn suite() -> Vec<Benchmark> {
    use emcc::workloads::kernels::GraphKernel;
    vec![
        Benchmark::Graph(GraphKernel::Bfs),
        Benchmark::Graph(GraphKernel::PageRank),
        Benchmark::Canneal,
        Benchmark::Mcf,
    ]
}

const BUDGET_KB: [u64; 3] = [8, 32, 128];

/// EMCC with an L2 counter budget of `kb` KB.
fn budget_config(kb: u64) -> SystemConfig {
    let mut cfg = SystemConfig::table_i(SecurityScheme::Emcc);
    cfg.emcc.l2_counter_budget_lines = kb * 1024 / 64;
    cfg
}

/// EMCC with AES started immediately (no LLC-hit wait).
fn immediate_aes_config() -> SystemConfig {
    let mut cfg = SystemConfig::table_i(SecurityScheme::Emcc);
    cfg.emcc.aes_start_wait = Time::ZERO;
    cfg
}

/// `scheme` with XPT toggled.
fn xpt_config(scheme: SecurityScheme, on: bool) -> SystemConfig {
    let mut cfg = SystemConfig::table_i(scheme);
    cfg.xpt_enabled = on;
    cfg
}

/// Run-matrix for the l2_budget / aes_wait / xpt ablations.
pub fn requests() -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for bench in suite() {
        // l2_budget: baseline + swept budgets.
        reqs.push(RunRequest::scheme(bench, SecurityScheme::CtrInLlc));
        for kb in BUDGET_KB {
            reqs.push(RunRequest::new(bench, budget_config(kb)));
        }
        // aes_wait: default EMCC + immediate start.
        reqs.push(RunRequest::scheme(bench, SecurityScheme::Emcc));
        reqs.push(RunRequest::new(bench, immediate_aes_config()));
        // xpt: both schemes, both settings.
        for on in [true, false] {
            reqs.push(RunRequest::new(
                bench,
                xpt_config(SecurityScheme::CtrInLlc, on),
            ));
            reqs.push(RunRequest::new(bench, xpt_config(SecurityScheme::Emcc, on)));
        }
    }
    reqs
}

/// Run-matrix for the §IV-F extensions figure.
pub fn extensions_requests() -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for bench in suite() {
        reqs.push(RunRequest::scheme(bench, SecurityScheme::Emcc));
        let mut inc = SystemConfig::table_i(SecurityScheme::Emcc);
        inc.inclusive_llc = true;
        reqs.push(RunRequest::new(bench, inc));
        let mut dyn_cfg = SystemConfig::table_i(SecurityScheme::Emcc);
        dyn_cfg.emcc.dynamic_disable = true;
        reqs.push(RunRequest::new(bench, dyn_cfg));
    }
    reqs
}

/// Sweep of the L2 counter-line budget.
pub fn l2_budget(h: &Harness) -> FigureData {
    let mut fig = FigureData {
        title: "Ablation: EMCC benefit vs L2 counter budget".into(),
        cols: BUDGET_KB.iter().map(|k| format!("{k}KB")).collect(),
        percent: true,
        note: "32 KB captures most of the benefit (paper's §V choice)".into(),
        ..FigureData::default()
    };
    for bench in suite() {
        let base = h.run_scheme(bench, SecurityScheme::CtrInLlc);
        let mut row = Vec::new();
        for kb in BUDGET_KB {
            let emcc = h.run(bench, budget_config(kb));
            row.push(base.elapsed.as_ns_f64() / emcc.elapsed.as_ns_f64() - 1.0);
        }
        fig.rows.push(bench.name());
        fig.values.push(row);
    }
    fig.push_mean_row();
    fig
}

/// Immediate AES start vs the LLC-hit-latency wait.
pub fn aes_wait(h: &Harness) -> FigureData {
    let mut fig = FigureData {
        title: "Ablation: AES start policy (immediate vs wait-LLC-hit)".into(),
        cols: vec!["perf Δ".into(), "extra AES ops".into()],
        percent: true,
        note: "waiting trades negligible latency for AES-bandwidth savings".into(),
        ..FigureData::default()
    };
    for bench in suite() {
        let wait = h.run_scheme(bench, SecurityScheme::Emcc);
        let imm = h.run(bench, immediate_aes_config());
        let perf_delta = wait.elapsed.as_ns_f64() / imm.elapsed.as_ns_f64() - 1.0;
        let extra_aes = if wait.decrypted_at_l2 > 0 {
            imm.decrypted_at_l2 as f64 / wait.decrypted_at_l2 as f64 - 1.0
        } else {
            0.0
        };
        fig.rows.push(bench.name());
        fig.values.push(vec![perf_delta, extra_aes]);
    }
    fig.push_mean_row();
    fig
}

/// §IV-F extensions: inclusive LLC and dynamic disable.
pub fn extensions(h: &Harness) -> FigureData {
    let mut fig = FigureData {
        title: "Extension: inclusive LLC and dynamic disable (vs plain EMCC)".into(),
        cols: vec![
            "inclusive Δ".into(),
            "dyn-off Δ".into(),
            "unverif/fill".into(),
        ],
        percent: true,
        note: "§IV-F: both extensions should be near-neutral on irregular workloads".into(),
        ..FigureData::default()
    };
    for bench in suite() {
        let plain = h.run_scheme(bench, SecurityScheme::Emcc);
        let mut inc = SystemConfig::table_i(SecurityScheme::Emcc);
        inc.inclusive_llc = true;
        let inclusive = h.run(bench, inc);
        let mut dyn_cfg = SystemConfig::table_i(SecurityScheme::Emcc);
        dyn_cfg.emcc.dynamic_disable = true;
        let dynamic = h.run(bench, dyn_cfg);
        let unverified_frac = if inclusive.dram_data_reads > 0 {
            inclusive.llc_unverified_inserts as f64 / inclusive.dram_data_reads as f64
        } else {
            0.0
        };
        fig.rows.push(bench.name());
        fig.values.push(vec![
            plain.elapsed.as_ns_f64() / inclusive.elapsed.as_ns_f64() - 1.0,
            plain.elapsed.as_ns_f64() / dynamic.elapsed.as_ns_f64() - 1.0,
            unverified_frac,
        ]);
    }
    fig.push_mean_row();
    fig
}

/// XPT on/off for both schemes.
pub fn xpt(h: &Harness) -> FigureData {
    let mut fig = FigureData {
        title: "Ablation: EMCC benefit with and without XPT".into(),
        cols: vec!["XPT on".into(), "XPT off".into()],
        percent: true,
        note: "XPT shortens data paths; EMCC helps in both regimes".into(),
        ..FigureData::default()
    };
    for bench in suite() {
        let mut row = Vec::new();
        for xpt_on in [true, false] {
            let base = h.run(bench, xpt_config(SecurityScheme::CtrInLlc, xpt_on));
            let emcc = h.run(bench, xpt_config(SecurityScheme::Emcc, xpt_on));
            row.push(base.elapsed.as_ns_f64() / emcc.elapsed.as_ns_f64() - 1.0);
        }
        fig.rows.push(bench.name());
        fig.values.push(row);
    }
    fig.push_mean_row();
    fig
}
