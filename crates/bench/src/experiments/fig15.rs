//! Figure 15: memory bandwidth utilization under Morphable Counters,
//! broken down by traffic class.
//!
//! Data / counter / level-0-overflow / level-1+-overflow bus occupancy as
//! a fraction of the channel's peak bandwidth.

use emcc::dram::RequestClass;
use emcc::prelude::*;

use crate::experiments::FigureData;
use crate::{Harness, RunRequest};

/// The figure's run-matrix, for batch scheduling.
pub fn requests() -> Vec<RunRequest> {
    Benchmark::irregular_suite()
        .into_iter()
        .map(|bench| RunRequest::scheme(bench, SecurityScheme::CtrInLlc))
        .collect()
}

/// Runs the figure.
pub fn run(h: &Harness) -> FigureData {
    let mut fig = FigureData {
        title: "Figure 15: bandwidth utilization by class (Morphable)".into(),
        cols: vec![
            "data".into(),
            "counters".into(),
            "ovf-L0".into(),
            "ovf-L1+".into(),
            "total".into(),
        ],
        percent: true,
        note: "mcf is the heaviest consumer; counters add a visible share".into(),
        ..FigureData::default()
    };
    for bench in Benchmark::irregular_suite() {
        let r = h.run_scheme(bench, SecurityScheme::CtrInLlc);
        let ch = r.dram.total_requests().max(1); // avoid div-by-zero style
        let _ = ch;
        let channels = 1;
        let data = r.bandwidth_utilization(RequestClass::Data, channels);
        let ctr = r.bandwidth_utilization(RequestClass::Counter, channels)
            + r.bandwidth_utilization(RequestClass::TreeNode, channels);
        let o0 = r.bandwidth_utilization(RequestClass::OverflowL0, channels);
        let o1 = r.bandwidth_utilization(RequestClass::OverflowHigher, channels);
        fig.rows.push(bench.name());
        fig.values
            .push(vec![data, ctr, o0, o1, data + ctr + o0 + o1]);
    }
    fig.push_mean_row();
    fig
}
