//! Figure 24: useless counter accesses to LLC for the fifteen *regular*
//! SPEC/PARSEC benchmarks under EMCC — the check that speculative counter
//! fetching stays harmless when it isn't needed (paper mean: 1%).

use emcc::prelude::*;

use crate::experiments::FigureData;
use crate::{Harness, RunRequest};

/// The figure's run-matrix, for batch scheduling.
pub fn requests() -> Vec<RunRequest> {
    Benchmark::regular_suite()
        .into_iter()
        .map(|bench| RunRequest::scheme(bench, SecurityScheme::Emcc))
        .collect()
}

/// Runs the figure.
pub fn run(h: &Harness) -> FigureData {
    let mut fig = FigureData {
        title: "Figure 24: useless counter accesses, regular SPEC/PARSEC".into(),
        cols: vec!["useless".into()],
        percent: true,
        note: "1% of L2 data misses on average".into(),
        ..FigureData::default()
    };
    for bench in Benchmark::regular_suite() {
        let r = h.run_scheme(bench, SecurityScheme::Emcc);
        fig.rows.push(bench.name());
        fig.values.push(vec![r.useless_ctr_frac()]);
    }
    fig.push_mean_row();
    fig
}
