//! One module per figure (or per group of figures sharing simulations).

pub mod ablations;
pub mod emcc_ctr;
pub mod fig02;
pub mod fig03;
pub mod fig06_07;
pub mod fig15;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21_22;
pub mod fig24;
pub mod perf;
pub mod timelines;

/// A rendered figure: benchmarks as rows, series as columns.
#[derive(Debug, Clone, Default)]
pub struct FigureData {
    /// e.g. "Figure 16: performance normalized to non-secure".
    pub title: String,
    /// Row labels (benchmark names; last row is typically "mean").
    pub rows: Vec<String>,
    /// Column labels.
    pub cols: Vec<String>,
    /// `values[row][col]`.
    pub values: Vec<Vec<f64>>,
    /// Whether values render as percentages.
    pub percent: bool,
    /// Free-form comparison note (paper's reported numbers).
    pub note: String,
}

impl FigureData {
    /// Appends an arithmetic-mean row over the current rows.
    pub fn push_mean_row(&mut self) {
        if self.values.is_empty() {
            return;
        }
        let cols = self.values[0].len();
        let mut mean = vec![0.0; cols];
        for row in &self.values {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= self.values.len() as f64;
        }
        self.rows.push("mean".to_string());
        self.values.push(mean);
    }

    /// Mean-row value for column `c` (the figure's headline number).
    ///
    /// # Panics
    ///
    /// Panics if no mean row was pushed or `c` is out of range.
    pub fn mean(&self, c: usize) -> f64 {
        assert_eq!(self.rows.last().map(String::as_str), Some("mean"));
        self.values.last().expect("rows exist")[c]
    }

    /// Renders the table as CSV (`benchmark,col1,col2,...`), for plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("benchmark");
        for c in &self.cols {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (name, row) in self.rows.iter().zip(&self.values) {
            out.push_str(name);
            for v in row {
                out.push_str(&format!(",{v:.6}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as fixed-width text.
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        out.push_str(&crate::runner::header_row(
            "benchmark",
            &self.cols.iter().map(String::as_str).collect::<Vec<_>>(),
        ));
        out.push('\n');
        for (name, row) in self.rows.iter().zip(&self.values) {
            let line = if self.percent {
                crate::runner::pct_row(name, row)
            } else {
                crate::runner::num_row(name, row)
            };
            out.push_str(&line);
            out.push('\n');
        }
        if !self.note.is_empty() {
            out.push_str(&format!("paper: {}\n", self.note));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_row_is_arithmetic() {
        let mut f = FigureData {
            rows: vec!["a".into(), "b".into()],
            cols: vec!["x".into()],
            values: vec![vec![1.0], vec![3.0]],
            ..FigureData::default()
        };
        f.push_mean_row();
        assert_eq!(f.mean(0), 2.0);
        assert_eq!(f.rows.len(), 3);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let f = FigureData {
            rows: vec!["canneal".into()],
            cols: vec!["EMCC".into(), "base".into()],
            values: vec![vec![0.125, 1.0]],
            ..FigureData::default()
        };
        let csv = f.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "benchmark,EMCC,base");
        assert!(lines[1].starts_with("canneal,0.125000,1.000000"));
    }

    #[test]
    fn render_contains_rows_and_note() {
        let mut f = FigureData {
            title: "Figure X".into(),
            rows: vec!["canneal".into()],
            cols: vec!["EMCC".into()],
            values: vec![vec![0.125]],
            percent: true,
            note: "12.5% for canneal".into(),
        };
        f.push_mean_row();
        let s = f.render();
        assert!(s.contains("Figure X"));
        assert!(s.contains("canneal"));
        assert!(s.contains("12.5%"));
        assert!(s.contains("paper:"));
    }
}
