//! Figures 5, 8, 10, 13 and 14: the secure-memory-access timelines,
//! composed analytically from the §III latency constants.

use emcc::system::timeline::{Timeline, TimelineParams, TimelineScenario};

/// Renders every timeline scenario with its paper cross-reference.
pub fn render_all() -> String {
    let p = TimelineParams::default();
    let scenarios: [(&str, TimelineScenario); 9] = [
        (
            "Fig 5 (upper): counter miss, no LLC counter caching",
            TimelineScenario::CtrMissNoLlcCaching,
        ),
        (
            "Fig 5 (lower): counter miss, counters cached in LLC",
            TimelineScenario::CtrMissLlcCaching,
        ),
        (
            "Fig 8 (upper): counter hit in MC's private cache",
            TimelineScenario::CtrHitInMc,
        ),
        (
            "Fig 8 (lower): counter hit in LLC (serial baseline)",
            TimelineScenario::CtrHitInLlcBaseline,
        ),
        (
            "Fig 10a: EMCC, counter miss in LLC, row-buffer miss",
            TimelineScenario::EmccCtrMissLlc,
        ),
        (
            "Fig 13a: EMCC, counter hit in LLC",
            TimelineScenario::EmccCtrHitLlc,
        ),
        (
            "Fig 13b: baseline, counter hit in LLC",
            TimelineScenario::BaselineCtrHitLlc,
        ),
        (
            "Fig 14a: EMCC + XPT, row-buffer miss",
            TimelineScenario::EmccXptRowMiss,
        ),
        (
            "Fig 14b: baseline + XPT, row-buffer miss",
            TimelineScenario::BaselineXptRowMiss,
        ),
    ];
    let mut out = String::from("== Figures 5/8/10/13/14: secure-memory-access timelines ==\n");
    for (label, sc) in scenarios {
        out.push_str(&format!("\n{label}\n"));
        out.push_str(&Timeline::compose(sc, &p).render());
    }

    // Headline deltas.
    let t = |s| Timeline::compose(s, &p).total;
    out.push_str(&format!(
        "\nFig 5 delta (LLC caching adds Direct-LLC latency): {:.1} ns (paper: 19 ns)\n",
        (t(TimelineScenario::CtrMissLlcCaching) - t(TimelineScenario::CtrMissNoLlcCaching))
            .as_ns_f64()
    ));
    out.push_str(&format!(
        "Fig 8 delta (LLC ctr hit vs MC ctr hit): {:.1} ns (paper: ~8 ns)\n",
        (t(TimelineScenario::CtrHitInLlcBaseline) - t(TimelineScenario::CtrHitInMc)).as_ns_f64()
    ));
    out.push_str(&format!(
        "Fig 13 delta (EMCC vs baseline, ctr hit in LLC): {:.1} ns\n",
        (t(TimelineScenario::BaselineCtrHitLlc) - t(TimelineScenario::EmccCtrHitLlc)).as_ns_f64()
    ));
    out.push_str(&format!(
        "Fig 14 delta (EMCC vs baseline, XPT + row miss): {:.1} ns (paper: 22 ns)\n",
        (t(TimelineScenario::BaselineXptRowMiss) - t(TimelineScenario::EmccXptRowMiss)).as_ns_f64()
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn render_mentions_all_figures() {
        let s = super::render_all();
        for fig in ["Fig 5", "Fig 8", "Fig 10a", "Fig 13a", "Fig 14a"] {
            assert!(s.contains(fig), "missing {fig}");
        }
    }
}
