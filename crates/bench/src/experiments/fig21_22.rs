//! Figures 21 and 22: DRAM channel-count sensitivity.
//!
//! * Fig 21 — EMCC's benefit over Morphable under 1 vs 8 channels: more
//!   bandwidth shortens data access, widening the baseline's exposed
//!   counter latency, so the benefit grows.
//! * Fig 22 — queuing delay (geometric mean over benchmarks) by access
//!   type under EMCC; writes queue far longer than reads, and 8 channels
//!   collapse the delays.

use emcc::dram::RequestClass;
use emcc::prelude::*;
use emcc::sim::stats::geomean;
use emcc::system::SystemConfig;

use crate::experiments::FigureData;
use crate::{Harness, RunRequest};

/// Both figures from one sweep.
pub struct ChannelFigures {
    /// Figure 21.
    pub fig21: FigureData,
    /// Figure 22.
    pub fig22: FigureData,
}

/// The figures' run-matrix, for batch scheduling.
pub fn requests() -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for bench in Benchmark::irregular_suite() {
        for channels in [1usize, 8] {
            for scheme in [SecurityScheme::CtrInLlc, SecurityScheme::Emcc] {
                reqs.push(RunRequest::new(
                    bench,
                    SystemConfig::table_i(scheme).with_channels(channels),
                ));
            }
        }
    }
    reqs
}

/// Runs the sweep.
pub fn run(h: &Harness) -> ChannelFigures {
    let mut fig21 = FigureData {
        title: "Figure 21: EMCC benefit under 1 vs 8 memory channels".into(),
        cols: vec!["1 channel".into(), "8 channels".into()],
        percent: true,
        note: "benefit increases under 8 channels".into(),
        ..FigureData::default()
    };

    // Queuing-delay accumulators: [class-dir][channel-config] -> samples.
    let kinds = [
        ("ctr read", RequestClass::Counter, false),
        ("data read", RequestClass::Data, false),
        ("ctr write", RequestClass::Counter, true),
        ("data write", RequestClass::Data, true),
    ];
    let mut delays: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 2]; kinds.len()];

    for bench in Benchmark::irregular_suite() {
        let mut row = Vec::new();
        for (ci, channels) in [1usize, 8].into_iter().enumerate() {
            let base = h.run(
                bench,
                SystemConfig::table_i(SecurityScheme::CtrInLlc).with_channels(channels),
            );
            let emcc = h.run(
                bench,
                SystemConfig::table_i(SecurityScheme::Emcc).with_channels(channels),
            );
            row.push(base.elapsed.as_ns_f64() / emcc.elapsed.as_ns_f64() - 1.0);
            for (ki, &(_, class, is_write)) in kinds.iter().enumerate() {
                let b = emcc.dram.bucket(class, is_write);
                if b.count > 0 {
                    // Geomean needs positive samples; clamp at 0.1 ns.
                    delays[ki][ci].push(b.queuing_ns.mean().max(0.1));
                }
            }
        }
        fig21.rows.push(bench.name());
        fig21.values.push(row);
    }
    fig21.push_mean_row();

    let mut fig22 = FigureData {
        title: "Figure 22: DRAM queuing delay under EMCC (ns, geomean)".into(),
        cols: vec!["1 channel".into(), "8 channels".into()],
        percent: false,
        note: "writes queue much longer than reads; 8 channels shrink both".into(),
        ..FigureData::default()
    };
    for (ki, &(name, _, _)) in kinds.iter().enumerate() {
        fig22.rows.push(name.to_string());
        fig22
            .values
            .push(vec![geomean(&delays[ki][0]), geomean(&delays[ki][1])]);
    }

    ChannelFigures { fig21, fig22 }
}
