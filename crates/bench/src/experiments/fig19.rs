//! Figure 19: fraction of DRAM data reads decrypted/verified at the L2s,
//! as the fraction of AES units moved from MC to L2s sweeps 20/40/50/80%.
//!
//! At the default 50% split the paper reports 76.3% on average; mcf drops
//! to ~50% because its bandwidth spikes exhaust the L2 AES budget and the
//! adaptive offload kicks in.

use emcc::prelude::*;
use emcc::system::SystemConfig;

use crate::experiments::FigureData;
use crate::{Harness, RunRequest};

/// The swept AES-unit fractions.
pub const FRACTIONS: [f64; 4] = [0.2, 0.4, 0.5, 0.8];

/// Config for one sweep point.
fn config(f: f64) -> SystemConfig {
    let mut cfg = SystemConfig::table_i(SecurityScheme::Emcc);
    cfg.emcc.aes_fraction_to_l2 = f;
    cfg
}

/// The figure's run-matrix, for batch scheduling.
pub fn requests() -> Vec<RunRequest> {
    Benchmark::irregular_suite()
        .into_iter()
        .flat_map(|bench| FRACTIONS.map(|f| RunRequest::new(bench, config(f))))
        .collect()
}

/// Runs the figure.
pub fn run(h: &Harness) -> FigureData {
    let mut fig = FigureData {
        title: "Figure 19: DRAM data reads decrypted at L2 vs AES split".into(),
        cols: FRACTIONS
            .iter()
            .map(|f| format!("{:.0}%", f * 100.0))
            .collect(),
        percent: true,
        note: "76.3% on average at the 50% split; mcf ~50% (offload)".into(),
        ..FigureData::default()
    };
    for bench in Benchmark::irregular_suite() {
        let mut row = Vec::new();
        for f in FRACTIONS {
            let r = h.run(bench, config(f));
            row.push(r.l2_decrypt_frac());
        }
        fig.rows.push(bench.name());
        fig.values.push(row);
    }
    fig.push_mean_row();
    fig
}
