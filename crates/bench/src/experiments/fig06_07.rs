//! Figures 6 and 7: counter hits/misses in MC and LLC for data reads,
//! under 2 MB/core (Fig 6) and 12 MB/core (Fig 7) LLCs.
//!
//! Normalized to DRAM data reads: the paper reports 65/15/19%
//! (MC hit / LLC hit / LLC miss) at 2 MB/core and 67/18/14% at 12 MB/core.

use emcc::prelude::*;
use emcc::system::SystemConfig;

use crate::experiments::FigureData;
use crate::{Harness, RunRequest};

fn config(llc_total: Option<u64>) -> SystemConfig {
    let mut cfg = SystemConfig::table_i(SecurityScheme::CtrInLlc);
    if let Some(total) = llc_total {
        cfg = cfg.with_llc_total(total);
    }
    cfg
}

fn matrix(llc_total: Option<u64>) -> Vec<RunRequest> {
    Benchmark::irregular_suite()
        .into_iter()
        .map(|bench| RunRequest::new(bench, config(llc_total)))
        .collect()
}

fn counter_split(h: &Harness, llc_total: Option<u64>, title: &str, note: &str) -> FigureData {
    let mut fig = FigureData {
        title: title.into(),
        cols: vec!["MC-hit".into(), "LLC-hit".into(), "LLC-miss".into()],
        percent: true,
        note: note.into(),
        ..FigureData::default()
    };
    for bench in Benchmark::irregular_suite() {
        let r = h.run(bench, config(llc_total));
        fig.rows.push(bench.name());
        fig.values.push(vec![
            r.ctr_mc_hit_frac(),
            r.ctr_llc_hit_frac(),
            r.ctr_llc_miss_frac(),
        ]);
    }
    fig.push_mean_row();
    fig
}

/// Figure 6's run-matrix (Table I LLC).
pub fn fig06_requests() -> Vec<RunRequest> {
    matrix(None)
}

/// Figure 7's run-matrix (48 MB LLC).
pub fn fig07_requests() -> Vec<RunRequest> {
    matrix(Some(48 * 1024 * 1024))
}

/// Figure 6: Table I LLC (2 MB/core).
pub fn run_fig06(h: &Harness) -> FigureData {
    counter_split(
        h,
        None,
        "Figure 6: counter hit/miss split for DRAM data reads (2 MB/core LLC)",
        "65% MC hit / 15% LLC hit / 19% LLC miss on average",
    )
}

/// Figure 7: 12 MB/core LLC (48 MB total).
pub fn run_fig07(h: &Harness) -> FigureData {
    counter_split(
        h,
        Some(48 * 1024 * 1024),
        "Figure 7: counter hit/miss split for DRAM data reads (12 MB/core LLC)",
        "67% MC hit / 18% LLC hit / 14% LLC miss on average",
    )
}
