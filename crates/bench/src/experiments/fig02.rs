//! Figure 2: DRAM traffic overhead, without vs with caching counters in
//! the LLC, normalized to normal data traffic.
//!
//! The paper's Pintool study: counter + tree + overflow DRAM accesses over
//! data DRAM accesses, split into read and write overhead. Caching
//! counters in LLC cuts the mean from 105% to 59%.

use emcc::dram::RequestClass;
use emcc::prelude::*;

use crate::experiments::FigureData;
use crate::{Harness, RunRequest};

/// Traffic overhead for one report: (read overhead, write overhead).
fn overhead(r: &SimReport) -> (f64, f64) {
    let data = (r.dram.bucket(RequestClass::Data, false).count
        + r.dram.bucket(RequestClass::Data, true).count)
        .max(1) as f64;
    let meta_read: u64 = [
        RequestClass::Counter,
        RequestClass::TreeNode,
        RequestClass::OverflowL0,
        RequestClass::OverflowHigher,
    ]
    .iter()
    .map(|&c| r.dram.bucket(c, false).count)
    .sum();
    let meta_write: u64 = [
        RequestClass::Counter,
        RequestClass::TreeNode,
        RequestClass::OverflowL0,
        RequestClass::OverflowHigher,
    ]
    .iter()
    .map(|&c| r.dram.bucket(c, true).count)
    .sum();
    (meta_read as f64 / data, meta_write as f64 / data)
}

/// The figure's run-matrix, for batch scheduling.
pub fn requests() -> Vec<RunRequest> {
    Benchmark::irregular_suite()
        .into_iter()
        .flat_map(|bench| {
            [
                RunRequest::scheme(bench, SecurityScheme::McOnly),
                RunRequest::scheme(bench, SecurityScheme::CtrInLlc),
            ]
        })
        .collect()
}

/// Runs the figure.
pub fn run(h: &Harness) -> FigureData {
    let mut fig = FigureData {
        title: "Figure 2: DRAM traffic overhead normalized to data traffic".into(),
        cols: vec![
            "w/o-rd".into(),
            "w/o-wr".into(),
            "w-rd".into(),
            "w-wr".into(),
            "w/o-tot".into(),
            "w-tot".into(),
        ],
        percent: true,
        note: "total overhead drops from 105% (w/o) to 59% (w/) on average".into(),
        ..FigureData::default()
    };
    for bench in Benchmark::irregular_suite() {
        let without = h.run_scheme(bench, SecurityScheme::McOnly);
        let with = h.run_scheme(bench, SecurityScheme::CtrInLlc);
        let (wor, wow) = overhead(without);
        let (wr, ww) = overhead(with);
        fig.rows.push(bench.name());
        fig.values.push(vec![wor, wow, wr, ww, wor + wow, wr + ww]);
    }
    fig.push_mean_row();
    fig
}
