//! Figures 16 and 17: performance normalized to a non-secure system, and
//! average L2 miss latency, for SC-64 / Morphable / EMCC.
//!
//! Paper: EMCC improves performance over Morphable by 7% on average
//! (canneal 12.5%); EMCC saves ≈5 ns of L2 miss latency over Morphable.

use emcc::counters::CounterDesign;
use emcc::prelude::*;
use emcc::system::SystemConfig;

use crate::experiments::FigureData;
use crate::{Harness, RunRequest};

/// One benchmark's four reports (served from the harness's run-cache).
pub struct PerfRow {
    /// Benchmark name.
    pub name: String,
    /// Non-secure ceiling.
    pub nonsecure: &'static SimReport,
    /// SC-64 baseline (counters in LLC).
    pub sc64: &'static SimReport,
    /// Morphable baseline (counters in LLC).
    pub morphable: &'static SimReport,
    /// EMCC on top of Morphable.
    pub emcc: &'static SimReport,
}

/// The SC-64 configuration (counters in LLC, split-counter-64 design).
fn sc64_config() -> SystemConfig {
    let mut cfg = SystemConfig::table_i(SecurityScheme::CtrInLlc);
    cfg.counter_design = CounterDesign::Sc64;
    cfg
}

/// The suite's run-matrix, for batch scheduling.
pub fn requests() -> Vec<RunRequest> {
    Benchmark::irregular_suite()
        .into_iter()
        .flat_map(|bench| {
            [
                RunRequest::scheme(bench, SecurityScheme::NonSecure),
                RunRequest::new(bench, sc64_config()),
                RunRequest::scheme(bench, SecurityScheme::CtrInLlc),
                RunRequest::scheme(bench, SecurityScheme::Emcc),
            ]
        })
        .collect()
}

/// Runs the four schemes over the irregular suite.
pub fn run_suite(h: &Harness) -> Vec<PerfRow> {
    Benchmark::irregular_suite()
        .into_iter()
        .map(|bench| PerfRow {
            name: bench.name(),
            nonsecure: h.run_scheme(bench, SecurityScheme::NonSecure),
            sc64: h.run(bench, sc64_config()),
            morphable: h.run_scheme(bench, SecurityScheme::CtrInLlc),
            emcc: h.run_scheme(bench, SecurityScheme::Emcc),
        })
        .collect()
}

/// Figure 16 from suite results.
pub fn fig16(rows: &[PerfRow]) -> FigureData {
    let mut fig = FigureData {
        title: "Figure 16: performance normalized to non-secure".into(),
        cols: vec!["SC-64".into(), "Morphable".into(), "EMCC".into()],
        percent: true,
        note: "EMCC +7% over Morphable on average; canneal +12.5%".into(),
        ..FigureData::default()
    };
    for r in rows {
        let ns = r.nonsecure.elapsed.as_ns_f64();
        fig.rows.push(r.name.clone());
        fig.values.push(vec![
            ns / r.sc64.elapsed.as_ns_f64(),
            ns / r.morphable.elapsed.as_ns_f64(),
            ns / r.emcc.elapsed.as_ns_f64(),
        ]);
    }
    fig.push_mean_row();
    fig
}

/// Figure 17 from suite results.
pub fn fig17(rows: &[PerfRow]) -> FigureData {
    let mut fig = FigureData {
        title: "Figure 17: average L2 miss latency (ns)".into(),
        cols: vec![
            "SC-64".into(),
            "Morphable".into(),
            "EMCC".into(),
            "non-sec".into(),
        ],
        percent: false,
        note: "EMCC ≈5 ns below Morphable on average".into(),
        ..FigureData::default()
    };
    for r in rows {
        fig.rows.push(r.name.clone());
        fig.values.push(vec![
            r.sc64.l2_miss_latency_ns.mean(),
            r.morphable.l2_miss_latency_ns.mean(),
            r.emcc.l2_miss_latency_ns.mean(),
            r.nonsecure.l2_miss_latency_ns.mean(),
        ]);
    }
    fig.push_mean_row();
    fig
}

/// The headline number: mean EMCC speedup over Morphable.
pub fn mean_emcc_speedup(rows: &[PerfRow]) -> f64 {
    let sum: f64 = rows
        .iter()
        .map(|r| r.morphable.elapsed.as_ns_f64() / r.emcc.elapsed.as_ns_f64() - 1.0)
        .sum();
    sum / rows.len() as f64
}
