//! Figure 20: EMCC's benefit under 128/256/512 KB MC counter caches.
//!
//! Bigger counter caches reduce counter traffic to LLC, slightly shrinking
//! EMCC's room for improvement — but by less than 1% in the paper, because
//! counter-cache miss rates barely drop (35% → 31%).

use emcc::prelude::*;
use emcc::system::SystemConfig;

use crate::experiments::FigureData;
use crate::{Harness, RunRequest};

/// The swept MC counter-cache sizes in KB.
pub const SIZES_KB: [u64; 3] = [128, 256, 512];

/// The figure's run-matrix, for batch scheduling.
pub fn requests() -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for bench in Benchmark::irregular_suite() {
        for kb in SIZES_KB {
            let bytes = kb * 1024;
            for scheme in [SecurityScheme::CtrInLlc, SecurityScheme::Emcc] {
                reqs.push(RunRequest::new(
                    bench,
                    SystemConfig::table_i(scheme).with_mc_cache_size(bytes),
                ));
            }
        }
    }
    reqs
}

/// Runs the figure.
pub fn run(h: &Harness) -> FigureData {
    let mut fig = FigureData {
        title: "Figure 20: EMCC benefit vs MC counter-cache size".into(),
        cols: SIZES_KB.iter().map(|k| format!("{k}KB")).collect(),
        percent: true,
        note: "benefit shrinks by <1% as the cache grows 128→512 KB".into(),
        ..FigureData::default()
    };
    for bench in Benchmark::irregular_suite() {
        let mut row = Vec::new();
        for kb in SIZES_KB {
            let bytes = kb * 1024;
            let base = h.run(
                bench,
                SystemConfig::table_i(SecurityScheme::CtrInLlc).with_mc_cache_size(bytes),
            );
            let emcc = h.run(
                bench,
                SystemConfig::table_i(SecurityScheme::Emcc).with_mc_cache_size(bytes),
            );
            row.push(base.elapsed.as_ns_f64() / emcc.elapsed.as_ns_f64() - 1.0);
        }
        fig.rows.push(bench.name());
        fig.values.push(row);
    }
    fig.push_mean_row();
    fig
}
