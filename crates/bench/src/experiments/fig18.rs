//! Figure 18: EMCC's benefit over Morphable under 14/20/25 ns AES.
//!
//! Longer AES (stronger ciphers) lengthens the baseline's critical path
//! but hides behind EMCC's overlap, so the benefit *grows*: 7% → 9% at
//! 25 ns in the paper.

use emcc::prelude::*;
use emcc::system::SystemConfig;

use crate::experiments::FigureData;
use crate::{Harness, RunRequest};

/// The swept AES latencies in nanoseconds.
pub const AES_POINTS: [u64; 3] = [14, 20, 25];

/// The figure's run-matrix, for batch scheduling.
pub fn requests() -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for bench in Benchmark::irregular_suite() {
        for ns in AES_POINTS {
            let aes = Time::from_ns(ns);
            for scheme in [SecurityScheme::CtrInLlc, SecurityScheme::Emcc] {
                reqs.push(RunRequest::new(
                    bench,
                    SystemConfig::table_i(scheme).with_aes_latency(aes),
                ));
            }
        }
    }
    reqs
}

/// Runs the figure.
pub fn run(h: &Harness) -> FigureData {
    let mut fig = FigureData {
        title: "Figure 18: EMCC benefit over Morphable vs AES latency".into(),
        cols: AES_POINTS.iter().map(|ns| format!("{ns}ns AES")).collect(),
        percent: true,
        note: "benefit grows with AES latency: ~7% at 14 ns → ~9% at 25 ns".into(),
        ..FigureData::default()
    };
    for bench in Benchmark::irregular_suite() {
        let mut row = Vec::new();
        for ns in AES_POINTS {
            let aes = Time::from_ns(ns);
            let base = h.run(
                bench,
                SystemConfig::table_i(SecurityScheme::CtrInLlc).with_aes_latency(aes),
            );
            let emcc = h.run(
                bench,
                SystemConfig::table_i(SecurityScheme::Emcc).with_aes_latency(aes),
            );
            row.push(base.elapsed.as_ns_f64() / emcc.elapsed.as_ns_f64() - 1.0);
        }
        fig.rows.push(bench.name());
        fig.values.push(row);
    }
    fig.push_mean_row();
    fig
}
