//! Figure 3: distribution of LLC hit latency on the 28-core mesh.
//!
//! Reproduces the paper's real-system microbenchmark in the NoC model:
//! pointer-chasing loads that always hit LLC, pinned to each core in turn,
//! with lines spread uniformly over the 28 slices. Mean ≈ 23 ns over a
//! 16–29 ns support.

use emcc::noc::{Mesh, NocLatency};
use emcc::sim::{Histogram, Time};

use crate::experiments::FigureData;

/// L2 lookup before the miss enters the NoC (6 ns hit − 2 ns data read).
const L2_TAG: Time = Time::from_ns(4);
/// LLC slice SRAM (paper appendix: ≤ 4 ns per Cacti).
const SLICE_SRAM: Time = Time::from_ns(4);

/// The latency histogram itself (also used by the `noc_latency` example).
pub fn llc_hit_histogram() -> Histogram {
    let mesh = Mesh::xeon_w3175x();
    let noc = NocLatency::calibrated();
    let mut h = Histogram::new(14.0, 1.0, 26);
    for core in 0..mesh.num_cores() {
        for slice in 0..mesh.num_cores() {
            let hops = mesh.hops_core_to_core(core, slice);
            let total = L2_TAG + noc.one_way(hops, false) + SLICE_SRAM + noc.one_way(hops, true);
            h.add_time(total);
        }
    }
    h
}

/// Runs the figure.
pub fn run() -> FigureData {
    let h = llc_hit_histogram();
    let mut fig = FigureData {
        title: "Figure 3: distribution of LLC hit latency (ns)".into(),
        cols: vec!["% of hits".into()],
        percent: true,
        note: format!(
            "paper mean 23 ns over 16–29 ns; model mean {:.1} ns",
            h.mean()
        ),
        ..FigureData::default()
    };
    for i in 0..h.num_bins() {
        if h.bin_count(i) == 0 {
            continue;
        }
        fig.rows.push(format!("{:.0} ns", h.bin_lower(i)));
        fig.values.push(vec![h.bin_fraction(i)]);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_matches_paper() {
        let h = llc_hit_histogram();
        assert!((h.mean() - 23.0).abs() < 1.5, "mean {:.2}", h.mean());
    }

    #[test]
    fn distribution_is_spread_out() {
        let h = llc_hit_histogram();
        // Non-uniform: no single nanosecond bin dominates.
        for i in 0..h.num_bins() {
            assert!(h.bin_fraction(i) < 0.5);
        }
    }
}
