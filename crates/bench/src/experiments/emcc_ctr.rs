//! Figures 11, 12 and 23: EMCC's counter behaviour in the L2.
//!
//! * Fig 11 — useless counter accesses to LLC (a speculatively fetched
//!   counter never used for a DRAM-served miss before leaving L2),
//!   normalized to L2 data misses: paper mean 3.2%.
//! * Fig 12 — total counter accesses to LLC under EMCC (35.6%) vs the
//!   serial baseline (4.2% fewer), normalized to L2 data misses.
//! * Fig 23 — counter blocks invalidated in L2 by MC counter updates,
//!   normalized to counter insertions: paper mean 1.7%.

use emcc::prelude::*;

use crate::experiments::FigureData;
use crate::{Harness, RunRequest};

/// All three figures from one pass (EMCC + baseline runs per benchmark).
pub struct EmccCtrFigures {
    /// Figure 11.
    pub fig11: FigureData,
    /// Figure 12.
    pub fig12: FigureData,
    /// Figure 23.
    pub fig23: FigureData,
}

/// The figures' run-matrix, for batch scheduling.
pub fn requests() -> Vec<RunRequest> {
    Benchmark::irregular_suite()
        .into_iter()
        .flat_map(|bench| {
            [
                RunRequest::scheme(bench, SecurityScheme::Emcc),
                RunRequest::scheme(bench, SecurityScheme::CtrInLlc),
            ]
        })
        .collect()
}

/// Runs the three figures.
pub fn run(h: &Harness) -> EmccCtrFigures {
    let mut fig11 = FigureData {
        title: "Figure 11: useless counter accesses to LLC under EMCC".into(),
        cols: vec!["useless".into()],
        percent: true,
        note: "3.2% of L2 data misses on average".into(),
        ..FigureData::default()
    };
    let mut fig12 = FigureData {
        title: "Figure 12: total counter accesses to LLC per L2 data miss".into(),
        cols: vec!["baseline".into(), "EMCC".into()],
        percent: true,
        note: "EMCC 35.6% on average, only 4.2% above the serial baseline".into(),
        ..FigureData::default()
    };
    let mut fig23 = FigureData {
        title: "Figure 23: counter blocks invalidated in L2 per insertion".into(),
        cols: vec!["invalidated".into()],
        percent: true,
        note: "1.7% of insertions on average".into(),
        ..FigureData::default()
    };

    for bench in Benchmark::irregular_suite() {
        let emcc = h.run_scheme(bench, SecurityScheme::Emcc);
        let base = h.run_scheme(bench, SecurityScheme::CtrInLlc);

        fig11.rows.push(bench.name());
        fig11.values.push(vec![emcc.useless_ctr_frac()]);

        fig12.rows.push(bench.name());
        fig12
            .values
            .push(vec![base.ctr_llc_access_frac(), emcc.ctr_llc_access_frac()]);

        fig23.rows.push(bench.name());
        fig23.values.push(vec![emcc.ctr_invalidation_frac()]);
    }
    fig11.push_mean_row();
    fig12.push_mean_row();
    fig23.push_mean_row();
    EmccCtrFigures {
        fig11,
        fig12,
        fig23,
    }
}
