//! Shared simulation-running and table-rendering helpers.

use emcc::prelude::*;
use emcc::system::SystemConfig as Cfg;

/// Per-run parameters derived from the chosen scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpParams {
    /// Workload synthesis scale.
    pub scale: WorkloadScale,
    /// Warmup memory ops per core (caches/counters/predictors warm).
    pub warmup_ops: u64,
    /// Measured memory ops per core.
    pub measure_ops: u64,
    /// Workload seed.
    pub seed: u64,
}

impl ExpParams {
    /// Parameters for a scale.
    pub fn for_scale(scale: WorkloadScale) -> Self {
        let (warmup_ops, measure_ops) = match scale {
            WorkloadScale::Test => (2_000, 6_000),
            WorkloadScale::Small => (30_000, 70_000),
            WorkloadScale::Paper => (100_000, 250_000),
        };
        ExpParams {
            scale,
            warmup_ops,
            measure_ops,
            seed: 0x5EED,
        }
    }

    /// Runs one benchmark under a configuration.
    pub fn run(&self, bench: Benchmark, cfg: Cfg) -> SimReport {
        let sources = bench.build_scaled(self.seed, cfg.cores, self.scale);
        SecureSystem::new(cfg)
            .run_with_warmup(sources, self.warmup_ops, self.measure_ops)
    }

    /// Runs one benchmark under a scheme with the Table I configuration.
    pub fn run_scheme(&self, bench: Benchmark, scheme: SecurityScheme) -> SimReport {
        self.run(bench, Cfg::table_i(scheme))
    }
}

/// Reads `EMCC_SCALE` from the environment (default `small`).
///
/// # Panics
///
/// Panics on an unrecognized value.
pub fn scale_from_env() -> WorkloadScale {
    match std::env::var("EMCC_SCALE").as_deref() {
        Ok("test") => WorkloadScale::Test,
        Ok("paper") => WorkloadScale::Paper,
        Ok("small") | Err(_) => WorkloadScale::Small,
        Ok(other) => panic!("unknown EMCC_SCALE {other:?} (use test|small|paper)"),
    }
}

/// Renders one row of `name` followed by fixed-width percentage columns.
pub fn pct_row(name: &str, values: &[f64]) -> String {
    let mut s = format!("{name:<16}");
    for v in values {
        s.push_str(&format!(" {:>9.1}%", v * 100.0));
    }
    s
}

/// Renders one row of `name` followed by fixed-width numeric columns.
pub fn num_row(name: &str, values: &[f64]) -> String {
    let mut s = format!("{name:<16}");
    for v in values {
        s.push_str(&format!(" {v:>10.2}"));
    }
    s
}

/// Column-header row matching [`pct_row`]/[`num_row`] widths.
pub fn header_row(name: &str, cols: &[&str]) -> String {
    let mut s = format!("{name:<16}");
    for c in cols {
        s.push_str(&format!(" {c:>10}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_scale_sensibly() {
        let t = ExpParams::for_scale(WorkloadScale::Test);
        let p = ExpParams::for_scale(WorkloadScale::Paper);
        assert!(p.measure_ops > t.measure_ops);
    }

    #[test]
    fn rows_align() {
        let h = header_row("bench", &["a", "b"]);
        let r = num_row("canneal", &[1.0, 2.0]);
        assert_eq!(h.len(), r.len());
    }

    #[test]
    fn pct_formatting() {
        let r = pct_row("x", &[0.125]);
        assert!(r.contains("12.5%"));
    }

    #[test]
    fn env_default_is_small() {
        std::env::remove_var("EMCC_SCALE");
        assert_eq!(scale_from_env(), WorkloadScale::Small);
    }
}
