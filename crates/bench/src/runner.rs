//! Shared simulation-running and table-rendering helpers.

use std::sync::Mutex;

use emcc::prelude::*;
use emcc::system::SystemConfig as Cfg;

use crate::pool::{
    exit_config_error, jobs_from_env, run_indexed_catching, EnvError, RunCache, RunRequest,
};

/// Per-run parameters derived from the chosen scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExpParams {
    /// Workload synthesis scale.
    pub scale: WorkloadScale,
    /// Warmup memory ops per core (caches/counters/predictors warm).
    pub warmup_ops: u64,
    /// Measured memory ops per core.
    pub measure_ops: u64,
    /// Workload seed.
    pub seed: u64,
}

impl ExpParams {
    /// Parameters for a scale.
    pub fn for_scale(scale: WorkloadScale) -> Self {
        let (warmup_ops, measure_ops) = match scale {
            WorkloadScale::Test => (2_000, 6_000),
            WorkloadScale::Small => (30_000, 70_000),
            WorkloadScale::Paper => (100_000, 250_000),
        };
        ExpParams {
            scale,
            warmup_ops,
            measure_ops,
            seed: 0x5EED,
        }
    }

    /// Runs one benchmark under a configuration (uncached; prefer
    /// [`Harness::run`] inside experiments so identical runs are shared).
    ///
    /// # Panics
    ///
    /// Panics when `EMCC_FORCE_PANIC` names this benchmark (or is `*`) —
    /// a fault-injection hook for exercising the crash-isolated pool and
    /// the harness's failed-run telemetry from CI.
    pub fn run(&self, bench: Benchmark, cfg: Cfg) -> SimReport {
        if let Ok(v) = std::env::var("EMCC_FORCE_PANIC") {
            if v == "*" || v == bench.name() {
                panic!("EMCC_FORCE_PANIC: simulated crash in {bench}");
            }
        }
        let sources = bench.build_scaled(self.seed, cfg.cores, self.scale);
        SecureSystem::new(cfg).run_with_warmup(sources, self.warmup_ops, self.measure_ops)
    }

    /// Runs one benchmark under a scheme with the Table I configuration.
    pub fn run_scheme(&self, bench: Benchmark, scheme: SecurityScheme) -> SimReport {
        self.run(bench, Cfg::table_i(scheme))
    }
}

/// The experiment-execution harness: one [`ExpParams`], a memoizing
/// [`RunCache`] and a thread budget.
///
/// Experiments declare their run-matrix as [`RunRequest`]s; the harness
/// [`execute`](Harness::execute)s a batch on the work-stealing pool and
/// then serves figure-rendering code from the cache. Every simulation is
/// a pure function of `(benchmark, config, params)`, so runs shared
/// between figures execute once. Rendering order — and therefore stdout
/// — is identical no matter how many workers execute the batch.
pub struct Harness {
    params: ExpParams,
    jobs: usize,
    cache: RunCache,
    failures: Mutex<Vec<FailedRun>>,
    exhausted: Mutex<Vec<ExhaustedRun>>,
}

/// A simulation that panicked inside [`Harness::execute`]: the pool
/// contained the unwind, the other jobs completed, and this record is the
/// telemetry trail (surfaced in `BENCH_run_all.json` as `failed_runs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedRun {
    /// Benchmark name of the crashed run.
    pub bench: String,
    /// Security scheme of the crashed run.
    pub scheme: String,
    /// The panic message.
    pub error: String,
}

/// A simulation that *completed* but exhausted its integrity-retry budget
/// (`integrity_unrecovered > 0`): detections whose bounded re-fetch never
/// produced a clean line, so delivery was poisoned.
///
/// Distinct from [`FailedRun`] — the run's report is valid and cached —
/// and surfaced in `BENCH_run_all.json` as `recovery_exhausted_runs`
/// rather than being folded into `failed_runs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExhaustedRun {
    /// Benchmark name of the run.
    pub bench: String,
    /// Security scheme of the run.
    pub scheme: String,
    /// Detections left unrecovered after the retry budget.
    pub unrecovered: u64,
}

impl Harness {
    /// A harness with `EMCC_JOBS` workers (default: available
    /// parallelism).
    pub fn new(params: ExpParams) -> Self {
        Harness::with_jobs(params, jobs_from_env())
    }

    /// A harness with an explicit worker count.
    pub fn with_jobs(params: ExpParams, jobs: usize) -> Self {
        Harness {
            params,
            jobs: jobs.max(1),
            cache: RunCache::new(),
            failures: Mutex::new(Vec::new()),
            exhausted: Mutex::new(Vec::new()),
        }
    }

    /// A harness configured from `EMCC_SCALE` and `EMCC_JOBS`.
    pub fn from_env() -> Self {
        Harness::new(ExpParams::for_scale(scale_from_env()))
    }

    /// The run parameters.
    pub fn params(&self) -> &ExpParams {
        &self.params
    }

    /// Worker-thread budget.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// `(hits, misses)` of the run-cache so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Runs that panicked inside [`execute`](Harness::execute) batches so
    /// far, in request order.
    pub fn failures(&self) -> Vec<FailedRun> {
        self.failures.lock().expect("failure list poisoned").clone()
    }

    /// Completed runs whose integrity-retry budget was exhausted
    /// (`integrity_unrecovered > 0`), in simulation order. Each unique
    /// `(benchmark, config)` is recorded once — cache hits never
    /// double-count.
    pub fn recovery_exhausted(&self) -> Vec<ExhaustedRun> {
        self.exhausted
            .lock()
            .expect("exhausted list poisoned")
            .clone()
    }

    fn note_exhaustion(&self, req: &RunRequest, report: &SimReport) {
        if report.integrity_unrecovered > 0 {
            self.exhausted
                .lock()
                .expect("exhausted list poisoned")
                .push(ExhaustedRun {
                    bench: req.bench.name(),
                    scheme: req.cfg.scheme.to_string(),
                    unrecovered: report.integrity_unrecovered,
                });
        }
    }

    /// Executes a batch of requests on the pool, memoizing every result.
    ///
    /// Duplicate requests — within the batch or against earlier batches —
    /// count as cache hits and are simulated only once.
    pub fn execute(&self, requests: &[RunRequest]) {
        let mut fresh: Vec<&RunRequest> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut hits = 0u64;
        for req in requests {
            if self.cache.probe(req, &self.params).is_some() || !seen.insert(req) {
                hits += 1;
            } else {
                fresh.push(req);
            }
        }
        self.cache.note_hits(hits);
        self.cache.note_misses(fresh.len() as u64);

        let params = self.params;
        // Crash isolation: a panicking simulation must not take down the
        // batch. Failed runs become telemetry records instead of cache
        // entries; the survivors land in the cache as usual.
        let reports = run_indexed_catching(fresh.len(), self.jobs, |i| {
            params.run(fresh[i].bench, fresh[i].cfg.clone())
        });
        for (req, report) in fresh.into_iter().zip(reports) {
            match report {
                Ok(report) => {
                    self.note_exhaustion(req, &report);
                    self.cache.insert(req.clone(), params, report);
                }
                Err(error) => {
                    self.failures
                        .lock()
                        .expect("failure list poisoned")
                        .push(FailedRun {
                            bench: req.bench.name(),
                            scheme: req.cfg.scheme.to_string(),
                            error,
                        });
                }
            }
        }
    }

    /// The report for `bench` under `cfg`, from cache or computed now.
    pub fn run(&self, bench: Benchmark, cfg: Cfg) -> &'static SimReport {
        let req = RunRequest::new(bench, cfg);
        if let Some(r) = self.cache.lookup(&req, &self.params) {
            return r;
        }
        let report = self.params.run(req.bench, req.cfg.clone());
        self.note_exhaustion(&req, &report);
        self.cache.insert(req, self.params, report)
    }

    /// The report for `bench` under the Table I configuration of `scheme`.
    pub fn run_scheme(&self, bench: Benchmark, scheme: SecurityScheme) -> &'static SimReport {
        self.run(bench, Cfg::table_i(scheme))
    }
}

/// Reads `EMCC_SCALE` from the environment (default `small`). Exits with
/// status 2 on an unrecognized value.
pub fn scale_from_env() -> WorkloadScale {
    scale_from_lookup(|k| std::env::var(k).ok()).unwrap_or_else(|e| exit_config_error(&e))
}

/// [`scale_from_env`] with an injected environment lookup — tests pass a
/// closure instead of mutating the process environment, which is racy
/// under the parallel test harness.
///
/// # Errors
///
/// Returns [`EnvError`] on an unrecognized value.
pub fn scale_from_lookup(
    lookup: impl Fn(&str) -> Option<String>,
) -> Result<WorkloadScale, EnvError> {
    match lookup("EMCC_SCALE").as_deref() {
        Some("test") => Ok(WorkloadScale::Test),
        Some("paper") => Ok(WorkloadScale::Paper),
        Some("small") | None => Ok(WorkloadScale::Small),
        Some(other) => Err(EnvError {
            var: "EMCC_SCALE",
            value: other.to_string(),
            expected: "one of test|small|paper",
        }),
    }
}

/// Renders one row of `name` followed by fixed-width percentage columns.
pub fn pct_row(name: &str, values: &[f64]) -> String {
    let mut s = format!("{name:<16}");
    for v in values {
        s.push_str(&format!(" {:>9.1}%", v * 100.0));
    }
    s
}

/// Renders one row of `name` followed by fixed-width numeric columns.
pub fn num_row(name: &str, values: &[f64]) -> String {
    let mut s = format!("{name:<16}");
    for v in values {
        s.push_str(&format!(" {v:>10.2}"));
    }
    s
}

/// Column-header row matching [`pct_row`]/[`num_row`] widths.
pub fn header_row(name: &str, cols: &[&str]) -> String {
    let mut s = format!("{name:<16}");
    for c in cols {
        s.push_str(&format!(" {c:>10}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_scale_sensibly() {
        let t = ExpParams::for_scale(WorkloadScale::Test);
        let p = ExpParams::for_scale(WorkloadScale::Paper);
        assert!(p.measure_ops > t.measure_ops);
    }

    #[test]
    fn rows_align() {
        let h = header_row("bench", &["a", "b"]);
        let r = num_row("canneal", &[1.0, 2.0]);
        assert_eq!(h.len(), r.len());
    }

    #[test]
    fn pct_formatting() {
        let r = pct_row("x", &[0.125]);
        assert!(r.contains("12.5%"));
    }

    #[test]
    fn scale_lookup_default_is_small() {
        // Injected lookup: no process-environment mutation (racy under
        // the parallel test harness).
        assert_eq!(scale_from_lookup(|_| None), Ok(WorkloadScale::Small));
        assert_eq!(
            scale_from_lookup(|_| Some("test".into())),
            Ok(WorkloadScale::Test)
        );
        assert_eq!(
            scale_from_lookup(|_| Some("paper".into())),
            Ok(WorkloadScale::Paper)
        );
    }

    #[test]
    fn scale_lookup_rejects_garbage_as_typed_error() {
        let err = scale_from_lookup(|_| Some("huge".into())).unwrap_err();
        assert_eq!(err.var, "EMCC_SCALE");
        assert_eq!(err.value, "huge");
        let msg = err.to_string();
        assert!(msg.contains("EMCC_SCALE") && msg.contains("test|small|paper"));
    }

    #[test]
    fn harness_memoizes_identical_runs() {
        let h = Harness::with_jobs(ExpParams::for_scale(WorkloadScale::Test), 2);
        let a = h.run_scheme(Benchmark::Mcf, SecurityScheme::NonSecure);
        let b = h.run_scheme(Benchmark::Mcf, SecurityScheme::NonSecure);
        assert!(std::ptr::eq(a, b), "second run must be served from cache");
        let (hits, misses) = h.cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn harness_execute_dedups_batch() {
        let h = Harness::with_jobs(ExpParams::for_scale(WorkloadScale::Test), 2);
        let req = crate::pool::RunRequest::scheme(Benchmark::Mcf, SecurityScheme::NonSecure);
        h.execute(&[req.clone(), req.clone(), req]);
        let (hits, misses) = h.cache_stats();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn recovery_exhausted_runs_are_recorded_distinctly() {
        use emcc::dram::{FaultClass, FaultConfig};
        let h = Harness::with_jobs(ExpParams::for_scale(WorkloadScale::Test), 2);
        // A clean run records nothing.
        h.run_scheme(Benchmark::Mcf, SecurityScheme::CtrInLlc);
        assert!(h.recovery_exhausted().is_empty());
        // A stuck-at line can never be re-fetched clean, so the bounded
        // retry budget must exhaust — and land in the distinct telemetry
        // list, not in the panic-trail `failures()`.
        let fault = FaultConfig::uniform(0xFA17, FaultClass::StuckLine, 0.05);
        let cfg = Cfg::table_i(SecurityScheme::CtrInLlc).with_fault(fault);
        let report = h.run(Benchmark::Canneal, cfg.clone());
        assert!(
            report.integrity_unrecovered > 0,
            "stuck lines must exhaust the retry budget"
        );
        let ex = h.recovery_exhausted();
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].bench, Benchmark::Canneal.name());
        assert_eq!(ex[0].unrecovered, report.integrity_unrecovered);
        assert!(h.failures().is_empty(), "the run completed — not a failure");
        // A cache hit of the same run must not double-count.
        h.run(Benchmark::Canneal, cfg);
        assert_eq!(h.recovery_exhausted().len(), 1);
    }

    #[test]
    fn parallel_and_serial_reports_are_identical() {
        let p = ExpParams::for_scale(WorkloadScale::Test);
        let serial = Harness::with_jobs(p, 1);
        let parallel = Harness::with_jobs(p, 4);
        let reqs: Vec<_> = [
            SecurityScheme::NonSecure,
            SecurityScheme::CtrInLlc,
            SecurityScheme::Emcc,
        ]
        .into_iter()
        .map(|s| crate::pool::RunRequest::scheme(Benchmark::Canneal, s))
        .collect();
        parallel.execute(&reqs);
        for req in &reqs {
            let a = serial.run(req.bench, req.cfg.clone());
            let b = parallel.run(req.bench, req.cfg.clone());
            assert_eq!(
                a.elapsed, b.elapsed,
                "determinism broken for {:?}",
                req.bench
            );
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.ctr_source, b.ctr_source);
        }
    }
}
