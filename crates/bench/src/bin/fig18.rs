//! Regenerates Figure 18 (sensitivity to AES latency).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    print!("{}", emcc_bench::experiments::fig18::run(&p).render());
}
