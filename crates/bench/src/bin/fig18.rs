//! Regenerates Figure 18 (sensitivity to AES latency).
use emcc_bench::{experiments::fig18, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&fig18::requests());
    print!("{}", fig18::run(&h).render());
}
