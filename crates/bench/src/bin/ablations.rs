//! Runs the DESIGN.md ablations (L2 counter budget, AES wait, XPT) and the
//! §IV-F extension comparisons (inclusive LLC, dynamic disable).
use emcc_bench::{experiments::ablations, Harness};

fn main() {
    let h = Harness::from_env();
    let mut reqs = ablations::requests();
    reqs.extend(ablations::extensions_requests());
    h.execute(&reqs);
    print!("{}", ablations::l2_budget(&h).render());
    print!("{}", ablations::aes_wait(&h).render());
    print!("{}", ablations::xpt(&h).render());
    print!("{}", ablations::extensions(&h).render());
}
