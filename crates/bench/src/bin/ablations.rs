//! Runs the DESIGN.md ablations (L2 counter budget, AES wait, XPT) and the
//! §IV-F extension comparisons (inclusive LLC, dynamic disable).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    print!("{}", emcc_bench::experiments::ablations::l2_budget(&p).render());
    print!("{}", emcc_bench::experiments::ablations::aes_wait(&p).render());
    print!("{}", emcc_bench::experiments::ablations::xpt(&p).render());
    print!("{}", emcc_bench::experiments::ablations::extensions(&p).render());
}
