//! Regenerates Figure 11 (useless counter accesses under EMCC).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    print!("{}", emcc_bench::experiments::emcc_ctr::run(&p).fig11.render());
}
