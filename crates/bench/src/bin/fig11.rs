//! Regenerates Figure 11 (useless counter accesses under EMCC).
use emcc_bench::{experiments::emcc_ctr, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&emcc_ctr::requests());
    print!("{}", emcc_ctr::run(&h).fig11.render());
}
