//! Regenerates Figure 24 (useless counter accesses, regular benchmarks).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    print!("{}", emcc_bench::experiments::fig24::run(&p).render());
}
