//! Regenerates Figure 24 (useless counter accesses, regular benchmarks).
use emcc_bench::{experiments::fig24, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&fig24::requests());
    print!("{}", fig24::run(&h).render());
}
