//! Regenerates Figures 5/8/10/13/14 (secure-memory-access timelines).
fn main() {
    print!("{}", emcc_bench::experiments::timelines::render_all());
}
