//! Regenerates Figure 16 (normalized performance of SC-64/Morphable/EMCC).
use emcc_bench::{experiments::perf, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&perf::requests());
    let rows = perf::run_suite(&h);
    print!("{}", perf::fig16(&rows).render());
    println!(
        "headline: EMCC speeds up Morphable by {:.1}% on average (paper: 7%)",
        perf::mean_emcc_speedup(&rows) * 100.0
    );
}
