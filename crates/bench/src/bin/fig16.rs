//! Regenerates Figure 16 (normalized performance of SC-64/Morphable/EMCC).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    let rows = emcc_bench::experiments::perf::run_suite(&p);
    print!("{}", emcc_bench::experiments::perf::fig16(&rows).render());
    println!(
        "headline: EMCC speeds up Morphable by {:.1}% on average (paper: 7%)",
        emcc_bench::experiments::perf::mean_emcc_speedup(&rows) * 100.0
    );
}
