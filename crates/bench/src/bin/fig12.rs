//! Regenerates Figure 12 (total counter accesses to LLC, EMCC vs baseline).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    print!("{}", emcc_bench::experiments::emcc_ctr::run(&p).fig12.render());
}
