//! Regenerates Figure 12 (total counter accesses to LLC, EMCC vs baseline).
use emcc_bench::{experiments::emcc_ctr, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&emcc_ctr::requests());
    print!("{}", emcc_ctr::run(&h).fig12.render());
}
