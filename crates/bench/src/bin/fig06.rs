//! Regenerates Figure 6 (counter hit/miss split, 2 MB/core LLC).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    print!("{}", emcc_bench::experiments::fig06_07::run_fig06(&p).render());
}
