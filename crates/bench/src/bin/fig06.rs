//! Regenerates Figure 6 (counter hit/miss split, 2 MB/core LLC).
use emcc_bench::{experiments::fig06_07, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&fig06_07::fig06_requests());
    print!("{}", fig06_07::run_fig06(&h).render());
}
