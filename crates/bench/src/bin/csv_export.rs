//! Exports the main figures as CSV files under `figures/`, for plotting.
//!
//! ```sh
//! EMCC_SCALE=small cargo run --release -p emcc-bench --bin csv_export
//! ```

use std::fs;
use std::path::Path;

use emcc_bench::{experiments, Harness};

fn main() -> std::io::Result<()> {
    let h = Harness::from_env();
    let dir = Path::new("figures");
    fs::create_dir_all(dir)?;

    // Schedule every figure's runs up front so overlapping requests
    // (e.g. CtrInLlc across Figs 2/6/15/16) simulate once.
    let mut reqs = experiments::fig02::requests();
    reqs.extend(experiments::fig06_07::fig06_requests());
    reqs.extend(experiments::emcc_ctr::requests());
    reqs.extend(experiments::fig15::requests());
    reqs.extend(experiments::perf::requests());
    h.execute(&reqs);

    let write = |name: &str, csv: String| -> std::io::Result<()> {
        let path = dir.join(name);
        fs::write(&path, csv)?;
        eprintln!("wrote {}", path.display());
        Ok(())
    };

    write("fig03_llc_latency.csv", experiments::fig03::run().to_csv())?;
    write("fig02_traffic.csv", experiments::fig02::run(&h).to_csv())?;
    write(
        "fig06_ctr_split.csv",
        experiments::fig06_07::run_fig06(&h).to_csv(),
    )?;
    let ec = experiments::emcc_ctr::run(&h);
    write("fig11_useless.csv", ec.fig11.to_csv())?;
    write("fig12_ctr_accesses.csv", ec.fig12.to_csv())?;
    write("fig23_invalidations.csv", ec.fig23.to_csv())?;
    write("fig15_bandwidth.csv", experiments::fig15::run(&h).to_csv())?;
    let rows = experiments::perf::run_suite(&h);
    write("fig16_perf.csv", experiments::perf::fig16(&rows).to_csv())?;
    write(
        "fig17_miss_latency.csv",
        experiments::perf::fig17(&rows).to_csv(),
    )?;
    Ok(())
}
