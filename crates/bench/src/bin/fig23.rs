//! Regenerates Figure 23 (counter invalidations in L2).
use emcc_bench::{experiments::emcc_ctr, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&emcc_ctr::requests());
    print!("{}", emcc_ctr::run(&h).fig23.render());
}
