//! Regenerates Figure 23 (counter invalidations in L2).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    print!("{}", emcc_bench::experiments::emcc_ctr::run(&p).fig23.render());
}
