//! Crash-recovery campaign for the secure-memory service.
//!
//! ```text
//! crash_campaign [--cases N] [--seed S] [--smoke] [--out FILE]
//!                [--repro-dir DIR] [--replay FILE]
//! ```
//!
//! Case `i` runs `CrashCase::generate(mix(seed, i))` over *both* backends
//! (volatile and file-backed) under the same seeded crash schedule, then
//! recovers and asserts the crash-consistency invariant: every
//! acknowledged write reads back exactly, or the loss is detected —
//! never silent. The verdict file lists one line per case in index
//! order, so it is byte-identical for any `EMCC_JOBS`.
//!
//! On the first failing case the campaign shrinks it to a minimal
//! reproducer, persists it under the repro directory, and exits 1;
//! `--replay` re-runs such a file. Exit 2 is reserved for usage errors.
//!
//! The default 1000 cases give ≥1000 distinct crash schedules per
//! backend; `--smoke` runs the 64-case CI subset.

use std::path::PathBuf;

use emcc_bench::crash_campaign::{from_text, run_campaign, run_case, to_text, CRASH_SEED};
use emcc_bench::jobs_from_env;
use proptest::shrink::minimize;

/// Shrink budget: candidates tested before accepting the current minimum.
const SHRINK_BUDGET: usize = 2_000;

struct Args {
    cases: usize,
    seed: u64,
    out: PathBuf,
    repro_dir: PathBuf,
    replay: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: crash_campaign [--cases N] [--seed S] [--smoke] [--out FILE] \
         [--repro-dir DIR] [--replay FILE]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        cases: 1000,
        seed: CRASH_SEED,
        out: PathBuf::from("target/crash_verdicts.txt"),
        repro_dir: PathBuf::from("target/crash_repro"),
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs {what}");
                usage()
            })
        };
        match flag.as_str() {
            "--cases" => args.cases = value("a count").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value("a seed").parse().unwrap_or_else(|_| usage()),
            "--smoke" => args.cases = 64,
            "--out" => args.out = PathBuf::from(value("a path")),
            "--repro-dir" => args.repro_dir = PathBuf::from(value("a path")),
            "--replay" => args.replay = Some(PathBuf::from(value("a path"))),
            _ => usage(),
        }
    }
    args
}

/// Scratch root for file-backend runs: inside the workspace's target
/// directory, never the system temp dir.
fn scratch_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/crash_scratch")
}

fn replay(path: &std::path::Path) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            return 2;
        }
    };
    let case = match from_text(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            return 2;
        }
    };
    let run = run_case(&case, &scratch_root().join("replay"));
    match run.failure {
        None => {
            println!(
                "replay ok: {} acked writes survived (crashed: {}, corrupted: {})",
                run.acked.len(),
                run.crashed,
                run.corrupted
            );
            0
        }
        Some(why) => {
            println!("replay FAIL: {why}");
            1
        }
    }
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.replay {
        std::process::exit(replay(path));
    }

    let scratch = scratch_root();
    let report = run_campaign(args.cases, args.seed, jobs_from_env(), &scratch);
    let _ = std::fs::remove_dir_all(&scratch);

    if let Some(parent) = args.out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&args.out, report.verdicts.join("\n") + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out.display()));

    println!(
        "crash campaign: {} cases x 2 backends, {} crashed, {} corrupted — {}",
        args.cases,
        report.crashed_cases,
        report.corrupted_cases,
        if report.all_pass() {
            "ALL PASS"
        } else {
            "FAILED"
        }
    );
    println!("verdicts: {}", args.out.display());

    if let Some((index, case, why)) = report.failures.first() {
        eprintln!("case {index} failed: {why}");
        eprintln!("shrinking (budget {SHRINK_BUDGET} candidates)...");
        let shrink_dir = scratch_root().join("shrink");
        let m = minimize(case.clone(), SHRINK_BUDGET, |c| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_case(c, &shrink_dir).failure.is_some()
            }))
            .unwrap_or(true)
        });
        let _ = std::fs::remove_dir_all(&shrink_dir);
        let _ = std::fs::create_dir_all(&args.repro_dir);
        let file = args
            .repro_dir
            .join(format!("crash_case_{:#018x}.txt", m.value.seed));
        std::fs::write(&file, to_text(&m.value))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", file.display()));
        eprintln!(
            "minimal reproducer ({} ops, {} shrink steps): {}",
            m.value.ops.len(),
            m.steps,
            file.display()
        );
        eprintln!("replay with: crash_campaign --replay {}", file.display());
        std::process::exit(1);
    }
}
