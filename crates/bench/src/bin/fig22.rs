//! Regenerates Figure 22 (DRAM queuing delay by access type).
use emcc_bench::{experiments::fig21_22, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&fig21_22::requests());
    print!("{}", fig21_22::run(&h).fig22.render());
}
