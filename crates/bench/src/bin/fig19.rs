//! Regenerates Figure 19 (DRAM reads decrypted at L2 vs AES split).
use emcc_bench::{experiments::fig19, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&fig19::requests());
    print!("{}", fig19::run(&h).render());
}
