//! Regenerates Figure 19 (DRAM reads decrypted at L2 vs AES split).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    print!("{}", emcc_bench::experiments::fig19::run(&p).render());
}
