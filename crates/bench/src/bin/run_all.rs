//! Regenerates every figure in one pass — the data source for
//! EXPERIMENTS.md.
//!
//! ```sh
//! EMCC_SCALE=small EMCC_JOBS=4 cargo run --release -p emcc-bench --bin run_all
//! ```
//!
//! `--smoke` forces `Test` scale regardless of `EMCC_SCALE` — the fast,
//! deterministic pass CI diffs against the committed snapshot
//! (`crates/bench/tests/snapshots/run_all_smoke.txt`).
//!
//! `--trace FILE` additionally exports a Chrome-trace JSON of one
//! representative EMCC run's critical-path attribution (open in
//! `chrome://tracing` or Perfetto). The traced run is inline, so the
//! file is byte-identical for any `EMCC_JOBS`.
//!
//! Two phases:
//!
//! 1. **Schedule** — every figure declares its run-matrix as
//!    [`RunRequest`](emcc_bench::RunRequest)s; the union is executed on
//!    the work-stealing pool (`EMCC_JOBS` workers). Requests shared
//!    between figures (the Table I schemes dominate) simulate once.
//! 2. **Render** — figures print serially in the original order from the
//!    run-cache, so stdout is byte-identical no matter the worker count.
//!
//! Wall-clock per section and the cache hit/miss counters are written to
//! `BENCH_run_all.json`.

use std::fmt::Write as _;
use std::time::Instant;

use emcc::prelude::WorkloadScale;
use emcc_bench::{experiments, ExhaustedRun, ExpParams, FailedRun, Harness};

fn main() {
    let mut smoke = false;
    let mut trace: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--trace" => match it.next() {
                Some(path) => trace = Some(path),
                None => {
                    eprintln!(
                        "error: --trace needs a path\nusage: run_all [--smoke] [--trace FILE]"
                    );
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other}\nusage: run_all [--smoke] [--trace FILE]");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &trace {
        if let Err(e) = export_trace(path) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote critical-path trace to {path}");
    }
    let h = if smoke {
        Harness::new(ExpParams::for_scale(WorkloadScale::Test))
    } else {
        Harness::from_env()
    };
    let scale = h.params().scale;
    let t0 = Instant::now();
    println!(
        "EMCC reproduction: regenerating all figures at {scale:?} scale \
         ({} warmup + {} measured mem-ops/core)\n",
        h.params().warmup_ops,
        h.params().measure_ops
    );
    eprintln!(
        "[{:>7.1}s] scheduling all figures on {} worker(s)...",
        t0.elapsed().as_secs_f64(),
        h.jobs()
    );

    // Phase 1: collect every figure's run-matrix and execute the union.
    let mut requests = experiments::fig02::requests();
    requests.extend(experiments::fig06_07::fig06_requests());
    requests.extend(experiments::fig06_07::fig07_requests());
    requests.extend(experiments::emcc_ctr::requests());
    requests.extend(experiments::fig15::requests());
    requests.extend(experiments::perf::requests());
    requests.extend(experiments::fig18::requests());
    requests.extend(experiments::fig19::requests());
    requests.extend(experiments::fig20::requests());
    requests.extend(experiments::fig21_22::requests());
    requests.extend(experiments::fig24::requests());
    requests.extend(experiments::ablations::requests());
    let requested = requests.len();
    h.execute(&requests);
    let (sched_hits, sched_misses) = h.cache_stats();
    let sim_secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "[{sim_secs:>7.1}s] simulated {sched_misses} unique runs \
         ({requested} requested, {sched_hits} shared)"
    );

    // Crash isolation: a panicking simulation was contained by the pool
    // and recorded as telemetry. Rendering would read poisoned holes out
    // of the cache, so write the telemetry trail and bail nonzero.
    let failures = h.failures();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!(
                "[{:>7.1}s] FAILED run: {} / {}: {}",
                t0.elapsed().as_secs_f64(),
                f.bench,
                f.scheme,
                f.error
            );
        }
        let total_secs = t0.elapsed().as_secs_f64();
        let json = bench_json(
            scale,
            h.jobs(),
            requested,
            sim_secs,
            total_secs,
            sched_hits,
            sched_misses,
            &[],
            &failures,
            &h.recovery_exhausted(),
        );
        match std::fs::write("BENCH_run_all.json", &json) {
            Ok(()) => eprintln!("[{total_secs:>7.1}s] wrote BENCH_run_all.json"),
            Err(e) => eprintln!("[{total_secs:>7.1}s] BENCH_run_all.json: {e}"),
        }
        eprintln!(
            "[{total_secs:>7.1}s] aborting render: {} of {requested} runs failed",
            failures.len()
        );
        std::process::exit(1);
    }

    // Phase 2: render serially in the fixed figure order; every run()
    // below is a cache hit.
    let mut timings: Vec<(&str, f64)> = Vec::new();
    let mut section_start = Instant::now();
    let mut section = |name: &'static str, timings: &mut Vec<(&str, f64)>| {
        if let Some(last) = timings.last_mut() {
            // Close the previous section (its name was pushed eagerly).
            last.1 = section_start.elapsed().as_secs_f64();
        }
        eprintln!("[{:>7.1}s] rendering {name}...", t0.elapsed().as_secs_f64());
        timings.push((name, 0.0));
        section_start = Instant::now();
    };

    section("timelines (Figs 5/8/10/13/14)", &mut timings);
    print!("{}", experiments::timelines::render_all());
    println!();

    section("Fig 3", &mut timings);
    print!("{}", experiments::fig03::run().render());
    println!();

    section("Fig 2", &mut timings);
    print!("{}", experiments::fig02::run(&h).render());
    println!();

    section("Figs 6/7", &mut timings);
    print!("{}", experiments::fig06_07::run_fig06(&h).render());
    println!();
    print!("{}", experiments::fig06_07::run_fig07(&h).render());
    println!();

    section("Figs 11/12/23", &mut timings);
    let ec = experiments::emcc_ctr::run(&h);
    print!("{}", ec.fig11.render());
    println!();
    print!("{}", ec.fig12.render());
    println!();
    print!("{}", ec.fig23.render());
    println!();

    section("Fig 15", &mut timings);
    print!("{}", experiments::fig15::run(&h).render());
    println!();

    section("Figs 16/17", &mut timings);
    let rows = experiments::perf::run_suite(&h);
    print!("{}", experiments::perf::fig16(&rows).render());
    println!(
        "headline: EMCC speeds up Morphable by {:.1}% on average (paper: 7%)\n",
        experiments::perf::mean_emcc_speedup(&rows) * 100.0
    );
    print!("{}", experiments::perf::fig17(&rows).render());
    println!();

    section("Fig 18", &mut timings);
    print!("{}", experiments::fig18::run(&h).render());
    println!();

    section("Fig 19", &mut timings);
    print!("{}", experiments::fig19::run(&h).render());
    println!();

    section("Fig 20", &mut timings);
    print!("{}", experiments::fig20::run(&h).render());
    println!();

    section("Figs 21/22", &mut timings);
    let ch = experiments::fig21_22::run(&h);
    print!("{}", ch.fig21.render());
    println!();
    print!("{}", ch.fig22.render());
    println!();

    section("Fig 24", &mut timings);
    print!("{}", experiments::fig24::run(&h).render());
    println!();

    section("ablations", &mut timings);
    print!("{}", experiments::ablations::l2_budget(&h).render());
    println!();
    print!("{}", experiments::ablations::aes_wait(&h).render());
    println!();
    print!("{}", experiments::ablations::xpt(&h).render());

    if let Some(last) = timings.last_mut() {
        last.1 = section_start.elapsed().as_secs_f64();
    }

    let total_secs = t0.elapsed().as_secs_f64();
    let (hits, misses) = h.cache_stats();
    let exhausted = h.recovery_exhausted();
    for e in &exhausted {
        // A run that completed but poisoned deliveries is worth a warning
        // even though the figures still render — the counter below keeps
        // it visible in the telemetry file.
        eprintln!(
            "[{total_secs:>7.1}s] WARNING: {} / {} exhausted its integrity-retry \
             budget ({} unrecovered deliveries)",
            e.bench, e.scheme, e.unrecovered
        );
    }
    let json = bench_json(
        scale,
        h.jobs(),
        requested,
        sim_secs,
        total_secs,
        hits,
        misses,
        &timings,
        &[],
        &exhausted,
    );
    match std::fs::write("BENCH_run_all.json", &json) {
        Ok(()) => eprintln!("[{total_secs:>7.1}s] wrote BENCH_run_all.json"),
        Err(e) => eprintln!("[{total_secs:>7.1}s] BENCH_run_all.json: {e}"),
    }
    eprintln!("[{total_secs:>7.1}s] done ({misses} simulations, {hits} cache hits)");
}

/// Writes a Chrome-trace JSON (`chrome://tracing` / Perfetto) of one
/// representative EMCC run: canneal at Test scale on the Table I
/// configuration. The traced run executes inline — never on the worker
/// pool — so the file is byte-identical for any `EMCC_JOBS`.
fn export_trace(path: &str) -> std::io::Result<()> {
    use emcc::prelude::*;
    let cfg = SystemConfig::table_i(SecurityScheme::Emcc);
    let sources = Benchmark::Canneal.build_scaled(7, cfg.cores, WorkloadScale::Test);
    let (_, rec) = SecureSystem::new(cfg).run_traced(sources, 0, 2_000, 8_192);
    std::fs::write(path, rec.chrome_json())
}

/// Hand-rolled JSON (no serde in the tree): timing + cache telemetry +
/// the failed-run trail (empty on a clean pass) + runs that completed
/// with an exhausted integrity-retry budget (kept distinct from
/// `failed_runs`: their reports are valid and rendered).
#[allow(clippy::too_many_arguments)]
fn bench_json(
    scale: emcc::prelude::WorkloadScale,
    jobs: usize,
    requested: usize,
    sim_secs: f64,
    total_secs: f64,
    hits: u64,
    misses: u64,
    timings: &[(&str, f64)],
    failures: &[FailedRun],
    exhausted: &[ExhaustedRun],
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(s, "  \"jobs\": {jobs},");
    let _ = writeln!(s, "  \"requested_runs\": {requested},");
    let _ = writeln!(s, "  \"unique_runs\": {misses},");
    let _ = writeln!(s, "  \"cache_hits\": {hits},");
    let _ = writeln!(s, "  \"cache_misses\": {misses},");
    let _ = writeln!(s, "  \"simulate_seconds\": {sim_secs:.3},");
    let _ = writeln!(s, "  \"total_seconds\": {total_secs:.3},");
    s.push_str("  \"failed_runs\": [");
    for (i, f) in failures.iter().enumerate() {
        let comma = if i + 1 == failures.len() { "" } else { "," };
        let _ = write!(
            s,
            "\n    {{\"bench\": \"{}\", \"scheme\": \"{}\", \"error\": \"{}\"}}{comma}",
            json_escape(&f.bench),
            json_escape(&f.scheme),
            json_escape(&f.error)
        );
    }
    if failures.is_empty() {
        s.push_str("],\n");
    } else {
        s.push_str("\n  ],\n");
    }
    let _ = writeln!(s, "  \"recovery_exhausted_count\": {},", exhausted.len());
    s.push_str("  \"recovery_exhausted_runs\": [");
    for (i, e) in exhausted.iter().enumerate() {
        let comma = if i + 1 == exhausted.len() { "" } else { "," };
        let _ = write!(
            s,
            "\n    {{\"bench\": \"{}\", \"scheme\": \"{}\", \"unrecovered\": {}}}{comma}",
            json_escape(&e.bench),
            json_escape(&e.scheme),
            e.unrecovered
        );
    }
    if exhausted.is_empty() {
        s.push_str("],\n");
    } else {
        s.push_str("\n  ],\n");
    }
    s.push_str("  \"render_seconds\": {\n");
    for (i, (name, secs)) in timings.iter().enumerate() {
        let comma = if i + 1 == timings.len() { "" } else { "," };
        let _ = writeln!(s, "    \"{name}\": {secs:.3}{comma}");
    }
    s.push_str("  }\n}\n");
    s
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
