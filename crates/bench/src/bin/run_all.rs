//! Regenerates every figure in one pass (sharing simulations where
//! figures overlap) — the data source for EXPERIMENTS.md.
//!
//! ```sh
//! EMCC_SCALE=small cargo run --release -p emcc-bench --bin run_all
//! ```

use std::time::Instant;

use emcc_bench::experiments;
use emcc_bench::{scale_from_env, ExpParams};

fn main() {
    let scale = scale_from_env();
    let p = ExpParams::for_scale(scale);
    let t0 = Instant::now();
    println!(
        "EMCC reproduction: regenerating all figures at {scale:?} scale \
         ({} warmup + {} measured mem-ops/core)\n",
        p.warmup_ops, p.measure_ops
    );

    let section = |name: &str| {
        eprintln!("[{:>7.1}s] running {name}...", t0.elapsed().as_secs_f64());
    };

    section("timelines (Figs 5/8/10/13/14)");
    print!("{}", experiments::timelines::render_all());
    println!();

    section("Fig 3");
    print!("{}", experiments::fig03::run().render());
    println!();

    section("Fig 2");
    print!("{}", experiments::fig02::run(&p).render());
    println!();

    section("Figs 6/7");
    print!("{}", experiments::fig06_07::run_fig06(&p).render());
    println!();
    print!("{}", experiments::fig06_07::run_fig07(&p).render());
    println!();

    section("Figs 11/12/23");
    let ec = experiments::emcc_ctr::run(&p);
    print!("{}", ec.fig11.render());
    println!();
    print!("{}", ec.fig12.render());
    println!();
    print!("{}", ec.fig23.render());
    println!();

    section("Fig 15");
    print!("{}", experiments::fig15::run(&p).render());
    println!();

    section("Figs 16/17");
    let rows = experiments::perf::run_suite(&p);
    print!("{}", experiments::perf::fig16(&rows).render());
    println!(
        "headline: EMCC speeds up Morphable by {:.1}% on average (paper: 7%)\n",
        experiments::perf::mean_emcc_speedup(&rows) * 100.0
    );
    print!("{}", experiments::perf::fig17(&rows).render());
    println!();

    section("Fig 18");
    print!("{}", experiments::fig18::run(&p).render());
    println!();

    section("Fig 19");
    print!("{}", experiments::fig19::run(&p).render());
    println!();

    section("Fig 20");
    print!("{}", experiments::fig20::run(&p).render());
    println!();

    section("Figs 21/22");
    let ch = experiments::fig21_22::run(&p);
    print!("{}", ch.fig21.render());
    println!();
    print!("{}", ch.fig22.render());
    println!();

    section("Fig 24");
    print!("{}", experiments::fig24::run(&p).render());
    println!();

    section("ablations");
    print!("{}", experiments::ablations::l2_budget(&p).render());
    println!();
    print!("{}", experiments::ablations::aes_wait(&p).render());
    println!();
    print!("{}", experiments::ablations::xpt(&p).render());

    eprintln!("[{:>7.1}s] done", t0.elapsed().as_secs_f64());
}
