//! Regenerates Figure 20 (sensitivity to MC counter-cache size).
use emcc_bench::{experiments::fig20, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&fig20::requests());
    print!("{}", fig20::run(&h).render());
}
