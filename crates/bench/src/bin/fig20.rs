//! Regenerates Figure 20 (sensitivity to MC counter-cache size).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    print!("{}", emcc_bench::experiments::fig20::run(&p).render());
}
