//! Regenerates Figure 17 (average L2 miss latency).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    let rows = emcc_bench::experiments::perf::run_suite(&p);
    print!("{}", emcc_bench::experiments::perf::fig17(&rows).render());
}
