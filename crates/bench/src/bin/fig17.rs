//! Regenerates Figure 17 (average L2 miss latency).
use emcc_bench::{experiments::perf, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&perf::requests());
    let rows = perf::run_suite(&h);
    print!("{}", perf::fig17(&rows).render());
}
