//! Regenerates Figure 15 (bandwidth utilization breakdown).
use emcc_bench::{experiments::fig15, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&fig15::requests());
    print!("{}", fig15::run(&h).render());
}
