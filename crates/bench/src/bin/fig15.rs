//! Regenerates Figure 15 (bandwidth utilization breakdown).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    print!("{}", emcc_bench::experiments::fig15::run(&p).render());
}
