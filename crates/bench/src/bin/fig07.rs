//! Regenerates Figure 7 (counter hit/miss split, 12 MB/core LLC).
use emcc_bench::{experiments::fig06_07, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&fig06_07::fig07_requests());
    print!("{}", fig06_07::run_fig07(&h).render());
}
