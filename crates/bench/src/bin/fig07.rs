//! Regenerates Figure 7 (counter hit/miss split, 12 MB/core LLC).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    print!("{}", emcc_bench::experiments::fig06_07::run_fig07(&p).render());
}
