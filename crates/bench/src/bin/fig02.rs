//! Regenerates Figure 2 (DRAM traffic overhead w/o vs w/ counters in LLC).
use emcc_bench::{experiments::fig02, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&fig02::requests());
    print!("{}", fig02::run(&h).render());
}
