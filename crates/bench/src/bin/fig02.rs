//! Regenerates Figure 2 (DRAM traffic overhead w/o vs w/ counters in LLC).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    print!("{}", emcc_bench::experiments::fig02::run(&p).render());
}
