//! Multi-threaded throughput benchmark for the secure-memory service.
//!
//! ```text
//! service_bench [--smoke] [--threads LIST] [--ops N] [--out FILE]
//! ```
//!
//! Each configured thread count runs a fresh [`SecureMemoryService`] over
//! an [`InMemoryBackend`]: every thread replays a deterministic script of
//! batched writes, guarded writes and batched reads against its own
//! stripe of the line space (`line % threads == t`), so adjacent lines —
//! and therefore shared counter blocks — are contended across threads
//! while per-line values stay trivially checkable. Wall-clock ops/sec
//! per thread count lands in `BENCH_service.json` (`--out` overrides).
//!
//! `--smoke` shrinks the op count and thread list for CI. Exit 2 is
//! reserved for usage errors; a read-back mismatch panics (exit 101).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use emcc::counters::CounterDesign;
use emcc::crypto::DataBlock;
use emcc::secmem::service::InMemoryBackend;
use emcc::secmem::{MemoryAdt, SecureMemoryService, SecurityScheme, ServiceConfig, ServiceError};
use emcc::sim::LineAddr;

/// Benchmark seed: scripts are reproducible bit-for-bit.
const SEED: u64 = 0x5E4B;

/// Line space per service instance.
const LINES: u64 = 1 << 14;

struct Args {
    threads: Vec<usize>,
    ops: u64,
    out: PathBuf,
}

fn usage() -> ! {
    eprintln!("usage: service_bench [--smoke] [--threads LIST] [--ops N] [--out FILE]");
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: vec![1, 2, 4, 8],
        ops: 20_000,
        out: PathBuf::from("BENCH_service.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs {what}");
                usage()
            })
        };
        match flag.as_str() {
            "--smoke" => {
                args.threads = vec![1, 4];
                args.ops = 2_000;
            }
            "--threads" => {
                args.threads = value("a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if args.threads.is_empty() || args.threads.contains(&0) {
                    usage()
                }
            }
            "--ops" => args.ops = value("a count").parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = PathBuf::from(value("a path")),
            _ => usage(),
        }
    }
    args
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn block(v: u64) -> DataBlock {
    DataBlock::from_words([v; 8])
}

/// Thread `t` of `n` owns the interleaved stripe `{ l | l % n == t }`, so
/// counter blocks are shared across threads while ownership stays
/// disjoint (guards are authoritative without cross-thread coordination).
fn owned_line(thread: u64, n: u64, r: u64) -> LineAddr {
    LineAddr::new((r % (LINES / n)) * n + thread)
}

/// Retries `f` past backpressure; returns the result plus how many
/// `Overloaded` rejections were absorbed.
fn with_retry<T>(mut f: impl FnMut() -> Result<T, ServiceError>) -> (T, u64) {
    let mut rejected = 0;
    loop {
        match f() {
            Ok(v) => return (v, rejected),
            Err(ServiceError::Overloaded { .. }) => {
                rejected += 1;
                std::thread::yield_now();
            }
            Err(e) => panic!("service error: {e}"),
        }
    }
}

/// One measured cell: `threads` workers, `ops` operations each.
struct Cell {
    threads: usize,
    total_ops: u64,
    seconds: f64,
    ops_per_sec: f64,
    overloaded_absorbed: u64,
    service_retries: u64,
}

/// Runs one thread's deterministic script: 60% single-line batch writes,
/// 20% guarded writes (guard = the thread's own last value), 20% batched
/// reads checked against the thread's model.
fn run_thread(svc: &SecureMemoryService<InMemoryBackend>, thread: u64, n: u64, ops: u64) -> u64 {
    let mut last: std::collections::HashMap<LineAddr, DataBlock> = Default::default();
    let mut absorbed = 0;
    for i in 0..ops {
        let r = mix(SEED ^ thread.wrapping_mul(0x9049).wrapping_add(i));
        let line = owned_line(thread, n, r >> 16);
        let val = block(r);
        match r % 10 {
            0..=5 => {
                let (_, rej) = with_retry(|| svc.batch_write(&[(line, val)]));
                absorbed += rej;
                last.insert(line, val);
            }
            6 | 7 => {
                let guard = last.get(&line).copied();
                let (seen, rej) = with_retry(|| svc.guarded_write((line, guard), &[(line, val)]));
                absorbed += rej;
                assert_eq!(seen, guard, "line {line:?}: foreign write on owned stripe");
                last.insert(line, val);
            }
            _ => {
                let addrs: Vec<LineAddr> = (0..4)
                    .map(|k| owned_line(thread, n, (r >> 16) + k))
                    .collect();
                let (got, rej) = with_retry(|| svc.batch_read(&addrs));
                absorbed += rej;
                for (addr, g) in addrs.iter().zip(&got) {
                    assert_eq!(
                        g.as_ref(),
                        last.get(addr),
                        "line {addr:?}: read-back mismatch"
                    );
                }
            }
        }
    }
    absorbed
}

fn run_cell(threads: usize, ops: u64) -> Cell {
    let cfg = ServiceConfig {
        max_in_flight: threads * 2,
        ..ServiceConfig::default()
    };
    let svc = SecureMemoryService::with_design(
        InMemoryBackend::new(),
        SEED,
        LINES,
        CounterDesign::Morphable,
        cfg,
    );
    let t0 = Instant::now();
    let absorbed: u64 = std::thread::scope(|s| {
        let svc = &svc;
        let handles: Vec<_> = (0..threads)
            .map(|t| s.spawn(move || run_thread(svc, t as u64, threads as u64, ops)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    });
    let seconds = t0.elapsed().as_secs_f64();
    let total_ops = ops * threads as u64;
    let stats = svc.stats();
    Cell {
        threads,
        total_ops,
        seconds,
        ops_per_sec: total_ops as f64 / seconds.max(1e-9),
        overloaded_absorbed: absorbed,
        service_retries: stats.retries,
    }
}

/// Hand-rolled JSON (no serde in the tree).
fn bench_json(ops: u64, cells: &[Cell]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"backend\": \"in-memory\",");
    let _ = writeln!(s, "  \"scheme\": \"{}\",", SecurityScheme::Emcc);
    let _ = writeln!(s, "  \"data_lines\": {LINES},");
    let _ = writeln!(s, "  \"ops_per_thread\": {ops},");
    s.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"threads\": {}, \"total_ops\": {}, \"seconds\": {:.3}, \
             \"ops_per_sec\": {:.0}, \"overloaded_absorbed\": {}, \
             \"service_retries\": {}}}{comma}",
            c.threads,
            c.total_ops,
            c.seconds,
            c.ops_per_sec,
            c.overloaded_absorbed,
            c.service_retries
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args = parse_args();
    let mut cells = Vec::new();
    for &threads in &args.threads {
        let cell = run_cell(threads, args.ops);
        println!(
            "{:>2} thread(s): {:>10.0} ops/s ({} ops in {:.3}s, {} rejections absorbed)",
            cell.threads, cell.ops_per_sec, cell.total_ops, cell.seconds, cell.overloaded_absorbed
        );
        cells.push(cell);
    }
    let json = bench_json(args.ops, &cells);
    std::fs::write(&args.out, json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out.display()));
    println!("wrote {}", args.out.display());
}
