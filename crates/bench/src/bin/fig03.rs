//! Regenerates Figure 3 (LLC hit latency distribution).
fn main() {
    print!("{}", emcc_bench::experiments::fig03::run().render());
}
