//! Regenerates Figure 21 (sensitivity to DRAM channel count).
use emcc_bench::{experiments::fig21_22, Harness};

fn main() {
    let h = Harness::from_env();
    h.execute(&fig21_22::requests());
    print!("{}", fig21_22::run(&h).fig21.render());
}
