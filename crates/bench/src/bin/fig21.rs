//! Regenerates Figure 21 (sensitivity to DRAM channel count).
fn main() {
    let p = emcc_bench::ExpParams::for_scale(emcc_bench::scale_from_env());
    print!("{}", emcc_bench::experiments::fig21_22::run(&p).fig21.render());
}
