//! DRAM fault-injection campaign: sweeps fault class × rate × scheme and
//! asserts 100% detection of consumed faults under both MC-side and EMCC
//! L2-side verification, cross-checked against the functional secure
//! memory.
//!
//! ```text
//! cargo run --release -p emcc-bench --bin fault_campaign [-- --smoke]
//! ```
//!
//! `--smoke` forces the test scale (one rate per cell, small op counts) —
//! the fast seeded campaign CI runs. Without it the scale comes from
//! `EMCC_SCALE` (default `small`); workers come from `EMCC_JOBS`. Exits 1
//! when any cell or oracle scenario fails, 2 on bad usage.

use emcc::prelude::*;
use emcc_bench::fault_campaign::run_campaign;
use emcc_bench::{jobs_from_env, scale_from_env};

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("fault_campaign: unknown argument {other:?} (only --smoke)");
                std::process::exit(2);
            }
        }
    }
    let scale = if smoke {
        WorkloadScale::Test
    } else {
        scale_from_env()
    };
    let report = run_campaign(scale, jobs_from_env());
    print!("{}", report.render());
    if !report.all_pass() {
        std::process::exit(1);
    }
}
