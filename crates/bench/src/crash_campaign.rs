//! Crash-recovery campaigns for the secure-memory service: seeded crash
//! schedules (including torn final journal records and stale-checkpoint
//! windows) plus optional at-rest corruption, judged against the
//! crash-consistency invariant:
//!
//! > Every acknowledged write reads back exactly after recovery, or the
//! > loss is *detected* (recovery error / quarantined line) — never
//! > silent.
//!
//! Each case runs over both backends — `InMemoryBackend` and
//! `FileBackend` — under the same schedule; the two must reach the same
//! verdict (the backends differ only in medium, never in semantics).
//! Failing cases shrink to minimal reproducers with the same
//! delta-debugging driver as the simulator fuzzer, and reproducers
//! serialize to replayable text files.

use std::collections::BTreeMap;
use std::path::Path;

use emcc::counters::CounterDesign;
use emcc::crypto::DataBlock;
use emcc::secmem::service::{
    CrashInjector, CrashSchedule, FileBackend, InMemoryBackend, Region, StorageBackend,
};
use emcc::secmem::{recover, MemoryAdt, SecureMemoryService, ServiceConfig, ServiceError};
use emcc::sim::{LineAddr, Rng64};
use proptest::shrink::{shrink_int, shrink_option, shrink_vec, Shrink};

use crate::pool::run_indexed_catching;

/// Fixed campaign seed (mixed with the case index).
pub const CRASH_SEED: u64 = 0xC4A5;

/// Counter designs swept by the campaign, indexed by `CrashCase::design`.
pub const DESIGNS: [CounterDesign; 3] = [
    CounterDesign::Monolithic,
    CounterDesign::Sc64,
    CounterDesign::Morphable,
];

/// Post-crash at-rest corruption of one persisted byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptPlan {
    /// Target the checkpoint image (true) or the journal.
    pub checkpoint: bool,
    /// Byte offset into the region (out-of-range flips nothing).
    pub offset: u64,
    /// Non-zero XOR mask applied to the byte.
    pub xor: u8,
}

/// One scripted service operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashOp {
    /// `batch_write` of one line.
    Write {
        /// Target line.
        line: u64,
        /// Written word pattern.
        val: u64,
    },
    /// `guarded_write` guarded on the line's tracked current value.
    Guarded {
        /// Target line.
        line: u64,
        /// Written word pattern.
        val: u64,
    },
    /// `batch_read` of one line, checked against the tracked model.
    Read {
        /// Target line.
        line: u64,
    },
    /// Explicit checkpoint (install + truncate: two mutating calls).
    Checkpoint,
}

/// A complete, self-describing crash case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashCase {
    /// Generating seed (also the service key seed).
    pub seed: u64,
    /// Index into [`DESIGNS`].
    pub design: usize,
    /// Protected data space in lines (power of two).
    pub data_lines: u64,
    /// When the backend dies (0 = never) and how many bytes of the final
    /// append survive.
    pub schedule: CrashSchedule,
    /// Optional post-crash byte corruption.
    pub corrupt: Option<CorruptPlan>,
    /// The op script.
    pub ops: Vec<CrashOp>,
}

impl CrashCase {
    /// Generates the case for `seed`. Pure: same seed, same case.
    ///
    /// A quarter of cases are write-hammers (many writes to a handful of
    /// lines) so split-counter minor overflows — and thus whole-block
    /// rebase records — land on both sides of the crash point.
    pub fn generate(seed: u64) -> Self {
        let mut rng = Rng64::new(seed ^ 0xC4A5_CA5E);
        let design = rng.index(DESIGNS.len());
        let data_lines = 256;
        let hammer = rng.chance(0.25);
        let n_ops = if hammer {
            100 + rng.index(101) // 100..=200: enough writes to rebase
        } else {
            8 + rng.index(41) // 8..=48
        };
        let line_span: u64 = if hammer { 4 } else { 32 };
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            let line = rng.below(line_span);
            let val = rng.below(1 << 32);
            ops.push(match rng.index(10) {
                0..=5 => CrashOp::Write { line, val },
                6..=7 => CrashOp::Guarded { line, val },
                8 => CrashOp::Read { line },
                _ => CrashOp::Checkpoint,
            });
        }
        // Mutating backend calls ≈ writes + 2 per checkpoint; sample past
        // the end too so "never crashes" cases stay in the mix.
        let schedule = CrashSchedule {
            crash_on_op: rng.below(n_ops as u64 + 16),
            torn_keep: rng.below(96),
        };
        let corrupt = if rng.chance(0.25) {
            Some(CorruptPlan {
                checkpoint: rng.chance(0.5),
                offset: rng.below(2048),
                xor: 1 << rng.index(8),
            })
        } else {
            None
        };
        CrashCase {
            seed,
            design,
            data_lines,
            schedule,
            corrupt,
            ops,
        }
    }

    /// Checks the constraints [`apply`] relies on, so hand-edited
    /// reproducers and shrink candidates fail with a message.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.design >= DESIGNS.len() {
            return Err(format!("invalid case: design index {}", self.design));
        }
        if !self.data_lines.is_power_of_two() || self.data_lines < 64 {
            return Err("invalid case: data_lines must be a power of two >= 64".into());
        }
        if self.ops.is_empty() || self.ops.len() > 4096 {
            return Err("invalid case: ops must be 1..=4096".into());
        }
        for op in &self.ops {
            let line = match *op {
                CrashOp::Write { line, .. }
                | CrashOp::Guarded { line, .. }
                | CrashOp::Read { line } => line,
                CrashOp::Checkpoint => continue,
            };
            if line >= self.data_lines {
                return Err(format!("invalid case: line {line} out of data space"));
            }
        }
        if let Some(c) = self.corrupt {
            if c.xor == 0 {
                return Err("invalid case: corrupt xor must be non-zero".into());
            }
        }
        Ok(())
    }
}

impl Shrink for CrashCase {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let with = |f: &dyn Fn(&mut CrashCase)| {
            let mut c = self.clone();
            f(&mut c);
            c
        };
        // Cheap structural knobs first: drop the corruption add-on, pull
        // the crash point earlier, shorten the torn prefix — then the op
        // script itself.
        for corrupt in shrink_option(&self.corrupt, |c| {
            let mut cands = Vec::new();
            for offset in shrink_int(c.offset, 0) {
                cands.push(CorruptPlan { offset, ..*c });
            }
            if c.xor != 1 {
                cands.push(CorruptPlan { xor: 1, ..*c });
            }
            cands
        }) {
            out.push(with(&|c| c.corrupt = corrupt));
        }
        for crash_on_op in shrink_int(self.schedule.crash_on_op, 0) {
            out.push(with(&|c| c.schedule.crash_on_op = crash_on_op));
        }
        for torn_keep in shrink_int(self.schedule.torn_keep, 0) {
            out.push(with(&|c| c.schedule.torn_keep = torn_keep));
        }
        for shorter in shrink_vec(&self.ops, 1, |op| {
            let mut elems = Vec::new();
            match *op {
                CrashOp::Write { line, val } => {
                    for l in shrink_int(line, 0) {
                        elems.push(CrashOp::Write { line: l, val });
                    }
                    for v in shrink_int(val, 0) {
                        elems.push(CrashOp::Write { line, val: v });
                    }
                }
                CrashOp::Guarded { line, val } => {
                    elems.push(CrashOp::Write { line, val });
                }
                CrashOp::Checkpoint | CrashOp::Read { .. } => {}
            }
            elems
        }) {
            out.push(with(&|c| c.ops = shorter.clone()));
        }
        out.retain(|c| c.validate().is_ok());
        out
    }
}

/// What running a case over one backend produced.
#[derive(Debug, Clone)]
pub struct CaseRun {
    /// Final acknowledged value per line (later acks overwrite earlier).
    pub acked: BTreeMap<u64, u64>,
    /// Whether the schedule fired during the run.
    pub crashed: bool,
    /// Whether the corruption plan changed a persisted byte.
    pub corrupted: bool,
    /// `None` when the invariant held; else why it did not.
    pub failure: Option<String>,
}

/// The service configuration campaigns run under: no auto-checkpoint
/// (the script checkpoints explicitly) and no retries (a crashed backend
/// never comes back, so retrying only obscures the crash point).
fn campaign_config() -> ServiceConfig {
    ServiceConfig {
        retry: emcc::secmem::RetryPolicy {
            max_attempts: 0,
            base_ticks: 0,
        },
        checkpoint_every: 0,
        ..ServiceConfig::default()
    }
}

/// Runs the script until completion or the injected crash, then applies
/// the corruption plan, recovers, and judges the invariant.
pub fn apply<B: StorageBackend>(case: &CrashCase, backend: B) -> CaseRun {
    let design = DESIGNS[case.design];
    let cfg = campaign_config();
    let svc = SecureMemoryService::with_design(
        CrashInjector::new(backend, case.schedule),
        case.seed,
        case.data_lines,
        design,
        cfg,
    );

    let mut acked: BTreeMap<u64, u64> = BTreeMap::new();
    let mut failure: Option<String> = None;
    'script: for (i, op) in case.ops.iter().enumerate() {
        match *op {
            CrashOp::Write { line, val } => {
                match svc.batch_write(&[(LineAddr::new(line), DataBlock::from_words([val; 8]))]) {
                    Ok(_) => {
                        acked.insert(line, val);
                    }
                    Err(ServiceError::Backend { .. }) => break 'script,
                    Err(e) => {
                        failure = Some(format!("op {i}: unexpected write error: {e}"));
                        break 'script;
                    }
                }
            }
            CrashOp::Guarded { line, val } => {
                let expect = acked.get(&line).map(|&v| DataBlock::from_words([v; 8]));
                match svc.guarded_write(
                    (LineAddr::new(line), expect),
                    &[(LineAddr::new(line), DataBlock::from_words([val; 8]))],
                ) {
                    Ok(seen) if seen == expect => {
                        acked.insert(line, val);
                    }
                    Ok(_) => {
                        failure = Some(format!("op {i}: guard observed an untracked value"));
                        break 'script;
                    }
                    Err(ServiceError::Backend { .. }) => break 'script,
                    Err(e) => {
                        failure = Some(format!("op {i}: unexpected guarded error: {e}"));
                        break 'script;
                    }
                }
            }
            CrashOp::Read { line } => {
                // Pre-crash oracle: volatile state must track every ack.
                match svc.batch_read(&[LineAddr::new(line)]) {
                    Ok(got) => {
                        let want = acked.get(&line).map(|&v| DataBlock::from_words([v; 8]));
                        if got[0] != want {
                            failure = Some(format!("op {i}: pre-crash read diverged"));
                            break 'script;
                        }
                    }
                    Err(e) => {
                        failure = Some(format!("op {i}: unexpected read error: {e}"));
                        break 'script;
                    }
                }
            }
            CrashOp::Checkpoint => match svc.checkpoint() {
                Ok(()) => {}
                Err(ServiceError::Backend { .. }) => break 'script,
                Err(e) => {
                    failure = Some(format!("op {i}: unexpected checkpoint error: {e}"));
                    break 'script;
                }
            },
        }
    }

    let injector = svc.into_backend();
    let crashed = injector.crashed();
    let mut inner = injector.into_inner();
    let corrupted = match case.corrupt {
        Some(c) => {
            let region = if c.checkpoint {
                Region::Checkpoint
            } else {
                Region::Journal
            };
            match inner.corrupt_byte(region, c.offset as usize, c.xor) {
                Ok(applied) => applied,
                Err(e) => {
                    return CaseRun {
                        acked,
                        crashed,
                        corrupted: false,
                        failure: Some(format!("corrupt_byte failed: {e}")),
                    }
                }
            }
        }
        None => false,
    };
    if failure.is_some() {
        return CaseRun {
            acked,
            crashed,
            corrupted,
            failure,
        };
    }

    let failure = judge(case, &acked, corrupted, inner);
    CaseRun {
        acked,
        crashed,
        corrupted,
        failure,
    }
}

/// Judges recovery of `backend` against the acked map: exact readback,
/// or detection — never silent loss.
fn judge<B: StorageBackend>(
    case: &CrashCase,
    acked: &BTreeMap<u64, u64>,
    corrupted: bool,
    backend: B,
) -> Option<String> {
    let recovered = recover(
        backend,
        case.seed,
        case.data_lines,
        DESIGNS[case.design],
        campaign_config(),
    );
    let (svc, report) = match recovered {
        Ok(pair) => pair,
        Err(e) => {
            if corrupted {
                return None; // detected at recovery: the invariant held
            }
            return Some(format!("recovery failed without corruption: {e}"));
        }
    };
    if !corrupted && !report.quarantined.is_empty() {
        return Some(format!(
            "{} lines quarantined after a pure crash",
            report.quarantined.len()
        ));
    }
    for (&line, &val) in acked {
        match svc.batch_read(&[LineAddr::new(line)]) {
            Ok(got) => {
                let want = DataBlock::from_words([val; 8]);
                if got[0] != Some(want) {
                    return Some(format!(
                        "silent loss: line {line} acked {val:#x}, read back {:?}",
                        got[0].map(|b| b.words()[0])
                    ));
                }
            }
            Err(ServiceError::Corruption(_)) if corrupted => {} // detected
            Err(e) => return Some(format!("post-recovery read of line {line}: {e}")),
        }
    }
    None
}

/// Runs one case over both backends and cross-checks their verdicts.
/// `file_dir` is wiped and reused for the `FileBackend` run.
pub fn run_case(case: &CrashCase, file_dir: &Path) -> CaseRun {
    let inmem = apply(case, InMemoryBackend::new());
    let _ = std::fs::remove_dir_all(file_dir);
    let file_backend = match FileBackend::open(file_dir) {
        Ok(b) => b,
        Err(e) => {
            return CaseRun {
                failure: Some(format!("file backend scratch: {e}")),
                ..inmem
            }
        }
    };
    let file = apply(case, file_backend);
    let _ = std::fs::remove_dir_all(file_dir);
    if inmem.failure.is_none() != file.failure.is_none() || inmem.acked != file.acked {
        return CaseRun {
            failure: Some(format!(
                "backend divergence: inmem {:?} vs file {:?}",
                inmem.failure, file.failure
            )),
            ..inmem
        };
    }
    inmem
}

/// A completed campaign.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// One verdict line per case, in index order (byte-identical for any
    /// worker count).
    pub verdicts: Vec<String>,
    /// `(index, case, why)` for every failed case.
    pub failures: Vec<(usize, CrashCase, String)>,
    /// Cases whose schedule fired.
    pub crashed_cases: u64,
    /// Cases whose corruption plan changed a persisted byte.
    pub corrupted_cases: u64,
}

impl CrashReport {
    /// Whether every case upheld the invariant.
    pub fn all_pass(&self) -> bool {
        self.failures.is_empty()
    }
}

/// splitmix64 per-case seed derivation (same scheme as the fuzzer).
pub fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs `cases` schedules per backend on `jobs` workers. Panicking cases
/// are contained by the pool and reported as failures.
pub fn run_campaign(cases: usize, seed: u64, jobs: usize, scratch: &Path) -> CrashReport {
    let runs = run_indexed_catching(cases, jobs, |i| {
        let case = CrashCase::generate(mix(seed, i as u64));
        let dir = scratch.join(format!("case_{i}"));
        (case.clone(), run_case(&case, &dir))
    });
    let mut verdicts = Vec::with_capacity(cases);
    let mut failures = Vec::new();
    let mut crashed_cases = 0;
    let mut corrupted_cases = 0;
    for (i, run) in runs.into_iter().enumerate() {
        match run {
            Ok((case, r)) => {
                crashed_cases += u64::from(r.crashed);
                corrupted_cases += u64::from(r.corrupted);
                let verdict = match &r.failure {
                    None => "ok".to_string(),
                    Some(why) => format!("FAIL: {why}"),
                };
                verdicts.push(format!(
                    "case {i:>5} seed {:#018x} design {:<10} ops {:>3} crash {:>3}/{:<3} corrupt {} acked {:>3} {}",
                    case.seed,
                    format!("{:?}", DESIGNS[case.design]),
                    case.ops.len(),
                    case.schedule.crash_on_op,
                    case.schedule.torn_keep,
                    match case.corrupt {
                        None => "-".to_string(),
                        Some(c) =>
                            format!("{}@{}", if c.checkpoint { "ckpt" } else { "wal" }, c.offset),
                    },
                    r.acked.len(),
                    verdict,
                ));
                if let Some(why) = r.failure {
                    failures.push((i, case, why));
                }
            }
            Err(panic_msg) => {
                let case = CrashCase::generate(mix(seed, i as u64));
                verdicts.push(format!("case {i:>5} PANIC: {panic_msg}"));
                failures.push((i, case, format!("panicked: {panic_msg}")));
            }
        }
    }
    CrashReport {
        verdicts,
        failures,
        crashed_cases,
        corrupted_cases,
    }
}

/// Serializes a case as a replayable reproducer file.
pub fn to_text(case: &CrashCase) -> String {
    let mut s = String::new();
    s.push_str("// emcc crash-campaign reproducer — replay via `crash_campaign --replay <file>`\n");
    s.push_str("CrashCase(\n");
    s.push_str(&format!("    seed: {},\n", case.seed));
    s.push_str(&format!("    design: {},\n", case.design));
    s.push_str(&format!("    data_lines: {},\n", case.data_lines));
    s.push_str(&format!(
        "    crash_on_op: {},\n",
        case.schedule.crash_on_op
    ));
    s.push_str(&format!("    torn_keep: {},\n", case.schedule.torn_keep));
    s.push_str(&format!(
        "    corrupt: {},\n",
        match case.corrupt {
            None => "None".to_string(),
            Some(c) => format!(
                "Corrupt(checkpoint: {}, offset: {}, xor: {})",
                c.checkpoint, c.offset, c.xor
            ),
        }
    ));
    s.push_str("    ops: [\n");
    for op in &case.ops {
        s.push_str(&match *op {
            CrashOp::Write { line, val } => {
                format!("        (op: write, line: {line}, val: {val}),\n")
            }
            CrashOp::Guarded { line, val } => {
                format!("        (op: guarded, line: {line}, val: {val}),\n")
            }
            CrashOp::Read { line } => format!("        (op: read, line: {line}),\n"),
            CrashOp::Checkpoint => "        (op: checkpoint),\n".to_string(),
        });
    }
    s.push_str("    ],\n)\n");
    s
}

/// Parses a reproducer file back into a validated case.
///
/// # Errors
///
/// Returns a message naming the offending line for syntax errors,
/// missing keys, or a case failing [`CrashCase::validate`].
pub fn from_text(text: &str) -> Result<CrashCase, String> {
    let mut fields: Vec<(String, String)> = Vec::new();
    let mut ops: Vec<CrashOp> = Vec::new();
    let mut in_ops = false;
    for (num, raw) in text.lines().enumerate() {
        let line = match raw.find("//") {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() || line == "CrashCase(" || line == ")" {
            continue;
        }
        if line == "ops: [" {
            in_ops = true;
            continue;
        }
        if in_ops && (line == "]," || line == "]") {
            in_ops = false;
            continue;
        }
        let at = |e: String| format!("line {}: {e}", num + 1);
        if in_ops {
            ops.push(parse_op(line).map_err(at)?);
        } else {
            let body = line.strip_suffix(',').unwrap_or(line);
            let (k, v) = body
                .split_once(':')
                .ok_or_else(|| at(format!("expected `key: value`, got `{line}`")))?;
            fields.push((k.trim().to_string(), v.trim().to_string()));
        }
    }
    let get = |key: &str| -> Result<&str, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("missing field `{key}`"))
    };
    let int = |key: &str| -> Result<u64, String> {
        get(key)?
            .parse()
            .map_err(|_| format!("field `{key}` is not an integer"))
    };
    let case = CrashCase {
        seed: int("seed")?,
        design: int("design")? as usize,
        data_lines: int("data_lines")?,
        schedule: CrashSchedule {
            crash_on_op: int("crash_on_op")?,
            torn_keep: int("torn_keep")?,
        },
        corrupt: parse_corrupt(get("corrupt")?)?,
        ops,
    };
    case.validate()?;
    Ok(case)
}

fn parse_corrupt(v: &str) -> Result<Option<CorruptPlan>, String> {
    if v == "None" {
        return Ok(None);
    }
    let body = v
        .strip_prefix("Corrupt(")
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| format!("unknown corrupt plan `{v}`"))?;
    let mut plan = CorruptPlan {
        checkpoint: false,
        offset: 0,
        xor: 0,
    };
    for part in body.split(',') {
        let (k, val) = part
            .split_once(':')
            .ok_or_else(|| format!("bad corrupt field `{part}`"))?;
        let val = val.trim();
        match k.trim() {
            "checkpoint" => {
                plan.checkpoint = val.parse().map_err(|_| format!("bad checkpoint `{val}`"))?;
            }
            "offset" => plan.offset = val.parse().map_err(|_| format!("bad offset `{val}`"))?,
            "xor" => plan.xor = val.parse().map_err(|_| format!("bad xor `{val}`"))?,
            other => return Err(format!("unknown corrupt field `{other}`")),
        }
    }
    Ok(Some(plan))
}

fn parse_op(line: &str) -> Result<CrashOp, String> {
    let body = line
        .strip_suffix(',')
        .unwrap_or(line)
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| format!("expected `(op: .., ..)`, got `{line}`"))?;
    let mut kind = None;
    let mut line_no = None;
    let mut val = None;
    for part in body.split(',') {
        let (k, v) = part
            .split_once(':')
            .ok_or_else(|| format!("bad op field `{part}`"))?;
        let v = v.trim();
        match k.trim() {
            "op" => kind = Some(v.to_string()),
            "line" => line_no = Some(v.parse().map_err(|_| format!("bad line `{v}`"))?),
            "val" => val = Some(v.parse().map_err(|_| format!("bad val `{v}`"))?),
            other => return Err(format!("unknown op field `{other}`")),
        }
    }
    let need_line = || line_no.ok_or_else(|| format!("op `{line}` is missing `line`"));
    let need_val = || val.ok_or_else(|| format!("op `{line}` is missing `val`"));
    match kind.as_deref() {
        Some("write") => Ok(CrashOp::Write {
            line: need_line()?,
            val: need_val()?,
        }),
        Some("guarded") => Ok(CrashOp::Guarded {
            line: need_line()?,
            val: need_val()?,
        }),
        Some("read") => Ok(CrashOp::Read { line: need_line()? }),
        Some("checkpoint") => Ok(CrashOp::Checkpoint),
        other => Err(format!("unknown op kind `{other:?}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-scratch")
            .join(format!("crash-campaign-{tag}-{}", std::process::id()))
    }

    #[test]
    fn generate_is_deterministic_and_valid() {
        for seed in 0..64u64 {
            let a = CrashCase::generate(seed);
            assert_eq!(a, CrashCase::generate(seed));
            a.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        assert_ne!(CrashCase::generate(1), CrashCase::generate(2));
    }

    #[test]
    fn shrink_candidates_stay_valid() {
        let case = CrashCase::generate(11);
        for cand in case.shrink_candidates() {
            cand.validate().expect("shrink candidate invalid");
        }
    }

    #[test]
    fn shrinks_to_tiny_case_under_always_failing_oracle() {
        let case = CrashCase::generate(5);
        let m = proptest::shrink::minimize(case, 20_000, |_| true);
        assert_eq!(m.value.ops.len(), 1);
        assert_eq!(m.value.corrupt, None);
        assert_eq!(m.value.schedule.crash_on_op, 0);
    }

    #[test]
    fn smoke_cases_uphold_the_invariant() {
        let dir = scratch("smoke");
        for i in 0..24u64 {
            let case = CrashCase::generate(mix(CRASH_SEED, i));
            let run = run_case(&case, &dir);
            assert!(
                run.failure.is_none(),
                "case {i} ({case:?}) failed: {:?}",
                run.failure
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_case_loses_only_unacked_work() {
        // A hand-built case whose 3rd append tears mid-record.
        let case = CrashCase {
            seed: 3,
            design: 2,
            data_lines: 256,
            schedule: CrashSchedule {
                crash_on_op: 3,
                torn_keep: 9,
            },
            corrupt: None,
            ops: (0..6)
                .map(|i| CrashOp::Write {
                    line: i,
                    val: 100 + i,
                })
                .collect(),
        };
        let run = apply(&case, InMemoryBackend::new());
        assert!(run.crashed);
        assert_eq!(run.acked.len(), 2, "third write must not be acked");
        assert!(run.failure.is_none(), "{:?}", run.failure);
    }

    #[test]
    fn corrupted_journal_case_is_detected_not_silent() {
        let case = CrashCase {
            seed: 4,
            design: 1,
            data_lines: 256,
            schedule: CrashSchedule::never(),
            corrupt: Some(CorruptPlan {
                checkpoint: false,
                offset: 12,
                xor: 0x40,
            }),
            ops: (0..4).map(|i| CrashOp::Write { line: i, val: i }).collect(),
        };
        let run = apply(&case, InMemoryBackend::new());
        assert!(run.corrupted, "offset 12 must land inside the journal");
        assert!(run.failure.is_none(), "{:?}", run.failure);
    }

    #[test]
    fn reproducer_roundtrips_every_generated_shape() {
        for seed in [1u64, 2, 3, 5, 8, 13, 21, 34] {
            let case = CrashCase::generate(seed);
            let back = from_text(&to_text(&case)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(case, back, "roundtrip drift for seed {seed}");
        }
    }

    #[test]
    fn reproducer_parser_reports_bad_input() {
        assert!(from_text("CrashCase(\n  garbage\n)")
            .unwrap_err()
            .contains("line 2"));
        let mut case = CrashCase::generate(3);
        case.ops = vec![CrashOp::Write { line: 9999, val: 1 }];
        assert!(from_text(&to_text(&case))
            .unwrap_err()
            .contains("data space"));
    }

    #[test]
    fn campaign_verdicts_are_worker_count_invariant() {
        let s1 = scratch("j1");
        let s2 = scratch("j4");
        let a = run_campaign(16, CRASH_SEED, 1, &s1);
        let b = run_campaign(16, CRASH_SEED, 4, &s2);
        assert_eq!(a.verdicts, b.verdicts);
        assert!(a.all_pass(), "{:?}", a.failures.first());
        let _ = std::fs::remove_dir_all(&s1);
        let _ = std::fs::remove_dir_all(&s2);
    }
}
