//! Parallel experiment execution: a work-stealing job pool and a
//! memoizing run-cache.
//!
//! Simulations stay strictly single-threaded and deterministic (DESIGN.md
//! §4); parallelism exists only *across* independent `(benchmark, config)`
//! runs. Because every run is a pure function of its key, reports can be
//! cached and shared freely between figures — `run_all` resolves ~480
//! requested runs to ~260 unique simulations at the default scale.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use emcc::prelude::*;
use emcc::system::SystemConfig;

use crate::runner::ExpParams;

/// One requested simulation: the unit the pool schedules and the cache
/// memoizes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunRequest {
    /// Workload to run.
    pub bench: Benchmark,
    /// System configuration to run it under.
    pub cfg: SystemConfig,
}

impl RunRequest {
    /// A request for `bench` under `cfg`.
    pub fn new(bench: Benchmark, cfg: SystemConfig) -> Self {
        RunRequest { bench, cfg }
    }

    /// A request for `bench` under the Table I configuration of `scheme`.
    pub fn scheme(bench: Benchmark, scheme: SecurityScheme) -> Self {
        RunRequest::new(bench, SystemConfig::table_i(scheme))
    }
}

type RunKey = (RunRequest, ExpParams);

/// Memoized simulation reports keyed by `(benchmark, config, params)`.
///
/// Hits/misses are counted per lookup, so duplicated requests across
/// figures show up as cache hits in `BENCH_run_all.json`.
#[derive(Debug, Default)]
pub struct RunCache {
    map: Mutex<HashMap<RunKey, &'static SimReport>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RunCache {
    /// An empty cache.
    pub fn new() -> Self {
        RunCache::default()
    }

    /// Returns the cached report for `key` without touching the counters.
    pub fn probe(&self, req: &RunRequest, params: &ExpParams) -> Option<&'static SimReport> {
        self.map
            .lock()
            .expect("run cache poisoned")
            .get(&(req.clone(), *params))
            .copied()
    }

    /// Returns the cached report for `key`, counting a hit or miss.
    pub fn lookup(&self, req: &RunRequest, params: &ExpParams) -> Option<&'static SimReport> {
        match self.probe(req, params) {
            Some(r) => {
                self.note_hits(1);
                Some(r)
            }
            None => {
                self.note_misses(1);
                None
            }
        }
    }

    /// Adds `n` to the hit counter (batch scheduling dedups requests
    /// up front and accounts for the avoided runs here).
    pub fn note_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` to the miss counter.
    pub fn note_misses(&self, n: u64) {
        self.misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Inserts a computed report.
    ///
    /// Reports are leaked to `'static`: a figure run computes each unique
    /// report exactly once and keeps it for the life of the process, so
    /// shared references stay free of lifetime plumbing.
    pub fn insert(
        &self,
        req: RunRequest,
        params: ExpParams,
        report: SimReport,
    ) -> &'static SimReport {
        let leaked: &'static SimReport = Box::leak(Box::new(report));
        self.map
            .lock()
            .expect("run cache poisoned")
            .insert((req, params), leaked);
        leaked
    }

    /// `(hits, misses)` counted so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// A malformed environment-variable override (user input, not a bug —
/// reported as a typed error instead of a panic so binaries can print an
/// actionable message and exit cleanly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// The offending variable name.
    pub var: &'static str,
    /// The value found.
    pub value: String,
    /// What a valid value looks like.
    pub expected: &'static str,
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}={:?} is invalid: expected {}",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvError {}

/// Prints a configuration error and exits with status 2 (distinct from
/// 1, which binaries reserve for failed or failed-verdict runs).
pub(crate) fn exit_config_error(e: &EnvError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(2)
}

/// Number of worker threads: `EMCC_JOBS` override, else available
/// parallelism. Exits with status 2 on a malformed override.
pub fn jobs_from_env() -> usize {
    jobs_from_lookup(|k| std::env::var(k).ok()).unwrap_or_else(|e| exit_config_error(&e))
}

/// [`jobs_from_env`] with an injected environment lookup (testable
/// without mutating the process environment).
///
/// # Errors
///
/// Returns [`EnvError`] on an unparsable or zero `EMCC_JOBS`.
pub fn jobs_from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Result<usize, EnvError> {
    match lookup("EMCC_JOBS") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(EnvError {
                var: "EMCC_JOBS",
                value: v,
                expected: "a positive integer worker count",
            }),
        },
        None => Ok(std::thread::available_parallelism().map_or(1, |n| n.get())),
    }
}

/// Runs `jobs` closures of `f` (indexed `0..jobs`) on `workers` threads
/// with work stealing, returning results in index order.
///
/// Jobs are dealt round-robin into per-worker deques; a worker drains its
/// own deque from the front and, when empty, steals from the back of the
/// busiest sibling. With `workers == 1` this degenerates to an in-order
/// serial loop on the calling thread (no spawn), which keeps single-job
/// debugging and `EMCC_JOBS=1` baselines trivial.
pub fn run_indexed<T, F>(jobs: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }
    let workers = workers.min(jobs);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..jobs).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            s.spawn(move || loop {
                let job = next_job(queues, w);
                match job {
                    Some(j) => {
                        let result = f(j);
                        let prev = slots[j]
                            .lock()
                            .expect("result slot poisoned")
                            .replace(result);
                        debug_assert!(prev.is_none(), "job {j} scheduled twice");
                    }
                    None => break,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every job claimed exactly once")
        })
        .collect()
}

/// Crash-isolated [`run_indexed`]: each job runs under `catch_unwind`, so
/// one panicking simulation becomes an `Err(message)` in its result slot
/// while every other job still runs to completion.
///
/// The standard panic hook still prints the panic to stderr (useful for
/// diagnosis); only the unwind is contained.
pub fn run_indexed_catching<T, F>(jobs: usize, workers: usize, f: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed(jobs, workers, |i| {
        catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            }
        })
    })
}

/// Pops the next job for worker `w`: own queue first, then steal from the
/// longest sibling queue.
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(j) = queues[w].lock().expect("job queue poisoned").pop_front() {
        return Some(j);
    }
    // Steal from the victim with the most remaining work so the tail of
    // the schedule stays balanced.
    let victim = (0..queues.len())
        .filter(|&v| v != w)
        .max_by_key(|&v| queues[v].lock().expect("job queue poisoned").len())?;
    queues[victim]
        .lock()
        .expect("job queue poisoned")
        .pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_order() {
        for workers in [1, 2, 4, 7] {
            let out = run_indexed(23, workers, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_indexed_handles_empty_and_single() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn run_indexed_actually_uses_worker_threads() {
        let main_id = std::thread::current().id();
        let ids = run_indexed(16, 4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            std::thread::current().id()
        });
        assert!(ids.iter().any(|&id| id != main_id), "no worker ran a job");
    }

    #[test]
    fn jobs_lookup_parses_and_defaults() {
        assert_eq!(jobs_from_lookup(|_| Some("3".into())), Ok(3));
        assert!(jobs_from_lookup(|_| None).expect("default") >= 1);
    }

    #[test]
    fn jobs_lookup_rejects_zero_and_garbage_as_typed_errors() {
        for bad in ["0", "-1", "many", ""] {
            let err = jobs_from_lookup(|_| Some(bad.into())).unwrap_err();
            assert_eq!(err.var, "EMCC_JOBS");
            assert_eq!(err.value, bad);
            let msg = err.to_string();
            assert!(msg.contains("EMCC_JOBS"), "unhelpful message: {msg}");
            assert!(msg.contains("positive integer"), "message: {msg}");
        }
    }

    #[test]
    fn catching_pool_isolates_a_panicking_job() {
        // Quiet hook: the panic is expected; don't spam test output.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = run_indexed_catching(8, 4, |i| {
            if i == 3 {
                panic!("job {i} exploded");
            }
            i * 2
        });
        std::panic::set_hook(prev);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                assert_eq!(r.as_ref().unwrap_err(), "job 3 exploded");
            } else {
                assert_eq!(*r, Ok(i * 2), "job {i} must complete despite job 3");
            }
        }
    }

    #[test]
    fn catching_pool_is_transparent_without_panics() {
        let out = run_indexed_catching(5, 2, |i| i + 1);
        let plain = run_indexed(5, 2, |i| i + 1);
        assert_eq!(out.into_iter().collect::<Result<Vec<_>, _>>(), Ok(plain));
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = RunCache::new();
        let req = RunRequest::scheme(Benchmark::Mcf, SecurityScheme::Emcc);
        let p = ExpParams::for_scale(WorkloadScale::Test);
        assert!(cache.lookup(&req, &p).is_none());
        cache.insert(req.clone(), p, SimReport::default());
        assert!(cache.lookup(&req, &p).is_some());
        // A different config is a different key.
        let other = RunRequest::scheme(Benchmark::Mcf, SecurityScheme::NonSecure);
        assert!(cache.lookup(&other, &p).is_none());
        assert_eq!(cache.stats(), (1, 2));
    }
}
