//! DRAM fault-injection campaigns: sweep fault class × rate × scheme and
//! assert the detection contract.
//!
//! Every corrupted line the pipeline *consumes* must be flagged by exactly
//! one verifier — the MC's MAC/tree checks (McOnly, CtrInLlc) or the EMCC
//! L2's local verification (Emcc) — so for secure schemes the campaign
//! requires `integrity_violations == faulty_reads` with zero silent
//! corruptions, while the NonSecure baseline must consume every fault
//! silently. Each secure cell also runs the differential shadow checker
//! ([`FunctionalSecureMemory`] mirroring every write-back) and requires
//! zero counter-state mismatches, and a pure functional oracle replays
//! each fault class against `FunctionalSecureMemory` directly so the
//! timing model's verdicts can be cross-checked against the
//! cryptographic ground truth.

use emcc::crypto::DataBlock;
use emcc::dram::{FaultClass, FaultConfig};
use emcc::prelude::*;
use emcc::secmem::FunctionalSecureMemory;
use emcc::sim::mem::LineAddr;
use emcc::system::SimReport;

use crate::pool::run_indexed_catching;

/// One (scheme, fault class, rate) point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignCell {
    /// Security scheme under test.
    pub scheme: SecurityScheme,
    /// Injected fault class.
    pub class: FaultClass,
    /// Per-read fault probability.
    pub rate: f64,
}

/// The judged outcome of one campaign cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The swept point.
    pub cell: CampaignCell,
    /// Faults the pipeline consumed.
    pub faulty_reads: u64,
    /// Faults a verifier flagged.
    pub violations: u64,
    /// Faults delivered unflagged.
    pub silent: u64,
    /// Bounded re-fetch retries issued.
    pub retries: u64,
    /// Detections whose retry budget was exhausted (poisoned delivery).
    pub unrecovered: u64,
    /// `None` when the cell met its contract, else the reason it failed.
    pub failure: Option<String>,
}

impl CellResult {
    /// Whether the cell met its detection contract.
    pub fn pass(&self) -> bool {
        self.failure.is_none()
    }
}

/// One functional-oracle scenario: a fault class replayed directly against
/// [`FunctionalSecureMemory`], no timing model involved.
#[derive(Debug, Clone)]
pub struct OracleCheck {
    /// Scenario name.
    pub name: &'static str,
    /// `None` when the oracle's verdicts matched expectations.
    pub failure: Option<String>,
}

/// A completed campaign: the timing-model sweep plus the functional
/// oracle.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Judged sweep cells, in sweep order.
    pub cells: Vec<CellResult>,
    /// Functional-oracle scenarios.
    pub oracle: Vec<OracleCheck>,
}

/// Fixed campaign seed: campaigns are reproducible bit-for-bit.
pub const CAMPAIGN_SEED: u64 = 0xFA17;

/// The sweep matrix: both verifier placements, the non-secure baseline,
/// every fault class, at the given rates.
pub fn campaign_cells(rates: &[f64]) -> Vec<CampaignCell> {
    let mut cells = Vec::new();
    for scheme in [
        SecurityScheme::CtrInLlc, // MC-side verification
        SecurityScheme::Emcc,     // L2-side verification
        SecurityScheme::NonSecure,
    ] {
        for class in FaultClass::all() {
            for &rate in rates {
                cells.push(CampaignCell {
                    scheme,
                    class,
                    rate,
                });
            }
        }
    }
    cells
}

/// Memory ops per cell for a scale.
pub fn ops_for_scale(scale: WorkloadScale) -> u64 {
    match scale {
        WorkloadScale::Test => 4_000,
        WorkloadScale::Small => 12_000,
        WorkloadScale::Paper => 40_000,
    }
}

/// Rates swept at a scale: the smoke campaign keeps one rate per cell.
pub fn rates_for_scale(scale: WorkloadScale) -> Vec<f64> {
    match scale {
        WorkloadScale::Test => vec![0.05],
        WorkloadScale::Small => vec![0.01, 0.05],
        WorkloadScale::Paper => vec![0.01, 0.05, 0.15],
    }
}

fn run_cell(cell: CampaignCell, scale: WorkloadScale, ops: u64) -> SimReport {
    let fault = FaultConfig::uniform(CAMPAIGN_SEED, cell.class, cell.rate);
    let mut cfg = SystemConfig::table_i(cell.scheme).with_fault(fault);
    if cell.scheme.is_secure() {
        cfg = cfg.with_shadow_check(true);
    }
    let sources = Benchmark::Canneal.build_scaled(CAMPAIGN_SEED, cfg.cores, scale);
    SecureSystem::new(cfg).run(sources, ops)
}

/// Judges one cell's report against the detection contract.
pub fn judge_cell(cell: CampaignCell, r: &SimReport) -> Option<String> {
    if r.faulty_reads == 0 {
        return Some("no faults consumed — the cell exercised nothing".into());
    }
    if cell.scheme.is_secure() {
        if r.integrity_violations != r.faulty_reads {
            return Some(format!(
                "detected {} of {} consumed faults",
                r.integrity_violations, r.faulty_reads
            ));
        }
        if r.silent_corruptions != 0 {
            return Some(format!(
                "{} silent corruptions leaked",
                r.silent_corruptions
            ));
        }
        if r.shadow_mismatches != 0 {
            return Some(format!(
                "{} counter-state mismatches vs functional model",
                r.shadow_mismatches
            ));
        }
    } else {
        if r.integrity_violations != 0 {
            return Some("non-secure scheme reported violations".into());
        }
        if r.silent_corruptions != r.faulty_reads {
            return Some(format!(
                "{} of {} consumed faults unaccounted",
                r.silent_corruptions, r.faulty_reads
            ));
        }
    }
    None
}

/// Runs the sweep on `jobs` workers. A panicking cell is contained by the
/// pool and judged as a failure.
pub fn run_sweep(scale: WorkloadScale, jobs: usize) -> Vec<CellResult> {
    let cells = campaign_cells(&rates_for_scale(scale));
    let ops = ops_for_scale(scale);
    let reports = run_indexed_catching(cells.len(), jobs, |i| run_cell(cells[i], scale, ops));
    cells
        .into_iter()
        .zip(reports)
        .map(|(cell, report)| match report {
            Ok(r) => CellResult {
                cell,
                faulty_reads: r.faulty_reads,
                violations: r.integrity_violations,
                silent: r.silent_corruptions,
                retries: r.integrity_retries,
                unrecovered: r.integrity_unrecovered,
                failure: judge_cell(cell, &r),
            },
            Err(e) => CellResult {
                cell,
                faulty_reads: 0,
                violations: 0,
                silent: 0,
                retries: 0,
                unrecovered: 0,
                failure: Some(format!("simulation panicked: {e}")),
            },
        })
        .collect()
}

fn oracle(name: &'static str, check: impl FnOnce() -> Result<(), String>) -> OracleCheck {
    OracleCheck {
        name,
        failure: check().err(),
    }
}

fn expect_detected(m: &FunctionalSecureMemory, line: LineAddr, what: &str) -> Result<(), String> {
    if m.read(line).is_ok() {
        return Err(format!("{what}: monolithic read missed the tamper"));
    }
    // Verdict parity: the split read (OTP before ciphertext, as EMCC
    // overlaps them) must agree with the monolithic read.
    if m.read_split(line).is_ok() {
        return Err(format!("{what}: split read disagreed with monolithic read"));
    }
    Ok(())
}

fn expect_clean(m: &FunctionalSecureMemory, line: LineAddr, what: &str) -> Result<(), String> {
    if m.read(line).is_err() || m.read_split(line).is_err() {
        return Err(format!("{what}: clean line failed verification"));
    }
    Ok(())
}

/// Replays every fault class directly against the functional secure
/// memory: the cryptographic ground truth the timing model must match.
pub fn functional_oracle() -> Vec<OracleCheck> {
    let line = LineAddr::new(3);
    let block = DataBlock::from_words([0xD00D; 8]);
    vec![
        oracle("bit-flip detected, write repairs", || {
            let mut m = FunctionalSecureMemory::new(CAMPAIGN_SEED, 64);
            m.write(line, block);
            m.tamper_flip_bit(line, 5);
            expect_detected(&m, line, "bit-flip")?;
            m.write(line, block);
            expect_clean(&m, line, "after repair")
        }),
        oracle("MAC corruption detected", || {
            let mut m = FunctionalSecureMemory::new(CAMPAIGN_SEED, 64);
            m.write(line, block);
            m.tamper_mac_flip_bit(line, 17);
            expect_detected(&m, line, "mac-corrupt")
        }),
        oracle("stuck line detected on every read", || {
            let mut m = FunctionalSecureMemory::new(CAMPAIGN_SEED, 64);
            m.write(line, block);
            m.tamper_flip_bit(line, 9);
            expect_detected(&m, line, "stuck (1st read)")?;
            // A stuck cell re-asserts after the repairing write.
            m.write(line, block);
            m.tamper_flip_bit(line, 9);
            expect_detected(&m, line, "stuck (after write)")
        }),
        oracle("replayed stale line detected", || {
            let mut m = FunctionalSecureMemory::new(CAMPAIGN_SEED, 64);
            m.write(line, block);
            let stale = m.raw(line).expect("line just written");
            m.write(line, DataBlock::from_words([0xBEEF; 8]));
            m.tamper_replay(line, stale);
            expect_detected(&m, line, "replay")
        }),
        oracle("transient read error clears on restore", || {
            let mut m = FunctionalSecureMemory::new(CAMPAIGN_SEED, 64);
            m.write(line, block);
            m.tamper_flip_bit(line, 22);
            expect_detected(&m, line, "transient")?;
            m.write(line, block);
            expect_clean(&m, line, "after restore")
        }),
        oracle("tree-node tamper fails the path walk", || {
            let mut m = FunctionalSecureMemory::new(CAMPAIGN_SEED, 64);
            m.write(line, block);
            if m.verify_path(line).is_err() {
                return Err("clean path failed verification".into());
            }
            // Level 0 = the counter block covering `line` (64 data lines
            // fit under one block, so the tree has a single level below
            // the on-chip root).
            m.tamper_tree_flip_bit(0, 0, 3);
            if m.verify_path(line).is_ok() {
                return Err("tree tamper missed by path walk".into());
            }
            if m.read_checked(line).is_ok() {
                return Err("tree tamper missed by checked read".into());
            }
            Ok(())
        }),
    ]
}

/// Runs the full campaign: timing-model sweep plus functional oracle.
pub fn run_campaign(scale: WorkloadScale, jobs: usize) -> CampaignReport {
    CampaignReport {
        cells: run_sweep(scale, jobs),
        oracle: functional_oracle(),
    }
}

impl CampaignReport {
    /// Whether every cell and oracle scenario passed.
    pub fn all_pass(&self) -> bool {
        self.cells.iter().all(CellResult::pass) && self.oracle.iter().all(|o| o.failure.is_none())
    }

    /// Renders the campaign as the table `--bin fault_campaign` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fault-injection campaign (seed 0xFA17, benchmark canneal)\n");
        out.push_str(&format!(
            "{:<10} {:<13} {:>6} {:>8} {:>9} {:>7} {:>8} {:>11}  verdict\n",
            "scheme", "class", "rate", "faulty", "detected", "silent", "retries", "unrecovered"
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<10} {:<13} {:>6.2} {:>8} {:>9} {:>7} {:>8} {:>11}  {}\n",
                c.cell.scheme.to_string(),
                c.cell.class.to_string(),
                c.cell.rate,
                c.faulty_reads,
                c.violations,
                c.silent,
                c.retries,
                c.unrecovered,
                match &c.failure {
                    None => "ok".to_string(),
                    Some(why) => format!("FAIL: {why}"),
                },
            ));
        }
        out.push_str("\nFunctional oracle (FunctionalSecureMemory ground truth)\n");
        for o in &self.oracle {
            match &o.failure {
                None => out.push_str(&format!("  ok   {}\n", o.name)),
                Some(why) => out.push_str(&format!("  FAIL {} — {why}\n", o.name)),
            }
        }
        out.push_str(&format!(
            "\ncampaign: {} cells, {} oracle checks — {}\n",
            self.cells.len(),
            self.oracle.len(),
            if self.all_pass() {
                "ALL PASS"
            } else {
                "FAILED"
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matrix_covers_every_scheme_and_class() {
        let cells = campaign_cells(&[0.05]);
        assert_eq!(cells.len(), 3 * 5);
        assert!(cells
            .iter()
            .any(|c| c.scheme == SecurityScheme::Emcc && c.class == FaultClass::Replay));
    }

    #[test]
    fn functional_oracle_is_clean() {
        for o in functional_oracle() {
            assert!(o.failure.is_none(), "{}: {:?}", o.name, o.failure);
        }
    }

    #[test]
    fn judge_rejects_missed_detection() {
        let cell = CampaignCell {
            scheme: SecurityScheme::Emcc,
            class: FaultClass::BitFlip,
            rate: 0.05,
        };
        let mut r = SimReport {
            faulty_reads: 10,
            integrity_violations: 9,
            ..SimReport::default()
        };
        assert!(judge_cell(cell, &r).is_some());
        r.integrity_violations = 10;
        assert!(judge_cell(cell, &r).is_none());
    }

    #[test]
    fn smoke_campaign_cell_passes() {
        // One representative cell end-to-end; the binary runs the sweep.
        let cell = CampaignCell {
            scheme: SecurityScheme::Emcc,
            class: FaultClass::BitFlip,
            rate: 0.05,
        };
        let r = run_cell(cell, WorkloadScale::Test, 3_000);
        assert!(judge_cell(cell, &r).is_none(), "{:?}", judge_cell(cell, &r));
    }
}
