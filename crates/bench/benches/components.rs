//! Criterion microbenchmarks of the substrates: AES, MAC, Morphable
//! encode/decode, cache arrays, the DRAM scheduler and the NoC model.
//!
//! These quantify the *simulator's* own performance (events/second),
//! complementing the figure benches that quantify the *simulated* system.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use emcc::cache::{CacheConfig, SetAssocCache};
use emcc::counters::format::{decode_morphable, encode_morphable};
use emcc::counters::MorphFormat;
use emcc::crypto::{Aes128, BlockCipherKeys, DataBlock};
use emcc::dram::{Dram, DramConfig, DramRequest, RequestClass};
use emcc::noc::{Mesh, NocLatency};
use emcc::sim::{EventQueue, LineAddr, Rng64, Time};

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new([7u8; 16]);
    // The two paths must agree before their timings mean anything.
    assert_eq!(
        aes.encrypt([42u8; 16]),
        aes.encrypt_reference([42u8; 16]),
        "T-table and reference AES disagree"
    );
    c.bench_function("crypto/aes128_block", |b| {
        b.iter(|| aes.encrypt(black_box([42u8; 16])))
    });
    c.bench_function("crypto/aes128_block_reference", |b| {
        b.iter(|| aes.encrypt_reference(black_box([42u8; 16])))
    });

    let keys = BlockCipherKeys::from_seed(1);
    let plain = DataBlock::from_words([3; 8]);
    c.bench_function("crypto/encrypt_64B_block", |b| {
        b.iter(|| keys.encrypt_block(black_box(0x40), black_box(9), &plain))
    });
    let cipher = keys.encrypt_block(0x40, 9, &plain);
    c.bench_function("crypto/mac_64B_block", |b| {
        b.iter(|| keys.mac_block(black_box(0x40), black_box(9), &cipher))
    });
}

fn bench_morphable(c: &mut Criterion) {
    let mut minors = [0u16; 128];
    for (i, m) in minors.iter_mut().enumerate() {
        *m = (i % 8) as u16;
    }
    c.bench_function("counters/morphable_encode", |b| {
        b.iter(|| encode_morphable(MorphFormat::Uniform3, 5, black_box(&minors), 0x99))
    });
    let bytes = encode_morphable(MorphFormat::Uniform3, 5, &minors, 0x99);
    c.bench_function("counters/morphable_decode", |b| {
        b.iter(|| decode_morphable(black_box(&bytes)))
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/l2_insert_touch", |b| {
        let mut cache: SetAssocCache<u8> = SetAssocCache::new(CacheConfig::new(1024 * 1024, 8));
        let mut rng = Rng64::new(3);
        b.iter(|| {
            let a = LineAddr::new(rng.below(1 << 20));
            cache.insert(a, false, 0);
            black_box(cache.touch(a))
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram/enqueue_pump_cycle", |b| {
        let mut dram = Dram::new(DramConfig::table_i(1));
        let mut rng = Rng64::new(5);
        let mut now = Time::ZERO;
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            now += Time::from_ns(10);
            let line = LineAddr::new(rng.below(1 << 24));
            let _ = dram.enqueue(DramRequest::read(id, line, RequestClass::Data), now);
            black_box(dram.pump(now).completions.len())
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    // Steady-state churn: push/pop against 10k pending events, the regime
    // run-loop profiles show (heap always warm, never drained).
    c.bench_function("sim/event_queue_churn_10k_pending", |b| {
        let mut q = EventQueue::with_capacity(1 << 14);
        let mut rng = Rng64::new(11);
        let mut now = Time::ZERO;
        for _ in 0..10_000 {
            q.push(Time::from_ns(rng.below(1 << 20)), 0u64);
        }
        b.iter(|| {
            now += Time::from_ns(1);
            q.push(now + Time::from_ns(rng.below(1 << 10)), black_box(7u64));
            let popped = q.pop().expect("queue stays non-empty");
            black_box(popped)
        })
    });
}

fn bench_noc(c: &mut Criterion) {
    let mesh = Mesh::xeon_w3175x();
    let lat = NocLatency::calibrated();
    c.bench_function("noc/latency_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 28;
            black_box(lat.one_way(mesh.hops_core_to_core(i, 27 - i), true))
        })
    });
}

criterion_group!(
    benches,
    bench_aes,
    bench_morphable,
    bench_cache,
    bench_dram,
    bench_event_queue,
    bench_noc
);
criterion_main!(benches);
