//! Criterion benches wrapping each figure's experiment at Test scale —
//! one bench per table/figure, so `cargo bench` exercises the entire
//! reproduction pipeline end-to-end with timing.

use criterion::{criterion_group, criterion_main, Criterion};

use emcc::prelude::*;
use emcc_bench::experiments;
use emcc_bench::{ExpParams, Harness};

fn tiny() -> ExpParams {
    ExpParams::for_scale(WorkloadScale::Test)
}

/// A cold single-worker harness: every figure iteration simulates from
/// scratch, so the run-cache can't falsify the timings.
fn fresh() -> Harness {
    Harness::with_jobs(tiny(), 1)
}

/// One full simulation (the unit of work behind every figure).
fn bench_single_sim(c: &mut Criterion) {
    let p = tiny();
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(8));
    g.bench_function("canneal_emcc_test_scale", |b| {
        b.iter(|| p.run_scheme(Benchmark::Canneal, SecurityScheme::Emcc))
    });
    g.bench_function("canneal_morphable_test_scale", |b| {
        b.iter(|| p.run_scheme(Benchmark::Canneal, SecurityScheme::CtrInLlc))
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(10));
    g.bench_function("fig03_llc_latency_distribution", |b| {
        b.iter(experiments::fig03::run)
    });
    g.bench_function("timelines_figs_5_8_10_13_14", |b| {
        b.iter(experiments::timelines::render_all)
    });
    g.sample_size(10);
    g.bench_function("fig02_traffic_overhead", |b| {
        b.iter(|| experiments::fig02::run(&fresh()))
    });
    g.bench_function("fig06_counter_split", |b| {
        b.iter(|| experiments::fig06_07::run_fig06(&fresh()))
    });
    g.bench_function("fig11_12_23_emcc_counters", |b| {
        b.iter(|| experiments::emcc_ctr::run(&fresh()))
    });
    g.bench_function("fig15_bandwidth_breakdown", |b| {
        b.iter(|| experiments::fig15::run(&fresh()))
    });
    g.bench_function("fig16_17_performance", |b| {
        b.iter(|| experiments::perf::run_suite(&fresh()))
    });
    g.bench_function("fig24_regular_suite", |b| {
        b.iter(|| experiments::fig24::run(&fresh()))
    });
    g.finish();
}

criterion_group!(benches, bench_single_sim, bench_figures);
criterion_main!(benches);
