//! Per-counter-block state: increments, morphing, overflow/rebase.
//!
//! Counter *values* presented to the crypto layer are `major × 128 + minor`
//! for split designs, so values stay strictly monotonic across rebases
//! (minors never exceed 127). Monolithic counters are plain 56-bit values.

use crate::design::CounterDesign;
use crate::format::{MorphFormat, MORPHABLE_MINORS};

/// Outcome of incrementing one counter in a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementResult {
    /// The counter's value after the increment (and any rebase).
    pub new_counter: u64,
    /// Set when the increment forced a rebase; the whole covered region
    /// must be re-encrypted.
    pub overflow: Option<OverflowInfo>,
    /// Set when the block changed storage format without rebasing
    /// (Morphable only).
    pub morphed: Option<MorphFormat>,
}

/// Details of a split-counter overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowInfo {
    /// How many 64 B blocks must be re-encrypted (the design's coverage).
    pub blocks_to_reencrypt: u64,
}

/// In-memory state of one counter block.
///
/// # Examples
///
/// ```
/// use emcc_counters::{CounterBlock, CounterDesign};
///
/// let mut b = CounterBlock::new(CounterDesign::Sc64);
/// assert_eq!(b.counter(3), 0);
/// let r = b.increment(3);
/// assert_eq!(r.new_counter, 1);
/// assert!(r.overflow.is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterBlock {
    design: CounterDesign,
    major: u64,
    minors: Vec<u16>,
    /// Monolithic designs store full values here instead of minors.
    full: Vec<u64>,
    format: MorphFormat,
}

/// Minor counters occupy 7 bits of value space at most (Zcc7 / SC-64), so
/// `major` advances in units of 128 to keep values unique across rebases.
const MINOR_SPAN: u64 = 128;

impl CounterBlock {
    /// Creates an all-zero counter block.
    pub fn new(design: CounterDesign) -> Self {
        let n = design.coverage() as usize;
        match design {
            CounterDesign::Monolithic => CounterBlock {
                design,
                major: 0,
                minors: Vec::new(),
                full: vec![0; n],
                format: MorphFormat::Uniform3,
            },
            CounterDesign::Sc64 | CounterDesign::Morphable => CounterBlock {
                design,
                major: 0,
                minors: vec![0; n],
                full: Vec::new(),
                format: MorphFormat::Uniform3,
            },
        }
    }

    /// The design this block belongs to.
    pub fn design(&self) -> CounterDesign {
        self.design
    }

    /// Current storage format (meaningful for Morphable; `Uniform3`
    /// otherwise).
    pub fn format(&self) -> MorphFormat {
        self.format
    }

    /// Current major counter (0 for monolithic).
    pub fn major(&self) -> u64 {
        self.major
    }

    /// The crypto-visible counter value for `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the design's coverage.
    pub fn counter(&self, slot: usize) -> u64 {
        match self.design {
            CounterDesign::Monolithic => self.full[slot],
            _ => self.major * MINOR_SPAN + u64::from(self.minors[slot]),
        }
    }

    /// Increments the counter for `slot`, handling morph and overflow.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the design's coverage.
    pub fn increment(&mut self, slot: usize) -> IncrementResult {
        match self.design {
            CounterDesign::Monolithic => {
                self.full[slot] += 1;
                IncrementResult {
                    new_counter: self.full[slot],
                    overflow: None,
                    morphed: None,
                }
            }
            CounterDesign::Sc64 => {
                if self.minors[slot] == 127 {
                    self.rebase();
                    self.minors[slot] = 1;
                    IncrementResult {
                        new_counter: self.counter(slot),
                        overflow: Some(OverflowInfo {
                            blocks_to_reencrypt: self.design.coverage(),
                        }),
                        morphed: None,
                    }
                } else {
                    self.minors[slot] += 1;
                    IncrementResult {
                        new_counter: self.counter(slot),
                        overflow: None,
                        morphed: None,
                    }
                }
            }
            CounterDesign::Morphable => {
                debug_assert_eq!(self.minors.len(), MORPHABLE_MINORS);
                self.minors[slot] += 1;
                match MorphFormat::fitting(&self.minors) {
                    Some(f) if f == self.format => IncrementResult {
                        new_counter: self.counter(slot),
                        overflow: None,
                        morphed: None,
                    },
                    Some(f) => {
                        self.format = f;
                        IncrementResult {
                            new_counter: self.counter(slot),
                            overflow: None,
                            morphed: Some(f),
                        }
                    }
                    None => {
                        self.rebase();
                        self.minors[slot] = 1;
                        self.format = MorphFormat::Uniform3;
                        IncrementResult {
                            new_counter: self.counter(slot),
                            overflow: Some(OverflowInfo {
                                blocks_to_reencrypt: self.design.coverage(),
                            }),
                            morphed: Some(MorphFormat::Uniform3),
                        }
                    }
                }
            }
        }
    }

    /// Rebase: bump the major counter and clear minors. All covered blocks
    /// must be re-encrypted with their new (strictly larger) counters.
    fn rebase(&mut self) {
        self.major += 1;
        self.minors.iter_mut().for_each(|m| *m = 0);
    }

    /// Minor counter values (empty for monolithic). Exposed for encoding
    /// and for tests.
    pub fn minors(&self) -> &[u16] {
        &self.minors
    }

    /// Per-slot raw storage, one value per covered block: minors for split
    /// designs, full counter values for monolithic. Together with
    /// [`Self::major`] and [`Self::format`] this is the block's complete
    /// persistent state; [`Self::restore`] is the inverse.
    pub fn raw_slots(&self) -> Vec<u64> {
        match self.design {
            CounterDesign::Monolithic => self.full.clone(),
            _ => self.minors.iter().map(|&m| u64::from(m)).collect(),
        }
    }

    /// Rebuilds a block from persisted state, validating every field so a
    /// corrupt journal or checkpoint is *detected* rather than silently
    /// installing impossible counter state.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency: wrong slot count,
    /// unknown format tag, a minor exceeding the design's minor span, or a
    /// Morphable payload that does not fit its declared format.
    pub fn restore(
        design: CounterDesign,
        major: u64,
        format_tag: u8,
        slots: &[u64],
    ) -> Result<Self, String> {
        let n = design.coverage() as usize;
        if slots.len() != n {
            return Err(format!(
                "counter block for {design:?} needs {n} slots, got {}",
                slots.len()
            ));
        }
        let format = MorphFormat::from_tag(format_tag)
            .ok_or_else(|| format!("unknown morph format tag {format_tag}"))?;
        match design {
            CounterDesign::Monolithic => {
                if major != 0 {
                    return Err(format!("monolithic block has nonzero major {major}"));
                }
                Ok(CounterBlock {
                    design,
                    major: 0,
                    minors: Vec::new(),
                    full: slots.to_vec(),
                    format: MorphFormat::Uniform3,
                })
            }
            CounterDesign::Sc64 | CounterDesign::Morphable => {
                let mut minors = Vec::with_capacity(n);
                for (i, &s) in slots.iter().enumerate() {
                    if s >= MINOR_SPAN {
                        return Err(format!("slot {i} minor {s} exceeds span {MINOR_SPAN}"));
                    }
                    minors.push(s as u16);
                }
                if design == CounterDesign::Morphable {
                    let fits = minors.iter().filter(|&&m| m > 0).count()
                        <= format.nonzero_capacity()
                        && minors.iter().all(|&m| m <= format.max_minor());
                    if !fits {
                        return Err(format!("minors do not fit declared format {format:?}"));
                    }
                }
                Ok(CounterBlock {
                    design,
                    major,
                    minors,
                    full: Vec::new(),
                    format: if design == CounterDesign::Morphable {
                        format
                    } else {
                        MorphFormat::Uniform3
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monolithic_never_overflows() {
        let mut b = CounterBlock::new(CounterDesign::Monolithic);
        for i in 1..=1000u64 {
            let r = b.increment(5);
            assert_eq!(r.new_counter, i);
            assert!(r.overflow.is_none());
        }
    }

    #[test]
    fn sc64_overflow_at_128th_write() {
        let mut b = CounterBlock::new(CounterDesign::Sc64);
        for _ in 0..127 {
            assert!(b.increment(0).overflow.is_none());
        }
        let r = b.increment(0);
        let ov = r.overflow.expect("128th write must rebase");
        assert_eq!(ov.blocks_to_reencrypt, 64);
        // Monotonic across the rebase: 1*128 + 1 > 0*128 + 127.
        assert_eq!(r.new_counter, 129);
    }

    #[test]
    fn sc64_rebase_clears_other_minors() {
        let mut b = CounterBlock::new(CounterDesign::Sc64);
        b.increment(3);
        for _ in 0..128 {
            b.increment(0);
        }
        // Slot 3 was re-encrypted with counter = major*128 + 0.
        assert_eq!(b.counter(3), 128);
    }

    #[test]
    fn counters_monotonic_under_random_workload() {
        let mut rng = emcc_sim::Rng64::new(42);
        let mut b = CounterBlock::new(CounterDesign::Morphable);
        let mut last = vec![0u64; 128];
        for _ in 0..20_000 {
            let s = rng.index(128);
            let r = b.increment(s);
            assert!(
                r.new_counter > last[s],
                "counter for slot {s} went backwards"
            );
            // Rebase re-encrypts every slot with its *new* counter value,
            // so other slots' counters may change; refresh all on overflow.
            if r.overflow.is_some() {
                for (i, l) in last.iter_mut().enumerate() {
                    *l = b.counter(i);
                }
                last[s] = r.new_counter - 1; // keep the > check meaningful
            }
            last[s] = r.new_counter;
        }
    }

    #[test]
    fn morphable_uniform_until_eighth_write() {
        // A single hot line: values ≤ 7 stay Uniform3, the 8th write morphs
        // to a ZCC format rather than overflowing.
        let mut b = CounterBlock::new(CounterDesign::Morphable);
        for _ in 0..7 {
            let r = b.increment(0);
            assert!(r.morphed.is_none());
            assert_eq!(b.format(), MorphFormat::Uniform3);
        }
        let r = b.increment(0);
        assert_eq!(r.morphed, Some(MorphFormat::Zcc5));
        assert!(r.overflow.is_none());
    }

    #[test]
    fn morphable_hot_line_overflows_at_128() {
        let mut b = CounterBlock::new(CounterDesign::Morphable);
        let mut overflows = 0;
        for _ in 0..128 {
            if b.increment(0).overflow.is_some() {
                overflows += 1;
            }
        }
        assert_eq!(
            overflows, 1,
            "single hot line rebases exactly once at 128 writes"
        );
    }

    #[test]
    fn morphable_uniform_writes_overflow_via_capacity() {
        // Writing every line uniformly: at value 8 for all 128 lines no
        // ZCC format has capacity (128 non-zeros), so the block rebases.
        let mut b = CounterBlock::new(CounterDesign::Morphable);
        let mut overflow_seen = false;
        'outer: for _round in 0..8 {
            for s in 0..128 {
                if b.increment(s).overflow.is_some() {
                    overflow_seen = true;
                    break 'outer;
                }
            }
        }
        assert!(overflow_seen, "uniform writes must eventually rebase");
        // Morphable survives ~7 uniform writes per line (895 writes);
        // SC-64 would survive 127. The coverage tradeoff is the point.
    }

    #[test]
    fn morphable_beats_sc64_on_skewed_writes() {
        // Morphable's ZCC formats let a few hot lines run to 127 while the
        // rest stay zero — same as SC-64's 7-bit minors but with 2x the
        // coverage. Verify a 2-hot-line pattern needs no rebase until 128.
        let mut b = CounterBlock::new(CounterDesign::Morphable);
        for _ in 0..127 {
            assert!(b.increment(10).overflow.is_none());
            assert!(b.increment(90).overflow.is_none());
        }
    }

    #[test]
    fn restore_roundtrips_every_design() {
        for design in CounterDesign::all() {
            let mut b = CounterBlock::new(design);
            for i in 0..200usize {
                b.increment(i % design.coverage() as usize);
            }
            let back = CounterBlock::restore(design, b.major(), b.format().tag(), &b.raw_slots())
                .expect("roundtrip restore succeeds");
            assert_eq!(back, b, "restore must be the inverse of raw_slots");
        }
    }

    #[test]
    fn restore_rejects_inconsistent_state() {
        // Wrong slot count.
        assert!(CounterBlock::restore(CounterDesign::Sc64, 0, 0, &[0; 3]).is_err());
        // Minor out of span.
        let mut slots = vec![0u64; 64];
        slots[5] = 128;
        assert!(CounterBlock::restore(CounterDesign::Sc64, 0, 0, &slots).is_err());
        // Monolithic with a major counter.
        assert!(CounterBlock::restore(CounterDesign::Monolithic, 1, 0, &[0; 8]).is_err());
        // Morphable payload too wide for its declared format (Uniform3 caps
        // minors at 7).
        let mut slots = vec![0u64; 128];
        slots[0] = 9;
        assert!(CounterBlock::restore(CounterDesign::Morphable, 0, 0, &slots).is_err());
        // Unknown tag.
        assert!(CounterBlock::restore(CounterDesign::Morphable, 0, 9, &vec![0u64; 128]).is_err());
    }

    #[test]
    fn increment_result_reports_format_after_overflow() {
        let mut b = CounterBlock::new(CounterDesign::Morphable);
        for _ in 0..127 {
            b.increment(0);
        }
        let r = b.increment(0);
        assert!(r.overflow.is_some());
        assert_eq!(r.morphed, Some(MorphFormat::Uniform3));
        assert_eq!(b.format(), MorphFormat::Uniform3);
        assert_eq!(r.new_counter, 129);
    }
}
