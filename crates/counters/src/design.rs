//! The counter-organization design point.

use std::fmt;

/// Which counter organization the secure-memory system uses.
///
/// The *coverage* of a design is the number of 64 B blocks whose counters
/// fit in one 64 B counter block; it is also the arity of the integrity
/// tree, so larger coverage shrinks the tree exponentially (§II "Improving
/// Counter Hit Rate").
///
/// # Examples
///
/// ```
/// use emcc_counters::CounterDesign;
///
/// assert_eq!(CounterDesign::Morphable.coverage(), 128);
/// assert_eq!(CounterDesign::Morphable.coverage_bytes(), 8192); // 8 KB
/// assert_eq!(CounterDesign::Sc64.coverage_bytes(), 4096); // 4 KB
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CounterDesign {
    /// Eight 56-bit monolithic counters per counter block.
    Monolithic,
    /// SC-64: 64 seven-bit minors + one major per counter block.
    Sc64,
    /// Morphable Counters: 128 minors with format morphing.
    Morphable,
}

impl CounterDesign {
    /// Number of protected 64 B blocks per counter block (tree arity).
    pub const fn coverage(self) -> u64 {
        match self {
            CounterDesign::Monolithic => 8,
            CounterDesign::Sc64 => 64,
            CounterDesign::Morphable => 128,
        }
    }

    /// Bytes of memory covered by one counter block.
    pub const fn coverage_bytes(self) -> u64 {
        self.coverage() * emcc_sim::mem::LINE_BYTES
    }

    /// Whether this is a split design (subject to minor-counter overflow).
    pub const fn is_split(self) -> bool {
        !matches!(self, CounterDesign::Monolithic)
    }

    /// All designs, for sweeps.
    pub const fn all() -> [CounterDesign; 3] {
        [
            CounterDesign::Monolithic,
            CounterDesign::Sc64,
            CounterDesign::Morphable,
        ]
    }
}

impl fmt::Display for CounterDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CounterDesign::Monolithic => "Monolithic",
            CounterDesign::Sc64 => "SC-64",
            CounterDesign::Morphable => "Morphable",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_matches_paper() {
        // §II: SC-64 packs 64 counters; Morphable increases it to 128;
        // Morphable covers 8 KB ≈ two adjacent 4 KB pages.
        assert_eq!(CounterDesign::Monolithic.coverage(), 8);
        assert_eq!(CounterDesign::Sc64.coverage(), 64);
        assert_eq!(CounterDesign::Morphable.coverage(), 128);
        assert_eq!(CounterDesign::Morphable.coverage_bytes(), 2 * 4096);
    }

    #[test]
    fn split_flags() {
        assert!(!CounterDesign::Monolithic.is_split());
        assert!(CounterDesign::Sc64.is_split());
        assert!(CounterDesign::Morphable.is_split());
    }

    #[test]
    fn display_names() {
        assert_eq!(CounterDesign::Sc64.to_string(), "SC-64");
    }
}
