//! Morphable counter-block storage formats and bit-exact packing.
//!
//! A Morphable counter block is 64 B = 512 bits laid out as:
//!
//! ```text
//! [ 56 b MAC | 2 b format | 6 b spare | 64 b major | 384 b minor payload ]
//! ```
//!
//! The payload is either **uniform** (128 × 3 b) or **zero-counter
//! compressed (ZCC)**: a 128-bit non-zero bitmap followed by the non-zero
//! minors at a larger width. The ZCC capacities — 51 × 5 b, 42 × 6 b,
//! 36 × 7 b — are the non-power-of-2 populations the paper calls out when
//! charging 3 ns decode latency (§V "Baselines").

/// A Morphable payload format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MorphFormat {
    /// 128 uniform 3-bit minors (values 0..=7).
    Uniform3,
    /// ZCC: up to 51 non-zero 5-bit minors (values 0..=31).
    Zcc5,
    /// ZCC: up to 42 non-zero 6-bit minors (values 0..=63).
    Zcc6,
    /// ZCC: up to 36 non-zero 7-bit minors (values 0..=127).
    Zcc7,
}

impl MorphFormat {
    /// Largest representable minor value.
    pub const fn max_minor(self) -> u16 {
        match self {
            MorphFormat::Uniform3 => 7,
            MorphFormat::Zcc5 => 31,
            MorphFormat::Zcc6 => 63,
            MorphFormat::Zcc7 => 127,
        }
    }

    /// Maximum number of non-zero minors the format can hold.
    pub const fn nonzero_capacity(self) -> usize {
        match self {
            MorphFormat::Uniform3 => 128,
            MorphFormat::Zcc5 => 51,
            MorphFormat::Zcc6 => 42,
            MorphFormat::Zcc7 => 36,
        }
    }

    /// Bit width of one stored minor.
    pub const fn minor_bits(self) -> usize {
        match self {
            MorphFormat::Uniform3 => 3,
            MorphFormat::Zcc5 => 5,
            MorphFormat::Zcc6 => 6,
            MorphFormat::Zcc7 => 7,
        }
    }

    /// Formats in preference order (cheapest decode first).
    pub const fn all() -> [MorphFormat; 4] {
        [
            MorphFormat::Uniform3,
            MorphFormat::Zcc5,
            MorphFormat::Zcc6,
            MorphFormat::Zcc7,
        ]
    }

    /// Chooses the first format that can represent `minors`, or `None` if
    /// the block must be rebased (an overflow).
    pub fn fitting(minors: &[u16]) -> Option<MorphFormat> {
        let nz = minors.iter().filter(|&&m| m > 0).count();
        let mx = minors.iter().copied().max().unwrap_or(0);
        MorphFormat::all()
            .into_iter()
            .find(|f| mx <= f.max_minor() && nz <= f.nonzero_capacity())
    }

    /// 2-bit on-disk tag.
    pub const fn tag(self) -> u8 {
        match self {
            MorphFormat::Uniform3 => 0,
            MorphFormat::Zcc5 => 1,
            MorphFormat::Zcc6 => 2,
            MorphFormat::Zcc7 => 3,
        }
    }

    /// Parses a 2-bit tag.
    pub const fn from_tag(tag: u8) -> Option<MorphFormat> {
        match tag {
            0 => Some(MorphFormat::Uniform3),
            1 => Some(MorphFormat::Zcc5),
            2 => Some(MorphFormat::Zcc6),
            3 => Some(MorphFormat::Zcc7),
            _ => None,
        }
    }
}

/// Number of minor counters in a Morphable block.
pub const MORPHABLE_MINORS: usize = 128;

/// Bit-writer over the 48-byte (384-bit) minor payload.
struct BitCursor<'a> {
    bytes: &'a mut [u8],
    bit: usize,
}

impl<'a> BitCursor<'a> {
    fn new(bytes: &'a mut [u8]) -> Self {
        BitCursor { bytes, bit: 0 }
    }

    fn write(&mut self, value: u16, width: usize) {
        for i in 0..width {
            let b = (value >> i) & 1;
            let pos = self.bit + i;
            if b == 1 {
                self.bytes[pos / 8] |= 1 << (pos % 8);
            }
        }
        self.bit += width;
    }
}

fn read_bits(bytes: &[u8], bit: usize, width: usize) -> u16 {
    let mut v = 0u16;
    for i in 0..width {
        let pos = bit + i;
        if bytes[pos / 8] >> (pos % 8) & 1 == 1 {
            v |= 1 << i;
        }
    }
    v
}

/// Packs a Morphable block (`major`, 128 `minors`, 56-bit `mac`) into its
/// 64-byte DRAM representation.
///
/// # Panics
///
/// Panics if `minors` does not fit `format` (the caller must have selected
/// a fitting format via [`MorphFormat::fitting`]) or has the wrong length.
///
/// # Examples
///
/// ```
/// use emcc_counters::format::{encode_morphable, decode_morphable, MorphFormat};
///
/// let mut minors = [0u16; 128];
/// minors[5] = 3;
/// let fmt = MorphFormat::fitting(&minors).unwrap();
/// let bytes = encode_morphable(fmt, 9, &minors, 0xABCD);
/// let (f2, major, m2, mac) = decode_morphable(&bytes).unwrap();
/// assert_eq!((f2, major, mac), (fmt, 9, 0xABCD));
/// assert_eq!(m2[5], 3);
/// ```
pub fn encode_morphable(format: MorphFormat, major: u64, minors: &[u16], mac: u64) -> [u8; 64] {
    assert_eq!(minors.len(), MORPHABLE_MINORS, "need 128 minors");
    let nz = minors.iter().filter(|&&m| m > 0).count();
    let mx = minors.iter().copied().max().unwrap_or(0);
    assert!(
        mx <= format.max_minor() && nz <= format.nonzero_capacity(),
        "minors do not fit {format:?}: max={mx} nonzero={nz}"
    );

    let mut out = [0u8; 64];
    // Header: 56-bit MAC then 2-bit format tag in byte 7's low bits.
    out[..7].copy_from_slice(&mac.to_be_bytes()[1..8]);
    out[7] = format.tag();
    out[8..16].copy_from_slice(&major.to_be_bytes());

    let payload = &mut out[16..64];
    match format {
        MorphFormat::Uniform3 => {
            let mut w = BitCursor::new(payload);
            for &m in minors {
                w.write(m, 3);
            }
        }
        _ => {
            // 128-bit bitmap of non-zero positions, then packed values.
            let mut w = BitCursor::new(payload);
            for &m in minors {
                w.write(u16::from(m > 0), 1);
            }
            for &m in minors {
                if m > 0 {
                    w.write(m, format.minor_bits());
                }
            }
        }
    }
    out
}

/// Unpacks a Morphable block from its 64-byte DRAM representation.
///
/// Returns `(format, major, minors, mac)`, or `None` if the format tag is
/// invalid (corrupted block).
pub fn decode_morphable(bytes: &[u8; 64]) -> Option<(MorphFormat, u64, [u16; 128], u64)> {
    let format = MorphFormat::from_tag(bytes[7] & 0b11)?;
    let mut mac_bytes = [0u8; 8];
    mac_bytes[1..8].copy_from_slice(&bytes[..7]);
    let mac = u64::from_be_bytes(mac_bytes);
    let major = u64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes"));

    let payload = &bytes[16..64];
    let mut minors = [0u16; 128];
    match format {
        MorphFormat::Uniform3 => {
            for (i, m) in minors.iter_mut().enumerate() {
                *m = read_bits(payload, i * 3, 3);
            }
        }
        _ => {
            let mut value_bit = 128;
            for (i, m) in minors.iter_mut().enumerate() {
                if read_bits(payload, i, 1) == 1 {
                    *m = read_bits(payload, value_bit, format.minor_bits());
                    value_bit += format.minor_bits();
                }
            }
        }
    }
    Some((format, major, minors, mac))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_budgets_fit_in_384_bits() {
        // The format table must respect the 48-byte payload budget.
        assert!(128 * MorphFormat::Uniform3.minor_bits() <= 384);
        for f in [MorphFormat::Zcc5, MorphFormat::Zcc6, MorphFormat::Zcc7] {
            assert!(
                128 + f.nonzero_capacity() * f.minor_bits() <= 384,
                "{f:?} overflows payload"
            );
        }
    }

    #[test]
    fn fitting_prefers_uniform() {
        let minors = [1u16; 128];
        assert_eq!(MorphFormat::fitting(&minors), Some(MorphFormat::Uniform3));
    }

    #[test]
    fn fitting_escalates_with_max_value() {
        let mut minors = [0u16; 128];
        minors[0] = 8;
        assert_eq!(MorphFormat::fitting(&minors), Some(MorphFormat::Zcc5));
        minors[0] = 32;
        assert_eq!(MorphFormat::fitting(&minors), Some(MorphFormat::Zcc6));
        minors[0] = 64;
        assert_eq!(MorphFormat::fitting(&minors), Some(MorphFormat::Zcc7));
        minors[0] = 128;
        assert_eq!(MorphFormat::fitting(&minors), None);
    }

    #[test]
    fn fitting_respects_nonzero_capacity() {
        // 52 non-zero values of 9 exceed Zcc5's 51 slots — and Zcc6/Zcc7
        // have even fewer slots, so the block must rebase.
        let mut minors = [0u16; 128];
        for m in minors.iter_mut().take(52) {
            *m = 9;
        }
        assert_eq!(MorphFormat::fitting(&minors), None);
        // 40 non-zero values of 35 need 6-bit minors: Zcc6.
        let mut minors = [0u16; 128];
        for m in minors.iter_mut().take(40) {
            *m = 35;
        }
        assert_eq!(MorphFormat::fitting(&minors), Some(MorphFormat::Zcc6));
        // 43 don't fit Zcc6 when a value needs 7 bits.
        let mut minors = [0u16; 128];
        for m in minors.iter_mut().take(43) {
            *m = 100;
        }
        assert_eq!(MorphFormat::fitting(&minors), None);
        // ...but 36 do fit Zcc7.
        let mut minors = [0u16; 128];
        for m in minors.iter_mut().take(36) {
            *m = 100;
        }
        assert_eq!(MorphFormat::fitting(&minors), Some(MorphFormat::Zcc7));
    }

    #[test]
    fn roundtrip_uniform() {
        let mut minors = [0u16; 128];
        for (i, m) in minors.iter_mut().enumerate() {
            *m = (i % 8) as u16;
        }
        let bytes = encode_morphable(
            MorphFormat::Uniform3,
            77,
            &minors,
            0x00AA_BBCC_DDEE_FF01 & 0x00FF_FFFF_FFFF_FFFF,
        );
        let (f, major, m2, _mac) = decode_morphable(&bytes).unwrap();
        assert_eq!(f, MorphFormat::Uniform3);
        assert_eq!(major, 77);
        assert_eq!(m2, minors);
    }

    #[test]
    fn roundtrip_all_zcc_formats() {
        for fmt in [MorphFormat::Zcc5, MorphFormat::Zcc6, MorphFormat::Zcc7] {
            let mut minors = [0u16; 128];
            // Scatter capacity-many values of the max magnitude.
            for i in 0..fmt.nonzero_capacity() {
                minors[(i * 3) % 128] = fmt.max_minor();
            }
            let bytes = encode_morphable(fmt, u64::MAX, &minors, 0x1234);
            let (f, major, m2, mac) = decode_morphable(&bytes).unwrap();
            assert_eq!(f, fmt);
            assert_eq!(major, u64::MAX);
            assert_eq!(mac, 0x1234);
            assert_eq!(m2, minors, "{fmt:?} roundtrip failed");
        }
    }

    #[test]
    fn mac_truncated_to_56_bits() {
        let minors = [0u16; 128];
        let bytes = encode_morphable(MorphFormat::Uniform3, 0, &minors, 0x00DE_ADBE_EFCA_FE42);
        let (_, _, _, mac) = decode_morphable(&bytes).unwrap();
        assert_eq!(mac, 0x00DE_ADBE_EFCA_FE42);
    }

    #[test]
    #[should_panic]
    fn encode_rejects_unfit_minors() {
        let minors = [8u16; 128]; // needs Zcc5 width but 128 non-zeros
        let _ = encode_morphable(MorphFormat::Uniform3, 0, &minors, 0);
    }

    #[test]
    fn tags_roundtrip() {
        for f in MorphFormat::all() {
            assert_eq!(MorphFormat::from_tag(f.tag()), Some(f));
        }
        assert_eq!(MorphFormat::from_tag(9), None);
    }
}
