//! Write-counter organizations and the integrity tree.
//!
//! Secure memory keeps a **write counter** per 64 B block (§II of the
//! paper). Counters are stored in DRAM in 64 B *counter blocks*, and the
//! counter blocks are themselves protected by counters organized in an
//! **integrity tree**. This crate implements the three counter designs the
//! paper evaluates:
//!
//! * **Monolithic** — eight 56-bit counters per block (the classic MEE
//!   layout \[Gueron 2016\]); 512 B coverage.
//! * **SC-64** — a split design with one major counter and 64 seven-bit
//!   minor counters; 4 KB coverage \[Yan et al., ISCA'06\].
//! * **Morphable Counters** — 128 minor counters per block whose storage
//!   format *morphs* between a uniform 3-bit layout and zero-counter-
//!   compressed layouts holding 51×5 b / 42×6 b / 36×7 b non-zero minors
//!   (matching the paper's "variable and non-power-of-2 (e.g., 36, 42, 51)
//!   number of non-zero minor counters"); 8 KB coverage \[Saileshwar et
//!   al., MICRO'18\].
//!
//! Split designs **overflow**: when a minor counter can no longer be
//! represented, the block is *rebased* (major counter incremented, minors
//! reset) and every protected block must be re-encrypted — the "level 0
//! overflow" and "level 1 and higher overflow" DRAM traffic in the paper's
//! Figure 15.
//!
//! # Examples
//!
//! ```
//! use emcc_counters::{CounterDesign, IntegrityTree};
//! use emcc_sim::LineAddr;
//!
//! let mut tree = IntegrityTree::new(CounterDesign::Morphable, 1 << 20);
//! let line = LineAddr::new(42);
//! assert_eq!(tree.data_counter(line), 0);
//! let r = tree.increment_data(line);
//! assert_eq!(r.new_counter, 1);
//! assert_eq!(tree.data_counter(line), 1);
//! ```

pub mod block;
pub mod design;
pub mod format;
pub mod tree;

pub use block::{CounterBlock, IncrementResult, OverflowInfo};
pub use design::CounterDesign;
pub use format::MorphFormat;
pub use tree::{IntegrityTree, MetaKind, TreeGeometry};
