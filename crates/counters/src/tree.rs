//! Integrity-tree geometry and counter state.
//!
//! Counter blocks (level 0) protect data lines; each level-`k+1` node is a
//! counter block protecting `arity` level-`k` blocks (§II "Counter
//! Blocks"). The tree root is pinned on-chip and never traverses the cache
//! hierarchy. All metadata blocks live in a reserved physical region so
//! they occupy cache lines like data, exactly as in designs that cache
//! counters in LLC/L2.

use std::collections::HashMap;

use emcc_sim::LineAddr;

use crate::block::{CounterBlock, IncrementResult};
use crate::design::CounterDesign;

/// First line index of the metadata region (1 << 38 lines = 16 TB byte
/// address), far above the simulated 128 GB data space.
const META_BASE_LINE: u64 = 1 << 38;

/// Line-index stride between tree levels within the metadata region.
const LEVEL_STRIDE: u64 = 1 << 32;

/// What a line address refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaKind {
    /// A regular data line.
    Data,
    /// A metadata block at the given tree level (0 = counter blocks).
    Meta {
        /// Tree level; 0 is the data counter blocks.
        level: u32,
    },
}

/// The static shape of the integrity tree for a given design and data size.
///
/// # Examples
///
/// ```
/// use emcc_counters::{CounterDesign, TreeGeometry};
///
/// // 1 M data lines (64 MB) under Morphable: 8192 counter blocks,
/// // 64 level-1 nodes, then a root.
/// let g = TreeGeometry::new(CounterDesign::Morphable, 1 << 20);
/// assert_eq!(g.blocks_at_level(0), 8192);
/// assert_eq!(g.blocks_at_level(1), 64);
/// assert_eq!(g.num_levels(), 2); // root not counted
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeGeometry {
    design: CounterDesign,
    data_lines: u64,
    /// Number of blocks at each level, excluding the on-chip root.
    levels: Vec<u64>,
}

impl TreeGeometry {
    /// Builds the geometry for `data_lines` protected lines.
    ///
    /// # Panics
    ///
    /// Panics if `data_lines` is zero or exceeds the metadata region base.
    pub fn new(design: CounterDesign, data_lines: u64) -> Self {
        assert!(data_lines > 0, "need a non-empty data region");
        assert!(
            data_lines < META_BASE_LINE,
            "data region collides with metadata region"
        );
        let arity = design.coverage();
        let mut levels = Vec::new();
        let mut blocks = data_lines.div_ceil(arity);
        while blocks > 1 {
            levels.push(blocks);
            blocks = blocks.div_ceil(arity);
        }
        if levels.is_empty() {
            // Tiny region: a single counter block, still materialized so
            // the caches have something to hold.
            levels.push(1);
        }
        TreeGeometry {
            design,
            data_lines,
            levels,
        }
    }

    /// The counter design (fixes the tree arity).
    pub fn design(&self) -> CounterDesign {
        self.design
    }

    /// The number of protected data lines the geometry was built for.
    pub fn data_lines(&self) -> u64 {
        self.data_lines
    }

    /// Number of levels, excluding the on-chip root.
    pub fn num_levels(&self) -> u32 {
        self.levels.len() as u32
    }

    /// Number of metadata blocks at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn blocks_at_level(&self, level: u32) -> u64 {
        self.levels[level as usize]
    }

    /// Total metadata blocks across all levels.
    pub fn total_meta_blocks(&self) -> u64 {
        self.levels.iter().sum()
    }

    /// The counter block (level-0 node index) covering a data line.
    pub fn counter_block_of(&self, line: LineAddr) -> u64 {
        line.get() / self.design.coverage()
    }

    /// The slot within its counter block for a data line.
    pub fn slot_of(&self, line: LineAddr) -> usize {
        (line.get() % self.design.coverage()) as usize
    }

    /// Parent of a metadata node, or `None` if the parent is the root.
    pub fn parent_of(&self, level: u32, index: u64) -> Option<(u32, u64)> {
        let next = level + 1;
        if next >= self.num_levels() {
            None
        } else {
            Some((next, index / self.design.coverage()))
        }
    }

    /// Line address of a metadata node, as seen by the caches/DRAM.
    ///
    /// # Panics
    ///
    /// Panics if `level`/`index` are out of range.
    pub fn node_addr(&self, level: u32, index: u64) -> LineAddr {
        assert!(level < self.num_levels(), "level out of range");
        assert!(index < self.levels[level as usize], "index out of range");
        LineAddr::new(META_BASE_LINE + u64::from(level) * LEVEL_STRIDE + index)
    }

    /// Classifies a line address as data or metadata.
    pub fn classify(&self, line: LineAddr) -> MetaKind {
        let l = line.get();
        if l < META_BASE_LINE {
            MetaKind::Data
        } else {
            MetaKind::Meta {
                level: ((l - META_BASE_LINE) / LEVEL_STRIDE) as u32,
            }
        }
    }

    /// Inverse of [`Self::node_addr`]: `(level, index)` of a metadata line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not a metadata address.
    pub fn node_of_addr(&self, line: LineAddr) -> (u32, u64) {
        match self.classify(line) {
            MetaKind::Meta { level } => {
                let index = line.get() - META_BASE_LINE - u64::from(level) * LEVEL_STRIDE;
                (level, index)
            }
            MetaKind::Data => panic!("{line:?} is not a metadata address"),
        }
    }

    /// The chain of metadata blocks needed to verify a data line's counter
    /// block, from level 0 upward (root excluded).
    pub fn verification_path(&self, line: LineAddr) -> Vec<LineAddr> {
        let mut path = Vec::with_capacity(self.levels.len());
        let mut level = 0;
        let mut idx = self.counter_block_of(line);
        loop {
            path.push(self.node_addr(level, idx));
            match self.parent_of(level, idx) {
                Some((l, i)) => {
                    level = l;
                    idx = i;
                }
                None => break,
            }
        }
        path
    }
}

/// Dynamic counter state for the whole protected memory: the counter
/// values of every data line and every tree node, stored sparsely.
///
/// The *timing* of fetching/verifying these blocks is the memory
/// controller's business; this type owns the architectural values,
/// including overflow (rebase) side effects.
///
/// # Examples
///
/// ```
/// use emcc_counters::{CounterDesign, IntegrityTree};
/// use emcc_sim::LineAddr;
///
/// let mut t = IntegrityTree::new(CounterDesign::Sc64, 1 << 16);
/// let r = t.increment_data(LineAddr::new(100));
/// assert_eq!(r.new_counter, 1);
/// assert_eq!(t.data_counter(LineAddr::new(100)), 1);
/// // Line 101 shares the counter block but not the counter.
/// assert_eq!(t.data_counter(LineAddr::new(101)), 0);
/// ```
#[derive(Debug, Clone)]
pub struct IntegrityTree {
    geometry: TreeGeometry,
    /// (level, node index) → block state. Level 0 holds data counters;
    /// level k>0 holds counters protecting level k-1 blocks. The root's
    /// counters are level `num_levels` conceptually; they are stored here
    /// too but never generate memory traffic.
    blocks: HashMap<(u32, u64), CounterBlock>,
    overflows_by_level: Vec<u64>,
    morphs: u64,
}

impl IntegrityTree {
    /// Creates an all-zero tree over `data_lines` lines.
    pub fn new(design: CounterDesign, data_lines: u64) -> Self {
        let geometry = TreeGeometry::new(design, data_lines);
        let n = geometry.num_levels() as usize + 1;
        IntegrityTree {
            geometry,
            blocks: HashMap::new(),
            overflows_by_level: vec![0; n],
            morphs: 0,
        }
    }

    /// The static geometry.
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// Current counter value of a data line.
    pub fn data_counter(&self, line: LineAddr) -> u64 {
        let cb = self.geometry.counter_block_of(line);
        let slot = self.geometry.slot_of(line);
        self.blocks.get(&(0, cb)).map_or(0, |b| b.counter(slot))
    }

    /// Increments a data line's counter (a write-back of that line).
    ///
    /// On overflow the whole counter block's covered region must be
    /// re-encrypted; the caller turns that into DRAM traffic.
    pub fn increment_data(&mut self, line: LineAddr) -> IncrementResult {
        let cb = self.geometry.counter_block_of(line);
        let slot = self.geometry.slot_of(line);
        self.bump((0, cb), slot)
    }

    /// Whether incrementing this line's counter would rebase its counter
    /// block. Functional models use this to snapshot old plaintexts before
    /// the rebase invalidates the covered region's counters.
    pub fn would_overflow_data(&self, line: LineAddr) -> bool {
        let cb = self.geometry.counter_block_of(line);
        let slot = self.geometry.slot_of(line);
        match self.blocks.get(&(0, cb)) {
            None => false,
            Some(b) => {
                let mut probe = b.clone();
                probe.increment(slot).overflow.is_some()
            }
        }
    }

    /// Counter value protecting metadata node `(level, index)`.
    pub fn node_counter(&self, level: u32, index: u64) -> u64 {
        let arity = self.geometry.design().coverage();
        let key = (level + 1, index / arity);
        let slot = (index % arity) as usize;
        self.blocks.get(&key).map_or(0, |b| b.counter(slot))
    }

    /// Increments the counter protecting metadata node `(level, index)` —
    /// called when that node is written back to DRAM.
    pub fn increment_node(&mut self, level: u32, index: u64) -> IncrementResult {
        let arity = self.geometry.design().coverage();
        let key = (level + 1, index / arity);
        let slot = (index % arity) as usize;
        self.bump(key, slot)
    }

    fn bump(&mut self, key: (u32, u64), slot: usize) -> IncrementResult {
        let design = self.geometry.design();
        let block = self
            .blocks
            .entry(key)
            .or_insert_with(|| CounterBlock::new(design));
        let r = block.increment(slot);
        if r.overflow.is_some() {
            let lvl = key.0 as usize;
            if lvl < self.overflows_by_level.len() {
                self.overflows_by_level[lvl] += 1;
            }
        }
        if r.morphed.is_some() {
            self.morphs += 1;
        }
        r
    }

    /// The materialized level-0 (data counter) block at `index`, if any
    /// write ever touched it. Absent blocks are all-zero.
    pub fn level0_block(&self, index: u64) -> Option<&CounterBlock> {
        self.blocks.get(&(0, index))
    }

    /// Snapshot of every materialized level-0 block, ascending by index —
    /// the persistent counter state a checkpoint must capture. (Functional
    /// users only ever mutate level 0: data writes bump leaf counters and
    /// node counters above stay zero, so this *is* the full tree state.)
    pub fn level0_blocks(&self) -> Vec<(u64, CounterBlock)> {
        let mut out: Vec<(u64, CounterBlock)> = self
            .blocks
            .iter()
            .filter(|((level, _), _)| *level == 0)
            .map(|(&(_, idx), b)| (idx, b.clone()))
            .collect();
        out.sort_unstable_by_key(|(idx, _)| *idx);
        out
    }

    /// Installs (or, with `None`, clears) the level-0 block at `index`
    /// during crash recovery.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside level 0 or the block's design differs
    /// from the tree's: recovery decoders validate both before calling.
    pub fn restore_level0_block(&mut self, index: u64, block: Option<CounterBlock>) {
        assert!(
            index < self.geometry.blocks_at_level(0),
            "level-0 index out of range"
        );
        match block {
            Some(b) => {
                assert_eq!(
                    b.design(),
                    self.geometry.design(),
                    "restored block design mismatch"
                );
                self.blocks.insert((0, index), b);
            }
            None => {
                self.blocks.remove(&(0, index));
            }
        }
    }

    /// Overflows observed at each level since construction. Index 0 =
    /// data-counter blocks ("level 0 overflow" in Fig 15), index 1+ =
    /// higher tree levels.
    pub fn overflows_by_level(&self) -> &[u64] {
        &self.overflows_by_level
    }

    /// Number of Morphable format changes observed.
    pub fn morphs(&self) -> u64 {
        self.morphs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_level_sizes() {
        // 2^31 lines (128 GB) under Morphable (arity 128 = 2^7):
        // L0 = 2^24, L1 = 2^17, L2 = 2^10, L3 = 2^3, then root.
        let g = TreeGeometry::new(CounterDesign::Morphable, 1 << 31);
        assert_eq!(g.num_levels(), 4);
        assert_eq!(g.blocks_at_level(0), 1 << 24);
        assert_eq!(g.blocks_at_level(3), 8);
    }

    #[test]
    fn geometry_sc64_vs_morphable_tree_size() {
        // §II: SC-64's first level covers 4096 blocks vs 64 for monolithic;
        // bigger arity ⇒ far fewer metadata blocks.
        let lines = 1 << 26;
        let sc = TreeGeometry::new(CounterDesign::Sc64, lines);
        let mo = TreeGeometry::new(CounterDesign::Morphable, lines);
        assert!(mo.total_meta_blocks() < sc.total_meta_blocks());
    }

    #[test]
    fn counter_block_mapping() {
        let g = TreeGeometry::new(CounterDesign::Morphable, 1 << 20);
        assert_eq!(g.counter_block_of(LineAddr::new(0)), 0);
        assert_eq!(g.counter_block_of(LineAddr::new(127)), 0);
        assert_eq!(g.counter_block_of(LineAddr::new(128)), 1);
        assert_eq!(g.slot_of(LineAddr::new(130)), 2);
    }

    #[test]
    fn node_addr_roundtrip_and_classify() {
        let g = TreeGeometry::new(CounterDesign::Morphable, 1 << 20);
        for level in 0..g.num_levels() {
            let idx = g.blocks_at_level(level) - 1;
            let addr = g.node_addr(level, idx);
            assert_eq!(g.classify(addr), MetaKind::Meta { level });
            assert_eq!(g.node_of_addr(addr), (level, idx));
        }
        assert_eq!(g.classify(LineAddr::new(500)), MetaKind::Data);
    }

    #[test]
    fn metadata_addresses_disjoint_across_levels() {
        let g = TreeGeometry::new(CounterDesign::Sc64, 1 << 28);
        let a = g.node_addr(0, 0);
        let b = g.node_addr(1, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn verification_path_walks_to_root() {
        let g = TreeGeometry::new(CounterDesign::Morphable, 1 << 31);
        let path = g.verification_path(LineAddr::new(12345));
        assert_eq!(path.len(), 4);
        // First element is the counter block itself.
        assert_eq!(path[0], g.node_addr(0, 12345 / 128));
        // Each subsequent element is the parent node.
        assert_eq!(path[1], g.node_addr(1, 12345 / 128 / 128));
    }

    #[test]
    fn tiny_region_has_single_block_level() {
        let g = TreeGeometry::new(CounterDesign::Morphable, 64);
        assert_eq!(g.num_levels(), 1);
        assert_eq!(g.blocks_at_level(0), 1);
    }

    #[test]
    fn tree_counters_independent_across_lines() {
        let mut t = IntegrityTree::new(CounterDesign::Morphable, 1 << 16);
        t.increment_data(LineAddr::new(0));
        t.increment_data(LineAddr::new(0));
        t.increment_data(LineAddr::new(1));
        assert_eq!(t.data_counter(LineAddr::new(0)), 2);
        assert_eq!(t.data_counter(LineAddr::new(1)), 1);
        assert_eq!(t.data_counter(LineAddr::new(2)), 0);
    }

    #[test]
    fn node_counters_track_writebacks() {
        let mut t = IntegrityTree::new(CounterDesign::Sc64, 1 << 16);
        assert_eq!(t.node_counter(0, 5), 0);
        t.increment_node(0, 5);
        assert_eq!(t.node_counter(0, 5), 1);
        // Level-1 node counters live in level-2 blocks (or the root).
        t.increment_node(1, 0);
        assert_eq!(t.node_counter(1, 0), 1);
    }

    #[test]
    fn overflow_statistics_by_level() {
        let mut t = IntegrityTree::new(CounterDesign::Sc64, 1 << 16);
        // 128 writes to one line force a level-0 rebase.
        for _ in 0..128 {
            t.increment_data(LineAddr::new(9));
        }
        assert_eq!(t.overflows_by_level()[0], 1);
        // 128 writebacks of one counter block force a level-1 rebase.
        for _ in 0..128 {
            t.increment_node(0, 3);
        }
        assert_eq!(t.overflows_by_level()[1], 1);
    }

    #[test]
    fn morph_statistics_counted() {
        let mut t = IntegrityTree::new(CounterDesign::Morphable, 1 << 16);
        for _ in 0..9 {
            t.increment_data(LineAddr::new(0));
        }
        assert!(t.morphs() >= 1, "8th write to one line must morph");
    }

    #[test]
    fn level0_snapshot_restore_roundtrip() {
        let mut t = IntegrityTree::new(CounterDesign::Sc64, 1 << 16);
        for i in 0..300u64 {
            t.increment_data(LineAddr::new(i * 3));
        }
        let snap = t.level0_blocks();
        assert!(!snap.is_empty());
        let mut fresh = IntegrityTree::new(CounterDesign::Sc64, 1 << 16);
        for (idx, b) in &snap {
            fresh.restore_level0_block(*idx, Some(b.clone()));
        }
        for i in 0..300u64 {
            let l = LineAddr::new(i * 3);
            assert_eq!(fresh.data_counter(l), t.data_counter(l));
        }
        // Clearing a block zeroes its counters again.
        fresh.restore_level0_block(snap[0].0, None);
        assert_eq!(
            fresh.data_counter(LineAddr::new(snap[0].0 * 64)),
            0,
            "cleared block reads zero"
        );
    }

    #[test]
    #[should_panic]
    fn restore_level0_rejects_out_of_range() {
        let mut t = IntegrityTree::new(CounterDesign::Morphable, 1 << 10);
        let n = t.geometry().blocks_at_level(0);
        t.restore_level0_block(n, Some(CounterBlock::new(CounterDesign::Morphable)));
    }

    #[test]
    #[should_panic]
    fn node_addr_rejects_out_of_range() {
        let g = TreeGeometry::new(CounterDesign::Morphable, 1 << 20);
        let _ = g.node_addr(0, g.blocks_at_level(0));
    }
}
