//! Value-generation strategies (the subset of proptest's the tests use).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

/// Strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )+
    };
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $i:tt),+)),+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )+
    };
}
tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Element-count bounds for collection strategies.
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// `Vec` strategy from [`crate::prop::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `[T; 8]` strategy from [`crate::prop::array::uniform8`].
pub struct ArrayStrategy8<S> {
    pub(crate) element: S,
}

impl<S: Strategy> Strategy for ArrayStrategy8<S> {
    type Value = [S::Value; 8];
    fn sample(&self, rng: &mut TestRng) -> [S::Value; 8] {
        std::array::from_fn(|_| self.element.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (10u64..12).sample(&mut rng);
            assert!((10..12).contains(&v));
            let w = (0u16..=127).sample(&mut rng);
            assert!(w <= 127);
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = TestRng::deterministic("full");
        let _ = (0u64..=u64::MAX).sample(&mut rng);
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = TestRng::deterministic("vec");
        let s = VecStrategy {
            element: 0u64..5,
            size: (2..=4).into(),
        };
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v.len() >= 2 && v.len() <= 4);
        }
    }
}
