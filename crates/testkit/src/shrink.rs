//! Integrated shrinking: minimize a failing case to a small reproducer.
//!
//! The fuzzer (and any property test that opts in) hands a failing value
//! to [`minimize`] together with the predicate that detects the failure;
//! the driver greedily applies [`Shrink::shrink_candidates`] until no
//! candidate still fails or the test budget is exhausted. Shrinking is
//! fully deterministic: candidates are tried in the order the type
//! produces them, and the first still-failing candidate is taken.
//!
//! Types compose their shrink candidates from the [`shrink_vec`] /
//! [`shrink_int`] helpers, mirroring proptest's delta-debugging order:
//! large structural deletions first (drop half the elements), then
//! smaller ones, then element-wise simplification.

/// A type that can propose strictly "smaller" variants of itself.
///
/// Candidates must be simpler by some well-founded measure (fewer
/// elements, smaller integers, fewer enabled features) so the greedy
/// driver terminates. An empty vector means the value is fully minimal.
pub trait Shrink: Sized {
    /// Proposes simpler variants, most aggressive first.
    fn shrink_candidates(&self) -> Vec<Self>;
}

/// Outcome of a [`minimize`] run.
#[derive(Debug, Clone)]
pub struct Minimized<T> {
    /// The smallest still-failing value found.
    pub value: T,
    /// Accepted shrink steps (candidates that still failed).
    pub steps: usize,
    /// Total candidates tested against the predicate.
    pub tested: usize,
}

/// Greedily minimizes `value` under `still_fails`, testing at most
/// `max_tests` candidates.
///
/// `value` itself is assumed to fail (callers establish that before
/// shrinking); the return value is guaranteed to fail `still_fails`
/// whenever that assumption holds, because only failing candidates are
/// accepted.
pub fn minimize<T: Shrink>(
    value: T,
    max_tests: usize,
    mut still_fails: impl FnMut(&T) -> bool,
) -> Minimized<T> {
    let mut current = value;
    let mut steps = 0;
    let mut tested = 0;
    'outer: loop {
        for cand in current.shrink_candidates() {
            if tested >= max_tests {
                break 'outer;
            }
            tested += 1;
            if still_fails(&cand) {
                current = cand;
                steps += 1;
                continue 'outer;
            }
        }
        break; // no candidate still fails: fully shrunk
    }
    Minimized {
        value: current,
        steps,
        tested,
    }
}

/// Structural shrink candidates for a sequence: remove progressively
/// smaller chunks (half, quarter, ..., single elements), then simplify
/// single elements with `shrink_elem`. Never proposes an empty vector
/// when `min_len` is 1 or more.
pub fn shrink_vec<T: Clone>(
    xs: &[T],
    min_len: usize,
    shrink_elem: impl Fn(&T) -> Vec<T>,
) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let n = xs.len();
    // Chunk deletions: half, quarter, ..., down to single elements.
    let mut chunk = n / 2;
    while chunk >= 1 {
        let mut start = 0;
        while start + chunk <= n {
            if n - chunk >= min_len {
                let mut shorter = Vec::with_capacity(n - chunk);
                shorter.extend_from_slice(&xs[..start]);
                shorter.extend_from_slice(&xs[start + chunk..]);
                out.push(shorter);
            }
            start += chunk;
        }
        chunk /= 2;
    }
    // Element-wise simplification, first failing element wins.
    for (i, x) in xs.iter().enumerate() {
        for smaller in shrink_elem(x) {
            let mut ys = xs.to_vec();
            ys[i] = smaller;
            out.push(ys);
        }
    }
    out
}

/// Shrink candidates for an optional feature: drop it entirely first
/// (the most aggressive simplification), then simplify its payload.
///
/// Crash schedules use this for "the run also corrupts a byte" style
/// add-ons: a reproducer without the add-on is strictly simpler, and if
/// the failure needs it, the payload still shrinks element-wise.
pub fn shrink_option<T: Clone>(
    x: &Option<T>,
    shrink_some: impl Fn(&T) -> Vec<T>,
) -> Vec<Option<T>> {
    match x {
        None => Vec::new(),
        Some(v) => {
            let mut out = vec![None];
            out.extend(shrink_some(v).into_iter().map(Some));
            out
        }
    }
}

/// Shrink candidates for an integer: towards `floor` by halving the
/// distance, then by one.
pub fn shrink_int(x: u64, floor: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if x <= floor {
        return out;
    }
    let span = x - floor;
    if span > 1 {
        out.push(floor + span / 2);
    }
    out.push(floor);
    out.push(x - 1);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    impl Shrink for Vec<u64> {
        fn shrink_candidates(&self) -> Vec<Self> {
            shrink_vec(self, 1, |&x| {
                shrink_int(x, 0).into_iter().collect::<Vec<u64>>()
            })
        }
    }

    #[test]
    fn minimizes_to_single_offending_element() {
        // Failure: the vector contains a value >= 100.
        let start: Vec<u64> = (0..64).map(|i| if i == 37 { 250 } else { i }).collect();
        let m = minimize(start, 10_000, |v| v.iter().any(|&x| x >= 100));
        assert_eq!(m.value.len(), 1, "should shrink to one element");
        assert_eq!(m.value[0], 100, "element should shrink to the boundary");
        assert!(m.steps > 0);
    }

    #[test]
    fn respects_test_budget() {
        let start: Vec<u64> = vec![500; 1024];
        let m = minimize(start, 7, |v| !v.is_empty());
        assert!(m.tested <= 7);
    }

    #[test]
    fn minimal_value_stays_put() {
        let m = minimize(vec![0u64], 1000, |v| !v.is_empty());
        assert_eq!(m.value, vec![0]);
        assert_eq!(m.steps, 0);
    }

    #[test]
    fn shrink_vec_never_below_min_len() {
        let xs = vec![1u64, 2, 3, 4];
        for cand in shrink_vec(&xs, 2, |_| Vec::new()) {
            assert!(cand.len() >= 2, "candidate too short: {cand:?}");
        }
    }

    #[test]
    fn shrink_int_moves_toward_floor() {
        assert!(shrink_int(5, 5).is_empty());
        let c = shrink_int(100, 10);
        assert!(c.contains(&55) && c.contains(&10) && c.contains(&99));
        for v in c {
            assert!((10..100).contains(&v));
        }
    }

    #[test]
    fn shrink_option_drops_feature_first() {
        let none: Option<u64> = None;
        assert!(shrink_option(&none, |&x| shrink_int(x, 0)).is_empty());
        let some = Some(8u64);
        let cands = shrink_option(&some, |&x| shrink_int(x, 0));
        assert_eq!(cands[0], None, "dropping the feature must come first");
        assert!(cands[1..].iter().all(|c| matches!(c, Some(v) if *v < 8)));
    }

    #[test]
    fn driver_is_deterministic() {
        let start: Vec<u64> = (0..32).rev().collect();
        let a = minimize(start.clone(), 5_000, |v| v.iter().sum::<u64>() >= 40);
        let b = minimize(start, 5_000, |v| v.iter().sum::<u64>() >= 40);
        assert_eq!(a.value, b.value);
        assert_eq!(a.tested, b.tested);
    }
}
