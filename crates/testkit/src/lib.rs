//! Offline drop-in subset of the [proptest](https://docs.rs/proptest)
//! property-testing API.
//!
//! This workspace must build without network access (DESIGN.md §8), so
//! the property tests run on a local implementation of the proptest
//! surface they use: the [`proptest!`] macro, `any::<T>()`, integer-range
//! and tuple strategies, `prop::collection::vec`, `prop::array::uniform8`
//! and the `prop_assert*` macros. Test files depend on it under the name
//! `proptest`, so swapping back to the real crate is a one-line
//! Cargo.toml change.
//!
//! Cases are generated from a deterministic splitmix64 stream seeded by
//! the test name, so failures are reproducible run-to-run. Set
//! `PROPTEST_CASES` (default 64) to raise or lower the case count. The
//! `proptest!` macro reports a failing case's inputs verbatim; callers
//! that want a minimal reproducer (the fuzzer) implement [`Shrink`] and
//! run the failing value through [`minimize`].

pub mod shrink;
pub mod strategy;

pub use shrink::{minimize, shrink_int, shrink_option, shrink_vec, Minimized, Shrink};
pub use strategy::{any, Strategy};

/// Deterministic generator state for one property test.
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from the test's name so each test gets a distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next value of the splitmix64 stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Number of cases per property (`PROPTEST_CASES`, default 64).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Modules mirroring proptest's `prop::` paths.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// A `Vec` of values from `element`, sized within `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Fixed-size array strategies (`prop::array::uniform8`).
    pub mod array {
        use crate::strategy::{ArrayStrategy8, Strategy};

        /// An `[T; 8]` with each element drawn from `element`.
        pub fn uniform8<S: Strategy>(element: S) -> ArrayStrategy8<S> {
            ArrayStrategy8 { element }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: `fn name(arg in strategy, ...) { body }`.
///
/// Each declared function becomes a `#[test]` (the attribute is written
/// explicitly inside the macro invocation, as in real proptest) running
/// [`case_count`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::case_count() {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let __result = (move || -> ::std::result::Result<(), String> {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = __result {
                        panic!(
                            "property {} failed at case {}:\n  {}\n  inputs: {}",
                            stringify!($name), __case, e, __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let mut c = crate::TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        /// The macro itself: ranges stay in bounds, tuples and vecs work.
        #[test]
        fn macro_smoke(
            x in 3u64..10,
            y in 0u16..=5,
            pair in (0u64..4, any::<u64>()),
            v in prop::collection::vec(0usize..7, 1..=9),
            arr in prop::array::uniform8(any::<u64>()),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5, "y out of range: {}", y);
            prop_assert!(pair.0 < 4);
            prop_assert!(!v.is_empty() && v.len() <= 9);
            prop_assert!(v.iter().all(|&e| e < 7));
            prop_assert_eq!(arr.len(), 8);
        }
    }
}
