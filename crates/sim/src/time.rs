//! Picosecond-resolution simulation time.
//!
//! All timing models in the workspace express latencies in [`Time`]. Using
//! picoseconds keeps every latency in the paper exactly representable: at
//! the simulated 3.2 GHz core clock one cycle is 312.5 ps, and DDR4-3200
//! timing parameters such as tCL = 13.75 ns are integral numbers of
//! picoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant or duration in simulated time, stored as picoseconds.
///
/// `Time` is used both as an absolute simulation timestamp and as a
/// duration, mirroring gem5's `Tick`. Arithmetic is checked in debug builds
/// and saturating on subtraction underflow is *not* silently provided —
/// subtracting past zero is a logic bug and panics in debug builds.
///
/// # Examples
///
/// ```
/// use emcc_sim::Time;
///
/// let aes = Time::from_ns(14);
/// let decode = Time::from_ns(3);
/// assert_eq!((aes + decode).as_ns_f64(), 17.0);
/// assert!(aes > decode);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The zero instant (simulation start) / zero-length duration.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time; useful as an "infinite" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a time from a fractional number of nanoseconds.
    ///
    /// The value is rounded to the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "invalid time: {ns} ns");
        Time((ns * 1_000.0).round() as u64)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000_000)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time in nanoseconds, as a float (lossless for values < 2^53 ps).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    ///
    /// Useful for computing "remaining latency after overlap" where the
    /// overlap may fully cover the latency.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, rhs: Time) -> Option<Time> {
        self.0.checked_sub(rhs.0).map(Time)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: Time) -> Time {
        Time(self.0.max(rhs.0))
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: Time) -> Time {
        Time(self.0.min(rhs.0))
    }

    /// True if this is the zero time.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// A fixed clock frequency, used to convert between cycles and [`Time`].
///
/// # Examples
///
/// ```
/// use emcc_sim::time::Frequency;
///
/// let core = Frequency::from_ghz(3.2);
/// assert_eq!(core.cycles(2).as_ps(), 625);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Frequency {
    ps_per_cycle_x16: u64,
}

impl Frequency {
    /// Creates a frequency from GHz.
    ///
    /// The period is stored in 1/16-picosecond units so that common server
    /// frequencies (3.2 GHz → 312.5 ps) are exact.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not a positive finite number.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "invalid frequency: {ghz} GHz");
        Frequency {
            ps_per_cycle_x16: (16_000.0 / ghz).round() as u64,
        }
    }

    /// Duration of `n` cycles at this frequency.
    #[inline]
    pub fn cycles(self, n: u64) -> Time {
        Time::from_ps(n * self.ps_per_cycle_x16 / 16)
    }

    /// Number of whole cycles contained in `t`.
    #[inline]
    pub fn cycles_in(self, t: Time) -> u64 {
        t.as_ps() * 16 / self.ps_per_cycle_x16
    }

    /// Period of one cycle.
    #[inline]
    pub fn period(self) -> Time {
        self.cycles(1)
    }

    /// An exact accumulator for repeated cycle-to-time conversion.
    #[inline]
    pub fn accumulator(self) -> CycleAccumulator {
        CycleAccumulator {
            freq: self,
            rem_x16: 0,
        }
    }
}

/// Exact carrying accumulator for cycle-by-cycle time advancement.
///
/// [`Frequency::cycles`] truncates to whole picoseconds on every call, so
/// repeated-cycle callers drift by up to one picosecond per call: at
/// 3.2 GHz, `cycles(1) * 2` is 624 ps while `cycles(2)` is 625 ps. The
/// accumulator carries the sub-picosecond remainder (in the same 1/16-ps
/// units the period is stored in) across calls, so the summed advances are
/// always exactly `cycles(total)` no matter how the cycles are split.
///
/// # Examples
///
/// ```
/// use emcc_sim::time::Frequency;
///
/// let f = Frequency::from_ghz(3.2);
/// let mut acc = f.accumulator();
/// let split = acc.advance(1) + acc.advance(1);
/// assert_eq!(split, f.cycles(2)); // 625 ps, no truncation drift
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct CycleAccumulator {
    freq: Frequency,
    rem_x16: u64,
}

impl CycleAccumulator {
    /// Duration of the next `n` cycles, carrying the fractional remainder
    /// into the following call.
    #[inline]
    pub fn advance(&mut self, n: u64) -> Time {
        let x16 = self.rem_x16 + n * self.freq.ps_per_cycle_x16;
        self.rem_x16 = x16 % 16;
        Time::from_ps(x16 / 16)
    }

    /// The frequency this accumulator converts at.
    #[inline]
    pub fn frequency(self) -> Frequency {
        self.freq
    }

    /// Sub-picosecond remainder currently carried, in 1/16-ps units (< 16).
    #[inline]
    pub fn remainder_x16(self) -> u64 {
        self.rem_x16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_roundtrip() {
        assert_eq!(Time::from_ns(23).as_ps(), 23_000);
        assert_eq!(Time::from_ns(23).as_ns_f64(), 23.0);
    }

    #[test]
    fn fractional_ns() {
        assert_eq!(Time::from_ns_f64(13.75).as_ps(), 13_750);
        assert_eq!(Time::from_ns_f64(0.0), Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!(a + b, Time::from_ns(14));
        assert_eq!(a - b, Time::from_ns(6));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.checked_sub(b), Some(Time::from_ns(6)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a * 3, Time::from_ns(30));
        assert_eq!(a / 4, Time::from_ps(2_500));
    }

    #[test]
    fn min_max() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [Time::from_ns(1), Time::from_ns(2), Time::from_ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Time::from_ns(6));
    }

    #[test]
    fn display_units() {
        assert_eq!(Time::from_ps(999).to_string(), "999ps");
        assert_eq!(Time::from_ns(23).to_string(), "23.000ns");
        assert_eq!(Time::from_us(5).to_string(), "5.000us");
        assert_eq!(Time::from_ms(20).to_string(), "20.000ms");
    }

    #[test]
    fn frequency_cycles() {
        let f = Frequency::from_ghz(3.2);
        assert_eq!(f.cycles(1).as_ps(), 312);
        assert_eq!(f.cycles(2).as_ps(), 625);
        assert_eq!(f.cycles(16).as_ps(), 5_000);
        assert_eq!(f.cycles_in(Time::from_ns(1)), 3);
    }

    #[test]
    fn cycle_accumulator_carries_exactly() {
        let f = Frequency::from_ghz(3.2);
        // Regression: per-call truncation made cycle-by-cycle advancement
        // drift (312 + 312 = 624 ps instead of 625 ps for two cycles).
        assert_eq!(f.cycles(1) * 2, Time::from_ps(624));
        let mut acc = f.accumulator();
        assert_eq!(acc.advance(1), Time::from_ps(312));
        assert_eq!(acc.advance(1), Time::from_ps(313));
        assert_eq!(acc.remainder_x16(), 0);
        // 16 one-cycle advances land exactly on 16 cycles = 5 ns.
        let mut acc = f.accumulator();
        let total: Time = (0..16).map(|_| acc.advance(1)).sum();
        assert_eq!(total, f.cycles(16));
        assert_eq!(total, Time::from_ns(5));
    }

    #[test]
    #[should_panic]
    fn invalid_frequency_panics() {
        let _ = Frequency::from_ghz(0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_ns_panics() {
        let _ = Time::from_ns_f64(-1.0);
    }
}
