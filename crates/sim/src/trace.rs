//! Per-access critical-path attribution and span tracing.
//!
//! The paper's argument is a latency-composition one: EMCC wins because
//! the counter fetch no longer sits serially on the L2-miss critical path
//! (Figs 5/8/10). This module makes that composition observable. Timing
//! models record the *work intervals* an access caused as [`Span`]s —
//! L2 lookup, NoC hops, LLC slice, MC queueing, DRAM row-hit/miss,
//! counter fetch, AES, verify — possibly overlapping in time, and
//! [`attribute`] reduces them to a *critical path*: a gap-free sequence
//! of segments tiling the access's lifetime, where every instant is
//! charged to the component the access was actually blocked on. Work
//! hidden under other work becomes **overlap credit** — the quantity EMCC
//! claims when its eager counter fetch runs in parallel with the data
//! fetch.
//!
//! The same reduction is used in three places, which is what closes the
//! loop between model and simulator:
//!
//! * `emcc_system::SecureSystem` runs it over every completed access and
//!   aggregates per-component histograms into the report,
//! * `emcc_system::timeline` expresses the paper's Fig 5/10 analytic
//!   scenarios as span sets and checks the reduction reproduces
//!   `Timeline::compose` exactly,
//! * the fuzzer's conservation law checks the segments of every access
//!   tile its end-to-end latency with no span out of bounds.
//!
//! [`TraceRecorder`] keeps the most recent attributed accesses in a ring
//! buffer (zero-cost when disabled) for export as Chrome-trace JSON
//! loadable in `chrome://tracing` or Perfetto.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::time::Time;

/// The pipeline component an interval of an access's lifetime is charged to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// L2/MSHR lookup before the miss is declared.
    L2Lookup,
    /// NoC hops (request, slice-to-MC, and response legs).
    Noc,
    /// LLC slice SRAM lookup.
    LlcLookup,
    /// Memory-controller scheduling queue (enqueue until DRAM issue).
    McQueue,
    /// DRAM array access that hit the open row.
    DramRowHit,
    /// DRAM array access that needed activation (closed row or conflict).
    DramRowMiss,
    /// Counter availability wait: cache lookups, tree walk, decode.
    CtrFetch,
    /// AES work (OTP generation or MAC) the access waited on.
    Aes,
    /// Ciphertext XOR + MAC compare at the consumption point.
    Verify,
    /// Time not covered by any recorded span (backoff, retry waits).
    Other,
}

impl Component {
    /// All components, in report/export order.
    pub const ALL: [Component; 10] = [
        Component::L2Lookup,
        Component::Noc,
        Component::LlcLookup,
        Component::McQueue,
        Component::DramRowHit,
        Component::DramRowMiss,
        Component::CtrFetch,
        Component::Aes,
        Component::Verify,
        Component::Other,
    ];

    /// Number of components (array-index domain).
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index into [`Component::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label used in reports and trace exports.
    pub fn label(self) -> &'static str {
        match self {
            Component::L2Lookup => "l2_lookup",
            Component::Noc => "noc",
            Component::LlcLookup => "llc_lookup",
            Component::McQueue => "mc_queue",
            Component::DramRowHit => "dram_row_hit",
            Component::DramRowMiss => "dram_row_miss",
            Component::CtrFetch => "ctr_fetch",
            Component::Aes => "aes",
            Component::Verify => "verify",
            Component::Other => "other",
        }
    }
}

/// A half-open work interval `[start, end)` charged to one component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub comp: Component,
    pub start: Time,
    pub end: Time,
}

impl Span {
    /// Convenience constructor.
    #[inline]
    pub fn new(comp: Component, start: Time, end: Time) -> Self {
        Span { comp, start, end }
    }

    /// Interval length (zero for inverted spans).
    #[inline]
    pub fn duration(&self) -> Time {
        self.end.saturating_sub(self.start)
    }
}

/// Result of reducing a span set to a critical path over `[t0, t_end)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Contiguous critical segments tiling `[t0, t_end)` exactly.
    pub segments: Vec<Span>,
    /// Recorded work hidden under other work (sum of span durations minus
    /// the measure of their union): the overlap credit.
    pub overlap: Time,
    /// Spans that violated the access window (start before `t0`, end after
    /// `t_end`, or inverted). They are clamped into the window, but a
    /// nonzero count means a milestone was mis-recorded.
    pub violations: u32,
}

impl Attribution {
    /// Total critical time per component, indexed by [`Component::index`].
    pub fn per_component(&self) -> [Time; Component::COUNT] {
        let mut out = [Time::ZERO; Component::COUNT];
        for seg in &self.segments {
            out[seg.comp.index()] += seg.duration();
        }
        out
    }

    /// Sum of all critical segments (equals `t_end - t0` by construction).
    pub fn total(&self) -> Time {
        self.segments.iter().map(Span::duration).sum()
    }

    /// End of the last critical segment (equals `t_end` by construction,
    /// or `t0` for an empty window).
    pub fn end(&self) -> Option<Time> {
        self.segments.last().map(|s| s.end)
    }
}

/// Reduces possibly-overlapping work spans to the critical path of an
/// access that started at `t0` and completed at `t_end`.
///
/// At every instant the access is charged to the *blocking* span: among
/// the spans covering that instant, the one that ends last (the join it
/// is actually waiting on), with ties broken by recording order. Instants
/// covered by no span become [`Component::Other`]. The resulting segments
/// are contiguous and tile `[t0, t_end)` exactly, so
/// `sum(segments) == t_end - t0` always holds; the per-access fuzz law
/// additionally demands `violations == 0`, i.e. every recorded span lies
/// inside the access window.
///
/// # Examples
///
/// ```
/// use emcc_sim::trace::{attribute, Component, Span};
/// use emcc_sim::Time;
///
/// let ns = Time::from_ns;
/// // Fig 5, no counter caching: DRAM data fetch (30 ns) in parallel with
/// // a serial counter fetch (33 ns), then 14 ns AES and 1 ns verify.
/// let spans = [
///     Span::new(Component::DramRowMiss, ns(0), ns(30)),
///     Span::new(Component::CtrFetch, ns(0), ns(33)),
///     Span::new(Component::Aes, ns(33), ns(47)),
///     Span::new(Component::Verify, ns(47), ns(48)),
/// ];
/// let att = attribute(Time::ZERO, ns(48), &spans);
/// let per = att.per_component();
/// assert_eq!(per[Component::CtrFetch.index()], ns(33)); // data fetch hidden
/// assert_eq!(per[Component::DramRowMiss.index()], Time::ZERO);
/// assert_eq!(att.overlap, ns(30)); // the fully-overlapped data fetch
/// assert_eq!(att.total(), ns(48));
/// ```
pub fn attribute(t0: Time, t_end: Time, spans: &[Span]) -> Attribution {
    let mut att = Attribution::default();
    if t_end <= t0 {
        att.violations = u32::from(t_end < t0);
        return att;
    }

    // Clamp out-of-window spans, counting each violation once.
    let mut clamped: Vec<Span> = Vec::with_capacity(spans.len());
    for s in spans {
        let bad = s.start > s.end || s.start < t0 || s.end > t_end;
        att.violations += u32::from(bad);
        let start = s.start.max(t0).min(t_end);
        let end = s.end.max(start).min(t_end);
        if end > start {
            clamped.push(Span::new(s.comp, start, end));
        }
    }

    // Sweep: charge every instant to the latest-ending active span.
    let mut t = t0;
    while t < t_end {
        let mut chosen: Option<&Span> = None;
        let mut next_start = t_end;
        for s in &clamped {
            if s.start <= t && s.end > t {
                if chosen.is_none_or(|c| s.end > c.end) {
                    chosen = Some(s);
                }
            } else if s.start > t && s.start < next_start {
                next_start = s.start;
            }
        }
        let (comp, seg_end) = match chosen {
            // The critical span runs until it ends or a later-ending span
            // begins (the join moves to the new blocker).
            Some(c) => {
                let mut switch = c.end;
                for s in &clamped {
                    if s.start > t && s.start < switch && s.end > c.end {
                        switch = s.start;
                    }
                }
                (c.comp, switch)
            }
            // Nothing active: unattributed time until the next span.
            None => (Component::Other, next_start),
        };
        debug_assert!(seg_end > t, "sweep must make progress");
        match att.segments.last_mut() {
            Some(prev) if prev.comp == comp && prev.end == t => prev.end = seg_end,
            _ => att.segments.push(Span::new(comp, t, seg_end)),
        }
        t = seg_end;
    }

    // Overlap credit = recorded work minus the measure of its union.
    let worked: Time = clamped.iter().map(Span::duration).sum();
    att.overlap = worked.saturating_sub(union_measure(&mut clamped));
    att
}

/// Measure of the union of a span set (sorts the slice in place).
fn union_measure(spans: &mut [Span]) -> Time {
    spans.sort_by_key(|s| (s.start, s.end));
    let mut covered = Time::ZERO;
    let mut edge = Time::ZERO;
    for s in spans.iter() {
        let lo = s.start.max(edge);
        if s.end > lo {
            covered += s.end - lo;
            edge = s.end;
        }
    }
    covered
}

/// One fully-attributed access, as kept by the [`TraceRecorder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessTrace {
    /// Monotone per-recorder sequence number.
    pub seq: u64,
    /// Issuing core.
    pub core: u32,
    /// Cache-line address of the access.
    pub line: u64,
    /// Access start (arrival at L2) and completion.
    pub t0: Time,
    pub t_end: Time,
    /// Raw recorded work spans.
    pub spans: Vec<Span>,
    /// Critical-path segments from [`attribute`].
    pub critical: Vec<Span>,
    /// Overlap credit from [`attribute`].
    pub overlap: Time,
}

/// Ring buffer of the most recently completed accesses.
///
/// A disabled recorder ([`TraceRecorder::disabled`]) never allocates and
/// makes [`TraceRecorder::record`] a branch-and-return, so timing models
/// can call it unconditionally.
#[derive(Clone, Debug, Default)]
pub struct TraceRecorder {
    enabled: bool,
    capacity: usize,
    ring: VecDeque<AccessTrace>,
    seq: u64,
    dropped: u64,
}

impl TraceRecorder {
    /// A recorder that keeps the last `capacity` accesses.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRecorder {
            enabled: capacity > 0,
            capacity,
            ring: VecDeque::new(),
            seq: 0,
            dropped: 0,
        }
    }

    /// A recorder that records nothing.
    pub fn disabled() -> Self {
        TraceRecorder::default()
    }

    /// Whether [`TraceRecorder::record`] stores anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Stores one attributed access, evicting the oldest at capacity.
    pub fn record(
        &mut self,
        core: u32,
        line: u64,
        t0: Time,
        t_end: Time,
        spans: &[Span],
        att: &Attribution,
    ) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(AccessTrace {
            seq: self.seq,
            core,
            line,
            t0,
            t_end,
            spans: spans.to_vec(),
            critical: att.segments.clone(),
            overlap: att.overlap,
        });
        self.seq += 1;
    }

    /// Recorded accesses, oldest first.
    pub fn traces(&self) -> impl Iterator<Item = &AccessTrace> {
        self.ring.iter()
    }

    /// Number of recorded accesses currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded (or recording is disabled).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Accesses evicted from the ring since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serializes the ring as Chrome-trace JSON (the "JSON Array Format"
    /// with `ph:"X"` duration events), loadable in `chrome://tracing` and
    /// Perfetto.
    ///
    /// Two tracks per core: `tid 0` holds the critical-path segments,
    /// `tid 1` the raw (possibly overlapping) work spans. Timestamps are
    /// microseconds with picosecond precision (`%.6f`), so the output is
    /// byte-deterministic for a deterministic simulation.
    pub fn chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        let mut first = true;
        let mut cores: Vec<u32> = self.ring.iter().map(|t| t.core).collect();
        cores.sort_unstable();
        cores.dedup();
        for core in cores {
            for (tid, name) in [(0u32, "critical path"), (1, "work spans")] {
                emit_event(&mut out, &mut first, &{
                    let mut e = String::new();
                    let _ = write!(
                        e,
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{core},\"tid\":{tid},\
                         \"args\":{{\"name\":\"{name}\"}}}}"
                    );
                    e
                });
            }
        }
        for t in &self.ring {
            for (tid, spans) in [(0u32, &t.critical), (1, &t.spans)] {
                for s in spans {
                    emit_event(&mut out, &mut first, &{
                        let mut e = String::new();
                        let _ = write!(
                            e,
                            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\
                             \"ts\":{:.6},\"dur\":{:.6},\"pid\":{},\"tid\":{tid},\
                             \"args\":{{\"access\":{},\"line\":{}}}}}",
                            s.comp.label(),
                            if tid == 0 { "critical" } else { "span" },
                            s.start.as_ps() as f64 / 1e6,
                            s.duration().as_ps() as f64 / 1e6,
                            t.core,
                            t.seq,
                            t.line,
                        );
                        e
                    });
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

fn emit_event(out: &mut String, first: &mut bool, event: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(event);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> Time {
        Time::from_ns(n)
    }

    #[test]
    fn serial_spans_tile_exactly() {
        let spans = [
            Span::new(Component::L2Lookup, ns(0), ns(4)),
            Span::new(Component::Noc, ns(4), ns(11)),
            Span::new(Component::LlcLookup, ns(11), ns(15)),
            Span::new(Component::Noc, ns(15), ns(23)),
        ];
        let att = attribute(ns(0), ns(23), &spans);
        assert_eq!(att.violations, 0);
        assert_eq!(att.overlap, Time::ZERO);
        assert_eq!(att.total(), ns(23));
        assert_eq!(att.end(), Some(ns(23)));
        // Adjacent same-component segments merge.
        assert_eq!(att.segments.len(), 4);
        let per = att.per_component();
        assert_eq!(per[Component::Noc.index()], ns(15));
    }

    #[test]
    fn parallel_blocker_wins_and_overlap_credited() {
        // Data fetch [0,30) hidden under a longer counter fetch [0,33).
        let spans = [
            Span::new(Component::DramRowMiss, ns(0), ns(30)),
            Span::new(Component::CtrFetch, ns(0), ns(33)),
        ];
        let att = attribute(ns(0), ns(33), &spans);
        assert_eq!(
            att.segments,
            vec![Span::new(Component::CtrFetch, ns(0), ns(33))]
        );
        assert_eq!(att.overlap, ns(30));
    }

    #[test]
    fn later_longer_span_takes_over() {
        // A span that starts later but ends later becomes the blocker at
        // its start: [0,10) dram vs [4,20) ctr.
        let spans = [
            Span::new(Component::DramRowHit, ns(0), ns(10)),
            Span::new(Component::CtrFetch, ns(4), ns(20)),
        ];
        let att = attribute(ns(0), ns(20), &spans);
        assert_eq!(
            att.segments,
            vec![
                Span::new(Component::DramRowHit, ns(0), ns(4)),
                Span::new(Component::CtrFetch, ns(4), ns(20)),
            ]
        );
        // 10-4 = 6 ns of the dram span ran hidden.
        assert_eq!(att.overlap, ns(6));
    }

    #[test]
    fn gaps_become_other() {
        let spans = [
            Span::new(Component::Noc, ns(0), ns(5)),
            Span::new(Component::Noc, ns(9), ns(12)),
        ];
        let att = attribute(ns(0), ns(14), &spans);
        assert_eq!(
            att.segments,
            vec![
                Span::new(Component::Noc, ns(0), ns(5)),
                Span::new(Component::Other, ns(5), ns(9)),
                Span::new(Component::Noc, ns(9), ns(12)),
                Span::new(Component::Other, ns(12), ns(14)),
            ]
        );
        assert_eq!(att.total(), ns(14));
        assert_eq!(att.violations, 0);
    }

    #[test]
    fn out_of_window_spans_are_clamped_and_flagged() {
        let spans = [
            Span::new(Component::Aes, ns(0), ns(30)), // past t_end
            Span::new(Component::Noc, ns(5), ns(3)),  // inverted
        ];
        let att = attribute(ns(0), ns(20), &spans);
        assert_eq!(att.violations, 2);
        assert_eq!(att.total(), ns(20));
        assert_eq!(att.end(), Some(ns(20)));
    }

    #[test]
    fn empty_window_is_empty() {
        let att = attribute(ns(5), ns(5), &[]);
        assert!(att.segments.is_empty());
        assert_eq!(att.total(), Time::ZERO);
        assert_eq!(att.violations, 0);
    }

    #[test]
    fn recorder_ring_evicts_oldest() {
        let mut r = TraceRecorder::with_capacity(2);
        let att = attribute(ns(0), ns(1), &[]);
        for i in 0..3u64 {
            r.record(0, i, ns(0), ns(1), &[], &att);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        let lines: Vec<u64> = r.traces().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2]);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = TraceRecorder::disabled();
        let att = attribute(ns(0), ns(1), &[]);
        r.record(0, 1, ns(0), ns(1), &[], &att);
        assert!(!r.is_enabled());
        assert!(r.is_empty());
    }

    #[test]
    fn chrome_json_shape() {
        let mut r = TraceRecorder::with_capacity(4);
        let spans = [Span::new(Component::DramRowMiss, ns(0), ns(30))];
        let att = attribute(ns(0), ns(31), &spans);
        r.record(3, 0xABC, ns(0), ns(31), &spans, &att);
        let json = r.chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"));
        assert!(json.ends_with("\n]}\n"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"dram_row_miss\""));
        assert!(json.contains("\"pid\":3"));
        // 30 ns = 0.03 us, with fixed ps precision.
        assert!(json.contains("\"dur\":0.030000"));
        // Braces balance (cheap well-formedness check; CI runs a real
        // JSON parser over the exported file).
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close);
    }
}
