//! Statistics primitives used by experiment reports.
//!
//! The simulator collects three kinds of statistics:
//!
//! * [`RunningMean`] — streaming mean over `f64` samples (e.g. latency),
//! * [`Histogram`] — fixed-width-bin histogram (e.g. the Fig 3 LLC-hit
//!   latency distribution),
//! * plain `u64` counters, which live directly in report structs.
//!
//! Aggregation helpers for means across benchmarks ([`geomean`],
//! [`arith_mean`]) are also provided because the paper reports both
//! (Fig 22 uses geometric means; most others use arithmetic means).

use crate::time::Time;

/// Streaming arithmetic mean (with min/max) over `f64` samples.
///
/// # Examples
///
/// ```
/// use emcc_sim::RunningMean;
///
/// let mut m = RunningMean::new();
/// m.add(10.0);
/// m.add(30.0);
/// assert_eq!(m.mean(), 20.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningMean {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.sum += x;
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a [`Time`] sample, recorded in nanoseconds.
    pub fn add_time(&mut self, t: Time) {
        self.add(t.as_ns_f64());
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningMean) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width-bin histogram over `f64` samples.
///
/// Samples below the first bin clamp into it; samples at or beyond the last
/// boundary land in the overflow bin.
///
/// # Examples
///
/// ```
/// use emcc_sim::Histogram;
///
/// // Bins [16,17), [17,18), ..., [28,29) as in the paper's Figure 3.
/// let mut h = Histogram::new(16.0, 1.0, 13);
/// h.add(23.4);
/// assert_eq!(h.bin_count(7), 1); // 23.4 falls in [23,24)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    origin: f64,
    width: f64,
    bins: Vec<u64>,
    overflow: u64,
    nan: u64,
    mean: RunningMean,
}

impl Default for Histogram {
    /// A general-purpose latency histogram: 64 bins × 8 ns from 0 (covers
    /// 0–512 ns with overflow beyond), suitable as a field default in
    /// report structs that derive `Default`.
    fn default() -> Self {
        Histogram::new(0.0, 8.0, 64)
    }
}

impl Histogram {
    /// Creates a histogram with `nbins` bins of `width` starting at `origin`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive or `nbins` is zero.
    pub fn new(origin: f64, width: f64, nbins: usize) -> Self {
        assert!(width > 0.0, "bin width must be positive");
        assert!(nbins > 0, "need at least one bin");
        Histogram {
            origin,
            width,
            bins: vec![0; nbins],
            overflow: 0,
            nan: 0,
            mean: RunningMean::new(),
        }
    }

    /// Adds one sample.
    ///
    /// A NaN sample is counted in [`Histogram::nan_count`] and excluded
    /// from the bins and the mean — every comparison against NaN is false,
    /// so it would otherwise fall through the binning tests into bin 0 and
    /// poison the mean permanently.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            self.nan += 1;
            return;
        }
        self.mean.add(x);
        let idx = (x - self.origin) / self.width;
        if idx < 0.0 {
            self.bins[0] += 1;
        } else if (idx as usize) < self.bins.len() {
            self.bins[idx as usize] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Adds a [`Time`] sample in nanoseconds.
    pub fn add_time(&mut self, t: Time) {
        self.add(t.as_ns_f64());
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Lower edge of bin `i`.
    pub fn bin_lower(&self, i: usize) -> f64 {
        self.origin + self.width * i as f64
    }

    /// Number of regular bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Samples that fell beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// NaN samples rejected by [`Histogram::add`].
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// Total number of (non-NaN) samples.
    pub fn total(&self) -> u64 {
        self.mean.count()
    }

    /// Mean of all samples (including clamped/overflowed).
    pub fn mean(&self) -> f64 {
        self.mean.mean()
    }

    /// Fraction of samples in bin `i` (0.0 when empty).
    pub fn bin_fraction(&self, i: usize) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.bins[i] as f64 / self.total() as f64
        }
    }

    /// Iterator over `(bin_lower_edge, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_lower(i), c))
    }

    /// Approximate p-th percentile (0..=100) from bin midpoints.
    ///
    /// Returns `None` when the histogram is empty, and `None` when the
    /// requested rank lands in the open-ended overflow bin — the overflow
    /// bin has no upper edge, so it has no midpoint to report. (Ranks are
    /// computed over all samples *including* overflow, so a
    /// mostly-overflowed distribution signals overflow instead of
    /// misreporting the last regular bin's midpoint as p50/p99.)
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = ((p / 100.0 * total as f64).ceil() as u64).max(1);
        let mut acc = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(self.bin_lower(i) + self.width / 2.0);
            }
        }
        None
    }
}

/// Geometric mean of positive samples; 0.0 when empty.
///
/// # Examples
///
/// ```
/// use emcc_sim::stats::geomean;
///
/// assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
/// ```
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean; 0.0 when empty.
pub fn arith_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Ratio helper returning 0.0 for a zero denominator.
///
/// Reports divide many event counts by "total L2 misses" or "total memory
/// reads"; a zero denominator means the workload never exercised the path.
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_basics() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.min(), None);
        m.add(2.0);
        m.add(4.0);
        m.add(9.0);
        assert_eq!(m.mean(), 5.0);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(9.0));
        assert_eq!(m.sum(), 15.0);
    }

    #[test]
    fn running_mean_merge() {
        let mut a = RunningMean::new();
        a.add(1.0);
        let mut b = RunningMean::new();
        b.add(3.0);
        a.merge(&b);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn running_mean_time_samples() {
        let mut m = RunningMean::new();
        m.add_time(Time::from_ns(10));
        m.add_time(Time::from_ns(20));
        assert_eq!(m.mean(), 15.0);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 3);
        h.add(-5.0); // clamps into bin 0
        h.add(5.0); // bin 0
        h.add(15.0); // bin 1
        h.add(25.0); // bin 2
        h.add(99.0); // overflow
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_fractions_and_edges() {
        let mut h = Histogram::new(16.0, 1.0, 13);
        for x in [16.5, 16.9, 23.0] {
            h.add(x);
        }
        assert_eq!(h.bin_lower(0), 16.0);
        assert_eq!(h.bin_lower(7), 23.0);
        assert!((h.bin_fraction(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentile() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..10 {
            for _ in 0..10 {
                h.add(i as f64 + 0.5);
            }
        }
        assert_eq!(h.percentile(50.0), Some(4.5));
        assert_eq!(h.percentile(100.0), Some(9.5));
        let empty = Histogram::new(0.0, 1.0, 4);
        assert_eq!(empty.percentile(50.0), None);
    }

    #[test]
    fn histogram_rejects_nan() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(1.5);
        h.add(f64::NAN);
        h.add(2.5);
        // The NaN sample is counted separately — not in bin 0, and not in
        // the mean (regression: `NaN < 0.0` is false and `NaN as usize`
        // is 0, so it used to land in bin 0 and poison the mean forever).
        assert_eq!(h.nan_count(), 1);
        assert_eq!(h.bin_count(0), 0);
        assert_eq!(h.total(), 2);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.percentile(50.0), Some(1.5));
    }

    #[test]
    fn histogram_percentile_overflow() {
        // 1 in-range sample, 9 overflowed: p50 and p99 live in the
        // open-ended overflow bin and must be signalled, not reported as
        // the last regular bin's midpoint (regression).
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(0.5);
        for _ in 0..9 {
            h.add(100.0);
        }
        assert_eq!(h.overflow(), 9);
        assert_eq!(h.percentile(10.0), Some(0.5));
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(99.0), None);
    }

    #[test]
    fn histogram_iter_matches_bins() {
        let mut h = Histogram::new(2.0, 2.0, 2);
        h.add(3.0);
        let v: Vec<(f64, u64)> = h.iter().collect();
        assert_eq!(v, vec![(2.0, 1), (4.0, 0)]);
    }

    #[test]
    fn means() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(arith_mean(&[]), 0.0);
        assert_eq!(arith_mean(&[2.0, 8.0]), 5.0);
    }

    #[test]
    fn ratio_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(5, 10), 0.5);
    }
}
