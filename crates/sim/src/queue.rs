//! Deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// A time-ordered priority queue of simulation events.
///
/// Events scheduled for the same instant are delivered in the order they
/// were pushed (stable FIFO tie-breaking), which makes simulations
/// deterministic regardless of heap internals.
///
/// The payload type `E` carries the event itself; it needs no ordering of
/// its own.
///
/// # Examples
///
/// ```
/// use emcc_sim::{EventQueue, Time};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { DramDone, NocArrive }
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(30), Ev::DramDone);
/// q.push(Time::from_ns(8), Ev::NocArrive);
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (Time::from_ns(8), Ev::NocArrive));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap and we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `payload` for delivery at `time`.
    pub fn push(&mut self, time: Time, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(5), 'b');
        q.push(Time::from_ns(1), 'a');
        q.push(Time::from_ns(9), 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(3), ());
        q.push(Time::from_ns(2), ());
        assert_eq!(q.peek_time(), Some(Time::from_ns(2)));
        assert_eq!(q.pop().unwrap().0, Time::from_ns(2));
        assert_eq!(q.peek_time(), Some(Time::from_ns(3)));
    }

    #[test]
    fn len_and_totals() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        q.push(Time::ZERO, ());
        q.push(Time::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), 10);
        q.push(Time::from_ns(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        q.push(Time::from_ns(5), 5);
        q.push(Time::from_ns(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
