//! Small, fast, reproducible pseudo-random number generation.
//!
//! Experiments must be bit-for-bit reproducible across runs and machines, so
//! the workspace uses its own xoshiro256\*\* generator (public-domain
//! algorithm by Blackman & Vigna) seeded through SplitMix64 rather than an
//! OS entropy source.

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use emcc_sim::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed (including 0) produces a well-mixed state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng64 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift reduction; the tiny modulo bias is
    /// irrelevant for workload generation.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Geometric-ish gap: uniform in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Sample from a discrete Zipf distribution over `{0, .., n-1}` with
    /// exponent `theta`, using inverse-CDF on a precomputed table.
    ///
    /// This is provided by [`ZipfTable`]; see its docs.
    pub fn zipf(&mut self, table: &ZipfTable) -> usize {
        table.sample(self)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

/// Precomputed cumulative table for Zipf-distributed sampling.
///
/// Graph workloads concentrate accesses on high-degree vertices; a Zipf
/// distribution over vertex ids is the standard synthetic stand-in.
///
/// # Examples
///
/// ```
/// use emcc_sim::rng::{Rng64, ZipfTable};
///
/// let table = ZipfTable::new(1000, 0.8);
/// let mut rng = Rng64::new(7);
/// let v = rng.zipf(&table);
/// assert!(v < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the cumulative table for `n` items with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative/not finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(theta.is_finite() && theta >= 0.0, "invalid exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the table is empty (never: construction requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.unit_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng64::new(123);
        let mut b = Rng64::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::new(9);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = Rng64::new(5);
        for _ in 0..10_000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_f64_roughly_uniform() {
        let mut r = Rng64::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.unit_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = Rng64::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match r.range_inclusive(2, 4) {
                2 => saw_lo = true,
                4 => saw_hi = true,
                3 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn zipf_skews_to_head() {
        let table = ZipfTable::new(100, 1.0);
        let mut r = Rng64::new(77);
        let mut head = 0u32;
        let n = 50_000;
        for _ in 0..n {
            if r.zipf(&table) < 10 {
                head += 1;
            }
        }
        // With theta=1 over 100 items, the top-10 mass is ~56%.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.45 && frac < 0.68, "head fraction {frac}");
    }

    #[test]
    fn zipf_zero_theta_is_uniform() {
        let table = ZipfTable::new(10, 0.0);
        let mut r = Rng64::new(13);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.zipf(&table)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(21);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng64::new(31);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }
}
