//! Discrete-event simulation substrate for the EMCC reproduction.
//!
//! This crate provides the small, dependency-free core that every timing
//! model in the workspace is built on:
//!
//! * [`Time`] — a picosecond-resolution instant/duration type (the analogue
//!   of gem5's `Tick`),
//! * [`EventQueue`] — a deterministic time-ordered event queue with stable
//!   FIFO tie-breaking,
//! * [`stats`] — histograms, running means and rate counters used by the
//!   experiment reports,
//! * [`rng`] — a tiny, fast, reproducible PRNG (xoshiro256\*\*) so that every
//!   experiment is bit-for-bit repeatable.
//!
//! # Examples
//!
//! ```
//! use emcc_sim::{EventQueue, Time};
//!
//! let mut q = EventQueue::new();
//! q.push(Time::from_ns(30), "late");
//! q.push(Time::from_ns(10), "early");
//! q.push(Time::from_ns(10), "early-second"); // FIFO among equal times
//!
//! assert_eq!(q.pop(), Some((Time::from_ns(10), "early")));
//! assert_eq!(q.pop(), Some((Time::from_ns(10), "early-second")));
//! assert_eq!(q.pop(), Some((Time::from_ns(30), "late")));
//! assert_eq!(q.pop(), None);
//! ```

pub mod mem;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use mem::{LineAddr, PhysAddr};
pub use queue::EventQueue;
pub use rng::Rng64;
pub use stats::{Histogram, RunningMean};
pub use time::Time;
pub use trace::{attribute, Attribution, Component, Span, TraceRecorder};
