//! Shared physical-address and memory-geometry types.
//!
//! Every component in the hierarchy — caches, counter machinery, NoC slice
//! mapping, DRAM address mapping — speaks 64 B cache lines over a physical
//! address space, so the newtypes live here in the base crate.

use std::fmt;

/// Size of a cache line / memory block in bytes (fixed at 64, as in the
/// paper and essentially all modern CPUs).
pub const LINE_BYTES: u64 = 64;

/// Log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;

/// A byte-granularity physical address.
///
/// # Examples
///
/// ```
/// use emcc_sim::mem::{PhysAddr, LineAddr};
///
/// let a = PhysAddr::new(0x1234);
/// assert_eq!(a.line(), LineAddr::new(0x48));
/// assert_eq!(a.line().base(), PhysAddr::new(0x1200));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Wraps a raw byte address.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        PhysAddr(addr)
    }

    /// The raw byte address.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Byte offset within the line.
    #[inline]
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA:{:#x}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A line-granularity physical address (byte address divided by 64).
///
/// This is the unit of transfer everywhere in the hierarchy: cache tags,
/// counter coverage, DRAM bursts.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Wraps a raw line index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        LineAddr(index)
    }

    /// The raw line index.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// First byte address of this line.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << LINE_SHIFT)
    }

    /// Line at a fixed offset (in lines) from this one.
    #[inline]
    pub const fn offset(self, lines: u64) -> LineAddr {
        LineAddr(self.0 + lines)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LN:{:#x}", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<PhysAddr> for LineAddr {
    fn from(a: PhysAddr) -> LineAddr {
        a.line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction() {
        let a = PhysAddr::new(0x1FFF);
        assert_eq!(a.line().get(), 0x7F);
        assert_eq!(a.line_offset(), 0x3F);
        assert_eq!(a.line().base().get(), 0x1FC0);
    }

    #[test]
    fn line_offset_arithmetic() {
        let l = LineAddr::new(10);
        assert_eq!(l.offset(5).get(), 15);
        assert_eq!(LineAddr::from(PhysAddr::new(640)).get(), 10);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PhysAddr::new(0x40).to_string(), "0x40");
        assert_eq!(format!("{:?}", LineAddr::new(1)), "LN:0x1");
    }
}
