//! Property tests for cycle-to-time conversion.
//!
//! `Frequency::cycles` truncates to whole picoseconds, so splitting a
//! cycle count across calls can only lose time, never gain it, and loses
//! strictly less than one picosecond per extra call. `CycleAccumulator`
//! exists to make repeated-cycle advancement exact; the properties pin
//! both the truncation bound and the accumulator's exactness.

use emcc_sim::time::{Frequency, Time};
use proptest::prelude::*;

proptest! {
    /// Truncation bound: `cycles(a) + cycles(b)` never exceeds
    /// `cycles(a + b)` and falls short by less than 1 ps (each call
    /// truncates a sub-picosecond remainder, and two remainders sum to
    /// under 2/16ths-of-16 = 2 ps only when both are nonzero, in which
    /// case the combined call keeps at most one).
    #[test]
    fn split_cycles_bounded_by_combined(
        ghz_tenths in 1u64..=80,
        a in 0u64..100_000,
        b in 0u64..100_000,
    ) {
        let f = Frequency::from_ghz(ghz_tenths as f64 / 10.0);
        let split = f.cycles(a) + f.cycles(b);
        let combined = f.cycles(a + b);
        prop_assert!(split <= combined);
        prop_assert!(combined - split < Time::from_ps(1) + Time::from_ps(1));
    }

    /// The accumulator is exact: advancing by any split of a cycle count
    /// sums to exactly `cycles(total)`, independent of the split.
    #[test]
    fn accumulator_split_invariant(
        ghz_tenths in 1u64..=80,
        parts in prop::collection::vec(0u64..5_000, 1..=24),
    ) {
        let f = Frequency::from_ghz(ghz_tenths as f64 / 10.0);
        let mut acc = f.accumulator();
        let advanced: Time = parts.iter().map(|&n| acc.advance(n)).sum();
        let total: u64 = parts.iter().sum();
        prop_assert_eq!(advanced, f.cycles(total));
        prop_assert!(acc.remainder_x16() < 16);
    }
}
