//! Deterministic simulation fuzzer (DESIGN.md §8).
//!
//! Every case is a pure function of one `u64` seed: a random system
//! configuration drawn from valid ranges plus a phase-structured access
//! trace ([`emcc::workloads::phases`]). The oracle battery runs the case
//! through every scheme × counter-design combination and checks
//!
//! * functional read-value equivalence of `FunctionalSecureMemory`
//!   against a naive store (including the EMCC split-MAC path and
//!   tamper-detection spot checks),
//! * `SimReport` conservation laws (hits + misses never exceed lookups,
//!   DRAM traffic at least covers misses, detection exactness under
//!   faults),
//! * cross-scheme metamorphic relations (non-secure runs are never
//!   slower than secure ones; zero-fault runs report zero violations),
//! * bit-for-bit determinism (re-running a combo reproduces its
//!   canonical report).
//!
//! A failing case is shrunk with `proptest::shrink` to a minimal trace +
//! config and persisted to `fuzz/corpus/*.ron`, which `cargo test`
//! replays as a regression suite (`tests/corpus_replay.rs`). The
//! `fuzz_sim` binary drives parallel campaigns through the bench pool;
//! its verdict file is byte-identical for any `EMCC_JOBS`.

pub mod case;
pub mod corpus;
pub mod oracle;

pub use case::{FaultPlan, FuzzCase, FuzzOp};
pub use oracle::{check_case, OracleReport};
