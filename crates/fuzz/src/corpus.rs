//! Corpus files: replayable `.ron` serialization of [`FuzzCase`].
//!
//! The format is a stable, hand-editable RON subset — one `key: value`
//! per line, trace entries one per line — written and parsed entirely by
//! this module (the build is offline, so no serde). Parsing re-validates
//! the case, so a corrupted or hand-broken file fails with a message,
//! never a simulator panic.

use std::path::{Path, PathBuf};

use crate::case::{FaultPlan, FuzzCase, FuzzOp};

/// A corpus file that failed to load: the path plus why.
///
/// Typed (rather than a bare string) so directory scans can *continue*
/// past a corrupted or truncated file, report every offender at once,
/// and still fail the replay suite — one bad file must never hide the
/// verdicts of the rest of the corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusError {
    /// The offending file.
    pub path: PathBuf,
    /// Parse or I/O failure description (names the line for syntax
    /// errors).
    pub reason: String,
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.reason)
    }
}

impl std::error::Error for CorpusError {}

/// Loads every `*.ron` case under `dir` in sorted order, continuing past
/// files that fail to parse.
///
/// Returns the successfully loaded `(path, case)` pairs plus one
/// [`CorpusError`] per bad file. A missing or unreadable directory is a
/// single error entry for the directory itself.
pub fn load_dir(dir: &Path) -> (Vec<(PathBuf, FuzzCase)>, Vec<CorpusError>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) => {
            return (
                Vec::new(),
                vec![CorpusError {
                    path: dir.to_path_buf(),
                    reason: format!("corpus dir unreadable: {e}"),
                }],
            )
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ron"))
        .collect();
    paths.sort();
    let mut cases = Vec::new();
    let mut errors = Vec::new();
    for path in paths {
        match std::fs::read_to_string(&path) {
            Err(e) => errors.push(CorpusError {
                path,
                reason: e.to_string(),
            }),
            Ok(text) => match from_ron(&text) {
                Ok(case) => cases.push((path, case)),
                Err(reason) => errors.push(CorpusError { path, reason }),
            },
        }
    }
    (cases, errors)
}

/// Serializes a case to corpus text.
pub fn to_ron(case: &FuzzCase) -> String {
    let mut s = String::new();
    s.push_str(
        "// emcc-fuzz corpus case — replays via `cargo test -p emcc-fuzz --test corpus_replay`\n",
    );
    s.push_str("// or `fuzz_sim --replay <this file>`. See EXPERIMENTS.md (fuzzing section).\n");
    s.push_str("FuzzCase(\n");
    let mut kv = |k: &str, v: String| {
        s.push_str(&format!("    {k}: {v},\n"));
    };
    kv("seed", case.seed.to_string());
    kv("cores", case.cores.to_string());
    kv("ops_per_core", case.ops_per_core.to_string());
    kv("data_lines", case.data_lines.to_string());
    kv("l1_sets", case.l1_sets.to_string());
    kv("l1_ways", case.l1_ways.to_string());
    kv("l2_sets", case.l2_sets.to_string());
    kv("l2_ways", case.l2_ways.to_string());
    kv("llc_slices", case.llc_slices.to_string());
    kv("llc_sets", case.llc_sets.to_string());
    kv("llc_ways", case.llc_ways.to_string());
    kv("mc_sets", case.mc_sets.to_string());
    kv("mc_ways", case.mc_ways.to_string());
    kv("channels", case.channels.to_string());
    kv("xpt", case.xpt.to_string());
    kv("inclusive", case.inclusive.to_string());
    kv("prefetch", case.prefetch.to_string());
    kv("aes_to_l2_pct", case.aes_to_l2_pct.to_string());
    kv("budget_lines", case.budget_lines.to_string());
    kv(
        "fault",
        match case.fault {
            FaultPlan::None => "None".to_string(),
            FaultPlan::Planted {
                line,
                class,
                on_read,
            } => format!("Planted(line: {line}, class: {class}, on_read: {on_read})"),
            FaultPlan::Uniform { class, rate_ppm } => {
                format!("Uniform(class: {class}, rate_ppm: {rate_ppm})")
            }
        },
    );
    s.push_str("    trace: [\n");
    for op in &case.trace {
        s.push_str(&format!(
            "        (line: {}, write: {}, gap: {}, dep: {}),\n",
            op.line, op.write, op.gap, op.dep
        ));
    }
    s.push_str("    ],\n)\n");
    s
}

/// Parses corpus text back into a validated case.
///
/// # Errors
///
/// Returns a message naming the offending line for syntax errors,
/// missing/duplicate keys, or a case that fails [`FuzzCase::validate`].
pub fn from_ron(text: &str) -> Result<FuzzCase, String> {
    let mut fields: Vec<(String, String)> = Vec::new();
    let mut trace: Vec<FuzzOp> = Vec::new();
    let mut in_trace = false;
    for (num, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() || line == "FuzzCase(" || line == ")" {
            continue;
        }
        if line == "trace: [" {
            in_trace = true;
            continue;
        }
        if in_trace && (line == "]," || line == "]") {
            in_trace = false;
            continue;
        }
        if in_trace {
            trace.push(parse_trace_entry(line).map_err(|e| format!("line {}: {e}", num + 1))?);
        } else {
            let (k, v) = split_kv(line).map_err(|e| format!("line {}: {e}", num + 1))?;
            fields.push((k, v));
        }
    }

    let get = |key: &str| -> Result<&str, String> {
        let mut found = fields.iter().filter(|(k, _)| k == key);
        let first = found
            .next()
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("missing field `{key}`"))?;
        if found.next().is_some() {
            return Err(format!("duplicate field `{key}`"));
        }
        Ok(first)
    };
    let int = |key: &str| -> Result<u64, String> {
        get(key)?
            .parse()
            .map_err(|_| format!("field `{key}` is not an integer"))
    };
    let boolean = |key: &str| -> Result<bool, String> {
        get(key)?
            .parse()
            .map_err(|_| format!("field `{key}` is not a bool"))
    };

    let case = FuzzCase {
        seed: int("seed")?,
        cores: int("cores")? as usize,
        ops_per_core: int("ops_per_core")?,
        data_lines: int("data_lines")?,
        l1_sets: int("l1_sets")?,
        l1_ways: int("l1_ways")? as u32,
        l2_sets: int("l2_sets")?,
        l2_ways: int("l2_ways")? as u32,
        llc_slices: int("llc_slices")? as usize,
        llc_sets: int("llc_sets")?,
        llc_ways: int("llc_ways")? as u32,
        mc_sets: int("mc_sets")?,
        mc_ways: int("mc_ways")? as u32,
        channels: int("channels")? as usize,
        xpt: boolean("xpt")?,
        inclusive: boolean("inclusive")?,
        prefetch: int("prefetch")? as u32,
        aes_to_l2_pct: int("aes_to_l2_pct")? as u32,
        budget_lines: int("budget_lines")?,
        fault: parse_fault(get("fault")?)?,
        trace,
    };
    case.validate()?;
    Ok(case)
}

/// Reads and parses one corpus file.
///
/// # Errors
///
/// Propagates I/O and parse errors with the file path prefixed.
pub fn load(path: &Path) -> Result<FuzzCase, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    from_ron(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn split_kv(line: &str) -> Result<(String, String), String> {
    let body = line.strip_suffix(',').unwrap_or(line);
    let (k, v) = body
        .split_once(':')
        .ok_or_else(|| format!("expected `key: value`, got `{line}`"))?;
    Ok((k.trim().to_string(), v.trim().to_string()))
}

fn parse_fault(v: &str) -> Result<FaultPlan, String> {
    if v == "None" {
        return Ok(FaultPlan::None);
    }
    let inner =
        |name: &str| -> Option<&str> { v.strip_prefix(name)?.strip_prefix('(')?.strip_suffix(')') };
    let parse_args = |s: &str| -> Result<Vec<(String, u64)>, String> {
        s.split(',')
            .map(|part| {
                let (k, val) = part
                    .split_once(':')
                    .ok_or_else(|| format!("bad fault argument `{part}`"))?;
                let n: u64 = val
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad fault number `{val}`"))?;
                Ok((k.trim().to_string(), n))
            })
            .collect()
    };
    let arg = |args: &[(String, u64)], key: &str| -> Result<u64, String> {
        args.iter()
            .find(|(k, _)| k == key)
            .map(|(_, n)| *n)
            .ok_or_else(|| format!("fault missing `{key}`"))
    };
    if let Some(body) = inner("Planted") {
        let args = parse_args(body)?;
        return Ok(FaultPlan::Planted {
            line: arg(&args, "line")?,
            class: arg(&args, "class")? as usize,
            on_read: arg(&args, "on_read")?,
        });
    }
    if let Some(body) = inner("Uniform") {
        let args = parse_args(body)?;
        return Ok(FaultPlan::Uniform {
            class: arg(&args, "class")? as usize,
            rate_ppm: arg(&args, "rate_ppm")? as u32,
        });
    }
    Err(format!("unknown fault plan `{v}`"))
}

fn parse_trace_entry(line: &str) -> Result<FuzzOp, String> {
    let body = line
        .strip_suffix(',')
        .unwrap_or(line)
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| {
            format!("expected `(line: .., write: .., gap: .., dep: ..)`, got `{line}`")
        })?;
    let mut op = FuzzOp {
        line: 0,
        write: false,
        gap: 0,
        dep: false,
    };
    let mut seen = [false; 4];
    for part in body.split(',') {
        let (k, v) = part
            .split_once(':')
            .ok_or_else(|| format!("bad trace field `{part}`"))?;
        let v = v.trim();
        match k.trim() {
            "line" => {
                op.line = v.parse().map_err(|_| format!("bad line `{v}`"))?;
                seen[0] = true;
            }
            "write" => {
                op.write = v.parse().map_err(|_| format!("bad write `{v}`"))?;
                seen[1] = true;
            }
            "gap" => {
                op.gap = v.parse().map_err(|_| format!("bad gap `{v}`"))?;
                seen[2] = true;
            }
            "dep" => {
                op.dep = v.parse().map_err(|_| format!("bad dep `{v}`"))?;
                seen[3] = true;
            }
            other => return Err(format!("unknown trace field `{other}`")),
        }
    }
    if seen != [true; 4] {
        return Err(format!("trace entry `{line}` is missing fields"));
    }
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_fault_plan() {
        for seed in [1u64, 2, 5, 8, 13, 21, 34, 55] {
            let case = FuzzCase::generate(seed);
            let text = to_ron(&case);
            let back = from_ron(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(case, back, "roundtrip drift for seed {seed}");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let case = FuzzCase::generate(3);
        let text = format!("// header\n\n{}\n// trailer\n", to_ron(&case));
        assert_eq!(from_ron(&text).unwrap(), case);
    }

    #[test]
    fn missing_field_reported_by_name() {
        let case = FuzzCase::generate(3);
        let text = to_ron(&case)
            .replace("    cores: 1,\n", "")
            .replace("    cores: 2,\n", "");
        let err = from_ron(&text).unwrap_err();
        assert!(err.contains("cores"), "unhelpful error: {err}");
    }

    #[test]
    fn invalid_case_rejected_on_load() {
        let mut case = FuzzCase::generate(3);
        case.trace[0].line = case.data_lines + 5;
        let err = from_ron(&to_ron(&case)).unwrap_err();
        assert!(err.contains("data space"), "unhelpful error: {err}");
    }

    #[test]
    fn syntax_error_names_the_line() {
        let err = from_ron("FuzzCase(\n  what even is this\n)").unwrap_err();
        assert!(err.contains("line 2"), "unhelpful error: {err}");
    }

    #[test]
    fn load_dir_continues_past_a_truncated_file() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-scratch")
            .join(format!("corpus-load-dir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let good = FuzzCase::generate(5);
        std::fs::write(dir.join("aa_good.ron"), to_ron(&good)).unwrap();
        // Truncate a valid file mid-trace-entry: the classic
        // crash-while-saving artifact that used to abort the whole replay
        // suite. (A cut on a line boundary would still parse, just with
        // fewer ops, so aim inside the final entry's tokens.)
        let full = to_ron(&FuzzCase::generate(6));
        let cut = full.rfind("(line:").expect("trace entry") + "(line: 1".len();
        std::fs::write(dir.join("bb_truncated.ron"), &full[..cut]).unwrap();
        std::fs::write(dir.join("cc_good.ron"), to_ron(&FuzzCase::generate(7))).unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a corpus file").unwrap();

        let (cases, errors) = load_dir(&dir);
        assert_eq!(cases.len(), 2, "good files must still load");
        assert_eq!(cases[0].1, good);
        assert_eq!(errors.len(), 1, "exactly the truncated file fails");
        assert!(errors[0].path.ends_with("bb_truncated.ron"));
        assert!(
            errors[0].to_string().contains("bb_truncated.ron"),
            "error must name the bad file: {}",
            errors[0]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_reports_missing_directory_as_one_error() {
        let (cases, errors) = load_dir(Path::new("does/not/exist-anywhere"));
        assert!(cases.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].reason.contains("unreadable"));
    }
}
