//! The differential oracle battery.
//!
//! A case passes when every check over every scheme × counter-design
//! combination holds. Failures carry human-readable descriptions so the
//! shrunk reproducer's verdict explains *which* law broke, not just that
//! one did.

use std::collections::HashMap;

use std::collections::BTreeMap;

use emcc::counters::CounterDesign;
use emcc::crypto::DataBlock;
use emcc::secmem::service::{CrashInjector, CrashSchedule, InMemoryBackend};
use emcc::secmem::{
    recover, FunctionalSecureMemory, MemoryAdt, SecureMemoryService, SecurityScheme, ServiceConfig,
    ServiceError,
};
use emcc::sim::LineAddr;
use emcc::system::{SecureSystem, SimReport};

use crate::case::{FaultPlan, FuzzCase};

/// The schemes every case runs under.
pub const SCHEMES: [SecurityScheme; 3] = [
    SecurityScheme::NonSecure,
    SecurityScheme::CtrInLlc,
    SecurityScheme::Emcc,
];

/// The counter designs every case runs under.
pub const DESIGNS: [CounterDesign; 3] = [
    CounterDesign::Monolithic,
    CounterDesign::Sc64,
    CounterDesign::Morphable,
];

/// Verdict of the battery over one case.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Oracle-law violations, empty when the case passes.
    pub failures: Vec<String>,
    /// FNV-1a digest over every combo's canonical report — the verdict
    /// file's determinism fingerprint.
    pub digest: u64,
    /// Scheme × design combinations executed.
    pub combos: usize,
}

impl OracleReport {
    /// True when every oracle held.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the full battery on one case.
///
/// Honors `EMCC_FORCE_ORACLE_FAIL` (value `*` or a specific case seed):
/// an always-failing oracle for exercising the shrink → corpus → replay
/// path end-to-end, mirroring `EMCC_FORCE_PANIC` in the bench harness.
pub fn check_case(case: &FuzzCase) -> OracleReport {
    let mut failures = Vec::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;

    if let Err(e) = case.validate() {
        return OracleReport {
            failures: vec![e],
            digest,
            combos: 0,
        };
    }

    for design in DESIGNS {
        functional_oracle(case, design, &mut failures);
        crash_recovery_oracle(case, design, &mut failures);
    }

    // One SimReport per scheme×design, in fixed order.
    let mut reports: Vec<(SecurityScheme, CounterDesign, SimReport)> = Vec::new();
    for scheme in SCHEMES {
        for design in DESIGNS {
            let cfg = case.system_config(scheme, design);
            let report = SecureSystem::new(cfg).run(case.sources(), case.ops_per_core);
            fnv_mix(&mut digest, report.canonical_json().as_bytes());
            report_laws(case, scheme, &report, &mut failures);
            reports.push((scheme, design, report));
        }
    }
    metamorphic_laws(&reports, &mut failures);

    // Determinism: re-running a combo must reproduce its report verbatim.
    let cfg = case.system_config(SecurityScheme::Emcc, CounterDesign::Morphable);
    let again = SecureSystem::new(cfg).run(case.sources(), case.ops_per_core);
    let first = reports
        .iter()
        .find(|(s, d, _)| *s == SecurityScheme::Emcc && *d == CounterDesign::Morphable)
        .map(|(_, _, r)| r.canonical_json())
        .expect("combo was run");
    if again.canonical_json() != first {
        failures.push("determinism: emcc/morphable replay diverged from first run".to_string());
    }

    if forced_failure(case.seed) {
        failures.push("forced failure (EMCC_FORCE_ORACLE_FAIL)".to_string());
    }

    OracleReport {
        failures,
        digest,
        combos: SCHEMES.len() * DESIGNS.len(),
    }
}

/// `EMCC_FORCE_ORACLE_FAIL=*` fails every case; a number fails the case
/// with that seed (shrink candidates keep their seed, so the forced
/// failure survives shrinking, as a real seed-determined bug would).
fn forced_failure(seed: u64) -> bool {
    match std::env::var("EMCC_FORCE_ORACLE_FAIL") {
        Ok(v) => v == "*" || v == seed.to_string(),
        Err(_) => false,
    }
}

/// The value the timing model architecturally stores: fuzz writes are
/// content-free, so give each (line, nth-write) a distinct block.
fn write_value(line: u64, nth: u64) -> DataBlock {
    DataBlock::from_words([line ^ nth.wrapping_mul(0x9E37_79B9_7F4A_7C15); 8])
}

/// Functional equivalence: `FunctionalSecureMemory` must agree with a
/// naive line → value map on every read, through both the monolithic
/// read path and the EMCC split-MAC path, and detect a tamper planted
/// after the replay.
fn functional_oracle(case: &FuzzCase, design: CounterDesign, failures: &mut Vec<String>) {
    let tag = format!("functional/{design:?}");
    let mut fsm = FunctionalSecureMemory::with_design(case.seed, case.data_lines, design);
    let mut naive: HashMap<u64, DataBlock> = HashMap::new();
    let mut writes: HashMap<u64, u64> = HashMap::new();
    for (i, op) in case.trace.iter().enumerate() {
        let line = LineAddr::new(op.line);
        if op.write {
            let nth = writes.entry(op.line).or_insert(0);
            let value = write_value(op.line, *nth);
            *nth += 1;
            fsm.write(line, value);
            naive.insert(op.line, value);
        } else {
            let expect = naive.get(&op.line).copied().unwrap_or_default();
            match fsm.read(line) {
                Ok(v) if v == expect => {}
                Ok(_) => failures.push(format!("{tag}: op {i} read wrong value at {}", op.line)),
                Err(e) => failures.push(format!("{tag}: op {i} spurious {e:?} at {}", op.line)),
            }
            match fsm.read_split(line) {
                Ok(v) if v == expect => {}
                other => failures.push(format!(
                    "{tag}: op {i} split-path diverged at {}: {other:?}",
                    op.line
                )),
            }
        }
    }
    // Tamper spot-check on the first written line: a ciphertext bit-flip
    // must be detected by both read paths, and a rewrite must repair it.
    if let Some(&line) = naive.keys().min() {
        let addr = LineAddr::new(line);
        let bit = (case.seed % 512) as usize;
        fsm.tamper_flip_bit(addr, bit);
        if fsm.read(addr).is_ok() {
            failures.push(format!("{tag}: bit-flip at line {line} went undetected"));
        }
        if fsm.read_split(addr).is_ok() {
            failures.push(format!(
                "{tag}: bit-flip at line {line} undetected by split path"
            ));
        }
        let repaired = write_value(line, 0xBEEF);
        fsm.write(addr, repaired);
        if fsm.read_checked(addr) != Ok(repaired) {
            failures.push(format!("{tag}: rewrite failed to repair line {line}"));
        }
    }
}

/// Crash-consistency law: journal the case's first writes through the
/// secure-memory service, crash the backend at a seed-chosen mutating
/// call (with a seed-chosen torn prefix of the final record), recover,
/// and require every *acknowledged* write to read back exactly. A pure
/// crash must also never quarantine lines or fail recovery outright.
fn crash_recovery_oracle(case: &FuzzCase, design: CounterDesign, failures: &mut Vec<String>) {
    let tag = format!("crash-recovery/{design:?}");
    let lines: Vec<u64> = case.trace.iter().take(24).map(|op| op.line).collect();
    let schedule = CrashSchedule {
        crash_on_op: case.seed % (lines.len() as u64 + 2), // 0 = never crashes
        torn_keep: (case.seed >> 8) % 64,
    };
    let svc = SecureMemoryService::with_design(
        CrashInjector::new(InMemoryBackend::new(), schedule),
        case.seed,
        case.data_lines,
        design,
        ServiceConfig::default(),
    );
    let mut acked: BTreeMap<u64, DataBlock> = BTreeMap::new();
    for (i, &line) in lines.iter().enumerate() {
        let value = write_value(line, i as u64 ^ 0xC4A5);
        match svc.batch_write(&[(LineAddr::new(line), value)]) {
            Ok(_) => {
                acked.insert(line, value);
            }
            Err(ServiceError::Backend { .. }) => break, // the injected crash
            Err(e) => {
                failures.push(format!("{tag}: unexpected write error: {e}"));
                return;
            }
        }
    }
    match recover(
        svc.into_backend().into_inner(),
        case.seed,
        case.data_lines,
        design,
        ServiceConfig::default(),
    ) {
        Ok((recovered, report)) => {
            if !report.quarantined.is_empty() {
                failures.push(format!(
                    "{tag}: {} lines quarantined after a pure crash",
                    report.quarantined.len()
                ));
            }
            for (&line, &value) in &acked {
                match recovered.batch_read(&[LineAddr::new(line)]) {
                    Ok(got) if got[0] == Some(value) => {}
                    other => failures.push(format!(
                        "{tag}: acked write to line {line} did not survive recovery: {other:?}"
                    )),
                }
            }
        }
        Err(e) => failures.push(format!("{tag}: recovery failed after a pure crash: {e}")),
    }
}

/// Conservation and detection laws over one combo's report.
fn report_laws(case: &FuzzCase, scheme: SecurityScheme, r: &SimReport, failures: &mut Vec<String>) {
    let tag = format!("laws/{}/{}", r.scheme, r.benchmark);
    let mut law = |ok: bool, what: String| {
        if !ok {
            failures.push(format!("{tag}: {what}"));
        }
    };

    law(
        r.mem_ops == case.total_accesses(),
        format!(
            "mem_ops {} != cores*ops {}",
            r.mem_ops,
            case.total_accesses()
        ),
    );
    law(
        r.l2_hits + r.l2_data_misses <= r.l2_accesses,
        format!(
            "l2 hits {} + misses {} > accesses {}",
            r.l2_hits, r.l2_data_misses, r.l2_accesses
        ),
    );
    // LLC misses are counted at issue, DRAM data reads at completion, and
    // the run ends the moment the last core retires — the report carries
    // the cutoff remainder explicitly, so the ledger holds as an exact
    // equality (fuzz runs are warmup-free; warmup would reset the counters
    // with reads mid-flight). Sources of DRAM data reads beyond LLC
    // misses: integrity-recovery refetches and XPT mispredictions that
    // read DRAM for a line the LLC ended up serving.
    law(
        r.llc_data_misses + r.data_refetch_reads + r.xpt_wasted_reads
            == r.dram_data_reads + r.dram_reads_inflight_at_cutoff + r.unissued_misses_at_cutoff,
        format!(
            "dram read ledger: misses {} + refetch {} + wasted {} != reads {} + in-flight {} + unissued {}",
            r.llc_data_misses,
            r.data_refetch_reads,
            r.xpt_wasted_reads,
            r.dram_data_reads,
            r.dram_reads_inflight_at_cutoff,
            r.unissued_misses_at_cutoff
        ),
    );
    // Critical-path attribution: the sweep charges every attributed
    // instant to exactly one component, so per-component sums must tile
    // each access's end-to-end window exactly (in picoseconds), with no
    // span ever falling outside its access window.
    law(
        r.crit_violations == 0,
        format!("{} spans outside their access window", r.crit_violations),
    );
    law(
        r.crit_path.total_sum_ps() == r.crit_total_ps,
        format!(
            "attributed component time {} ps != total access time {} ps",
            r.crit_path.total_sum_ps(),
            r.crit_total_ps
        ),
    );
    law(
        r.crit_path.accesses() == 0 || r.crit_total_ps > 0,
        "attributed accesses with zero total latency".to_string(),
    );
    law(
        r.xpt_wasted <= r.xpt_forwards,
        format!("xpt wasted {} > forwards {}", r.xpt_wasted, r.xpt_forwards),
    );
    if !case.xpt {
        law(
            r.xpt_forwards == 0,
            format!("xpt disabled but {} forwards", r.xpt_forwards),
        );
    }
    if case.prefetch == 0 {
        law(
            r.prefetches == 0,
            format!("prefetcher disabled but {} prefetches", r.prefetches),
        );
    }
    law(
        r.l2_ctr_useless + r.l2_ctr_useful <= r.l2_ctr_insertions,
        format!(
            "ctr useless {} + useful {} > insertions {}",
            r.l2_ctr_useless, r.l2_ctr_useful, r.l2_ctr_insertions
        ),
    );

    if scheme == SecurityScheme::NonSecure {
        let ctr_total: u64 = r.ctr_source.iter().sum();
        law(
            ctr_total == 0,
            format!("non-secure sourced {ctr_total} counters"),
        );
        law(
            r.decrypted_at_l2 == 0 && r.decrypted_at_mc == 0,
            "non-secure decrypted something".to_string(),
        );
        law(
            r.integrity_violations == 0,
            format!("non-secure raised {} violations", r.integrity_violations),
        );
        law(
            r.silent_corruptions == r.faulty_reads,
            format!(
                "non-secure silent {} != faulty {}",
                r.silent_corruptions, r.faulty_reads
            ),
        );
    } else {
        law(
            r.silent_corruptions == 0,
            format!(
                "secure run consumed {} corruptions silently",
                r.silent_corruptions
            ),
        );
        law(
            r.integrity_violations == r.faulty_reads,
            format!(
                "detection not exact: violations {} != faulty reads {}",
                r.integrity_violations, r.faulty_reads
            ),
        );
        law(
            r.shadow_mismatches == 0,
            format!("shadow diff found {} mismatched lines", r.shadow_mismatches),
        );
    }
    if !scheme.is_emcc() {
        law(
            r.decrypted_at_l2 == 0 && r.l2_ctr_reqs_to_llc == 0 && r.l2_ctr_insertions == 0,
            "non-EMCC scheme used L2 counter machinery".to_string(),
        );
    }

    if case.fault == FaultPlan::None {
        let injected: u64 = r.faults_injected.iter().sum();
        law(
            injected == 0 && r.faulty_reads == 0,
            format!(
                "fault-free run injected {injected}, faulty {}",
                r.faulty_reads
            ),
        );
        law(
            r.integrity_violations == 0
                && r.integrity_retries == 0
                && r.integrity_unrecovered == 0
                && r.silent_corruptions == 0,
            "fault-free run reported violations".to_string(),
        );
        law(
            r.detection_latency_ns.total() == 0,
            "fault-free run recorded detection latencies".to_string(),
        );
    } else {
        law(
            r.integrity_retries >= r.integrity_unrecovered,
            format!(
                "unrecovered {} without enough retries {}",
                r.integrity_unrecovered, r.integrity_retries
            ),
        );
    }
}

/// Cross-scheme metamorphic relations over the 9 reports of one case.
fn metamorphic_laws(
    reports: &[(SecurityScheme, CounterDesign, SimReport)],
    failures: &mut Vec<String>,
) {
    // NonSecure never loses to a secure scheme on the same design: secure
    // schemes only add work (counter fetches, AES, verification).
    for design in DESIGNS {
        let of = |scheme: SecurityScheme| {
            reports
                .iter()
                .find(|(s, d, _)| *s == scheme && *d == design)
                .map(|(_, _, r)| r)
                .expect("all combos present")
        };
        let ns = of(SecurityScheme::NonSecure);
        for scheme in [SecurityScheme::CtrInLlc, SecurityScheme::Emcc] {
            let sec = of(scheme);
            if ns.elapsed > sec.elapsed {
                failures.push(format!(
                    "metamorphic/{design:?}: non-secure ({} ps) slower than {} ({} ps)",
                    ns.elapsed.as_ps(),
                    scheme,
                    sec.elapsed.as_ps()
                ));
            }
        }
    }
    // NonSecure ignores counters entirely, so its report is invariant
    // under the counter design.
    let ns: Vec<&SimReport> = reports
        .iter()
        .filter(|(s, _, _)| *s == SecurityScheme::NonSecure)
        .map(|(_, _, r)| r)
        .collect();
    for w in ns.windows(2) {
        if w[0].canonical_json() != w[1].canonical_json() {
            failures.push("metamorphic: non-secure report varies with counter design".to_string());
            break;
        }
    }
}

/// Streams bytes into an FNV-1a state.
fn fnv_mix(state: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *state ^= u64::from(b);
        *state = state.wrapping_mul(0x100_0000_01b3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_case_passes_battery() {
        let mut case = FuzzCase::generate(11);
        case.trace.truncate(24);
        case.ops_per_core = 24;
        case.fault = FaultPlan::None;
        let rep = check_case(&case);
        assert!(rep.ok(), "unexpected failures: {:#?}", rep.failures);
        assert_eq!(rep.combos, 9);
    }

    #[test]
    fn digest_is_deterministic() {
        let mut case = FuzzCase::generate(12);
        case.trace.truncate(16);
        case.ops_per_core = 16;
        let a = check_case(&case);
        let b = check_case(&case);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn invalid_case_is_rejected_not_run() {
        let mut case = FuzzCase::generate(1);
        case.trace[0].line = case.data_lines; // out of range
        let rep = check_case(&case);
        assert!(!rep.ok());
        assert_eq!(rep.combos, 0);
    }
}
