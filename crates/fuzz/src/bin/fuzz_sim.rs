//! Parallel fuzz campaigns over the oracle battery.
//!
//! ```text
//! fuzz_sim [--cases N] [--seed S] [--smoke] [--out FILE]
//!          [--corpus-dir DIR] [--replay FILE]
//!          [--emit FILE --case-seed S]
//!          [--trace FILE [--case-seed S]]
//! ```
//!
//! Case `i` of a campaign fuzzes `FuzzCase::generate(mix(seed, i))`; the
//! verdict file lists one line per case in index order, so it is
//! byte-identical for any `EMCC_JOBS` (workers only affect scheduling,
//! never content — the same guarantee `run_all` makes).
//!
//! `--emit` materializes the case for one *case seed* (the `seed` column
//! of a verdict line) as a corpus file, so any campaign case can be
//! turned into a replayable regression file after the fact.
//!
//! `--trace` runs one case (case 0 of the campaign, or `--case-seed S`)
//! under EMCC/Morphable with the critical-path recorder on and writes
//! the per-access spans as Chrome-trace JSON (`chrome://tracing` /
//! Perfetto). The traced run is inline, so the file is byte-identical
//! for any `EMCC_JOBS`.
//!
//! On the first oracle failure the offending case is shrunk to a minimal
//! reproducer, persisted under the corpus directory, and the process
//! exits 1; `cargo test -p emcc-fuzz` then replays the corpus red until
//! the bug is fixed. Exit 2 is reserved for configuration errors.

use std::path::PathBuf;
use std::process::ExitCode;

use emcc_bench::{jobs_from_env, run_indexed_catching};
use emcc_fuzz::oracle::check_case;
use emcc_fuzz::{corpus, FuzzCase};
use proptest::shrink::minimize;

/// Shrink budget: candidates tested before accepting the current minimum.
const SHRINK_BUDGET: usize = 3_000;

struct Args {
    cases: usize,
    seed: u64,
    out: PathBuf,
    corpus_dir: PathBuf,
    replay: Option<PathBuf>,
    emit: Option<PathBuf>,
    trace: Option<PathBuf>,
    case_seed: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: fuzz_sim [--cases N] [--seed S] [--smoke] [--out FILE] \
         [--corpus-dir DIR] [--replay FILE] [--emit FILE --case-seed S] \
         [--trace FILE [--case-seed S]]"
    );
    std::process::exit(2)
}

fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        cases: 100,
        seed: 7,
        out: PathBuf::from("target/fuzz_verdicts.txt"),
        corpus_dir: default_corpus_dir(),
        replay: None,
        emit: None,
        trace: None,
        case_seed: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs {what}");
                usage()
            })
        };
        match flag.as_str() {
            "--cases" => {
                args.cases = value("a count").parse().unwrap_or_else(|_| usage());
            }
            "--seed" => {
                args.seed = value("a seed").parse().unwrap_or_else(|_| usage());
            }
            "--smoke" => args.cases = 200,
            "--out" => args.out = PathBuf::from(value("a path")),
            "--corpus-dir" => args.corpus_dir = PathBuf::from(value("a path")),
            "--replay" => args.replay = Some(PathBuf::from(value("a path"))),
            "--emit" => args.emit = Some(PathBuf::from(value("a path"))),
            "--trace" => args.trace = Some(PathBuf::from(value("a path"))),
            "--case-seed" => {
                args.case_seed = Some(parse_seed(&value("a seed")).unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
    }
    args
}

/// The corpus lives at the repo root (`fuzz/corpus/`), two levels above
/// this crate; `EMCC_CORPUS_DIR` overrides for sandboxed CI steps.
fn default_corpus_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("EMCC_CORPUS_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

/// splitmix64: decorrelates per-case seeds from the campaign seed.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn main() -> ExitCode {
    let args = parse_args();

    if let Some(path) = &args.emit {
        let Some(case_seed) = args.case_seed else {
            eprintln!("error: --emit needs --case-seed (the seed column of a verdict line)");
            return ExitCode::from(2);
        };
        let case = FuzzCase::generate(case_seed);
        if let Err(e) = std::fs::write(path, corpus::to_ron(&case)) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("emitted case {case_seed:#x} to {}", path.display());
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.trace {
        return export_trace(path, &args);
    }

    if let Some(path) = &args.replay {
        return replay(path);
    }

    let jobs = jobs_from_env();
    eprintln!(
        "fuzz_sim: {} cases, seed {}, {} workers",
        args.cases, args.seed, jobs
    );
    let t0 = std::time::Instant::now();
    let results = run_indexed_catching(args.cases, jobs, |i| {
        let case = FuzzCase::generate(mix(args.seed, i as u64));
        let report = check_case(&case);
        (case, report)
    });
    eprintln!("fuzz_sim: campaign took {:.1?}", t0.elapsed());

    let mut verdicts = String::new();
    let mut first_failure: Option<(usize, FuzzCase, Vec<String>)> = None;
    let mut failed = 0usize;
    for (i, result) in results.into_iter().enumerate() {
        match result {
            Ok((case, report)) => {
                let ok = report.ok();
                verdicts.push_str(&format!(
                    "case {i} seed {:#018x} digest {:016x} {}\n",
                    case.seed,
                    report.digest,
                    if ok { "ok" } else { "FAIL" }
                ));
                if !ok {
                    failed += 1;
                    for f in &report.failures {
                        eprintln!("case {i}: {f}");
                    }
                    if first_failure.is_none() {
                        first_failure = Some((i, case, report.failures));
                    }
                }
            }
            Err(panic_msg) => {
                failed += 1;
                verdicts.push_str(&format!("case {i} PANIC {panic_msg}\n"));
                eprintln!("case {i}: simulator panicked: {panic_msg}");
            }
        }
    }

    if let Some(parent) = args.out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&args.out, &verdicts) {
        eprintln!("error: cannot write {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    eprintln!(
        "fuzz_sim: {}/{} cases passed, verdicts in {}",
        args.cases - failed,
        args.cases,
        args.out.display()
    );

    if let Some((index, case, failures)) = first_failure {
        shrink_and_persist(index, case, failures, &args.corpus_dir);
        return ExitCode::from(1);
    }
    if failed > 0 {
        // Panicking cases cannot be shrunk through the oracle (the
        // panic aborts the battery) — still a red campaign.
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// Runs one case with the critical-path recorder enabled and writes its
/// Chrome-trace JSON. The run is inline (single-threaded), so the output
/// is byte-identical regardless of `EMCC_JOBS`.
fn export_trace(path: &std::path::Path, args: &Args) -> ExitCode {
    use emcc::counters::CounterDesign;
    use emcc::secmem::SecurityScheme;
    use emcc::system::SecureSystem;

    let case_seed = args.case_seed.unwrap_or_else(|| mix(args.seed, 0));
    let case = FuzzCase::generate(case_seed);
    let cfg = case.system_config(SecurityScheme::Emcc, CounterDesign::Morphable);
    let (report, rec) =
        SecureSystem::new(cfg).run_traced(case.sources(), 0, case.ops_per_core, 65_536);
    if let Err(e) = std::fs::write(path, rec.chrome_json()) {
        eprintln!("error: cannot write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    eprintln!(
        "traced case {case_seed:#018x}: {} accesses recorded ({} dropped), \
         {} attribution violations, wrote {}",
        rec.len(),
        rec.dropped(),
        report.crit_violations,
        path.display()
    );
    ExitCode::SUCCESS
}

fn replay(path: &std::path::Path) -> ExitCode {
    match corpus::load(path) {
        Ok(case) => {
            let report = check_case(&case);
            if report.ok() {
                eprintln!(
                    "replay {}: ok (digest {:016x})",
                    path.display(),
                    report.digest
                );
                ExitCode::SUCCESS
            } else {
                for f in &report.failures {
                    eprintln!("replay {}: {f}", path.display());
                }
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn shrink_and_persist(
    index: usize,
    case: FuzzCase,
    failures: Vec<String>,
    corpus_dir: &std::path::Path,
) {
    eprintln!(
        "fuzz_sim: shrinking case {index} ({} trace ops, {} accesses)...",
        case.trace.len(),
        case.total_accesses()
    );
    let t0 = std::time::Instant::now();
    let m = minimize(case, SHRINK_BUDGET, |cand| !check_case(cand).ok());
    eprintln!(
        "fuzz_sim: shrunk to {} trace ops / {} accesses in {} steps ({} candidates, {:.1?})",
        m.value.trace.len(),
        m.value.total_accesses(),
        m.steps,
        m.tested,
        t0.elapsed()
    );
    let name = format!("shrunk-{:016x}.ron", m.value.seed);
    let path = corpus_dir.join(&name);
    let mut text = corpus::to_ron(&m.value);
    for f in &failures {
        text.push_str(&format!("// failed oracle: {f}\n"));
    }
    if let Err(e) = std::fs::create_dir_all(corpus_dir) {
        eprintln!("error: cannot create {}: {e}", corpus_dir.display());
        return;
    }
    match std::fs::write(&path, text) {
        Ok(()) => eprintln!(
            "fuzz_sim: reproducer persisted to {} — `cargo test -p emcc-fuzz` replays it",
            path.display()
        ),
        Err(e) => eprintln!("error: cannot write {}: {e}", path.display()),
    }
}
