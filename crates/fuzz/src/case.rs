//! Fuzz cases: a seeded random system configuration + access trace.

use emcc::counters::CounterDesign;
use emcc::dram::{DramConfig, FaultClass, FaultConfig};
use emcc::noc::Mesh;
use emcc::secmem::SecurityScheme;
use emcc::sim::LineAddr;
use emcc::sim::{Rng64, Time};
use emcc::system::SystemConfig;
use emcc::workloads::phases::mixed_ops;
use emcc::workloads::{MemOp, Trace, TraceSource};
use proptest::shrink::{shrink_int, shrink_vec, Shrink};

/// One access of a fuzz trace (a plain-data mirror of [`MemOp`] so cases
/// serialize and shrink without touching simulator types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzOp {
    /// Line index, always `< FuzzCase::data_lines`.
    pub line: u64,
    /// Store (true) or load.
    pub write: bool,
    /// Instruction gap before the access.
    pub gap: u32,
    /// Address depends on the previous load.
    pub dep: bool,
}

impl FuzzOp {
    fn to_mem_op(self) -> MemOp {
        MemOp {
            line: LineAddr::new(self.line),
            is_write: self.write,
            gap: self.gap,
            depends_on_prev: self.dep,
        }
    }
}

/// The case's DRAM fault plan, in a form that serializes exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlan {
    /// No injection: behaviorally identical to the fault-free model.
    None,
    /// One fault planted at a specific line and read ordinal.
    Planted {
        /// Target line.
        line: u64,
        /// `FaultClass::index()` of the injected class.
        class: usize,
        /// Which read of the line triggers injection (0 = first).
        on_read: u64,
    },
    /// Uniform per-read injection of one class.
    Uniform {
        /// `FaultClass::index()` of the injected class.
        class: usize,
        /// Rate in parts-per-million (integral, so cases hash and
        /// serialize exactly).
        rate_ppm: u32,
    },
}

impl FaultPlan {
    /// Expands the plan to the simulator's fault configuration.
    pub fn to_config(self, seed: u64) -> Option<FaultConfig> {
        match self {
            FaultPlan::None => None,
            FaultPlan::Planted {
                line,
                class,
                on_read,
            } => Some(FaultConfig::planted_at(
                seed,
                LineAddr::new(line),
                FaultClass::all()[class],
                on_read,
            )),
            FaultPlan::Uniform { class, rate_ppm } => Some(FaultConfig::uniform(
                seed,
                FaultClass::all()[class],
                f64::from(rate_ppm) / 1e6,
            )),
        }
    }
}

/// A complete, self-describing fuzz case.
///
/// Every field is drawn from [`FuzzCase::generate`]'s valid ranges; the
/// corpus parser re-validates with [`FuzzCase::validate`] so hand-edited
/// files cannot assert inside the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// The generating seed (also the simulator/functional-memory seed).
    pub seed: u64,
    /// Simulated cores (1–2; each replays the trace from its own offset).
    pub cores: usize,
    /// Operations each core executes.
    pub ops_per_core: u64,
    /// Protected data space in lines.
    pub data_lines: u64,
    /// L1D geometry: sets (power of two) × ways × 64 B.
    pub l1_sets: u64,
    /// L1D associativity.
    pub l1_ways: u32,
    /// L2 sets (power of two).
    pub l2_sets: u64,
    /// L2 associativity.
    pub l2_ways: u32,
    /// LLC slice count (≤ mesh core tiles).
    pub llc_slices: usize,
    /// Per-slice LLC sets (power of two).
    pub llc_sets: u64,
    /// LLC associativity.
    pub llc_ways: u32,
    /// MC metadata-cache sets (power of two).
    pub mc_sets: u64,
    /// MC metadata-cache associativity.
    pub mc_ways: u32,
    /// DRAM channels.
    pub channels: usize,
    /// LLC-miss prediction on/off.
    pub xpt: bool,
    /// Inclusive-LLC extension on/off.
    pub inclusive: bool,
    /// L2 stride-prefetcher degree (0 disables).
    pub prefetch: u32,
    /// EMCC AES fraction moved to L2, in percent (20/50/80).
    pub aes_to_l2_pct: u32,
    /// EMCC L2 counter budget in lines.
    pub budget_lines: u64,
    /// DRAM fault plan.
    pub fault: FaultPlan,
    /// The access trace (replayed cyclically).
    pub trace: Vec<FuzzOp>,
}

const LINE_BYTES: u64 = 64;

impl FuzzCase {
    /// Generates the case for `seed`, drawing every knob from its valid
    /// range. Pure: the same seed always yields the same case.
    pub fn generate(seed: u64) -> Self {
        let mut rng = Rng64::new(seed ^ 0xF022_CA5E);
        let data_lines = 1u64 << (12 + rng.index(3) as u64 * 2); // 4K/16K/64K lines
        let footprint = 32 + rng.below(1993); // 32..=2024 lines, < data_lines
        let trace_len = 16 + rng.index(241); // 16..=256 ops
        let trace: Vec<FuzzOp> = mixed_ops(rng.next_u64(), footprint, trace_len)
            .into_iter()
            .map(|op| FuzzOp {
                line: op.line.get(),
                write: op.is_write,
                gap: op.gap,
                dep: op.depends_on_prev,
            })
            .collect();
        let cores = 1 + rng.index(2);
        let ops_per_core = (trace_len as u64) * (1 + rng.below(3));
        let fault = match rng.index(10) {
            0..=5 => FaultPlan::None,
            6..=8 => FaultPlan::Planted {
                line: trace[rng.index(trace.len())].line,
                class: rng.index(5),
                on_read: rng.below(3),
            },
            _ => FaultPlan::Uniform {
                class: rng.index(5),
                rate_ppm: [1_000u32, 10_000][rng.index(2)],
            },
        };
        FuzzCase {
            seed,
            cores,
            ops_per_core,
            data_lines,
            l1_sets: 1 << (2 + rng.index(3)), // 4/8/16
            l1_ways: [1, 2, 4][rng.index(3)],
            l2_sets: 1 << (3 + rng.index(3)), // 8/16/32
            l2_ways: [2, 4, 8][rng.index(3)],
            llc_slices: [1, 2, 4][rng.index(3)],
            llc_sets: 1 << (4 + rng.index(2)), // 16/32
            llc_ways: [2, 4][rng.index(2)],
            mc_sets: 1 << (3 + rng.index(2)), // 8/16
            mc_ways: [2, 4][rng.index(2)],
            channels: 1 + rng.index(2),
            xpt: rng.chance(0.5),
            inclusive: rng.chance(0.25),
            prefetch: rng.index(3) as u32,
            aes_to_l2_pct: [20, 50, 80][rng.index(3)],
            budget_lines: [16, 64, 512][rng.index(3)],
            fault,
            trace,
        }
    }

    /// Checks every constraint the simulator asserts on, so corpus files
    /// and shrink candidates fail loudly here instead of panicking deep
    /// inside a cache constructor.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let check = |ok: bool, what: &str| {
            if ok {
                Ok(())
            } else {
                Err(format!("invalid case: {what}"))
            }
        };
        check(self.cores >= 1 && self.cores <= 4, "cores must be 1..=4")?;
        check(self.ops_per_core >= 1, "ops_per_core must be >= 1")?;
        check(
            self.data_lines.is_power_of_two(),
            "data_lines must be a power of two",
        )?;
        check(!self.trace.is_empty(), "trace must be non-empty")?;
        check(
            self.trace.iter().all(|op| op.line < self.data_lines),
            "trace line out of data space",
        )?;
        for (sets, ways, what) in [
            (self.l1_sets, self.l1_ways, "l1"),
            (self.l2_sets, self.l2_ways, "l2"),
            (self.llc_sets, self.llc_ways, "llc"),
            (self.mc_sets, self.mc_ways, "mc"),
        ] {
            check(
                sets.is_power_of_two() && ways >= 1,
                &format!("{what} geometry must be pow2 sets x >=1 ways"),
            )?;
        }
        check(
            matches!(self.llc_slices, 1 | 2 | 4),
            "llc_slices must be 1, 2 or 4",
        )?;
        check(
            self.channels >= 1 && self.channels <= 4,
            "channels must be 1..=4",
        )?;
        check(
            self.aes_to_l2_pct >= 1 && self.aes_to_l2_pct <= 99,
            "aes_to_l2_pct must be 1..=99",
        )?;
        check(self.budget_lines >= 1, "budget_lines must be >= 1")?;
        if let FaultPlan::Planted { line, class, .. } = self.fault {
            check(line < self.data_lines, "planted fault line out of range")?;
            check(class < 5, "planted fault class out of range")?;
        }
        if let FaultPlan::Uniform { class, rate_ppm } = self.fault {
            check(class < 5, "uniform fault class out of range")?;
            check(rate_ppm <= 1_000_000, "uniform fault rate above 100%")?;
        }
        Ok(())
    }

    /// Expands to a full simulator configuration for one scheme × design
    /// combination. Shadow differential checking is enabled on secure
    /// fault-free combos (it asserts nothing useful elsewhere).
    pub fn system_config(&self, scheme: SecurityScheme, design: CounterDesign) -> SystemConfig {
        let mut cfg = SystemConfig::table_i(scheme);
        cfg.cores = self.cores;
        cfg.l1_size = self.l1_sets * u64::from(self.l1_ways) * LINE_BYTES;
        cfg.l1_ways = self.l1_ways;
        cfg.l2_size = self.l2_sets * u64::from(self.l2_ways) * LINE_BYTES;
        cfg.l2_ways = self.l2_ways;
        cfg.llc_slices = self.llc_slices;
        cfg.llc_slice_size = self.llc_sets * u64::from(self.llc_ways) * LINE_BYTES;
        cfg.llc_ways = self.llc_ways;
        cfg.mc_cache_size = self.mc_sets * u64::from(self.mc_ways) * LINE_BYTES;
        cfg.mc_cache_ways = self.mc_ways;
        cfg.counter_design = design;
        cfg.dram = DramConfig::table_i(self.channels);
        cfg.mesh = Mesh::grid(3, 2); // 4 core tiles: enough for 4 slices
        cfg.xpt_enabled = self.xpt;
        cfg.inclusive_llc = self.inclusive;
        cfg.l2_prefetch_degree = self.prefetch;
        cfg.emcc.l2_counter_budget_lines = self.budget_lines;
        cfg.emcc.aes_fraction_to_l2 = f64::from(self.aes_to_l2_pct) / 100.0;
        cfg.data_lines = self.data_lines;
        cfg.max_sim_time = Time::from_ms(400);
        cfg.seed = self.seed;
        cfg.fault = self.fault.to_config(self.seed);
        cfg.shadow_check = scheme.is_secure() && self.fault == FaultPlan::None;
        cfg
    }

    /// Builds one trace source per core; cores start at staggered offsets
    /// of the shared cyclic trace.
    pub fn sources(&self) -> Vec<Box<dyn TraceSource>> {
        let ops: Vec<MemOp> = self.trace.iter().map(|op| op.to_mem_op()).collect();
        (0..self.cores)
            .map(|c| {
                let t = Trace::new(format!("fuzz-{:#x}", self.seed), ops.clone());
                Box::new(t.cursor(c * ops.len() / self.cores)) as Box<dyn TraceSource>
            })
            .collect()
    }

    /// Total accesses the case executes (the "≤ 32 accesses" budget a
    /// shrunk reproducer is judged by).
    pub fn total_accesses(&self) -> u64 {
        self.ops_per_core * self.cores as u64
    }
}

impl Shrink for FuzzCase {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let with = |f: &dyn Fn(&mut FuzzCase)| {
            let mut c = self.clone();
            f(&mut c);
            c
        };
        // Cheap knobs first (few candidates, big access-count wins):
        // fewer executed ops, one core, no fault, features off — then the
        // trace's own structure. A few cheap candidates per round keeps
        // the shrink budget from drowning in trace permutations.
        for ops in shrink_int(self.ops_per_core, 1) {
            out.push(with(&|c| c.ops_per_core = ops));
        }
        if self.cores > 1 {
            out.push(with(&|c| c.cores = 1));
        }
        if self.fault != FaultPlan::None {
            out.push(with(&|c| c.fault = FaultPlan::None));
        }
        if self.xpt {
            out.push(with(&|c| c.xpt = false));
        }
        if self.inclusive {
            out.push(with(&|c| c.inclusive = false));
        }
        if self.prefetch > 0 {
            out.push(with(&|c| c.prefetch = 0));
        }
        if self.channels > 1 {
            out.push(with(&|c| c.channels = 1));
        }
        for shorter in shrink_vec(&self.trace, 1, |op| {
            let mut elems = Vec::new();
            for line in shrink_int(op.line, 0) {
                elems.push(FuzzOp { line, ..*op });
            }
            if op.gap > 0 {
                elems.push(FuzzOp { gap: 0, ..*op });
            }
            if op.dep {
                elems.push(FuzzOp { dep: false, ..*op });
            }
            elems
        }) {
            out.push(with(&|c| c.trace = shorter.clone()));
        }
        // A planted fault that survives must stay on a traced line;
        // dropping trace ops may have orphaned it — keep candidates valid.
        out.retain(|c| c.validate().is_ok());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::shrink::minimize;

    #[test]
    fn generate_is_deterministic_and_valid() {
        for seed in 0..50u64 {
            let a = FuzzCase::generate(seed);
            let b = FuzzCase::generate(seed);
            assert_eq!(a, b);
            a.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        assert_ne!(FuzzCase::generate(1), FuzzCase::generate(2));
    }

    #[test]
    fn configs_expand_for_every_combo() {
        let case = FuzzCase::generate(3);
        for scheme in [
            SecurityScheme::NonSecure,
            SecurityScheme::CtrInLlc,
            SecurityScheme::Emcc,
        ] {
            for design in [
                CounterDesign::Monolithic,
                CounterDesign::Sc64,
                CounterDesign::Morphable,
            ] {
                let cfg = case.system_config(scheme, design);
                assert_eq!(cfg.cores, case.cores);
                assert_eq!(cfg.scheme, scheme);
                // Geometry must satisfy the cache constructors.
                let _ = emcc::cache::CacheConfig::new(cfg.l1_size, cfg.l1_ways);
                let _ = emcc::cache::CacheConfig::new(cfg.l2_size, cfg.l2_ways);
                let _ = emcc::cache::CacheConfig::new(cfg.llc_slice_size, cfg.llc_ways);
                let _ = emcc::cache::CacheConfig::new(cfg.mc_cache_size, cfg.mc_cache_ways);
            }
        }
    }

    #[test]
    fn shrink_candidates_stay_valid() {
        let case = FuzzCase::generate(9);
        for cand in case.shrink_candidates() {
            cand.validate().expect("shrink candidate invalid");
        }
    }

    #[test]
    fn shrinks_to_tiny_case_under_always_failing_oracle() {
        let case = FuzzCase::generate(7);
        let m = minimize(case, 20_000, |_| true);
        assert_eq!(m.value.trace.len(), 1);
        assert_eq!(m.value.cores, 1);
        assert_eq!(m.value.ops_per_core, 1);
        assert_eq!(m.value.fault, FaultPlan::None);
        assert!(m.value.total_accesses() <= 32);
    }

    #[test]
    fn sources_match_core_count() {
        let case = FuzzCase::generate(4);
        assert_eq!(case.sources().len(), case.cores);
    }
}
