//! Golden-report regression: canonical `SimReport`s for a pinned seed
//! set must match the checked-in snapshots bit for bit.
//!
//! Any timing-model change — intended or not — shows up here as a
//! readable JSON diff before it can silently shift the paper's figures.
//! After reviewing an intended change, regenerate with
//!
//! ```text
//! EMCC_BLESS=1 cargo test -p emcc-fuzz --test golden_reports
//! ```
//! and commit the updated `tests/golden/*.json`.

use std::path::PathBuf;

use emcc::system::SecureSystem;
use emcc_fuzz::oracle::{DESIGNS, SCHEMES};
use emcc_fuzz::FuzzCase;

/// Pinned case seeds: small, fixed forever (append, never change).
const GOLDEN_SEEDS: [u64; 3] = [1, 2, 3];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// One blob per seed: every scheme × design combo's canonical report,
/// preceded by a combo header line.
fn render(seed: u64) -> String {
    let case = FuzzCase::generate(seed);
    let mut out = String::new();
    for scheme in SCHEMES {
        for design in DESIGNS {
            out.push_str(&format!("// combo: {scheme} / {design:?}\n"));
            let cfg = case.system_config(scheme, design);
            let report = SecureSystem::new(cfg).run(case.sources(), case.ops_per_core);
            out.push_str(&report.canonical_json());
        }
    }
    out
}

#[test]
fn golden_reports_match_snapshots() {
    let bless = std::env::var("EMCC_BLESS").is_ok_and(|v| !v.is_empty() && v != "0");
    let dir = golden_dir();
    if bless {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut diffs = Vec::new();
    for seed in GOLDEN_SEEDS {
        let path = dir.join(format!("seed_{seed}.json"));
        let actual = render(seed);
        if bless {
            std::fs::write(&path, &actual).expect("write snapshot");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "snapshot {} unreadable ({e}) — run EMCC_BLESS=1 cargo test -p emcc-fuzz \
                 --test golden_reports to create it",
                path.display()
            )
        });
        if actual != expected {
            let first_diff = actual
                .lines()
                .zip(expected.lines())
                .enumerate()
                .find(|(_, (a, e))| a != e)
                .map(|(n, (a, e))| format!("line {}: got `{a}`, snapshot `{e}`", n + 1))
                .unwrap_or_else(|| "lengths differ".to_string());
            diffs.push(format!("seed {seed}: {first_diff}"));
        }
    }
    assert!(
        diffs.is_empty(),
        "golden reports drifted (EMCC_BLESS=1 regenerates after review):\n{}",
        diffs.join("\n")
    );
}
