//! Replays every persisted corpus case through the full oracle battery.
//!
//! `fuzz/corpus/*.ron` is the fuzzer's regression suite: any case a
//! campaign ever shrunk (plus hand-pinned benign cases) stays red until
//! its bug is fixed, and green forever after. The directory is resolved
//! relative to this crate so the test passes from any working directory;
//! `EMCC_CORPUS_DIR` points it elsewhere for sandboxed CI steps.
//!
//! Loading is fault-tolerant: a corrupted or truncated corpus file is
//! reported (and fails the suite) *by name*, but never stops the
//! remaining cases from replaying — so one bad file cannot mask a
//! regression in the rest of the corpus.

use std::path::PathBuf;

use emcc_fuzz::{check_case, corpus};

fn corpus_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("EMCC_CORPUS_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

#[test]
fn corpus_cases_replay_green() {
    let dir = corpus_dir();
    let (cases, load_errors) = corpus::load_dir(&dir);
    assert!(
        !cases.is_empty() || !load_errors.is_empty(),
        "corpus dir {} holds no .ron cases — the regression suite vanished",
        dir.display()
    );
    // Replay everything that loaded, even when some files are bad.
    let mut failures: Vec<String> = load_errors
        .iter()
        .map(|e| format!("unloadable corpus file: {e}"))
        .collect();
    for (path, case) in &cases {
        let report = check_case(case);
        if !report.ok() {
            failures.push(format!("{}: {:?}", path.display(), report.failures));
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus problem(s) ({} case(s) replayed):\n{}",
        failures.len(),
        cases.len(),
        failures.join("\n")
    );
}

#[test]
fn corpus_files_roundtrip_exactly() {
    // A corpus file must re-serialize to semantically identical text, or
    // shrunk reproducers would drift when re-persisted.
    let (cases, _) = corpus::load_dir(&corpus_dir());
    for (path, case) in cases {
        let back = corpus::from_ron(&corpus::to_ron(&case)).expect("re-parse");
        assert_eq!(case, back, "roundtrip drift in {}", path.display());
    }
}

#[test]
fn truncated_corpus_file_is_reported_but_not_fatal() {
    // End-to-end: a scratch corpus with one deliberately truncated file
    // still yields every healthy case plus a typed, file-naming error.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-scratch")
        .join(format!("corpus-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let good = emcc_fuzz::FuzzCase::generate(41);
    std::fs::write(dir.join("good.ron"), corpus::to_ron(&good)).unwrap();
    // Cut mid-way through a trace entry, the way a crash while saving
    // does — a cut on a line boundary would still parse (fewer ops).
    let full = corpus::to_ron(&emcc_fuzz::FuzzCase::generate(42));
    let cut = full.rfind("(line:").expect("trace entry") + "(line: 1".len();
    std::fs::write(dir.join("torn.ron"), &full[..cut]).unwrap();

    let (cases, errors) = corpus::load_dir(&dir);
    assert_eq!(cases.len(), 1);
    assert_eq!(cases[0].1, good);
    assert_eq!(errors.len(), 1);
    assert!(errors[0].path.ends_with("torn.ron"));
    let _ = std::fs::remove_dir_all(&dir);
}
