//! Replays every persisted corpus case through the full oracle battery.
//!
//! `fuzz/corpus/*.ron` is the fuzzer's regression suite: any case a
//! campaign ever shrunk (plus hand-pinned benign cases) stays red until
//! its bug is fixed, and green forever after. The directory is resolved
//! relative to this crate so the test passes from any working directory;
//! `EMCC_CORPUS_DIR` points it elsewhere for sandboxed CI steps.

use std::path::PathBuf;

use emcc_fuzz::{check_case, corpus};

fn corpus_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("EMCC_CORPUS_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

#[test]
fn corpus_cases_replay_green() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {} unreadable: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ron"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "corpus dir {} holds no .ron cases — the regression suite vanished",
        dir.display()
    );
    let mut failures = Vec::new();
    for path in &entries {
        let case = corpus::load(path).unwrap_or_else(|e| panic!("{e}"));
        let report = check_case(&case);
        if !report.ok() {
            failures.push(format!("{}: {:?}", path.display(), report.failures));
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus case(s) replayed red:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn corpus_files_roundtrip_exactly() {
    // A corpus file must re-serialize to semantically identical text, or
    // shrunk reproducers would drift when re-persisted.
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "ron") {
            continue;
        }
        let case = corpus::load(&path).unwrap_or_else(|e| panic!("{e}"));
        let back = corpus::from_ron(&corpus::to_ron(&case)).expect("re-parse");
        assert_eq!(case, back, "roundtrip drift in {}", path.display());
    }
}
