//! Set-associative cache array with true-LRU replacement.

use emcc_sim::LineAddr;

/// Static shape of a cache: capacity and associativity over 64 B lines.
///
/// # Examples
///
/// ```
/// use emcc_cache::CacheConfig;
///
/// let l2 = CacheConfig::new(1024 * 1024, 8); // Table I: 1 MB, 8-way
/// assert_eq!(l2.num_sets(), 2048);
/// assert_eq!(l2.capacity_lines(), 16384);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    size_bytes: u64,
    ways: u32,
}

impl CacheConfig {
    /// Creates a config for a cache of `size_bytes` with `ways`
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics unless the implied number of sets is a positive power of two
    /// (index bits must be maskable).
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        assert!(ways > 0, "need at least one way");
        let lines = size_bytes / emcc_sim::mem::LINE_BYTES;
        assert!(
            lines > 0 && lines.is_multiple_of(u64::from(ways)),
            "size/ways mismatch"
        );
        let sets = lines / u64::from(ways);
        assert!(
            sets.is_power_of_two(),
            "sets must be a power of two, got {sets}"
        );
        CacheConfig { size_bytes, ways }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.capacity_lines() / u64::from(self.ways)
    }

    /// Total capacity in 64 B lines.
    pub fn capacity_lines(&self) -> u64 {
        self.size_bytes / emcc_sim::mem::LINE_BYTES
    }
}

/// One resident cache line plus caller-defined metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine<M> {
    /// The line's address.
    pub addr: LineAddr,
    /// Whether the line was dirty (needs write-back).
    pub dirty: bool,
    /// Caller-defined metadata carried by the line.
    pub meta: M,
}

#[derive(Debug, Clone)]
struct Way<M> {
    addr: LineAddr,
    dirty: bool,
    meta: M,
    last_use: u64,
}

/// A set-associative, true-LRU cache array.
///
/// The array tracks presence, dirtiness and per-line metadata `M`; it does
/// not know about latency (the timing model charges that) or data contents
/// (the functional model lives in `emcc-secmem`).
#[derive(Debug, Clone)]
pub struct SetAssocCache<M> {
    config: CacheConfig,
    sets: Vec<Vec<Way<M>>>,
    clock: u64,
    resident: u64,
}

impl<M> SetAssocCache<M> {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = (0..config.num_sets())
            .map(|_| Vec::with_capacity(config.ways() as usize))
            .collect();
        SetAssocCache {
            config,
            sets,
            clock: 0,
            resident: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of lines currently resident.
    pub fn len(&self) -> u64 {
        self.resident
    }

    /// True when no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.resident == 0
    }

    #[inline]
    fn set_index(&self, addr: LineAddr) -> usize {
        (addr.get() & (self.config.num_sets() - 1)) as usize
    }

    /// Looks up `addr`, updating LRU state. Returns hit/miss.
    pub fn touch(&mut self, addr: LineAddr) -> bool {
        self.get_mut(addr).is_some()
    }

    /// Looks up `addr` without perturbing LRU state.
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.peek(addr).is_some()
    }

    /// Reference to the line's metadata without touching LRU state.
    pub fn peek(&self, addr: LineAddr) -> Option<&M> {
        let set = &self.sets[self.set_index(addr)];
        set.iter().find(|w| w.addr == addr).map(|w| &w.meta)
    }

    /// Whether the line is present and dirty (no LRU update).
    pub fn is_dirty(&self, addr: LineAddr) -> Option<bool> {
        let set = &self.sets[self.set_index(addr)];
        set.iter().find(|w| w.addr == addr).map(|w| w.dirty)
    }

    /// Mutable access to the line's metadata, updating LRU state.
    pub fn get_mut(&mut self, addr: LineAddr) -> Option<&mut M> {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        set.iter_mut().find(|w| w.addr == addr).map(|w| {
            w.last_use = clock;
            &mut w.meta
        })
    }

    /// Marks a resident line dirty (e.g. a store hit), updating LRU state.
    ///
    /// Returns false if the line is not resident.
    pub fn mark_dirty(&mut self, addr: LineAddr) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(addr);
        match self.sets[idx].iter_mut().find(|w| w.addr == addr) {
            Some(w) => {
                w.dirty = true;
                w.last_use = clock;
                true
            }
            None => false,
        }
    }

    /// Inserts (or refreshes) a line, returning the LRU victim if the set
    /// was full.
    ///
    /// If `addr` is already resident its dirty bit is OR-ed and metadata
    /// replaced — the fill path and a racing store commute.
    pub fn insert(&mut self, addr: LineAddr, dirty: bool, meta: M) -> Option<EvictedLine<M>> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.config.ways() as usize;
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];

        if let Some(w) = set.iter_mut().find(|w| w.addr == addr) {
            w.dirty |= dirty;
            w.meta = meta;
            w.last_use = clock;
            return None;
        }

        let victim = if set.len() == ways {
            let (vi, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .expect("set is full, victim exists");
            let w = set.swap_remove(vi);
            self.resident -= 1;
            Some(EvictedLine {
                addr: w.addr,
                dirty: w.dirty,
                meta: w.meta,
            })
        } else {
            None
        };

        set.push(Way {
            addr,
            dirty,
            meta,
            last_use: clock,
        });
        self.resident += 1;
        victim
    }

    /// Removes a line, returning its state if it was resident.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<EvictedLine<M>> {
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|w| w.addr == addr)?;
        let w = set.swap_remove(pos);
        self.resident -= 1;
        Some(EvictedLine {
            addr: w.addr,
            dirty: w.dirty,
            meta: w.meta,
        })
    }

    /// Iterates over resident lines as `(addr, dirty, &meta)`.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, bool, &M)> + '_ {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|w| (w.addr, w.dirty, &w.meta)))
    }

    /// Address of the least-recently-used resident line satisfying `pred`,
    /// across all sets.
    ///
    /// Used by EMCC's L2 to enforce its global 32 KB counter-line budget:
    /// when the budget is exceeded, the globally coldest counter line is
    /// dropped.
    pub fn lru_matching<F: Fn(LineAddr, &M) -> bool>(&self, pred: F) -> Option<LineAddr> {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|w| pred(w.addr, &w.meta))
            .min_by_key(|w| w.last_use)
            .map(|w| w.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache<u32> {
        // 4 sets x 2 ways.
        SetAssocCache::new(CacheConfig::new(8 * 64, 2))
    }

    #[test]
    fn config_shapes() {
        let c = CacheConfig::new(128 * 1024, 32); // MC counter cache
        assert_eq!(c.capacity_lines(), 2048);
        assert_eq!(c.num_sets(), 64);
    }

    #[test]
    #[should_panic]
    fn config_rejects_non_pow2_sets() {
        let _ = CacheConfig::new(3 * 64, 1);
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert!(!c.touch(LineAddr::new(5)));
        assert!(c.insert(LineAddr::new(5), false, 1).is_none());
        assert!(c.touch(LineAddr::new(5)));
        assert_eq!(c.peek(LineAddr::new(5)), Some(&1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Addresses 0, 4, 8 map to set 0 (4 sets).
        c.insert(LineAddr::new(0), false, 0);
        c.insert(LineAddr::new(4), false, 0);
        c.touch(LineAddr::new(0)); // 4 becomes LRU
        let ev = c.insert(LineAddr::new(8), false, 0).expect("set full");
        assert_eq!(ev.addr, LineAddr::new(4));
        assert!(c.contains(LineAddr::new(0)));
        assert!(c.contains(LineAddr::new(8)));
    }

    #[test]
    fn dirty_propagates_through_eviction() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), false, 0);
        assert!(c.mark_dirty(LineAddr::new(0)));
        c.insert(LineAddr::new(4), false, 0);
        let ev = c.insert(LineAddr::new(8), false, 0).unwrap();
        assert_eq!(ev.addr, LineAddr::new(0));
        assert!(ev.dirty);
    }

    #[test]
    fn reinsert_merges_dirty_bit() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), true, 7);
        assert!(c.insert(LineAddr::new(0), false, 9).is_none());
        assert_eq!(c.is_dirty(LineAddr::new(0)), Some(true));
        assert_eq!(c.peek(LineAddr::new(0)), Some(&9));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.insert(LineAddr::new(3), true, 2);
        let ev = c.invalidate(LineAddr::new(3)).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.meta, 2);
        assert!(!c.contains(LineAddr::new(3)));
        assert!(c.invalidate(LineAddr::new(3)).is_none());
    }

    #[test]
    fn mark_dirty_on_absent_line_fails() {
        let mut c = tiny();
        assert!(!c.mark_dirty(LineAddr::new(1)));
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), false, 0);
        c.insert(LineAddr::new(4), false, 0);
        // peek(0) must NOT refresh it; 0 stays LRU and gets evicted.
        assert!(c.peek(LineAddr::new(0)).is_some());
        let ev = c.insert(LineAddr::new(8), false, 0).unwrap();
        assert_eq!(ev.addr, LineAddr::new(0));
    }

    #[test]
    fn lru_matching_finds_global_coldest() {
        let mut c = tiny();
        c.insert(LineAddr::new(1), false, 10); // set 1, oldest matching
        c.insert(LineAddr::new(2), false, 20); // set 2
        c.insert(LineAddr::new(6), false, 10); // set 2

        // Coldest line with meta == 10 is addr 1.
        assert_eq!(c.lru_matching(|_, &m| m == 10), Some(LineAddr::new(1)));
        c.touch(LineAddr::new(1));
        assert_eq!(c.lru_matching(|_, &m| m == 10), Some(LineAddr::new(6)));
        assert_eq!(c.lru_matching(|_, &m| m == 99), None);
    }

    #[test]
    fn iter_sees_all_lines() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), false, 0);
        c.insert(LineAddr::new(1), true, 1);
        let mut v: Vec<_> = c.iter().map(|(a, d, &m)| (a.get(), d, m)).collect();
        v.sort();
        assert_eq!(v, vec![(0, false, 0), (1, true, 1)]);
    }

    #[test]
    fn capacity_is_respected_under_stress() {
        let mut c = tiny();
        let mut rng = emcc_sim::Rng64::new(1);
        for _ in 0..10_000 {
            c.insert(LineAddr::new(rng.below(64)), rng.chance(0.5), 0);
        }
        assert!(c.len() <= c.config().capacity_lines());
        // Every set holds at most `ways` lines.
        for s in 0..c.config().num_sets() {
            let in_set = c
                .iter()
                .filter(|(a, _, _)| a.get() % c.config().num_sets() == s)
                .count();
            assert!(in_set <= c.config().ways() as usize);
        }
    }
}
