//! Miss-status holding registers (MSHRs) with request merging.
//!
//! When a request misses, the cache allocates an MSHR entry keyed by line
//! address; subsequent misses to the same line merge into the entry
//! (secondary misses) instead of issuing duplicate downstream requests.
//! When the fill returns, all merged waiters complete together.

use std::collections::HashMap;

use emcc_sim::LineAddr;

/// Result of presenting a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// New entry allocated; the caller must issue the downstream request.
    Allocated,
    /// Merged into an outstanding entry; no downstream request needed.
    Merged,
    /// The file is full; the request must stall/retry.
    Full,
}

/// An MSHR file tracking outstanding line fills, each with a list of
/// caller-defined waiter tokens `W`.
///
/// # Examples
///
/// ```
/// use emcc_cache::{MshrFile, MshrOutcome};
/// use emcc_sim::LineAddr;
///
/// let mut m: MshrFile<u32> = MshrFile::new(4);
/// assert_eq!(m.allocate(LineAddr::new(9), 100), MshrOutcome::Allocated);
/// assert_eq!(m.allocate(LineAddr::new(9), 101), MshrOutcome::Merged);
/// assert_eq!(m.complete(LineAddr::new(9)), vec![100, 101]);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile<W> {
    capacity: usize,
    entries: HashMap<LineAddr, Vec<W>>,
    merged_total: u64,
    allocated_total: u64,
}

impl<W> MshrFile<W> {
    /// Creates a file with room for `capacity` outstanding lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "need at least one MSHR");
        MshrFile {
            capacity,
            entries: HashMap::new(),
            merged_total: 0,
            allocated_total: 0,
        }
    }

    /// Presents a miss for `addr` on behalf of `waiter`.
    pub fn allocate(&mut self, addr: LineAddr, waiter: W) -> MshrOutcome {
        if let Some(ws) = self.entries.get_mut(&addr) {
            ws.push(waiter);
            self.merged_total += 1;
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(addr, vec![waiter]);
        self.allocated_total += 1;
        MshrOutcome::Allocated
    }

    /// Completes a fill, returning the waiters in arrival order. Returns
    /// an empty vector if no entry was outstanding.
    pub fn complete(&mut self, addr: LineAddr) -> Vec<W> {
        self.entries.remove(&addr).unwrap_or_default()
    }

    /// True if a fill for `addr` is outstanding.
    pub fn is_outstanding(&self, addr: LineAddr) -> bool {
        self.entries.contains_key(&addr)
    }

    /// Current number of outstanding lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no further allocations are possible.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Secondary misses merged so far.
    pub fn merged_total(&self) -> u64 {
        self.merged_total
    }

    /// Primary misses allocated so far.
    pub fn allocated_total(&self) -> u64 {
        self.allocated_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge() {
        let mut m: MshrFile<u8> = MshrFile::new(2);
        assert_eq!(m.allocate(LineAddr::new(1), 1), MshrOutcome::Allocated);
        assert_eq!(m.allocate(LineAddr::new(1), 2), MshrOutcome::Merged);
        assert!(m.is_outstanding(LineAddr::new(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.merged_total(), 1);
        assert_eq!(m.allocated_total(), 1);
    }

    #[test]
    fn full_file_rejects_new_lines_but_merges() {
        let mut m: MshrFile<u8> = MshrFile::new(1);
        assert_eq!(m.allocate(LineAddr::new(1), 1), MshrOutcome::Allocated);
        assert!(m.is_full());
        assert_eq!(m.allocate(LineAddr::new(2), 2), MshrOutcome::Full);
        // Merging into the existing line still works at capacity.
        assert_eq!(m.allocate(LineAddr::new(1), 3), MshrOutcome::Merged);
    }

    #[test]
    fn complete_returns_waiters_in_order() {
        let mut m: MshrFile<u8> = MshrFile::new(4);
        m.allocate(LineAddr::new(5), 10);
        m.allocate(LineAddr::new(5), 11);
        m.allocate(LineAddr::new(5), 12);
        assert_eq!(m.complete(LineAddr::new(5)), vec![10, 11, 12]);
        assert!(!m.is_outstanding(LineAddr::new(5)));
        assert!(m.is_empty());
    }

    #[test]
    fn complete_without_entry_is_empty() {
        let mut m: MshrFile<u8> = MshrFile::new(4);
        assert_eq!(m.complete(LineAddr::new(9)), Vec::<u8>::new());
    }

    #[test]
    fn capacity_frees_after_complete() {
        let mut m: MshrFile<u8> = MshrFile::new(1);
        m.allocate(LineAddr::new(1), 1);
        m.complete(LineAddr::new(1));
        assert_eq!(m.allocate(LineAddr::new(2), 2), MshrOutcome::Allocated);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _: MshrFile<u8> = MshrFile::new(0);
    }
}
