//! Classification of cached blocks.

use std::fmt;

/// What a cached 64 B line holds.
///
/// Caches that hold metadata alongside data (the LLC in the baseline, the
/// L2 under EMCC, the MC's private metadata cache) tag lines with their
/// kind so occupancy budgets (EMCC's 32 KB L2 counter cap) and statistics
/// (counter hit rates, useless-access tracking) can be maintained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockKind {
    /// Ordinary program data.
    Data,
    /// A level-0 counter block (data counters).
    Counter,
    /// An integrity-tree node above level 0.
    TreeNode,
}

impl BlockKind {
    /// True for any secure-memory metadata (counters or tree nodes).
    pub const fn is_metadata(self) -> bool {
        !matches!(self, BlockKind::Data)
    }
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BlockKind::Data => "data",
            BlockKind::Counter => "counter",
            BlockKind::TreeNode => "tree-node",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_flag() {
        assert!(!BlockKind::Data.is_metadata());
        assert!(BlockKind::Counter.is_metadata());
        assert!(BlockKind::TreeNode.is_metadata());
    }

    #[test]
    fn display() {
        assert_eq!(BlockKind::Counter.to_string(), "counter");
    }
}
