//! Cache building blocks: set-associative arrays, MSHRs, block kinds.
//!
//! Every cache in the simulated hierarchy — L1D, L2, LLC slices, and the
//! memory controller's counter cache — is a [`SetAssocCache`] with true-LRU
//! replacement, parameterized over per-line metadata. Outstanding misses
//! are tracked by an [`MshrFile`] with request merging, which is what lets
//! the timing model capture secondary misses correctly.
//!
//! # Examples
//!
//! ```
//! use emcc_cache::{CacheConfig, SetAssocCache};
//! use emcc_sim::LineAddr;
//!
//! let mut l1: SetAssocCache<()> = SetAssocCache::new(CacheConfig::new(64 * 1024, 8));
//! assert!(!l1.touch(LineAddr::new(7)));
//! l1.insert(LineAddr::new(7), false, ());
//! assert!(l1.touch(LineAddr::new(7)));
//! ```

pub mod array;
pub mod kinds;
pub mod mshr;

pub use array::{CacheConfig, EvictedLine, SetAssocCache};
pub use kinds::BlockKind;
pub use mshr::{MshrFile, MshrOutcome};
