//! Property tests for the MSHR file: merge/full/retire edge cases.
//!
//! Random allocate/complete sequences are replayed against a naive
//! reference model (a map of line → waiter list); the MSHR file must
//! agree with the model on every observable — outcomes, waiter order,
//! occupancy, and the lifetime allocate/merge counters.

use std::collections::HashMap;

use emcc_cache::{MshrFile, MshrOutcome};
use emcc_sim::LineAddr;
use proptest::prelude::*;

proptest! {
    /// The file tracks a naive reference model exactly under arbitrary
    /// interleavings of allocates and completes over a small line pool.
    #[test]
    fn matches_reference_model(
        capacity in 1usize..=6,
        ops in prop::collection::vec((0u64..10, 0u8..4), 1..=80),
    ) {
        let mut file: MshrFile<u32> = MshrFile::new(capacity);
        let mut model: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut next_waiter = 0u32;
        let mut allocated = 0u64;
        let mut merged = 0u64;

        for (line, kind) in ops {
            let addr = LineAddr::new(line);
            if kind == 0 {
                // Retire: both sides must agree on the waiters and order.
                let got = file.complete(addr);
                let want = model.remove(&line).unwrap_or_default();
                prop_assert_eq!(got, want);
                prop_assert!(!file.is_outstanding(addr));
            } else {
                let waiter = next_waiter;
                next_waiter += 1;
                let outcome = file.allocate(addr, waiter);
                match outcome {
                    MshrOutcome::Allocated => {
                        prop_assert!(!model.contains_key(&line),
                            "allocated a line the model had outstanding");
                        allocated += 1;
                        model.insert(line, vec![waiter]);
                    }
                    MshrOutcome::Merged => {
                        let ws = model.get_mut(&line);
                        prop_assert!(ws.is_some(), "merged into an absent line");
                        merged += 1;
                        ws.unwrap().push(waiter);
                    }
                    MshrOutcome::Full => {
                        // Full is only legal when the line is new and the
                        // file is at capacity; merges never see Full.
                        prop_assert!(!model.contains_key(&line));
                        prop_assert_eq!(model.len(), capacity);
                    }
                }
            }
            // Occupancy invariants hold after every step.
            prop_assert_eq!(file.len(), model.len());
            prop_assert!(file.len() <= capacity);
            prop_assert_eq!(file.is_full(), model.len() >= capacity);
            prop_assert_eq!(file.is_empty(), model.is_empty());
            prop_assert_eq!(file.allocated_total(), allocated);
            prop_assert_eq!(file.merged_total(), merged);
        }

        // Conservation: every accepted waiter is either already retired or
        // still parked in the model.
        let outstanding: u64 = model.values().map(|ws| ws.len() as u64).sum();
        prop_assert!(allocated + merged >= outstanding);
    }

    /// At capacity the file keeps merging into existing entries while
    /// rejecting every new line, and a single retire reopens exactly one
    /// allocation slot.
    #[test]
    fn full_file_merges_but_rejects_new_lines(
        capacity in 1usize..=5,
        extra in 0u64..8,
    ) {
        let mut file: MshrFile<u32> = MshrFile::new(capacity);
        for i in 0..capacity as u64 {
            prop_assert_eq!(file.allocate(LineAddr::new(i), i as u32),
                MshrOutcome::Allocated);
        }
        prop_assert!(file.is_full());
        // New lines bounce...
        let fresh = LineAddr::new(capacity as u64 + extra);
        prop_assert_eq!(file.allocate(fresh, 99), MshrOutcome::Full);
        // ...but secondary misses to resident lines still merge.
        for i in 0..capacity as u64 {
            prop_assert_eq!(file.allocate(LineAddr::new(i), 100 + i as u32),
                MshrOutcome::Merged);
        }
        prop_assert_eq!(file.merged_total(), capacity as u64);
        // Retiring one line frees exactly one slot.
        let got = file.complete(LineAddr::new(0));
        prop_assert_eq!(got, vec![0u32, 100]);
        prop_assert!(!file.is_full());
        prop_assert_eq!(file.allocate(fresh, 99), MshrOutcome::Allocated);
        prop_assert!(file.is_full());
    }

    /// Waiters always come back in arrival order, regardless of how many
    /// merge before the fill returns.
    #[test]
    fn waiters_retire_in_arrival_order(
        line in 0u64..1000,
        n in 1usize..=20,
    ) {
        let mut file: MshrFile<usize> = MshrFile::new(4);
        let addr = LineAddr::new(line);
        for w in 0..n {
            file.allocate(addr, w);
        }
        let got = file.complete(addr);
        prop_assert_eq!(got, (0..n).collect::<Vec<_>>());
        // A second complete for the same line finds nothing.
        prop_assert_eq!(file.complete(addr), Vec::<usize>::new());
    }
}
