//! Analytic secure-memory-access timelines (Figures 5, 8, 10, 13, 14).
//!
//! The paper explains EMCC's benefit with latency-composition timelines.
//! This module reconstructs them from the same constants the simulator
//! uses, so the claimed savings (e.g. "EMCC responds 16 ns earlier under
//! counter miss in LLC", "22 ns earlier with XPT under row-buffer miss")
//! can be regenerated and checked as numbers.

use emcc_crypto::CryptoLatencies;
use emcc_sim::trace::{Component, Span};
use emcc_sim::Time;

/// Latency constants of the timeline model (paper §III values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineParams {
    /// Direct LLC latency: MC or L2 fetching from an LLC slice (19 ns).
    pub direct_llc: Time,
    /// LLC hit latency as seen by L2 (23 ns).
    pub llc_hit: Time,
    /// DRAM access under row-buffer hit (16 ns).
    pub dram_row_hit: Time,
    /// DRAM access under row-buffer miss (30 ns).
    pub dram_row_miss: Time,
    /// MC's private counter-cache lookup (3 ns).
    pub mc_ctr_cache: Time,
    /// One-way NoC latency between two nodes (7.5 ns average).
    pub noc_one_way: Time,
    /// L2 lookup before the miss reaches the NoC (4 ns).
    pub l2_lookup: Time,
    /// Crypto latencies (AES 14 ns, decode 3 ns).
    pub crypto: CryptoLatencies,
    /// The serial counter-lookup delay in L2 ('J' in Fig 10a).
    pub l2_ctr_lookup: Time,
}

impl Default for TimelineParams {
    fn default() -> Self {
        TimelineParams {
            direct_llc: Time::from_ns(19),
            llc_hit: Time::from_ns(23),
            dram_row_hit: Time::from_ns(16),
            dram_row_miss: Time::from_ns(30),
            mc_ctr_cache: Time::from_ns(3),
            noc_one_way: Time::from_ps(7_500),
            l2_lookup: Time::from_ns(4),
            crypto: CryptoLatencies::paper_default(),
            l2_ctr_lookup: Time::from_ns(2),
        }
    }
}

/// Which of the paper's timeline scenarios to compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineScenario {
    /// Fig 5: counter misses on-chip; baseline = no counters in LLC.
    CtrMissNoLlcCaching,
    /// Fig 5 (lower): counter misses on-chip; counters cached in LLC.
    CtrMissLlcCaching,
    /// Fig 8 (upper): counter hits in the MC's private cache.
    CtrHitInMc,
    /// Fig 8 (lower): counter hits in LLC (serial MC access).
    CtrHitInLlcBaseline,
    /// Fig 10a: EMCC, counter miss in LLC, row-buffer miss.
    EmccCtrMissLlc,
    /// Fig 13a: EMCC, counter hit in LLC.
    EmccCtrHitLlc,
    /// Fig 13b: baseline, counter hit in LLC.
    BaselineCtrHitLlc,
    /// Fig 14a: EMCC with XPT, row-buffer miss, counter hit in LLC.
    EmccXptRowMiss,
    /// Fig 14b: baseline with XPT, row-buffer miss, counter hit in LLC.
    BaselineXptRowMiss,
}

/// A composed timeline: named segments and the total secure-memory access
/// latency (request at MC → decrypted data back, per the paper's
/// definition — or data at L1 for the L2-relative figures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// `(label, start, end)` segments for display.
    pub segments: Vec<(&'static str, Time, Time)>,
    /// Completion time of the access.
    pub total: Time,
}

impl Timeline {
    /// Composes a scenario's timeline from parameters.
    pub fn compose(scenario: TimelineScenario, p: &TimelineParams) -> Timeline {
        let mut segments = Vec::new();
        let crypt = p.crypto.aes; // counter-dependent computation
        let total = match scenario {
            TimelineScenario::CtrMissNoLlcCaching => {
                // MC: data DRAM read || counter DRAM read, then crypt.
                segments.push(("data: DRAM (row miss)", Time::ZERO, p.dram_row_miss));
                let ctr_done = p.mc_ctr_cache + p.dram_row_miss;
                segments.push(("ctr: MC$ lookup + DRAM", Time::ZERO, ctr_done));
                let crypt_end = ctr_done + crypt;
                segments.push(("crypt", ctr_done, crypt_end));
                crypt_end.max(p.dram_row_miss) + p.crypto.xor_and_compare
            }
            TimelineScenario::CtrMissLlcCaching => {
                segments.push(("data: DRAM (row miss)", Time::ZERO, p.dram_row_miss));
                // Counter: MC$ lookup → LLC (miss) → DRAM → crypt, serial.
                let llc_done = p.mc_ctr_cache + p.direct_llc;
                segments.push(("ctr: MC$ + LLC (miss)", Time::ZERO, llc_done));
                let dram_done = llc_done + p.dram_row_miss;
                segments.push(("ctr: DRAM", llc_done, dram_done));
                let crypt_end = dram_done + crypt;
                segments.push(("crypt", dram_done, crypt_end));
                crypt_end.max(p.dram_row_miss) + p.crypto.xor_and_compare
            }
            TimelineScenario::CtrHitInMc => {
                segments.push(("data: DRAM (row miss)", Time::ZERO, p.dram_row_miss));
                let crypt_end = p.mc_ctr_cache + crypt;
                segments.push(("ctr: MC$ hit + crypt", Time::ZERO, crypt_end));
                crypt_end.max(p.dram_row_miss) + p.crypto.xor_and_compare
            }
            TimelineScenario::CtrHitInLlcBaseline => {
                segments.push(("data: DRAM (row miss)", Time::ZERO, p.dram_row_miss));
                let ctr_done = p.mc_ctr_cache + p.direct_llc;
                segments.push(("ctr: MC$ + LLC hit", Time::ZERO, ctr_done));
                let crypt_end = ctr_done + crypt;
                segments.push(("crypt", ctr_done, crypt_end));
                crypt_end.max(p.dram_row_miss) + p.crypto.xor_and_compare
            }
            TimelineScenario::EmccCtrMissLlc => {
                // L2-relative: data req → LLC miss → MC → DRAM → back to L2.
                let data_at_mc = p.l2_lookup + p.noc_one_way + p.llc_lookup() + p.noc_one_way;
                let data_done = data_at_mc + p.dram_row_miss + p.noc_one_way + p.noc_one_way;
                segments.push(("data: L2→LLC→MC→DRAM→L2", Time::ZERO, data_done));
                // Counter, parallel (delayed by J): L2→LLC miss →MC→DRAM,
                // verified at MC, used at MC for this access.
                let ctr_at_mc = p.l2_ctr_lookup + p.noc_one_way + p.llc_lookup() + p.noc_one_way;
                let ctr_done = ctr_at_mc + p.dram_row_miss + crypt;
                segments.push((
                    "ctr: L2→LLC(miss)→MC→DRAM + crypt",
                    p.l2_ctr_lookup,
                    ctr_done,
                ));
                data_done.max(ctr_done) + p.crypto.xor_and_compare
            }
            TimelineScenario::EmccCtrHitLlc => {
                let data_at_mc = p.l2_lookup + p.noc_one_way + p.llc_lookup() + p.noc_one_way;
                let data_done = data_at_mc + p.dram_row_hit + p.noc_one_way + p.noc_one_way;
                segments.push(("data: L2→LLC→MC→DRAM→L2", Time::ZERO, data_done));
                let ctr_at_l2 = p.l2_ctr_lookup + p.noc_one_way + p.llc_lookup() + p.noc_one_way;
                let aes_done = ctr_at_l2 + p.crypto.counter_decode + crypt;
                segments.push(("ctr: L2→LLC(hit)→L2 + AES@L2", p.l2_ctr_lookup, aes_done));
                data_done.max(aes_done) + p.crypto.xor_and_compare
            }
            TimelineScenario::BaselineCtrHitLlc => {
                let data_at_mc = p.l2_lookup + p.noc_one_way + p.llc_lookup() + p.noc_one_way;
                let data_done = data_at_mc + p.dram_row_hit + p.noc_one_way + p.noc_one_way;
                segments.push(("data: L2→LLC→MC→DRAM→L2", Time::ZERO, data_done));
                // MC fetches the counter only after the data LLC miss.
                let ctr_start = data_at_mc + p.mc_ctr_cache;
                let ctr_done = ctr_start + p.direct_llc + p.crypto.counter_decode + crypt;
                segments.push(("ctr: MC→LLC(hit)→MC + AES@MC", data_at_mc, ctr_done));
                // Data must still travel MC→L2 after crypt completes.
                let ship = ctr_done.max(data_at_mc + p.dram_row_hit);
                ship + p.noc_one_way + p.noc_one_way + p.crypto.xor_and_compare
            }
            TimelineScenario::EmccXptRowMiss => {
                // XPT starts the DRAM read after one direct L2→MC hop; the
                // L2's counter request proceeds in parallel and AES runs
                // at the L2, overlapped with the whole data return path.
                let data_at_mc = p.l2_lookup + p.noc_one_way;
                let data_done = data_at_mc + p.dram_row_miss + p.noc_one_way + p.noc_one_way;
                segments.push(("data: L2→MC(XPT)→DRAM→L2", Time::ZERO, data_done));
                let ctr_at_l2 = p.l2_ctr_lookup + p.noc_one_way + p.llc_lookup() + p.noc_one_way;
                let aes_done = ctr_at_l2 + p.crypto.counter_decode + crypt;
                segments.push(("ctr: L2→LLC(hit)→L2 + AES@L2", p.l2_ctr_lookup, aes_done));
                data_done.max(aes_done) + p.crypto.xor_and_compare
            }
            TimelineScenario::BaselineXptRowMiss => {
                // XPT accelerates only the DRAM read; the MC's secure
                // pipeline (counter fetch from LLC + AES) starts when the
                // *confirmed* miss arrives through L2→LLC→MC.
                let data_at_mc = p.l2_lookup + p.noc_one_way;
                let data_done_at_mc = data_at_mc + p.dram_row_miss;
                segments.push(("data: L2→MC(XPT)→DRAM", Time::ZERO, data_done_at_mc));
                let confirm_at_mc = p.l2_lookup + p.noc_one_way + p.llc_lookup() + p.noc_one_way;
                let ctr_start = confirm_at_mc + p.mc_ctr_cache;
                let ctr_done = ctr_start + p.direct_llc + p.crypto.counter_decode + crypt;
                segments.push(("ctr: MC→LLC(hit)→MC + AES@MC", confirm_at_mc, ctr_done));
                let ship = ctr_done.max(data_done_at_mc);
                ship + p.noc_one_way + p.noc_one_way + p.crypto.xor_and_compare
            }
        };
        Timeline { segments, total }
    }

    /// Expresses a scenario as the component work spans the simulator's
    /// critical-path recorder would see, using the same arithmetic as
    /// [`Timeline::compose`].
    ///
    /// Feeding these spans through [`emcc_sim::trace::attribute`] over
    /// `[0, total)` must tile the composed total exactly: the analytic
    /// timelines and the simulator's attribution sweep share one span
    /// algebra, so each figure's breakdown doubles as an oracle for the
    /// recorder (and vice versa).
    pub fn spans(scenario: TimelineScenario, p: &TimelineParams) -> Vec<Span> {
        let crypt = p.crypto.aes;
        let xor = p.crypto.xor_and_compare;
        let mut spans = Vec::new();
        match scenario {
            TimelineScenario::CtrMissNoLlcCaching => {
                spans.push(Span::new(
                    Component::DramRowMiss,
                    Time::ZERO,
                    p.dram_row_miss,
                ));
                let ctr_done = p.mc_ctr_cache + p.dram_row_miss;
                spans.push(Span::new(Component::CtrFetch, Time::ZERO, ctr_done));
                spans.push(Span::new(Component::Aes, ctr_done, ctr_done + crypt));
                let ship = (ctr_done + crypt).max(p.dram_row_miss);
                spans.push(Span::new(Component::Verify, ship, ship + xor));
            }
            TimelineScenario::CtrMissLlcCaching => {
                spans.push(Span::new(
                    Component::DramRowMiss,
                    Time::ZERO,
                    p.dram_row_miss,
                ));
                let ctr_done = p.mc_ctr_cache + p.direct_llc + p.dram_row_miss;
                spans.push(Span::new(Component::CtrFetch, Time::ZERO, ctr_done));
                spans.push(Span::new(Component::Aes, ctr_done, ctr_done + crypt));
                let ship = (ctr_done + crypt).max(p.dram_row_miss);
                spans.push(Span::new(Component::Verify, ship, ship + xor));
            }
            TimelineScenario::CtrHitInMc => {
                spans.push(Span::new(
                    Component::DramRowMiss,
                    Time::ZERO,
                    p.dram_row_miss,
                ));
                spans.push(Span::new(Component::CtrFetch, Time::ZERO, p.mc_ctr_cache));
                spans.push(Span::new(
                    Component::Aes,
                    p.mc_ctr_cache,
                    p.mc_ctr_cache + crypt,
                ));
                let ship = (p.mc_ctr_cache + crypt).max(p.dram_row_miss);
                spans.push(Span::new(Component::Verify, ship, ship + xor));
            }
            TimelineScenario::CtrHitInLlcBaseline => {
                spans.push(Span::new(
                    Component::DramRowMiss,
                    Time::ZERO,
                    p.dram_row_miss,
                ));
                let ctr_done = p.mc_ctr_cache + p.direct_llc;
                spans.push(Span::new(Component::CtrFetch, Time::ZERO, ctr_done));
                spans.push(Span::new(Component::Aes, ctr_done, ctr_done + crypt));
                let ship = (ctr_done + crypt).max(p.dram_row_miss);
                spans.push(Span::new(Component::Verify, ship, ship + xor));
            }
            TimelineScenario::EmccCtrMissLlc => {
                // Data: L2 → LLC (miss) → MC → DRAM → L2.
                let noc = p.noc_one_way;
                spans.push(Span::new(Component::L2Lookup, Time::ZERO, p.l2_lookup));
                spans.push(Span::new(Component::Noc, p.l2_lookup, p.l2_lookup + noc));
                let at_slice = p.l2_lookup + noc;
                let slice_done = at_slice + p.llc_lookup();
                spans.push(Span::new(Component::LlcLookup, at_slice, slice_done));
                let data_at_mc = slice_done + noc;
                spans.push(Span::new(Component::Noc, slice_done, data_at_mc));
                let dram_done = data_at_mc + p.dram_row_miss;
                spans.push(Span::new(Component::DramRowMiss, data_at_mc, dram_done));
                let data_done = dram_done + noc + noc;
                spans.push(Span::new(Component::Noc, dram_done, data_done));
                // Counter: parallel fetch (delayed by J) ending in AES at
                // the MC, where the counter is verified and used.
                let ctr_fetched = p.l2_ctr_lookup + noc + p.llc_lookup() + noc + p.dram_row_miss;
                spans.push(Span::new(Component::CtrFetch, p.l2_ctr_lookup, ctr_fetched));
                let ctr_done = ctr_fetched + crypt;
                spans.push(Span::new(Component::Aes, ctr_fetched, ctr_done));
                let ship = data_done.max(ctr_done);
                spans.push(Span::new(Component::Verify, ship, ship + xor));
            }
            TimelineScenario::EmccCtrHitLlc => {
                let noc = p.noc_one_way;
                spans.push(Span::new(Component::L2Lookup, Time::ZERO, p.l2_lookup));
                spans.push(Span::new(Component::Noc, p.l2_lookup, p.l2_lookup + noc));
                let at_slice = p.l2_lookup + noc;
                let slice_done = at_slice + p.llc_lookup();
                spans.push(Span::new(Component::LlcLookup, at_slice, slice_done));
                let data_at_mc = slice_done + noc;
                spans.push(Span::new(Component::Noc, slice_done, data_at_mc));
                let dram_done = data_at_mc + p.dram_row_hit;
                spans.push(Span::new(Component::DramRowHit, data_at_mc, dram_done));
                let data_done = dram_done + noc + noc;
                spans.push(Span::new(Component::Noc, dram_done, data_done));
                // Counter returns to the L2 (LLC hit), AES runs at the L2.
                let ctr_at_l2 = p.l2_ctr_lookup + noc + p.llc_lookup() + noc;
                let decoded = ctr_at_l2 + p.crypto.counter_decode;
                spans.push(Span::new(Component::CtrFetch, p.l2_ctr_lookup, decoded));
                let aes_done = decoded + crypt;
                spans.push(Span::new(Component::Aes, decoded, aes_done));
                let ship = data_done.max(aes_done);
                spans.push(Span::new(Component::Verify, ship, ship + xor));
            }
            TimelineScenario::BaselineCtrHitLlc => {
                let noc = p.noc_one_way;
                spans.push(Span::new(Component::L2Lookup, Time::ZERO, p.l2_lookup));
                spans.push(Span::new(Component::Noc, p.l2_lookup, p.l2_lookup + noc));
                let at_slice = p.l2_lookup + noc;
                let slice_done = at_slice + p.llc_lookup();
                spans.push(Span::new(Component::LlcLookup, at_slice, slice_done));
                let data_at_mc = slice_done + noc;
                spans.push(Span::new(Component::Noc, slice_done, data_at_mc));
                let dram_done = data_at_mc + p.dram_row_hit;
                spans.push(Span::new(Component::DramRowHit, data_at_mc, dram_done));
                // MC starts its counter pipeline only after the confirmed
                // miss arrives; the data cannot ship to L2 before crypt.
                let ctr_fetched =
                    data_at_mc + p.mc_ctr_cache + p.direct_llc + p.crypto.counter_decode;
                spans.push(Span::new(Component::CtrFetch, data_at_mc, ctr_fetched));
                let ctr_done = ctr_fetched + crypt;
                spans.push(Span::new(Component::Aes, ctr_fetched, ctr_done));
                let ship = ctr_done.max(dram_done);
                spans.push(Span::new(Component::Noc, ship, ship + noc + noc));
                spans.push(Span::new(
                    Component::Verify,
                    ship + noc + noc,
                    ship + noc + noc + xor,
                ));
            }
            TimelineScenario::EmccXptRowMiss => {
                let noc = p.noc_one_way;
                spans.push(Span::new(Component::L2Lookup, Time::ZERO, p.l2_lookup));
                let data_at_mc = p.l2_lookup + noc;
                spans.push(Span::new(Component::Noc, p.l2_lookup, data_at_mc));
                let dram_done = data_at_mc + p.dram_row_miss;
                spans.push(Span::new(Component::DramRowMiss, data_at_mc, dram_done));
                let data_done = dram_done + noc + noc;
                spans.push(Span::new(Component::Noc, dram_done, data_done));
                let ctr_at_l2 = p.l2_ctr_lookup + noc + p.llc_lookup() + noc;
                let decoded = ctr_at_l2 + p.crypto.counter_decode;
                spans.push(Span::new(Component::CtrFetch, p.l2_ctr_lookup, decoded));
                let aes_done = decoded + crypt;
                spans.push(Span::new(Component::Aes, decoded, aes_done));
                let ship = data_done.max(aes_done);
                spans.push(Span::new(Component::Verify, ship, ship + xor));
            }
            TimelineScenario::BaselineXptRowMiss => {
                let noc = p.noc_one_way;
                spans.push(Span::new(Component::L2Lookup, Time::ZERO, p.l2_lookup));
                let data_at_mc = p.l2_lookup + noc;
                spans.push(Span::new(Component::Noc, p.l2_lookup, data_at_mc));
                let dram_done = data_at_mc + p.dram_row_miss;
                spans.push(Span::new(Component::DramRowMiss, data_at_mc, dram_done));
                // The confirmed miss travels L2 → LLC → MC in parallel with
                // the XPT-triggered DRAM read; the MC's serial counter
                // pipeline starts only when it arrives.
                let at_slice = p.l2_lookup + noc;
                let slice_done = at_slice + p.llc_lookup();
                spans.push(Span::new(Component::LlcLookup, at_slice, slice_done));
                let confirm_at_mc = slice_done + noc;
                spans.push(Span::new(Component::Noc, slice_done, confirm_at_mc));
                let ctr_fetched =
                    confirm_at_mc + p.mc_ctr_cache + p.direct_llc + p.crypto.counter_decode;
                spans.push(Span::new(Component::CtrFetch, confirm_at_mc, ctr_fetched));
                let ctr_done = ctr_fetched + crypt;
                spans.push(Span::new(Component::Aes, ctr_fetched, ctr_done));
                let ship = ctr_done.max(dram_done);
                spans.push(Span::new(Component::Noc, ship, ship + noc + noc));
                spans.push(Span::new(
                    Component::Verify,
                    ship + noc + noc,
                    ship + noc + noc + xor,
                ));
            }
        }
        spans
    }

    /// Renders the timeline as indented text rows.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (label, start, end) in &self.segments {
            out.push_str(&format!(
                "  [{:>6.1} → {:>6.1} ns] {label}\n",
                start.as_ns_f64(),
                end.as_ns_f64()
            ));
        }
        out.push_str(&format!("  total: {:.1} ns\n", self.total.as_ns_f64()));
        out
    }
}

impl TimelineParams {
    /// LLC slice lookup time (tag + data SRAM).
    fn llc_lookup(&self) -> Time {
        Time::from_ns(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcc_sim::trace::attribute;

    fn p() -> TimelineParams {
        TimelineParams::default()
    }

    const ALL_SCENARIOS: [TimelineScenario; 9] = [
        TimelineScenario::CtrMissNoLlcCaching,
        TimelineScenario::CtrMissLlcCaching,
        TimelineScenario::CtrHitInMc,
        TimelineScenario::CtrHitInLlcBaseline,
        TimelineScenario::EmccCtrMissLlc,
        TimelineScenario::EmccCtrHitLlc,
        TimelineScenario::BaselineCtrHitLlc,
        TimelineScenario::EmccXptRowMiss,
        TimelineScenario::BaselineXptRowMiss,
    ];

    #[test]
    fn span_algebra_closes_every_scenario() {
        // The closure: for every figure, the span set fed through the
        // simulator's attribution sweep explains the composed total with
        // no gaps (zero `Other` time) and no clamped spans.
        for sc in ALL_SCENARIOS {
            let t = Timeline::compose(sc, &p());
            let att = attribute(Time::ZERO, t.total, &Timeline::spans(sc, &p()));
            assert_eq!(att.violations, 0, "{sc:?}: span outside [0, total)");
            assert_eq!(att.total(), t.total, "{sc:?}: segments must tile the total");
            let per = att.per_component();
            assert_eq!(
                per[Component::Other.index()],
                Time::ZERO,
                "{sc:?}: unexplained gap in the critical path"
            );
            assert_eq!(att.end(), Some(t.total), "{sc:?}");
        }
    }

    #[test]
    fn fig5_serial_breakdown_pins_counter_fetch_critical() {
        // Fig 5 (upper, no LLC caching) at default params: the serial
        // counter fetch (3 ns MC$ + 30 ns DRAM) is critical for 33 ns and
        // fully hides the data's row miss; AES adds 14 ns, verify 1 ns.
        let t = Timeline::compose(TimelineScenario::CtrMissNoLlcCaching, &p());
        assert_eq!(t.total, Time::from_ns(48));
        let att = attribute(
            Time::ZERO,
            t.total,
            &Timeline::spans(TimelineScenario::CtrMissNoLlcCaching, &p()),
        );
        let per = att.per_component();
        assert_eq!(per[Component::CtrFetch.index()], Time::from_ns(33));
        assert_eq!(per[Component::DramRowMiss.index()], Time::ZERO);
        assert_eq!(per[Component::Aes.index()], Time::from_ns(14));
        assert_eq!(per[Component::Verify.index()], Time::from_ns(1));
        // The hidden data read is exactly the overlap credit.
        assert_eq!(att.overlap, Time::from_ns(30));
    }

    #[test]
    fn fig10_emcc_breakdown_overlaps_counter_miss() {
        // Fig 10a at default params (total 69 ns): the parallel counter
        // fetch is critical only until the data's DRAM read overtakes it,
        // and AES pokes out a mere 2 ns before the return NoC leg covers
        // the rest — the attribution sweep reproduces that story exactly.
        let t = Timeline::compose(TimelineScenario::EmccCtrMissLlc, &p());
        assert_eq!(t.total, Time::from_ns(69));
        let att = attribute(
            Time::ZERO,
            t.total,
            &Timeline::spans(TimelineScenario::EmccCtrMissLlc, &p()),
        );
        let per = att.per_component();
        assert_eq!(per[Component::L2Lookup.index()], Time::from_ns(2));
        assert_eq!(per[Component::CtrFetch.index()], Time::from_ns(21));
        assert_eq!(per[Component::DramRowMiss.index()], Time::from_ns(28));
        assert_eq!(per[Component::Aes.index()], Time::from_ns(2));
        assert_eq!(per[Component::Noc.index()], Time::from_ns(15));
        assert_eq!(per[Component::Verify.index()], Time::from_ns(1));
    }

    #[test]
    fn fig13_attribution_shows_aes_hidden_only_under_emcc() {
        // Fig 13: with an LLC counter hit, EMCC's eager AES at the L2 is
        // fully buried under the data return (zero critical AES time);
        // the baseline pays all 14 ns of AES after the serial fetch.
        let emcc = attribute(
            Time::ZERO,
            Timeline::compose(TimelineScenario::EmccCtrHitLlc, &p()).total,
            &Timeline::spans(TimelineScenario::EmccCtrHitLlc, &p()),
        );
        assert_eq!(emcc.per_component()[Component::Aes.index()], Time::ZERO);
        let base = attribute(
            Time::ZERO,
            Timeline::compose(TimelineScenario::BaselineCtrHitLlc, &p()).total,
            &Timeline::spans(TimelineScenario::BaselineCtrHitLlc, &p()),
        );
        assert_eq!(
            base.per_component()[Component::Aes.index()],
            Time::from_ns(14)
        );
    }

    #[test]
    fn fig5_llc_caching_adds_direct_llc_latency() {
        // §III-B: "caching counters in LLC increases Secure Memory Access
        // Latency by 19ns Direct LLC Latency" under counter miss.
        let without = Timeline::compose(TimelineScenario::CtrMissNoLlcCaching, &p()).total;
        let with = Timeline::compose(TimelineScenario::CtrMissLlcCaching, &p()).total;
        assert_eq!(with - without, Time::from_ns(19));
    }

    #[test]
    fn fig8_llc_hit_still_slower_than_mc_hit() {
        // Fig 8: even an LLC counter *hit* lengthens the access relative
        // to an MC counter-cache hit (the "Overhead (8ns)" arrow).
        let mc_hit = Timeline::compose(TimelineScenario::CtrHitInMc, &p()).total;
        let llc_hit = Timeline::compose(TimelineScenario::CtrHitInLlcBaseline, &p()).total;
        let overhead = llc_hit - mc_hit;
        assert!(
            overhead >= Time::from_ns(5) && overhead <= Time::from_ns(10),
            "overhead {overhead} out of Fig 8's ~8 ns ballpark"
        );
    }

    #[test]
    fn fig8_mc_hit_hides_crypt_entirely() {
        // With a counter hit in MC, AES (3+14 = 17ns) < DRAM row miss
        // (30ns): counter work is off the critical path.
        let t = Timeline::compose(TimelineScenario::CtrHitInMc, &p());
        assert_eq!(
            t.total,
            Time::from_ns(30) + Time::from_ns(1),
            "crypt must hide behind DRAM"
        );
    }

    #[test]
    fn fig13_emcc_beats_baseline_on_llc_ctr_hit() {
        let emcc = Timeline::compose(TimelineScenario::EmccCtrHitLlc, &p()).total;
        let base = Timeline::compose(TimelineScenario::BaselineCtrHitLlc, &p()).total;
        assert!(emcc < base, "EMCC {emcc} must beat baseline {base}");
    }

    #[test]
    fn fig14_xpt_row_miss_saving_near_22ns() {
        // Fig 14: "EMCC can respond decrypted and verified data back to L1
        // 22ns earlier than the baseline" under XPT + row miss.
        let emcc = Timeline::compose(TimelineScenario::EmccXptRowMiss, &p()).total;
        let base = Timeline::compose(TimelineScenario::BaselineXptRowMiss, &p()).total;
        let saving = base - emcc;
        assert!(
            saving >= Time::from_ns(15) && saving <= Time::from_ns(28),
            "saving {saving} not in Fig 14's ~22 ns ballpark"
        );
    }

    #[test]
    fn fig10_emcc_beats_baseline_on_llc_ctr_miss() {
        // Fig 10: EMCC parallelizes the counter's LLC miss with the data
        // access; the baseline serializes it after the data's LLC miss.
        let emcc = Timeline::compose(TimelineScenario::EmccCtrMissLlc, &p()).total;
        let base_serial = {
            // Baseline (Fig 10b): data path then serial ctr LLC miss+DRAM.
            let pp = p();
            let data_at_mc = pp.l2_lookup + pp.noc_one_way + Time::from_ns(4) + pp.noc_one_way;
            let ctr_done =
                data_at_mc + pp.mc_ctr_cache + pp.direct_llc + pp.dram_row_miss + pp.crypto.aes;
            let data_done = data_at_mc + pp.dram_row_miss;
            ctr_done.max(data_done) + pp.noc_one_way + pp.noc_one_way + pp.crypto.xor_and_compare
        };
        assert!(
            emcc < base_serial,
            "EMCC {emcc} must beat serial baseline {base_serial}"
        );
    }

    #[test]
    fn render_contains_all_segments() {
        let t = Timeline::compose(TimelineScenario::EmccCtrHitLlc, &p());
        let s = t.render();
        assert!(s.contains("AES@L2"));
        assert!(s.contains("total:"));
    }
}
