//! The event-driven full-system model.
//!
//! One [`SecureSystem`] owns every component and a single time-ordered
//! event queue. Handlers for the core/L1/L2/LLC side live here; the
//! memory-controller side (secure pipeline, counter fetch/verify,
//! write-backs, DRAM glue) lives in [`crate::mc`].

use std::collections::HashMap;

use emcc_cache::{BlockKind, CacheConfig, MshrFile, MshrOutcome, SetAssocCache};
use emcc_counters::IntegrityTree;
use emcc_dram::{FaultClass, FaultModel, RequestClass};
use emcc_noc::mesh::Node;
use emcc_noc::SliceMap;
use emcc_secmem::engine::split_aes_bandwidth;
use emcc_secmem::{AesPool, FunctionalSecureMemory, MetadataCache, OverflowEngine};
use emcc_sim::trace::{attribute, Component, Span, TraceRecorder};
use emcc_sim::{EventQueue, LineAddr, Time};
use emcc_workloads::TraceSource;

use crate::config::SystemConfig;
use crate::core_model::{CoreModel, Stall};
use crate::mc::{CtrOrigin, McState};
use crate::report::{CtrSource, SimReport};
use crate::xpt::XptPredictor;

/// Transaction identifier for in-flight data reads.
pub(crate) type TxnId = u64;

/// Simulation events.
#[derive(Debug)]
pub(crate) enum Ev {
    /// Re-evaluate a core's ability to issue.
    CoreAdvance(usize),
    /// A load completed; wake the core.
    LoadComplete { core: usize, token: u64 },
    /// A request arrives at the L2 (post L1 latency).
    L2Access {
        core: usize,
        line: LineAddr,
        is_write: bool,
        token: Option<u64>,
    },
    /// EMCC: the serial counter lookup in L2 runs (post data miss).
    L2CtrLookup { txn: TxnId },
    /// A data request arrives at an LLC slice.
    SliceDataReq { txn: TxnId },
    /// A victim line arrives at an LLC slice.
    SliceVictim {
        line: LineAddr,
        dirty: bool,
        kind: BlockKind,
    },
    /// A counter request arrives at an LLC slice.
    SliceCtrReq { block: LineAddr, origin: CtrOrigin },
    /// A data request arrives at the MC.
    McDataReq { txn: TxnId, via_xpt: bool },
    /// A counter request arrives at the MC.
    McCtrReq { block: LineAddr, origin: CtrOrigin },
    /// A dirty data line arrives at the MC for secure write-back.
    McWriteback { line: LineAddr },
    /// A write-back's ciphertext is ready; issue the DRAM write.
    McWriteIssue { line: LineAddr },
    /// A verified counter block is ready at the MC.
    McCtrReady { block: LineAddr },
    /// Data arrives at the requesting L2.
    L2Fill { txn: TxnId, verified: bool },
    /// A counter block arrives at an L2 (EMCC).
    L2CtrFill { core: usize, block: LineAddr },
    /// The delayed AES start check fires at an L2 (EMCC).
    L2AesStart { txn: TxnId },
    /// An EMCC transaction finishes local decrypt/verify.
    L2TxnFinish { txn: TxnId },
    /// Run the DRAM schedulers.
    DramPump,
    /// A DRAM access finished.
    DramDone {
        id: u64,
        row_hit: bool,
        line: LineAddr,
        class: RequestClass,
        is_write: bool,
        /// Queue-entry and bank-issue times (critical-path attribution).
        enqueued: Time,
        issued: Time,
    },
    /// Recovery: re-fetch a data line after a failed integrity check.
    DataRefetch { txn: TxnId },
    /// Recovery: re-walk the tree for a counter block that failed verify.
    CtrRefetch { block: LineAddr },
}

/// Per-line L2 metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct L2Meta {
    pub kind: BlockKind,
    /// EMCC: whether a cached counter line served a DRAM-bound data miss.
    pub used: bool,
}

/// Per-line LLC metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LlcMeta {
    pub kind: BlockKind,
    /// Inclusive mode (§IV-F): the line holds raw DRAM ciphertext that no
    /// L2 has verified yet; reset when an L2 writes the line back.
    pub unverified: bool,
}

impl LlcMeta {
    pub(crate) fn verified(kind: BlockKind) -> Self {
        LlcMeta {
            kind,
            unverified: false,
        }
    }
}

/// An L2 MSHR waiter.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Waiter {
    pub token: Option<u64>,
    pub is_write: bool,
}

/// Per-core L2 state.
pub(crate) struct L2State {
    pub cache: SetAssocCache<L2Meta>,
    pub mshr: MshrFile<Waiter>,
    pub ctr_lines: u64,
    /// Counter lines in insertion order (O(1) budget eviction).
    pub ctr_fifo: std::collections::VecDeque<LineAddr>,
    pub aes: Option<AesPool>,
    /// AES slots committed by in-flight misses that have not scheduled
    /// yet (their start is deferred by the LLC-hit wait); the offload
    /// decision must count them or bursts overwhelm the pool.
    pub aes_reserved: u64,
    /// Stride prefetcher table, indexed by 4 KB region so interleaved
    /// streams train independently: (last line, last stride, confidence).
    pub stride: Vec<(u64, i64, u32)>,
    /// §IV-F dynamic disable: accesses and DRAM-served fills in the
    /// current sampling window, and whether EMCC is currently off.
    pub window_accesses: u64,
    pub window_dram_fills: u64,
    pub emcc_disabled: bool,
    /// Consecutive local verification failures (reset on a clean finish).
    pub verify_fail_streak: u32,
    /// Graceful degradation: local verification has failed repeatedly, so
    /// new misses are offloaded to MC-side verification (extends §IV-D
    /// adaptive offload to the fault domain).
    pub verify_degraded: bool,
}

/// An in-flight data read (demand or prefetch).
#[derive(Debug)]
pub(crate) struct DataTxn {
    pub core: usize,
    pub line: LineAddr,
    pub is_prefetch: bool,
    /// Time of the L2 miss (t=0 of Figs 10/13 timelines).
    pub t_miss: Time,
    /// The MC must decrypt (offload, counter missed LLC, or baseline).
    pub mc_decrypt: bool,
    /// EMCC: counter value availability time at the L2.
    pub l2_ctr_ready: Option<Time>,
    /// EMCC: local AES completion time.
    pub aes_done: Option<Time>,
    pub aes_started: bool,
    /// Ciphertext arrival time at L2 (unverified fill waiting for AES).
    pub cipher_at: Option<Time>,
    /// The MC already shipped this read as unverified ciphertext — the L2
    /// *must* finish it locally, even if a later counter LLC-miss tried to
    /// flip responsibility to the MC (the fast-DRAM race).
    pub shipped_unverified: bool,
    /// Holds an unspent L2 AES reservation.
    pub aes_reserved: bool,
    /// The confirmed miss request reached the MC.
    pub at_mc: bool,
    /// The DRAM data read has been issued (possibly speculatively by XPT).
    pub dram_issued: bool,
    pub t_mc_arrival: Time,
    /// XPT forwarded this request early.
    pub xpt_forwarded: bool,
    /// MC-side: counter ready time (baseline / mc-decrypt paths).
    pub mc_ctr_ready: Option<Time>,
    /// MC-side: data arrived from DRAM at this time.
    pub mc_data_at: Option<Time>,
    /// Where this read's counter was found (recorded once, DRAM reads).
    pub ctr_source: Option<CtrSource>,
    /// Served from DRAM (vs LLC hit).
    pub from_dram: bool,
    /// The last DRAM response for this line was corrupted by the fault
    /// model; cleared when the corruption is detected (or consumed).
    pub corrupt: Option<FaultClass>,
    /// Integrity-failure re-fetches performed for this transaction.
    pub retries: u32,
    pub done: bool,
    /// Attribution: access start (arrival at L2 for demand misses; the
    /// miss time itself for prefetches).
    pub t_start: Time,
    /// Attribution: work spans recorded along the access's lifetime,
    /// reduced by [`attribute`] at completion.
    pub spans: Vec<Span>,
    /// Attribution: LLC slice lookup completion (start of the next leg).
    pub t_slice_done: Option<Time>,
    /// Attribution: MC ship time of the in-flight data response (start of
    /// the response NoC legs; taken by the L2 fill).
    pub t_shipped: Option<Time>,
}

/// The assembled system.
pub struct SecureSystem {
    pub(crate) cfg: SystemConfig,
    pub(crate) queue: EventQueue<Ev>,
    pub(crate) now: Time,
    pub(crate) cores: Vec<CoreModel>,
    pub(crate) l1: Vec<SetAssocCache<()>>,
    pub(crate) l2: Vec<L2State>,
    pub(crate) slices: Vec<SetAssocCache<LlcMeta>>,
    pub(crate) slice_map: SliceMap,
    pub(crate) mc: McState,
    pub(crate) tree: IntegrityTree,
    /// Differential oracle: a functional secure memory that mirrors every
    /// write-back, letting `finalize` diff per-line counter state against
    /// the timing model (enabled by `SystemConfig::shadow_check`).
    pub(crate) shadow: Option<FunctionalSecureMemory>,
    pub(crate) xpt: Vec<XptPredictor>,
    pub(crate) txns: HashMap<TxnId, DataTxn>,
    pub(crate) next_txn: TxnId,
    /// EMCC: txns waiting for a counter block to arrive at their L2.
    pub(crate) l2_ctr_waiters: HashMap<(usize, LineAddr), Vec<TxnId>>,
    pub(crate) report: SimReport,
    pub(crate) dram_pump_at: Option<Time>,
    /// Per-access trace ring (disabled unless [`SecureSystem::run_traced`]
    /// is used; a disabled recorder costs one branch per completion).
    pub(crate) tracer: TraceRecorder,
    warmup_ops: u64,
    warmup_done: bool,
    measure_start: Time,
    insts_at_measure_start: u64,
}

impl std::fmt::Debug for SecureSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureSystem")
            .field("now", &self.now)
            .field("txns_inflight", &self.txns.len())
            .finish()
    }
}

impl SecureSystem {
    /// Builds a system from a configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        // AES units are provisioned for the memory system's peak access
        // rate (§V sizes 2.6 G AES/s from one DDR4-3200 channel's 400 M
        // accesses/s), so the pool scales with channel count.
        let channels = cfg.dram.channels as f64;
        let (mc_bw, l2_bw) = if cfg.scheme.is_emcc() {
            split_aes_bandwidth(cfg.emcc.aes_fraction_to_l2, cfg.cores)
        } else {
            split_aes_bandwidth(0.0, cfg.cores)
        };
        let (mc_bw, l2_bw) = (mc_bw * channels, l2_bw * channels);
        let l2 = (0..cfg.cores)
            .map(|_| L2State {
                cache: SetAssocCache::new(CacheConfig::new(cfg.l2_size, cfg.l2_ways)),
                mshr: MshrFile::new(32),
                ctr_lines: 0,
                ctr_fifo: std::collections::VecDeque::new(),
                aes_reserved: 0,
                aes: (cfg.scheme.is_emcc() && l2_bw > 0.0)
                    .then(|| AesPool::new(l2_bw, cfg.crypto.aes)),
                stride: vec![(0, 0, 0); 64],
                window_accesses: 0,
                window_dram_fills: 0,
                emcc_disabled: false,
                verify_fail_streak: 0,
                verify_degraded: false,
            })
            .collect();
        let slices = (0..cfg.llc_slices)
            .map(|_| SetAssocCache::new(CacheConfig::new(cfg.llc_slice_size, cfg.llc_ways)))
            .collect();
        let mc = McState {
            meta: MetadataCache::new(cfg.mc_cache_size, cfg.mc_cache_ways),
            aes: AesPool::new(mc_bw.max(1.0), cfg.crypto.aes),
            aes_wr: AesPool::new(mc_bw.max(1.0), cfg.crypto.aes),
            overflow: OverflowEngine::new(),
            ctr_txns: HashMap::new(),
            dram_targets: HashMap::new(),
            next_dram_id: 1,
            dram: emcc_dram::Dram::new(cfg.dram),
            deferred_wb: std::collections::VecDeque::new(),
            fault: cfg.fault.clone().map(FaultModel::new),
        };
        SecureSystem {
            l1: (0..cfg.cores)
                .map(|_| SetAssocCache::new(CacheConfig::new(cfg.l1_size, cfg.l1_ways)))
                .collect(),
            xpt: (0..cfg.cores).map(|_| XptPredictor::new(4096)).collect(),
            slice_map: SliceMap::new(cfg.llc_slices),
            tree: IntegrityTree::new(cfg.counter_design, cfg.data_lines),
            cores: Vec::new(),
            l2,
            slices,
            mc,
            shadow: cfg.shadow_check.then(|| {
                FunctionalSecureMemory::with_design(cfg.seed, cfg.data_lines, cfg.counter_design)
            }),
            queue: EventQueue::with_capacity(1 << 16),
            now: Time::ZERO,
            txns: HashMap::new(),
            next_txn: 1,
            l2_ctr_waiters: HashMap::new(),
            report: SimReport::default(),
            dram_pump_at: None,
            tracer: TraceRecorder::disabled(),
            warmup_ops: 0,
            warmup_done: true,
            measure_start: Time::ZERO,
            insts_at_measure_start: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Runs `ops_per_core` memory operations from each source to
    /// completion and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if `sources` does not supply one trace per configured core.
    pub fn run(self, sources: Vec<Box<dyn TraceSource>>, ops_per_core: u64) -> SimReport {
        self.run_with_warmup(sources, 0, ops_per_core)
    }

    /// Runs `warmup_ops` per core (warming caches, counters and
    /// predictors), resets all statistics, then measures `ops_per_core`
    /// more — mirroring the paper's §V warmup-then-measure methodology.
    ///
    /// # Panics
    ///
    /// Panics if `sources` does not supply one trace per configured core.
    pub fn run_with_warmup(
        mut self,
        sources: Vec<Box<dyn TraceSource>>,
        warmup_ops: u64,
        ops_per_core: u64,
    ) -> SimReport {
        self.run_loop(sources, warmup_ops, ops_per_core);
        self.finalize()
    }

    /// Like [`SecureSystem::run_with_warmup`], but records the last
    /// `trace_capacity` completed accesses (raw spans + critical path) and
    /// returns the recorder alongside the report, for Chrome-trace export.
    ///
    /// Timing is identical to an untraced run: recording only observes.
    ///
    /// # Panics
    ///
    /// Panics if `sources` does not supply one trace per configured core.
    pub fn run_traced(
        mut self,
        sources: Vec<Box<dyn TraceSource>>,
        warmup_ops: u64,
        ops_per_core: u64,
        trace_capacity: usize,
    ) -> (SimReport, TraceRecorder) {
        self.tracer = TraceRecorder::with_capacity(trace_capacity);
        self.run_loop(sources, warmup_ops, ops_per_core);
        let tracer = std::mem::take(&mut self.tracer);
        (self.finalize(), tracer)
    }

    fn run_loop(&mut self, sources: Vec<Box<dyn TraceSource>>, warmup_ops: u64, ops_per_core: u64) {
        assert_eq!(
            sources.len(),
            self.cfg.cores,
            "need one trace source per core"
        );
        self.warmup_ops = warmup_ops;
        self.warmup_done = warmup_ops == 0;
        self.report.scheme = self.cfg.scheme.to_string();
        for (i, src) in sources.into_iter().enumerate() {
            if i == 0 {
                self.report.benchmark = src.name().to_string();
            }
            self.cores.push(CoreModel::new(
                src,
                self.cfg.freq,
                self.cfg.width,
                self.cfg.rob_entries,
                self.cfg.max_outstanding_loads,
                warmup_ops + ops_per_core,
            ));
            self.queue.push(Time::ZERO, Ev::CoreAdvance(i));
        }

        let mut timed_out = false;
        while let Some((t, ev)) = self.queue.pop() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            if t > self.cfg.max_sim_time {
                timed_out = true;
                break;
            }
            self.dispatch(ev);
            if !self.warmup_done && self.cores.iter().all(|c| c.issued_ops() >= self.warmup_ops) {
                self.end_warmup();
            }
            if self.cores.iter().all(|c| c.finished()) {
                break;
            }
        }
        // A drained queue with unfinished cores means a lost wake-up — a
        // simulator bug that must never pass silently as a "result".
        assert!(
            timed_out || self.cores.iter().all(|c| c.finished()),
            "event queue drained with {} unfinished core(s) at {} — lost wakeup",
            self.cores.iter().filter(|c| !c.finished()).count(),
            self.now
        );
    }

    fn end_warmup(&mut self) {
        self.warmup_done = true;
        self.measure_start = self.now;
        self.insts_at_measure_start = self.cores.iter().map(|c| c.retired_insts()).sum();
        let benchmark = std::mem::take(&mut self.report.benchmark);
        let scheme = std::mem::take(&mut self.report.scheme);
        self.report = SimReport {
            benchmark,
            scheme,
            ..SimReport::default()
        };
        self.mc.dram.reset_stats();
        self.mc.meta.reset_stats();
    }

    fn finalize(mut self) -> SimReport {
        self.report.elapsed = self.now.saturating_sub(self.measure_start);
        self.report.instructions = self
            .cores
            .iter()
            .map(|c| c.retired_insts())
            .sum::<u64>()
            .saturating_sub(self.insts_at_measure_start);
        self.report.mem_ops = self
            .cores
            .iter()
            .map(|c| c.issued_ops())
            .sum::<u64>()
            .saturating_sub(self.warmup_ops * self.cfg.cores as u64);
        self.report.dram = self.mc.dram.stats();
        let of = self.tree.overflows_by_level();
        self.report.overflows_l0 = of.first().copied().unwrap_or(0);
        self.report.overflows_higher = of.iter().skip(1).sum();
        self.report.overflow_stalls = self.mc.overflow.rejected();
        // Differential check: every written line's counter in the timing
        // model's tree must equal the functional oracle's (both saw the
        // same write-back sequence, one increment per write-back).
        if let Some(shadow) = &self.shadow {
            for line in shadow.written_lines() {
                self.report.shadow_lines += 1;
                if shadow.tree().data_counter(line) != self.tree.data_counter(line) {
                    self.report.shadow_mismatches += 1;
                }
            }
        }
        // Exact cutoff accounting: classify the LLC data misses whose DRAM
        // read had not completed when the run ended, and completed reads
        // that served no counted miss. With these, the fuzz oracle holds
        //   llc_data_misses + data_refetch_reads + xpt_wasted_reads
        //     == dram_data_reads + inflight_at_cutoff + unissued_at_cutoff
        // as an equality for warmup-free runs (warmup resets the counters
        // mid-flight, so warmup runs only report the fields).
        for target in self.mc.dram_targets.values() {
            if let crate::mc::DramTarget::DataRead {
                txn,
                refetch: false,
            } = *target
            {
                if self.txns.get(&txn).is_some_and(|t| t.from_dram) {
                    self.report.dram_reads_inflight_at_cutoff += 1;
                }
            }
        }
        for txn in self.txns.values() {
            if txn.from_dram && !txn.dram_issued {
                // Confirmed miss whose DRAM read is still waiting for a
                // queue slot (enqueue retry pending).
                self.report.unissued_misses_at_cutoff += 1;
            } else if !txn.from_dram && txn.mc_data_at.is_some() {
                // A speculative XPT read completed, but the LLC lookup had
                // not classified the access by cutoff — the read serves no
                // counted miss.
                self.report.xpt_wasted_reads += 1;
            }
        }
        // Counter lines still resident at simulation end are *not*
        // classified: the paper's Fig 11 counts lines "never used ...
        // between the time the counter is inserted into L2 and is evicted
        // from L2", which is undetermined for residents.
        self.report
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::CoreAdvance(core) => self.core_advance(core),
            Ev::LoadComplete { core, token } => {
                self.cores[core].complete_load(token, self.now);
                self.core_advance(core);
            }
            Ev::L2Access {
                core,
                line,
                is_write,
                token,
            } => self.l2_access(core, line, is_write, token),
            Ev::L2CtrLookup { txn } => self.l2_ctr_lookup(txn),
            Ev::SliceDataReq { txn } => self.slice_data_req(txn),
            Ev::SliceVictim { line, dirty, kind } => self.slice_victim(line, dirty, kind),
            Ev::SliceCtrReq { block, origin } => self.slice_ctr_req(block, origin),
            Ev::McDataReq { txn, via_xpt } => self.mc_data_req(txn, via_xpt),
            Ev::McCtrReq { block, origin } => self.mc_ctr_req(block, origin),
            Ev::McWriteback { line } => self.mc_writeback(line),
            Ev::McWriteIssue { line } => self.mc_write_issue(line),
            Ev::McCtrReady { block } => self.mc_ctr_ready(block),
            Ev::L2Fill { txn, verified } => self.l2_fill(txn, verified),
            Ev::L2CtrFill { core, block } => self.l2_ctr_fill(core, block),
            Ev::L2AesStart { txn } => self.l2_aes_start(txn),
            Ev::L2TxnFinish { txn } => self.l2_txn_finish(txn),
            Ev::DramPump => {
                self.dram_pump_at = None;
                self.pump_dram();
            }
            Ev::DramDone {
                id,
                row_hit,
                line,
                class,
                is_write,
                enqueued,
                issued,
            } => self.dram_done(id, row_hit, line, class, is_write, enqueued, issued),
            Ev::DataRefetch { txn } => self.data_refetch(txn),
            Ev::CtrRefetch { block } => self.ctr_refetch(block),
        }
    }

    // ----- NoC latency helpers -------------------------------------------

    pub(crate) fn noc_l2_slice(&self, core: usize, slice: usize, payload: bool) -> Time {
        let a = Node::Core(self.cfg.core_position(core));
        let b = Node::Core(self.cfg.slice_position(slice));
        self.cfg.noc.between(&self.cfg.mesh, a, b, payload)
    }

    pub(crate) fn noc_slice_mc(&self, slice: usize, payload: bool) -> Time {
        let a = Node::Core(self.cfg.slice_position(slice));
        self.cfg
            .noc
            .between(&self.cfg.mesh, a, Node::Mc(0), payload)
    }

    pub(crate) fn noc_l2_mc(&self, core: usize, payload: bool) -> Time {
        let a = Node::Core(self.cfg.core_position(core));
        self.cfg
            .noc
            .between(&self.cfg.mesh, a, Node::Mc(0), payload)
    }

    pub(crate) fn slice_of(&self, line: LineAddr) -> usize {
        self.slice_map.slice_of(line)
    }

    // ----- Core + L1 ------------------------------------------------------

    fn core_advance(&mut self, core: usize) {
        loop {
            match self.cores[core].advance(self.now) {
                Ok(issue) => {
                    self.l1_access(core, issue.op, issue.load_token);
                }
                Err(Stall::UntilTime(t)) => {
                    self.queue.push(t, Ev::CoreAdvance(core));
                    return;
                }
                Err(Stall::OnLoad) => return,
                Err(Stall::Finished) => return,
            }
        }
    }

    fn l1_access(&mut self, core: usize, op: emcc_workloads::MemOp, token: u64) {
        let hit = self.l1[core].touch(op.line);
        if hit {
            self.report.l1_hits += 1;
            if op.is_write {
                self.l1[core].mark_dirty(op.line);
            } else {
                self.queue.push(
                    self.now + self.cfg.l1_latency,
                    Ev::LoadComplete { core, token },
                );
            }
            return;
        }
        // L1 miss: go to L2 after the L1 tag check.
        self.queue.push(
            self.now + self.cfg.l1_latency,
            Ev::L2Access {
                core,
                line: op.line,
                is_write: op.is_write,
                token: (!op.is_write).then_some(token),
            },
        );
    }

    /// Fills a line into L1, sinking any dirty victim into L2.
    fn l1_fill(&mut self, core: usize, line: LineAddr, dirty: bool) {
        if let Some(victim) = self.l1[core].insert(line, dirty, ()) {
            if victim.dirty {
                // L1 victim write-back: non-inclusive, allocate in L2.
                let meta = L2Meta {
                    kind: BlockKind::Data,
                    used: false,
                };
                if self.l2[core].cache.contains(victim.addr) {
                    self.l2[core].cache.mark_dirty(victim.addr);
                } else if let Some(l2v) = self.l2[core].cache.insert(victim.addr, true, meta) {
                    self.l2_victim(core, l2v);
                }
            }
        }
    }

    // ----- L2 -------------------------------------------------------------

    fn l2_access(&mut self, core: usize, line: LineAddr, is_write: bool, token: Option<u64>) {
        self.report.l2_accesses += 1;
        self.sample_intensity(core);
        let t_done = self.now + self.cfg.l2_latency;
        let hit = self.l2[core].cache.touch(line);
        if hit {
            self.report.l2_hits += 1;
            if is_write {
                self.l2[core].cache.mark_dirty(line);
            }
            self.l1_fill(core, line, false);
            if let Some(token) = token {
                self.queue.push(t_done, Ev::LoadComplete { core, token });
            }
            return;
        }

        // L2 miss.
        self.report.l2_data_misses += 1;
        self.train_prefetcher(core, line);
        let waiter = Waiter { token, is_write };
        match self.l2[core].mshr.allocate(line, waiter) {
            MshrOutcome::Merged => return,
            MshrOutcome::Full => {
                // Stall-free simplification: merge anyway by retrying
                // shortly (queues are generously sized; rare).
                self.queue.push(
                    t_done + Time::from_ns(2),
                    Ev::L2Access {
                        core,
                        line,
                        is_write,
                        token,
                    },
                );
                self.report.l2_data_misses -= 1;
                return;
            }
            MshrOutcome::Allocated => {}
        }
        self.start_data_txn(core, line, false, t_done);
    }

    /// Creates a data-read transaction and launches requests.
    pub(crate) fn start_data_txn(
        &mut self,
        core: usize,
        line: LineAddr,
        is_prefetch: bool,
        t_miss: Time,
    ) {
        let id = self.next_txn;
        self.next_txn += 1;

        // EMCC: adaptive offload decision, made at miss time from the
        // local AES queue (§IV-D). The effective queue includes slots
        // committed by earlier misses whose AES start is still deferred.
        let mut offload_bit = false;
        let mut reserved_aes = false;
        if self.cfg.scheme.is_emcc() {
            if self.l2[core].emcc_disabled || self.l2[core].verify_degraded {
                // §IV-F: the application is not memory-intensive; keep
                // everything at the MC (no counter caching, no L2 AES).
                // The same path implements graceful degradation: an L2
                // whose local verification keeps failing hands all new
                // misses to MC-side verification.
                offload_bit = true;
            } else if let Some(pool) = &self.l2[core].aes {
                let effective =
                    pool.queue_delay(t_miss) + pool.interval() * self.l2[core].aes_reserved;
                if effective > self.cfg.emcc.offload_threshold {
                    offload_bit = true;
                    self.report.offloaded_for_bandwidth += 1;
                } else {
                    self.l2[core].aes_reserved += 1;
                    reserved_aes = true;
                }
            } else {
                offload_bit = true;
            }
        }

        // XPT: predict LLC outcome; forward to MC in parallel on a
        // predicted miss.
        let xpt_forwarded = self.cfg.xpt_enabled && self.xpt[core].predict_miss(line);

        // Attribution window: demand misses start at L2 arrival (the tag
        // lookup is on the critical path); prefetches start at the miss.
        let t_start = if is_prefetch {
            t_miss
        } else {
            t_miss.saturating_sub(self.cfg.l2_latency)
        };
        let mut spans = Vec::new();
        if !is_prefetch {
            spans.push(Span::new(Component::L2Lookup, t_start, t_miss));
        }

        self.txns.insert(
            id,
            DataTxn {
                core,
                line,
                is_prefetch,
                t_miss,
                mc_decrypt: !self.cfg.scheme.is_emcc() || offload_bit,
                l2_ctr_ready: None,
                aes_done: None,
                aes_started: false,
                cipher_at: None,
                shipped_unverified: false,
                aes_reserved: reserved_aes,
                at_mc: false,
                dram_issued: false,
                t_mc_arrival: Time::ZERO,
                xpt_forwarded,
                mc_ctr_ready: None,
                mc_data_at: None,
                ctr_source: None,
                from_dram: false,
                corrupt: None,
                retries: 0,
                done: false,
                t_start,
                spans,
                t_slice_done: None,
                t_shipped: None,
            },
        );

        let slice = self.slice_of(line);
        let t_slice = t_miss + self.noc_l2_slice(core, slice, false);
        self.queue.push(t_slice, Ev::SliceDataReq { txn: id });
        if xpt_forwarded {
            self.report.xpt_forwards += 1;
            let t_mc = t_miss + self.noc_l2_mc(core, false);
            self.queue.push(
                t_mc,
                Ev::McDataReq {
                    txn: id,
                    via_xpt: true,
                },
            );
        }
        // EMCC: serial counter lookup in L2 during spare cycles.
        if self.cfg.scheme.is_emcc() && !offload_bit {
            self.queue.push(
                t_miss + self.cfg.emcc.ctr_lookup_delay,
                Ev::L2CtrLookup { txn: id },
            );
        }
    }

    /// EMCC: look the data's counter block up in the local L2.
    fn l2_ctr_lookup(&mut self, txn_id: TxnId) {
        let Some(txn) = self.txns.get(&txn_id) else {
            return;
        };
        if txn.done {
            return;
        }
        let core = txn.core;
        let line = txn.line;
        let cb_idx = self.tree.geometry().counter_block_of(line);
        let block = self.tree.geometry().node_addr(0, cb_idx);
        let t_miss = txn.t_miss;

        if self.l2[core].cache.touch(block) {
            // Counter hit in L2.
            let txn = self.txns.get_mut(&txn_id).expect("txn exists");
            txn.l2_ctr_ready = Some(self.now);
            txn.ctr_source = Some(CtrSource::L2);
            // Counter availability: the serial L2 lookup after the miss.
            txn.spans
                .push(Span::new(Component::CtrFetch, t_miss, self.now));
            let start = self.now.max(t_miss + self.cfg.emcc.aes_start_wait);
            self.queue.push(start, Ev::L2AesStart { txn: txn_id });
        } else {
            // Counter miss in L2: speculatively request it from LLC, in
            // parallel with the outstanding data access.
            let waiters = self.l2_ctr_waiters.entry((core, block)).or_default();
            waiters.push(txn_id);
            if waiters.len() == 1 {
                self.report.l2_ctr_reqs_to_llc += 1;
                let slice = self.slice_of(block);
                let t = self.now + self.noc_l2_slice(core, slice, false);
                self.queue.push(
                    t,
                    Ev::SliceCtrReq {
                        block,
                        origin: CtrOrigin::L2 { core },
                    },
                );
            }
        }
    }

    // ----- LLC slices -----------------------------------------------------

    fn slice_data_req(&mut self, txn_id: TxnId) {
        let Some(txn) = self.txns.get(&txn_id) else {
            return;
        };
        if txn.done {
            return;
        }
        let line = txn.line;
        let core = txn.core;
        let t_miss = txn.t_miss;
        let xpt_forwarded = txn.xpt_forwarded;
        let slice = self.slice_of(line);
        let t_lookup = self.now + self.cfg.llc_sram_latency;
        // Inclusive mode: a hit on an *encrypted & unverified* line cannot
        // be served from the LLC; the paper fetches from an owning L2, but
        // our private-workload model has no second owner, so we re-fetch
        // through the MC (counted — it is rare).
        let unverified_hit =
            self.cfg.inclusive_llc && self.slices[slice].peek(line).is_some_and(|m| m.unverified);
        let hit = !unverified_hit && self.slices[slice].touch(line);
        self.xpt[core].train(line, !hit);
        if unverified_hit {
            self.report.llc_unverified_hits += 1;
        }
        {
            // Request leg + slice SRAM lookup sit on every miss's path.
            let txn = self.txns.get_mut(&txn_id).expect("txn exists");
            txn.spans.push(Span::new(Component::Noc, t_miss, self.now));
            txn.spans
                .push(Span::new(Component::LlcLookup, self.now, t_lookup));
            txn.t_slice_done = Some(t_lookup);
        }
        if hit {
            self.report.llc_data_hits += 1;
            if xpt_forwarded {
                self.report.xpt_wasted += 1;
            }
            // LLC data is plaintext (it was decrypted on its way into L2
            // originally); respond directly.
            let t = t_lookup + self.noc_l2_slice(core, slice, true);
            self.txns
                .get_mut(&txn_id)
                .expect("txn exists")
                .spans
                .push(Span::new(Component::Noc, t_lookup, t));
            self.queue.push(
                t,
                Ev::L2Fill {
                    txn: txn_id,
                    verified: true,
                },
            );
        } else {
            self.report.llc_data_misses += 1;
            let txn = self.txns.get_mut(&txn_id).expect("txn exists");
            txn.from_dram = true;
            if txn.xpt_forwarded {
                self.xpt[core].record_correct();
            }
            // The confirmed miss always travels to the MC: even under XPT
            // (which only started the DRAM read early), the MC's secure
            // pipeline acts on the confirmed request.
            let t = t_lookup + self.noc_slice_mc(slice, false);
            self.queue.push(
                t,
                Ev::McDataReq {
                    txn: txn_id,
                    via_xpt: false,
                },
            );
        }
    }

    fn slice_victim(&mut self, line: LineAddr, dirty: bool, kind: BlockKind) {
        let slice = self.slice_of(line);
        if kind == BlockKind::Counter {
            // Counter lines in L2 are clean copies; dropping them costs
            // nothing (the LLC may still hold its own copy).
            return;
        }
        // An L2 write-back (clean or dirty) always carries verified
        // plaintext, so it clears any inclusive-mode unverified bit.
        let victim = self.slices[slice].insert(line, dirty, LlcMeta::verified(kind));
        self.handle_llc_eviction(victim);
    }

    /// Disposes of an evicted LLC line: dirty data goes to the MC; in
    /// inclusive mode, L1/L2 copies are back-invalidated (dirty L2 copies
    /// supersede the LLC's and write back instead).
    pub(crate) fn handle_llc_eviction(&mut self, victim: Option<emcc_cache::EvictedLine<LlcMeta>>) {
        let Some(victim) = victim else {
            return;
        };
        if victim.meta.kind != BlockKind::Data {
            return;
        }
        let mut newer_dirty_in_l2 = false;
        if self.cfg.inclusive_llc {
            for core in 0..self.cfg.cores {
                self.l1[core].invalidate(victim.addr);
                if let Some(ev) = self.l2[core].cache.invalidate(victim.addr) {
                    self.report.inclusive_back_invals += 1;
                    newer_dirty_in_l2 |= ev.dirty;
                }
            }
        }
        // Unverified lines mirror DRAM exactly; nothing to write back.
        let needs_wb = (victim.dirty || newer_dirty_in_l2) && !victim.meta.unverified;
        if needs_wb {
            let slice = self.slice_of(victim.addr);
            let t = self.now + self.noc_slice_mc(slice, true);
            self.queue.push(t, Ev::McWriteback { line: victim.addr });
        }
    }

    /// Inclusive mode: mirror a DRAM fill into the LLC on the response
    /// path, marked unverified when the fill is EMCC ciphertext.
    pub(crate) fn inclusive_fill(&mut self, line: LineAddr, verified: bool) {
        if !self.cfg.inclusive_llc {
            return;
        }
        let slice = self.slice_of(line);
        if !verified {
            self.report.llc_unverified_inserts += 1;
        }
        let meta = LlcMeta {
            kind: BlockKind::Data,
            unverified: !verified,
        };
        let victim = self.slices[slice].insert(line, false, meta);
        self.handle_llc_eviction(victim);
    }

    fn slice_ctr_req(&mut self, block: LineAddr, origin: CtrOrigin) {
        let slice = self.slice_of(block);
        let t_lookup = self.now + self.cfg.llc_sram_latency;
        if self.slices[slice].touch(block) {
            match origin {
                CtrOrigin::L2 { core } => {
                    // 'L' + 'M' of Fig 13: data-array read then a payload-
                    // carrying response back to the L2.
                    let t = t_lookup + self.noc_l2_slice(core, slice, true);
                    self.queue.push(t, Ev::L2CtrFill { core, block });
                }
                CtrOrigin::Mc => {
                    let t = t_lookup + self.noc_slice_mc(slice, true);
                    self.queue.push(
                        t,
                        Ev::McCtrReq {
                            block,
                            origin: CtrOrigin::LlcHitReply,
                        },
                    );
                }
                CtrOrigin::LlcHitReply => unreachable!("reply origin never queries LLC"),
            }
        } else {
            // Miss: forward to MC (who will fetch + verify from DRAM).
            let t = t_lookup + self.noc_slice_mc(slice, false);
            self.queue.push(t, Ev::McCtrReq { block, origin });
        }
    }

    // ----- L2 fills and EMCC completion ------------------------------------

    fn l2_fill(&mut self, txn_id: TxnId, verified: bool) {
        let Some(txn) = self.txns.get_mut(&txn_id) else {
            return;
        };
        if txn.done {
            return;
        }
        // Response NoC legs from the MC ship (LLC-hit responses recorded
        // their leg at the slice).
        if let Some(shipped) = txn.t_shipped.take() {
            txn.spans.push(Span::new(Component::Noc, shipped, self.now));
        }
        if verified {
            self.complete_txn(txn_id, self.now);
            return;
        }
        // Unverified ciphertext under EMCC: finish locally once AES done.
        txn.cipher_at = Some(self.now);
        if let Some(aes_done) = txn.aes_done {
            let t = self.now.max(aes_done) + self.cfg.crypto.xor_and_compare;
            self.queue.push(t, Ev::L2TxnFinish { txn: txn_id });
        }
        // Otherwise the AES completion (or counter arrival) path schedules
        // the finish.
    }

    fn l2_ctr_fill(&mut self, core: usize, block: LineAddr) {
        if self.l2[core].cache.contains(block) {
            // Duplicate fill (racing requests); just wake waiters.
            self.wake_ctr_waiters(core, block);
            return;
        }
        // Insert the counter block into L2 under the 32 KB budget. The
        // budget evicts in insertion order (FIFO over counter lines) —
        // an O(1) approximation of global-LRU.
        self.report.l2_ctr_insertions += 1;
        let budget = self.cfg.emcc.l2_counter_budget_lines;
        while self.l2[core].ctr_lines >= budget.max(1) {
            match self.l2[core].ctr_fifo.pop_front() {
                Some(old) => {
                    // May already be gone (invalidated / evicted).
                    if self.l2[core].cache.contains(old) {
                        self.evict_l2_ctr_line(core, old, false);
                    } else {
                        continue;
                    }
                }
                None => break,
            }
        }
        let meta = L2Meta {
            kind: BlockKind::Counter,
            used: false,
        };
        if let Some(victim) = self.l2[core].cache.insert(block, false, meta) {
            self.l2_victim(core, victim);
        }
        self.l2[core].ctr_lines += 1;
        self.l2[core].ctr_fifo.push_back(block);
        self.report.l2_ctr_lines_peak = self.report.l2_ctr_lines_peak.max(self.l2[core].ctr_lines);
        self.wake_ctr_waiters(core, block);
    }

    /// Wakes transactions waiting on a counter block at an L2.
    fn wake_ctr_waiters(&mut self, core: usize, block: LineAddr) {
        let waiters = self
            .l2_ctr_waiters
            .remove(&(core, block))
            .unwrap_or_default();
        for txn_id in waiters {
            let Some(txn) = self.txns.get_mut(&txn_id) else {
                continue;
            };
            if txn.done || (txn.mc_decrypt && !txn.shipped_unverified) {
                continue;
            }
            txn.l2_ctr_ready = Some(self.now);
            if txn.ctr_source.is_none() {
                txn.ctr_source = Some(CtrSource::Llc);
            }
            // The parallel counter fetch ran from the miss (L2 lookup,
            // LLC/MC round trip) until the block arrived here.
            txn.spans
                .push(Span::new(Component::CtrFetch, txn.t_miss, self.now));
            let start = self.now.max(txn.t_miss + self.cfg.emcc.aes_start_wait);
            self.queue.push(start, Ev::L2AesStart { txn: txn_id });
        }
    }

    fn l2_aes_start(&mut self, txn_id: TxnId) {
        let Some(txn) = self.txns.get(&txn_id) else {
            return;
        };
        if txn.done
            || txn.aes_started
            || txn.l2_ctr_ready.is_none()
            || (txn.mc_decrypt && !txn.shipped_unverified)
        {
            return;
        }
        let core = txn.core;
        let decode = self.cfg.crypto.counter_decode;
        let Some(pool) = self.l2[core].aes.as_mut() else {
            return;
        };
        let qd = pool.queue_delay(self.now + decode);
        let aes = pool.schedule_span(self.now + decode);
        let done = aes.end;
        self.report.l2_aes_queue_ns.add_time(qd);
        if self.txns[&txn_id].aes_reserved {
            self.txns.get_mut(&txn_id).expect("txn exists").aes_reserved = false;
            self.l2[core].aes_reserved = self.l2[core].aes_reserved.saturating_sub(1);
        }
        let txn = self.txns.get_mut(&txn_id).expect("txn exists");
        txn.aes_started = true;
        txn.aes_done = Some(done);
        // Counter decode, then the (possibly queued) OTP AES.
        txn.spans
            .push(Span::new(Component::CtrFetch, self.now, self.now + decode));
        txn.spans.push(aes);
        // The counter's value is consumed now: mark the cached counter
        // line used (AES only starts once an LLC hit has been ruled out).
        let line = txn.line;
        let cb_idx = self.tree.geometry().counter_block_of(line);
        let block = self.tree.geometry().node_addr(0, cb_idx);
        if let Some(meta) = self.l2[core].cache.get_mut(block) {
            meta.used = true;
        }
        if let Some(cipher_at) = txn.cipher_at {
            let t = cipher_at.max(done) + self.cfg.crypto.xor_and_compare;
            self.queue.push(t, Ev::L2TxnFinish { txn: txn_id });
        }
    }

    fn l2_txn_finish(&mut self, txn_id: TxnId) {
        let Some(txn) = self.txns.get(&txn_id) else {
            return;
        };
        if txn.done {
            return;
        }
        let core = txn.core;
        {
            // Local XOR + MAC compare ends now, whether it passed or
            // detected corruption.
            let xor = self.cfg.crypto.xor_and_compare;
            let txn = self.txns.get_mut(&txn_id).expect("txn exists");
            txn.spans.push(Span::new(
                Component::Verify,
                self.now.saturating_sub(xor),
                self.now,
            ));
        }
        let txn = self.txns.get(&txn_id).expect("txn exists");
        if txn.corrupt.is_some() {
            // L2-side detection: the locally recomputed MAC half cannot
            // match corrupted ciphertext. Count, then either retry via the
            // MC-verified path or deliver the poisoned line (machine-check
            // semantics) once the retry budget is exhausted.
            let cipher_at = txn.cipher_at.unwrap_or(self.now);
            let retries = txn.retries;
            self.report.faulty_reads += 1;
            self.report.integrity_violations += 1;
            self.report
                .detection_latency_ns
                .add_time(self.now.saturating_sub(cipher_at));
            self.l2[core].verify_fail_streak += 1;
            if !self.l2[core].verify_degraded
                && self.l2[core].verify_fail_streak >= self.cfg.recovery.l2_fallback_threshold
            {
                self.l2[core].verify_degraded = true;
                self.report.verify_fallbacks += 1;
            }
            let txn = self.txns.get_mut(&txn_id).expect("txn exists");
            txn.corrupt = None;
            if self.cfg.recovery.retry.should_retry(retries) {
                // Hand the retry to the MC-verified path so the refetched
                // line is checked end-to-end before it reaches this L2.
                txn.retries += 1;
                txn.mc_decrypt = true;
                txn.shipped_unverified = false;
                txn.cipher_at = None;
                txn.aes_done = None;
                self.report.integrity_retries += 1;
                let backoff = self.cfg.recovery.retry.backoff(retries);
                self.queue
                    .push(self.now + backoff, Ev::DataRefetch { txn: txn_id });
                return;
            }
            self.report.integrity_unrecovered += 1;
        } else {
            self.l2[core].verify_fail_streak = 0;
        }
        self.report.decrypted_at_l2 += 1;
        let txn = self.txns.get(&txn_id).expect("txn exists");
        if let Some(cipher_at) = txn.cipher_at {
            self.report
                .l2_finish_wait_ns
                .add_time(self.now.saturating_sub(cipher_at));
        }
        // Mark the supplying counter line as used (Fig 11 accounting).
        let line = txn.line;
        if txn.l2_ctr_ready.is_some() {
            let cb_idx = self.tree.geometry().counter_block_of(line);
            let block = self.tree.geometry().node_addr(0, cb_idx);
            if let Some(meta) = self.l2[core].cache.get_mut(block) {
                meta.used = true;
            }
        }
        self.complete_txn(txn_id, self.now);
    }

    /// Final completion: fill caches, wake waiters, record stats.
    pub(crate) fn complete_txn(&mut self, txn_id: TxnId, t: Time) {
        let txn = self.txns.get_mut(&txn_id).expect("txn exists");
        txn.done = true;
        let core = txn.core;
        let line = txn.line;
        let is_prefetch = txn.is_prefetch;
        let t_miss = txn.t_miss;
        let t_start = txn.t_start;
        let from_dram = txn.from_dram;
        let ctr_source = txn.ctr_source;
        // A speculative XPT read that completed for an access the LLC
        // served: wasted DRAM bandwidth, observed at completion.
        let xpt_read_wasted = !from_dram && txn.mc_data_at.is_some();
        let mut spans = std::mem::take(&mut txn.spans);
        if txn.aes_reserved {
            txn.aes_reserved = false;
            self.l2[core].aes_reserved = self.l2[core].aes_reserved.saturating_sub(1);
        }

        // Critical-path attribution. Scheduled work can legitimately
        // outlive the access (eager AES whose data came back verified from
        // an LLC hit), so ends are truncated at completion; `attribute`
        // still flags starts outside the window and inverted spans.
        for s in &mut spans {
            s.end = s.end.min(t);
        }
        spans.retain(|s| s.start < t);
        let att = attribute(t_start, t, &spans);
        self.report.crit_path.add(&att.per_component());
        self.report.crit_total_ps += t.saturating_sub(t_start).as_ps();
        self.report.overlap_credit_ns.add_time(att.overlap);
        self.report.crit_violations += u64::from(att.violations);
        self.tracer
            .record(core as u32, line.get(), t_start, t, &spans, &att);
        if xpt_read_wasted {
            self.report.xpt_wasted_reads += 1;
        }

        if from_dram {
            self.l2[core].window_dram_fills += 1;
            if let Some(src) = ctr_source {
                self.report.record_ctr_source(src);
            }
        }
        if !is_prefetch {
            self.report
                .l2_miss_latency_ns
                .add_time(t.saturating_sub(t_miss));
        }

        // Fill L2; dirty if any waiter was a write (RFO).
        let waiters = self.l2[core].mshr.complete(line);
        let dirty = waiters.iter().any(|w| w.is_write);
        let meta = L2Meta {
            kind: BlockKind::Data,
            used: false,
        };
        if let Some(victim) = self.l2[core].cache.insert(line, dirty, meta) {
            self.l2_victim(core, victim);
        }
        if !is_prefetch {
            self.l1_fill(core, line, false);
        }
        for w in waiters {
            if let Some(token) = w.token {
                self.queue.push(t, Ev::LoadComplete { core, token });
            }
        }
        self.txns.remove(&txn_id);
    }

    /// Handles an L2 victim line: counters are dropped (with Fig 11
    /// accounting), data victims travel to the LLC.
    pub(crate) fn l2_victim(&mut self, core: usize, victim: emcc_cache::EvictedLine<L2Meta>) {
        match victim.meta.kind {
            BlockKind::Counter => {
                self.l2[core].ctr_lines = self.l2[core].ctr_lines.saturating_sub(1);
                if victim.meta.used {
                    self.report.l2_ctr_useful += 1;
                } else {
                    self.report.l2_ctr_useless += 1;
                }
            }
            _ => {
                let slice = self.slice_of(victim.addr);
                let t = self.now + self.noc_l2_slice(core, slice, true);
                self.queue.push(
                    t,
                    Ev::SliceVictim {
                        line: victim.addr,
                        dirty: victim.dirty,
                        kind: victim.meta.kind,
                    },
                );
            }
        }
    }

    /// Invalidate-path eviction of an L2 counter line (MC update or budget
    /// replacement).
    pub(crate) fn evict_l2_ctr_line(&mut self, core: usize, block: LineAddr, by_mc: bool) {
        if let Some(ev) = self.l2[core].cache.invalidate(block) {
            self.l2[core].ctr_lines = self.l2[core].ctr_lines.saturating_sub(1);
            if by_mc {
                self.report.l2_ctr_invalidations += 1;
            }
            if ev.meta.used {
                self.report.l2_ctr_useful += 1;
            } else {
                self.report.l2_ctr_useless += 1;
            }
        }
    }

    /// §IV-F: periodically compare DRAM-served fills against L2 accesses
    /// and switch EMCC off for a non-memory-intensive window.
    fn sample_intensity(&mut self, core: usize) {
        if !self.cfg.scheme.is_emcc() || !self.cfg.emcc.dynamic_disable {
            return;
        }
        let window = self.cfg.emcc.intensity_window;
        let threshold = u64::from(self.cfg.emcc.intensity_threshold_per_mille);
        let l2 = &mut self.l2[core];
        l2.window_accesses += 1;
        if l2.window_accesses >= window {
            let per_mille = l2.window_dram_fills * 1000 / l2.window_accesses;
            l2.emcc_disabled = per_mille < threshold;
            if l2.emcc_disabled {
                self.report.emcc_disabled_windows += 1;
            }
            l2.window_accesses = 0;
            l2.window_dram_fills = 0;
        }
    }

    // ----- Prefetcher -------------------------------------------------------

    fn train_prefetcher(&mut self, core: usize, line: LineAddr) {
        if self.cfg.l2_prefetch_degree == 0 {
            return;
        }
        // Index by 4 KB region so interleaved streams train separately
        // (high multiply bits: low bits of a multiplicative hash collide).
        let slot = ((line.get() >> 6).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize;
        let (last, last_stride, conf) = self.l2[core].stride[slot];
        let stride = line.get() as i64 - last as i64;
        if stride != 0 && stride == last_stride && stride.unsigned_abs() <= 8 {
            let conf = conf + 1;
            self.l2[core].stride[slot] = (line.get(), stride, conf);
            if conf >= 2 {
                for d in 1..=self.cfg.l2_prefetch_degree {
                    let target = line.get() as i64 + stride * i64::from(d);
                    if target < 0 {
                        continue;
                    }
                    let target = LineAddr::new(target as u64);
                    if self.l2[core].cache.contains(target)
                        || self.l2[core].mshr.is_outstanding(target)
                    {
                        continue;
                    }
                    if self.l2[core].mshr.allocate(
                        target,
                        Waiter {
                            token: None,
                            is_write: false,
                        },
                    ) == MshrOutcome::Allocated
                    {
                        self.report.prefetches += 1;
                        self.start_data_txn(core, target, true, self.now);
                    }
                }
            }
        } else {
            self.l2[core].stride[slot] = (line.get(), stride, 0);
        }
    }
}
