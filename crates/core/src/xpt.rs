//! XPT-style LLC miss prediction.
//!
//! Intel's XPT ("eXtended Prediction Table") forwards an L2 miss directly
//! to the memory controller in parallel with the LLC lookup when the miss
//! is predicted to also miss in LLC (§IV-D, Fig 14). We model it as a
//! per-core table of 2-bit saturating counters indexed by a hash of the
//! 4 KB region, trained on actual LLC outcomes. Irregular workloads miss
//! LLC ~91% of the time (§IV-D), so the predictor quickly saturates toward
//! "miss" for their regions.

use emcc_sim::LineAddr;

/// A per-core LLC miss predictor.
///
/// # Examples
///
/// ```
/// use emcc_system::XptPredictor;
/// use emcc_sim::LineAddr;
///
/// let mut p = XptPredictor::new(1024);
/// let line = LineAddr::new(42);
/// // Cold predictor leans toward "miss" after observing misses.
/// p.train(line, true);
/// p.train(line, true);
/// assert!(p.predict_miss(line));
/// ```
#[derive(Debug, Clone)]
pub struct XptPredictor {
    counters: Vec<u8>,
    predictions: u64,
    correct: u64,
}

/// Lines per 4 KB training region.
const REGION_LINES: u64 = 64;

impl XptPredictor {
    /// Creates a predictor with `entries` two-bit counters.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a positive power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "entries must be a power of two"
        );
        // Initialize weakly toward "miss": a cold region's first access
        // almost certainly misses the LLC.
        XptPredictor {
            counters: vec![2; entries],
            predictions: 0,
            correct: 0,
        }
    }

    fn index(&self, line: LineAddr) -> usize {
        let region = line.get() / REGION_LINES;
        let h = region.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h as usize) & (self.counters.len() - 1)
    }

    /// Predicts whether `line` will miss in the LLC.
    pub fn predict_miss(&mut self, line: LineAddr) -> bool {
        self.predictions += 1;
        self.counters[self.index(line)] >= 2
    }

    /// Trains on the observed outcome (`missed` = true if LLC missed).
    pub fn train(&mut self, line: LineAddr, missed: bool) {
        let i = self.index(line);
        let c = &mut self.counters[i];
        if missed {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Records that the last prediction for this line was correct.
    pub fn record_correct(&mut self) {
        self.correct += 1;
    }

    /// Predictions made so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Accuracy over recorded outcomes (requires callers to call
    /// [`Self::record_correct`]).
    pub fn accuracy(&self) -> f64 {
        emcc_sim::stats::ratio(self.correct, self.predictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_miss_heavy_region() {
        let mut p = XptPredictor::new(256);
        let line = LineAddr::new(1000);
        for _ in 0..4 {
            p.train(line, true);
        }
        assert!(p.predict_miss(line));
    }

    #[test]
    fn learns_hit_heavy_region() {
        let mut p = XptPredictor::new(256);
        let line = LineAddr::new(1000);
        for _ in 0..4 {
            p.train(line, false);
        }
        assert!(!p.predict_miss(line));
    }

    #[test]
    fn regions_share_counters() {
        let mut p = XptPredictor::new(256);
        // Lines in the same 4 KB region share a counter.
        let a = LineAddr::new(0);
        let b = LineAddr::new(63);
        for _ in 0..4 {
            p.train(a, false);
        }
        assert!(!p.predict_miss(b));
        // A different region is independent.
        let c = LineAddr::new(64);
        for _ in 0..4 {
            p.train(c, true);
        }
        assert!(p.predict_miss(c));
        assert!(!p.predict_miss(b));
    }

    #[test]
    fn cold_predictor_leans_miss() {
        let mut p = XptPredictor::new(256);
        assert!(p.predict_miss(LineAddr::new(123_456)));
    }

    #[test]
    #[should_panic]
    fn non_pow2_rejected() {
        let _ = XptPredictor::new(100);
    }
}
