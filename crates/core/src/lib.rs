//! The EMCC full-system simulator: the paper's contribution, on top of
//! every substrate in the workspace.
//!
//! [`SecureSystem`] assembles trace-driven out-of-order-approximate cores,
//! private L1/L2 caches, a sliced non-inclusive LLC over a mesh NoC, a
//! secure memory controller (counter cache, integrity-tree walk, AES
//! pool, split-counter overflow engine) and a DDR4 timing model — and
//! implements the four design points of
//! [`SecurityScheme`](emcc_secmem::SecurityScheme):
//!
//! * `NonSecure` — no memory cryptography (the performance ceiling),
//! * `McOnly` — counters cached only in the MC (§III's comparison point),
//! * `CtrInLlc` — the Morphable-style baseline: LLC is a second-level
//!   counter cache, accessed serially after a data LLC miss,
//! * `Emcc` — the paper's scheme: counters cached *and used* in L2, with
//!   parallel counter/data requests to LLC, eager counter-mode AES at L2
//!   overlapped with the DRAM→MC→LLC→L2 data return, adaptive offload
//!   back to the MC, and MC→L2 counter invalidations.
//!
//! # Examples
//!
//! ```no_run
//! use emcc_system::{SecureSystem, SystemConfig};
//! use emcc_secmem::SecurityScheme;
//! use emcc_workloads::{Benchmark, presets::WorkloadScale};
//! use emcc_workloads::kernels::GraphKernel;
//!
//! let config = SystemConfig::table_i(SecurityScheme::Emcc);
//! let sources = Benchmark::Graph(GraphKernel::Bfs).build_scaled(1, 4, WorkloadScale::Test);
//! let report = SecureSystem::new(config).run(sources, 20_000);
//! println!("IPC = {:.2}", report.ipc());
//! ```

pub mod config;
pub mod core_model;
pub mod mc;
pub mod report;
pub mod system;
pub mod timeline;
pub mod xpt;

pub use config::{EmccConfig, SystemConfig};
pub use report::SimReport;
pub use system::SecureSystem;
pub use timeline::{Timeline, TimelineScenario};
pub use xpt::XptPredictor;
