//! System configuration (the paper's Table I).

use emcc_counters::CounterDesign;
use emcc_crypto::CryptoLatencies;
use emcc_dram::{DramConfig, FaultConfig};
use emcc_noc::{Mesh, NocLatency};
use emcc_secmem::{RecoveryConfig, SecurityScheme};
use emcc_sim::time::Frequency;
use emcc_sim::Time;

/// EMCC-specific knobs (§IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmccConfig {
    /// Counter-line budget in the L2 (§V: "EMCC only caches 32KB worth of
    /// counters in L2"); 32 KB = 512 lines.
    pub l2_counter_budget_lines: u64,
    /// Fraction of chip AES bandwidth moved from the MC to the L2s
    /// (Fig 19 sweeps 20/40/50/80%; default 50%).
    pub aes_fraction_to_l2: f64,
    /// Delay of the serial counter lookup in L2 after a data miss
    /// (the 'J' term of Fig 10a: spare-cycle lookup).
    pub ctr_lookup_delay: Time,
    /// How long L2 waits after a data miss before starting AES, so AES
    /// bandwidth is not wasted on LLC hits (§IV-D: "only starts
    /// calculating AES ... after waiting LLC hit latency").
    pub aes_start_wait: Time,
    /// Queue-delay threshold above which L2 offloads decryption back to
    /// the MC (§IV-D adaptive offload): compared against the latency an
    /// L2-side decryption could save (≈ the MC→L2 response time).
    pub offload_threshold: Time,
    /// §IV-F extension: periodically sample each L2's memory intensity
    /// (DRAM-served fills per L2 access) and turn EMCC off for that L2
    /// while the application is not memory-intensive, so counter caching
    /// wastes neither L2 space nor energy. Off by default (the paper's
    /// primary evaluation does not use it).
    pub dynamic_disable: bool,
    /// Dynamic-disable threshold: minimum DRAM-served fills per 1000 L2
    /// accesses for EMCC to stay on in the next window.
    pub intensity_threshold_per_mille: u32,
    /// Sampling window in L2 accesses for the dynamic-disable decision.
    pub intensity_window: u64,
}

// Configurations serve as memoization keys for experiment run-caches.
// `aes_fraction_to_l2` is the only non-integral field; it is always a
// finite literal from a sweep (never NaN), so bitwise equality/hashing is
// exact and `Eq` is sound.
impl Eq for EmccConfig {}

impl std::hash::Hash for EmccConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let EmccConfig {
            l2_counter_budget_lines,
            aes_fraction_to_l2,
            ctr_lookup_delay,
            aes_start_wait,
            offload_threshold,
            dynamic_disable,
            intensity_threshold_per_mille,
            intensity_window,
        } = self;
        l2_counter_budget_lines.hash(state);
        aes_fraction_to_l2.to_bits().hash(state);
        ctr_lookup_delay.hash(state);
        aes_start_wait.hash(state);
        offload_threshold.hash(state);
        dynamic_disable.hash(state);
        intensity_threshold_per_mille.hash(state);
        intensity_window.hash(state);
    }
}

impl Default for EmccConfig {
    fn default() -> Self {
        EmccConfig {
            l2_counter_budget_lines: 512,
            aes_fraction_to_l2: 0.5,
            ctr_lookup_delay: Time::from_ns(2),
            aes_start_wait: Time::from_ns(23),
            offload_threshold: Time::from_ns(17),
            dynamic_disable: false,
            intensity_threshold_per_mille: 10,
            intensity_window: 4096,
        }
    }
}

/// Full system configuration.
///
/// Defaults reproduce Table I; experiment sweeps override single fields.
///
/// # Examples
///
/// ```
/// use emcc_system::SystemConfig;
/// use emcc_secmem::SecurityScheme;
///
/// let c = SystemConfig::table_i(SecurityScheme::Emcc);
/// assert_eq!(c.cores, 4);
/// assert_eq!(c.l2_size, 1024 * 1024);
/// assert_eq!(c.llc_total_size(), 8 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    /// Number of cores (Table I: 4).
    pub cores: usize,
    /// Core clock (Table I: 3.2 GHz).
    pub freq: Frequency,
    /// Reorder-buffer entries (Table I: 192).
    pub rob_entries: u64,
    /// Retire/issue width (Table I: 4-wide).
    pub width: u64,
    /// Maximum outstanding L1 misses per core (MLP cap).
    pub max_outstanding_loads: usize,
    /// L1D size in bytes (Table I: 64 KB).
    pub l1_size: u64,
    /// L1D associativity (Table I: 8).
    pub l1_ways: u32,
    /// L1D latency (Table I: 2 ns).
    pub l1_latency: Time,
    /// L2 size in bytes (Table I: 1 MB).
    pub l2_size: u64,
    /// L2 associativity (Table I: 8).
    pub l2_ways: u32,
    /// L2 additive latency (Table I: 4 ns).
    pub l2_latency: Time,
    /// Number of LLC slices (mapped onto mesh core-tile positions).
    pub llc_slices: usize,
    /// Per-slice LLC size in bytes (16 slices × 512 KB = Table I's 8 MB).
    pub llc_slice_size: u64,
    /// LLC associativity (Table I: 16).
    pub llc_ways: u32,
    /// LLC slice SRAM latency (tag + data array).
    pub llc_sram_latency: Time,
    /// MC metadata (counter) cache size in bytes (Table I: 128 KB).
    pub mc_cache_size: u64,
    /// MC metadata cache associativity (Table I: 32).
    pub mc_cache_ways: u32,
    /// MC metadata cache latency (Table I: 3 ns).
    pub mc_cache_latency: Time,
    /// Cryptography latencies (AES 14 ns, Morphable decode 3 ns).
    pub crypto: CryptoLatencies,
    /// The secure-memory design point under test.
    pub scheme: SecurityScheme,
    /// Counter organization (Morphable for the primary baseline).
    pub counter_design: CounterDesign,
    /// DRAM configuration (Table I: DDR4-3200, 1 channel, 8 ranks).
    pub dram: DramConfig,
    /// Mesh topology (Fig 4).
    pub mesh: Mesh,
    /// NoC latency constants (calibrated to Fig 3).
    pub noc: NocLatency,
    /// LLC-miss prediction (Intel XPT-like, §IV-D / Fig 14).
    pub xpt_enabled: bool,
    /// §IV-F extension: inclusive LLC. DRAM fills are also inserted into
    /// the LLC (marked *encrypted & unverified* when the fill is EMCC
    /// ciphertext); L2 write-backs — clean or dirty — reset the bit with
    /// decrypted contents; LLC evictions back-invalidate L1/L2 copies.
    /// Default false (the paper's primary evaluation is non-inclusive).
    pub inclusive_llc: bool,
    /// L2 stride prefetcher degree (Table I: 2); 0 disables.
    pub l2_prefetch_degree: u32,
    /// EMCC knobs.
    pub emcc: EmccConfig,
    /// Protected data space in lines (128 GB).
    pub data_lines: u64,
    /// Hard wall-clock limit in simulated time (safety net).
    pub max_sim_time: Time,
    /// RNG seed for tie-breaking decisions.
    pub seed: u64,
    /// Optional DRAM fault injection (fault campaigns); `None` disables
    /// injection entirely and is behaviorally identical to the seed model.
    pub fault: Option<FaultConfig>,
    /// Recovery policy for failed verifications (retry/backoff/fallback).
    pub recovery: RecoveryConfig,
    /// Mirror architectural writes into a `FunctionalSecureMemory` shadow
    /// and diff per-line counter state at the end of the run (differential
    /// checking for fault campaigns; costs memory, default off).
    pub shadow_check: bool,
}

impl SystemConfig {
    /// The paper's Table I configuration for a given scheme.
    pub fn table_i(scheme: SecurityScheme) -> Self {
        SystemConfig {
            cores: 4,
            freq: Frequency::from_ghz(3.2),
            rob_entries: 192,
            width: 4,
            max_outstanding_loads: 16,
            l1_size: 64 * 1024,
            l1_ways: 8,
            l1_latency: Time::from_ns(2),
            l2_size: 1024 * 1024,
            l2_ways: 8,
            l2_latency: Time::from_ns(4),
            llc_slices: 16,
            llc_slice_size: 512 * 1024,
            llc_ways: 16,
            llc_sram_latency: Time::from_ns(4),
            mc_cache_size: 128 * 1024,
            mc_cache_ways: 32,
            mc_cache_latency: Time::from_ns(3),
            crypto: CryptoLatencies::paper_default(),
            scheme,
            counter_design: CounterDesign::Morphable,
            dram: DramConfig::table_i(1),
            mesh: Mesh::xeon_w3175x(),
            noc: NocLatency::calibrated(),
            xpt_enabled: true,
            inclusive_llc: false,
            l2_prefetch_degree: 2,
            emcc: EmccConfig::default(),
            data_lines: 1 << 31,
            max_sim_time: Time::from_ms(400),
            seed: 0xE3CC,
            fault: None,
            recovery: RecoveryConfig::default(),
            shadow_check: false,
        }
    }

    /// Total LLC capacity.
    pub fn llc_total_size(&self) -> u64 {
        self.llc_slice_size * self.llc_slices as u64
    }

    /// The mesh position (core-tile index) hosting LLC slice `s`: slices
    /// are spread evenly over the mesh's core tiles.
    pub fn slice_position(&self, s: usize) -> usize {
        s * self.mesh.num_cores() / self.llc_slices
    }

    /// The mesh position (core-tile index) hosting core `c`.
    pub fn core_position(&self, c: usize) -> usize {
        // Spread the (typically 4) simulated cores across the mesh so L2→
        // slice distances are representative, like pinning threads apart.
        c * self.mesh.num_cores() / self.cores
    }

    /// Builder-style scheme override.
    pub fn with_scheme(mut self, scheme: SecurityScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Builder-style AES-latency override (Fig 18).
    pub fn with_aes_latency(mut self, aes: Time) -> Self {
        self.crypto = self.crypto.with_aes(aes);
        self
    }

    /// Builder-style counter-cache-size override (Fig 20).
    pub fn with_mc_cache_size(mut self, bytes: u64) -> Self {
        self.mc_cache_size = bytes;
        self
    }

    /// Builder-style channel-count override (Fig 21/22).
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.dram = DramConfig::table_i(channels);
        self
    }

    /// Builder-style fault-injection override (fault campaigns).
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Builder-style recovery-policy override.
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Builder-style shadow differential checking toggle.
    pub fn with_shadow_check(mut self, on: bool) -> Self {
        self.shadow_check = on;
        self
    }

    /// Builder-style LLC-capacity override (Fig 7's 12 MB/core): sets the
    /// per-slice size so the total is `bytes`, adapting associativity so
    /// the set count stays a power of two (e.g. 3 MB slices become
    /// 24-way × 2048 sets).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` does not split into at least one line per slice.
    pub fn with_llc_total(mut self, bytes: u64) -> Self {
        self.llc_slice_size = bytes / self.llc_slices as u64;
        let lines = self.llc_slice_size / 64;
        assert!(lines > 0, "LLC slice too small");
        let target_sets = (lines / u64::from(self.llc_ways)).max(1);
        let sets = 1u64 << (63 - target_sets.leading_zeros() as u64);
        self.llc_ways = (lines / sets) as u32;
        let _ = emcc_cache::CacheConfig::new(self.llc_slice_size, self.llc_ways);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_defaults() {
        let c = SystemConfig::table_i(SecurityScheme::CtrInLlc);
        assert_eq!(c.cores, 4);
        assert_eq!(c.rob_entries, 192);
        assert_eq!(c.l1_latency, Time::from_ns(2));
        assert_eq!(c.l2_latency, Time::from_ns(4));
        assert_eq!(c.llc_total_size(), 8 * 1024 * 1024);
        assert_eq!(c.mc_cache_size, 128 * 1024);
        assert_eq!(c.crypto.aes, Time::from_ns(14));
        assert_eq!(c.dram.channels, 1);
        assert!(c.xpt_enabled);
    }

    #[test]
    fn positions_spread_over_mesh() {
        let c = SystemConfig::table_i(SecurityScheme::Emcc);
        let p: Vec<usize> = (0..c.cores).map(|i| c.core_position(i)).collect();
        assert_eq!(p, vec![0, 7, 14, 21]);
        assert_eq!(c.slice_position(15), 26);
        // All slice positions distinct.
        let sp: std::collections::HashSet<usize> =
            (0..c.llc_slices).map(|s| c.slice_position(s)).collect();
        assert_eq!(sp.len(), c.llc_slices);
    }

    #[test]
    fn builders() {
        let c = SystemConfig::table_i(SecurityScheme::Emcc)
            .with_aes_latency(Time::from_ns(25))
            .with_mc_cache_size(512 * 1024)
            .with_channels(8)
            .with_llc_total(48 * 1024 * 1024);
        assert_eq!(c.crypto.aes, Time::from_ns(25));
        assert_eq!(c.mc_cache_size, 512 * 1024);
        assert_eq!(c.dram.channels, 8);
        assert_eq!(c.llc_total_size(), 48 * 1024 * 1024);
    }

    #[test]
    fn config_is_a_usable_map_key() {
        use std::collections::HashMap;
        let a = SystemConfig::table_i(SecurityScheme::Emcc);
        let b = SystemConfig::table_i(SecurityScheme::Emcc);
        let mut c = SystemConfig::table_i(SecurityScheme::Emcc);
        c.emcc.aes_fraction_to_l2 = 0.8;
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut m = HashMap::new();
        m.insert(a, 1);
        assert_eq!(m.get(&b), Some(&1));
        assert_eq!(m.get(&c), None);
    }

    #[test]
    fn emcc_defaults_match_section_v() {
        let e = EmccConfig::default();
        assert_eq!(e.l2_counter_budget_lines * 64, 32 * 1024);
        assert_eq!(e.aes_fraction_to_l2, 0.5);
    }
}
