//! Trace-driven core model with a ROB window and dependence stalls.
//!
//! Approximates a 4-wide, 192-entry-ROB out-of-order core: instructions
//! advance at `width` per cycle; loads occupy the window until their data
//! returns; a load marked `depends_on_prev` cannot issue before the
//! previous load completes (pointer chasing); the core stalls when the
//! window or the outstanding-miss budget fills. Stores retire immediately
//! through a store buffer.

use std::collections::VecDeque;

use emcc_sim::time::Frequency;
use emcc_sim::Time;
use emcc_workloads::{MemOp, TraceSource};

/// An outstanding load.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    inst_index: u64,
    done: bool,
}

/// Why the core cannot advance right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stall {
    /// Next op's issue point is in the future (instruction gap).
    UntilTime(Time),
    /// Blocked on an outstanding load (ROB full, MLP cap, or dependence);
    /// re-evaluate when any load completes.
    OnLoad,
    /// The op quota has been reached; the core is finished.
    Finished,
}

/// What the core wants the memory system to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreIssue {
    /// The memory operation to perform.
    pub op: MemOp,
    /// Token to pass back to [`CoreModel::complete_load`] when data
    /// returns (loads only).
    pub load_token: u64,
}

/// One simulated core.
pub struct CoreModel {
    source: Box<dyn TraceSource>,
    freq: Frequency,
    width: u64,
    rob_entries: u64,
    max_outstanding: usize,
    quota: u64,

    issued_ops: u64,
    inst_count: u64,
    next_issue_at: Time,
    pending: Option<MemOp>,
    in_flight: VecDeque<InFlight>,
    last_load_token: Option<u64>,
    last_load_done_at: Option<Time>,
    retired_insts: u64,
}

impl std::fmt::Debug for CoreModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreModel")
            .field("issued_ops", &self.issued_ops)
            .field("in_flight", &self.in_flight.len())
            .finish()
    }
}

impl CoreModel {
    /// Creates a core running `quota` memory operations from `source`.
    pub fn new(
        source: Box<dyn TraceSource>,
        freq: Frequency,
        width: u64,
        rob_entries: u64,
        max_outstanding: usize,
        quota: u64,
    ) -> Self {
        CoreModel {
            source,
            freq,
            width,
            rob_entries,
            max_outstanding,
            quota,
            issued_ops: 0,
            inst_count: 0,
            next_issue_at: Time::ZERO,
            pending: None,
            in_flight: VecDeque::new(),
            last_load_token: None,
            last_load_done_at: None,
            retired_insts: 0,
        }
    }

    /// True once the quota is reached and all loads drained.
    pub fn finished(&self) -> bool {
        self.issued_ops >= self.quota && self.in_flight.is_empty()
    }

    /// Instructions retired (trace gaps + memory ops issued).
    pub fn retired_insts(&self) -> u64 {
        self.retired_insts
    }

    /// Memory operations issued.
    pub fn issued_ops(&self) -> u64 {
        self.issued_ops
    }

    /// Attempts to issue the next memory operation at `now`.
    ///
    /// Returns either an operation to perform or the reason the core is
    /// stalled. The caller must:
    /// * perform the op (loads: call [`Self::complete_load`] when data is
    ///   ready, then retry `advance`),
    /// * on `UntilTime(t)`, retry at `t`,
    /// * on `OnLoad`, retry after the next `complete_load`.
    pub fn advance(&mut self, now: Time) -> Result<CoreIssue, Stall> {
        if self.issued_ops >= self.quota {
            return Err(Stall::Finished);
        }
        // Load the next op and account its instruction gap.
        let op = match self.pending {
            Some(op) => op,
            None => {
                let op = self.source.next_op();
                // Gap instructions retire at `width` per cycle.
                let gap_cycles = u64::from(op.gap).div_ceil(self.width);
                self.next_issue_at = self
                    .next_issue_at
                    .max(now)
                    .max(self.next_issue_at + self.freq.cycles(gap_cycles));
                self.inst_count += u64::from(op.gap) + 1;
                self.pending = Some(op);
                op
            }
        };

        if self.next_issue_at > now {
            return Err(Stall::UntilTime(self.next_issue_at));
        }

        // Window: cannot run further than rob_entries past the oldest
        // incomplete load.
        if let Some(oldest) = self.in_flight.front() {
            if !oldest.done && self.inst_count - oldest.inst_index >= self.rob_entries {
                return Err(Stall::OnLoad);
            }
        }
        // MLP cap.
        let live = self.in_flight.iter().filter(|l| !l.done).count();
        if !op.is_write && live >= self.max_outstanding {
            return Err(Stall::OnLoad);
        }
        // Dependence: a dependent load waits for the previous load.
        if op.depends_on_prev {
            match self.last_load_done_at {
                Some(t) if t <= now => {}
                Some(_) | None if self.last_load_token.is_none() => {}
                Some(t) => return Err(Stall::UntilTime(t)),
                None => return Err(Stall::OnLoad),
            }
        }

        // Issue.
        self.pending = None;
        self.issued_ops += 1;
        self.retired_insts = self.inst_count;
        let token = self.inst_count;
        if !op.is_write {
            self.in_flight.push_back(InFlight {
                inst_index: token,
                done: false,
            });
            self.last_load_token = Some(token);
            self.last_load_done_at = None;
        }
        Ok(CoreIssue {
            op,
            load_token: token,
        })
    }

    /// Marks a load complete at `now`; returns true if the core might now
    /// be able to advance (the caller should re-run [`Self::advance`]).
    pub fn complete_load(&mut self, token: u64, now: Time) -> bool {
        for l in &mut self.in_flight {
            if l.inst_index == token {
                l.done = true;
                break;
            }
        }
        if self.last_load_token == Some(token) {
            self.last_load_done_at = Some(now);
        }
        // Retire completed loads from the window head.
        while matches!(self.in_flight.front(), Some(l) if l.done) {
            self.in_flight.pop_front();
        }
        true
    }

    /// Fast completion for loads that hit in L1/L2 without events.
    pub fn complete_load_immediately(&mut self, token: u64, done_at: Time) {
        self.complete_load(token, done_at);
        if self.last_load_token == Some(token) {
            self.last_load_done_at = Some(done_at);
        }
    }

    /// The benchmark name of the underlying trace.
    pub fn source_name(&self) -> &str {
        self.source.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcc_sim::LineAddr;
    use emcc_workloads::Trace;

    fn core_with(ops: Vec<MemOp>, quota: u64, mlp: usize, rob: u64) -> CoreModel {
        CoreModel::new(
            Box::new(Trace::new("t", ops).cursor(0)),
            Frequency::from_ghz(3.2),
            4,
            rob,
            mlp,
            quota,
        )
    }

    #[test]
    fn issues_ops_in_order() {
        let ops = vec![
            MemOp::load(LineAddr::new(1), 0),
            MemOp::store(LineAddr::new(2), 0),
        ];
        let mut c = core_with(ops, 2, 8, 192);
        let a = c.advance(Time::ZERO).unwrap();
        assert_eq!(a.op.line.get(), 1);
        let b = c.advance(Time::ZERO).unwrap();
        assert!(b.op.is_write);
        assert!(matches!(c.advance(Time::ZERO), Err(Stall::Finished)));
    }

    #[test]
    fn gap_delays_issue() {
        let ops = vec![MemOp::load(LineAddr::new(1), 400)];
        let mut c = core_with(ops, 1, 8, 192);
        // 400 instructions at 4-wide, 3.2 GHz = 100 cycles = 31.25 ns.
        match c.advance(Time::ZERO) {
            Err(Stall::UntilTime(t)) => assert_eq!(t, Time::from_ps(31_250)),
            other => panic!("expected time stall, got {other:?}"),
        }
        assert!(c.advance(Time::from_ps(31_250)).is_ok());
    }

    #[test]
    fn mlp_cap_blocks() {
        let ops = vec![MemOp::load(LineAddr::new(1), 0); 4];
        let mut c = core_with(ops, 4, 2, 1_000_000);
        let t1 = c.advance(Time::ZERO).unwrap().load_token;
        let _t2 = c.advance(Time::ZERO).unwrap().load_token;
        assert!(matches!(c.advance(Time::ZERO), Err(Stall::OnLoad)));
        c.complete_load(t1, Time::from_ns(10));
        assert!(c.advance(Time::from_ns(10)).is_ok());
    }

    #[test]
    fn rob_window_blocks_distant_ops() {
        // Two loads separated by 300 instructions with a tiny ROB: the
        // second cannot issue until the first completes.
        let ops = vec![
            MemOp::load(LineAddr::new(1), 0),
            MemOp::load(LineAddr::new(2), 300),
        ];
        let mut c = core_with(ops, 2, 8, 192);
        let t1 = c.advance(Time::ZERO).unwrap().load_token;
        let t_gap = match c.advance(Time::ZERO) {
            Err(Stall::UntilTime(t)) => t,
            other => panic!("expected gap stall, got {other:?}"),
        };
        assert!(matches!(c.advance(t_gap), Err(Stall::OnLoad)));
        c.complete_load(t1, t_gap);
        assert!(c.advance(t_gap).is_ok());
    }

    #[test]
    fn dependent_load_waits_for_previous() {
        let ops = vec![
            MemOp::load(LineAddr::new(1), 0),
            MemOp::dependent_load(LineAddr::new(2), 0),
        ];
        let mut c = core_with(ops, 2, 8, 192);
        let t1 = c.advance(Time::ZERO).unwrap().load_token;
        assert!(matches!(c.advance(Time::ZERO), Err(Stall::OnLoad)));
        c.complete_load(t1, Time::from_ns(50));
        // Completed at 50 ns: cannot issue earlier.
        match c.advance(Time::from_ns(20)) {
            Err(Stall::UntilTime(t)) => assert_eq!(t, Time::from_ns(50)),
            other => panic!("expected until-time stall, got {other:?}"),
        }
        assert!(c.advance(Time::from_ns(50)).is_ok());
    }

    #[test]
    fn stores_do_not_occupy_window() {
        let ops = vec![MemOp::store(LineAddr::new(1), 0); 100];
        let mut c = core_with(ops, 100, 1, 8);
        let mut t = Time::ZERO;
        let mut issued = 0;
        for _ in 0..1000 {
            match c.advance(t) {
                Ok(_) => issued += 1,
                Err(Stall::UntilTime(nt)) => t = nt,
                Err(Stall::OnLoad) => panic!("stores must not block"),
                Err(Stall::Finished) => break,
            }
        }
        assert_eq!(issued, 100);
        assert!(c.finished());
    }

    #[test]
    fn retired_instruction_count_includes_gaps() {
        let ops = vec![MemOp::load(LineAddr::new(1), 9)];
        let mut c = core_with(ops, 1, 8, 192);
        let mut t = Time::ZERO;
        loop {
            match c.advance(t) {
                Ok(_) => break,
                Err(Stall::UntilTime(nt)) => t = nt,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(c.retired_insts(), 10); // 9 gap + 1 memory op
    }
}
