//! Simulation reports: every statistic the paper's figures need.

use emcc_dram::DramStats;
use emcc_sim::stats::{ratio, Histogram, RunningMean};
use emcc_sim::trace::Component;
use emcc_sim::Time;

/// Per-component critical-path histograms over completed data reads.
///
/// Each completed access contributes one sample per component: the
/// critical nanoseconds [`attribute`](emcc_sim::trace::attribute) charged
/// to it (zero when the component was absent or fully hidden). The
/// per-component means are therefore a simulated Fig 5/10 latency
/// breakdown.
#[derive(Debug, Clone)]
pub struct CritPathStats {
    hists: [Histogram; Component::COUNT],
    /// Exact picosecond totals per component (histograms quantize).
    sum_ps: [u64; Component::COUNT],
}

impl Default for CritPathStats {
    fn default() -> Self {
        // 32 bins of 4 ns cover 0-128 ns, past the worst serial tree walk
        // of Fig 5; pathological tails land in the overflow bucket.
        CritPathStats {
            hists: std::array::from_fn(|_| Histogram::new(0.0, 4.0, 32)),
            sum_ps: [0; Component::COUNT],
        }
    }
}

impl CritPathStats {
    /// Records one access's per-component critical time.
    pub fn add(&mut self, per: &[Time; Component::COUNT]) {
        for (i, t) in per.iter().enumerate() {
            self.hists[i].add_time(*t);
            self.sum_ps[i] += t.as_ps();
        }
    }

    /// Histogram of critical nanoseconds for one component.
    pub fn component(&self, comp: Component) -> &Histogram {
        &self.hists[comp.index()]
    }

    /// Mean critical nanoseconds per access for one component.
    pub fn mean_ns(&self, comp: Component) -> f64 {
        self.hists[comp.index()].mean()
    }

    /// Exact critical picoseconds charged to one component.
    pub fn sum_ps(&self, comp: Component) -> u64 {
        self.sum_ps[comp.index()]
    }

    /// Exact critical picoseconds across all components. Equals
    /// [`SimReport::crit_total_ps`] by the tiling law — every instant of
    /// every attributed access is charged to exactly one component.
    pub fn total_sum_ps(&self) -> u64 {
        self.sum_ps.iter().sum()
    }

    /// Number of accesses recorded (count of any one histogram).
    pub fn accesses(&self) -> u64 {
        self.hists[0].total()
    }
}

/// Where a data read's counter was found (Figs 6/7 categories, plus the
/// EMCC-only L2 category).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrSource {
    /// Hit in the L2 (EMCC only).
    L2,
    /// Hit in the MC's private metadata cache.
    Mc,
    /// Hit in the LLC.
    Llc,
    /// Missed everywhere; fetched from DRAM.
    Dram,
}

/// Statistics of one simulation run.
///
/// Counters are raw event counts; derived ratios are methods so reports
/// stay assembleable. All figure-facing quantities are documented with the
/// figure they feed.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Benchmark label.
    pub benchmark: String,
    /// Scheme label.
    pub scheme: String,
    /// Total simulated time.
    pub elapsed: Time,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Core memory operations executed (loads + stores).
    pub mem_ops: u64,
    /// Core loads that hit L1.
    pub l1_hits: u64,
    /// Core data accesses reaching L2.
    pub l2_accesses: u64,
    /// Data hits in L2.
    pub l2_hits: u64,
    /// Core-demand data misses in L2 (Fig 11/12 denominator).
    pub l2_data_misses: u64,
    /// Data hits in LLC.
    pub llc_data_hits: u64,
    /// Data misses in LLC (= DRAM data reads for demand traffic).
    pub llc_data_misses: u64,
    /// DRAM reads for demand + prefetch data.
    pub dram_data_reads: u64,
    /// Data write-backs received by the MC.
    pub writebacks: u64,
    /// L2 miss latency for demand loads: L2 miss → verified data at L2
    /// (Fig 17).
    pub l2_miss_latency_ns: RunningMean,
    /// Secure-memory access latency: request at MC → response leaves MC.
    pub secure_access_latency_ns: RunningMean,
    /// Counter sourcing for DRAM data reads: [L2, MC, LLC, DRAM]
    /// (Figs 6/7).
    pub ctr_source: [u64; 4],
    /// Counter requests sent from L2s to LLC (Fig 12 numerator, EMCC).
    pub l2_ctr_reqs_to_llc: u64,
    /// Counter requests sent from the MC to LLC (Fig 12, baseline).
    pub mc_ctr_reqs_to_llc: u64,
    /// Counter lines inserted into L2s (Fig 23 denominator).
    pub l2_ctr_insertions: u64,
    /// Counter lines invalidated in L2s by MC updates (Fig 23 numerator).
    pub l2_ctr_invalidations: u64,
    /// Counter lines evicted/invalidated from L2 having never been used
    /// for a DRAM-served data miss (Fig 11 numerator).
    pub l2_ctr_useless: u64,
    /// Counter lines evicted/invalidated from L2 that were used.
    pub l2_ctr_useful: u64,
    /// DRAM data reads decrypted+verified at an L2 (Fig 19 numerator).
    pub decrypted_at_l2: u64,
    /// DRAM data reads decrypted+verified at the MC.
    pub decrypted_at_mc: u64,
    /// L2 misses that set the offload bit due to AES queue pressure.
    pub offloaded_for_bandwidth: u64,
    /// XPT: requests forwarded early to the MC.
    pub xpt_forwards: u64,
    /// XPT: forwarded requests that turned out to hit LLC (wasted DRAM
    /// bandwidth).
    pub xpt_wasted: u64,
    /// Level-0 counter overflows (rebases).
    pub overflows_l0: u64,
    /// Level-1+ (tree) overflows.
    pub overflows_higher: u64,
    /// Writebacks deferred because two overflows were outstanding.
    pub overflow_stalls: u64,
    /// Prefetches issued by the L2 stride prefetcher.
    pub prefetches: u64,
    /// EMCC: wait from ciphertext arrival at L2 to verified completion
    /// (exposed AES latency; ~0 when the overlap works).
    pub l2_finish_wait_ns: RunningMean,
    /// EMCC: AES queue delay observed at L2 AES start.
    pub l2_aes_queue_ns: RunningMean,
    /// EMCC: peak counter lines resident in any single L2 (budget check).
    pub l2_ctr_lines_peak: u64,
    /// §IV-F dynamic disable: sampling windows during which an L2 ran
    /// with EMCC turned off (0 unless `EmccConfig::dynamic_disable`).
    pub emcc_disabled_windows: u64,
    /// §IV-F inclusive mode: DRAM fills inserted into LLC still
    /// encrypted & unverified.
    pub llc_unverified_inserts: u64,
    /// §IV-F inclusive mode: LLC lookups that found only an unverified
    /// copy (re-fetched through the MC).
    pub llc_unverified_hits: u64,
    /// §IV-F inclusive mode: L1/L2 copies back-invalidated by LLC
    /// evictions.
    pub inclusive_back_invals: u64,
    /// DRAM-side statistics (queuing delay, per-class bus busy — Figs 15
    /// and 22).
    pub dram: DramStats,
    /// Fault campaigns: DRAM reads that returned corrupted contents
    /// (fresh injections plus re-reads of still-corrupt lines).
    pub faulty_reads: u64,
    /// Fault campaigns: fresh fault injections by `FaultClass::index()`
    /// (bit-flip, MAC-corrupt, stuck-line, replay, transient-read).
    pub faults_injected: [u64; 5],
    /// Verification failures detected (MC-side or L2-side MAC / tree-walk
    /// mismatches). The ECC-style interrupt count of §IV-D.
    pub integrity_violations: u64,
    /// Re-fetch retries issued by the recovery policy.
    pub integrity_retries: u64,
    /// Fetches still failing verification after the retry budget —
    /// surfaced as machine-check events; the line is poisoned.
    pub integrity_unrecovered: u64,
    /// EMCC degradation events: L2s that fell back to MC-side
    /// verification after a failure streak.
    pub verify_fallbacks: u64,
    /// Corrupted reads consumed without any verification (NonSecure runs
    /// only; always 0 under a secure scheme).
    pub silent_corruptions: u64,
    /// Latency from corrupted data arriving on-chip to its detection by a
    /// failed verification, in nanoseconds.
    pub detection_latency_ns: Histogram,
    /// Critical-path attribution: per-component histograms of critical
    /// nanoseconds per completed data read (simulated Fig 5/10 breakdown).
    pub crit_path: CritPathStats,
    /// Exact end-to-end picoseconds summed over attributed accesses; the
    /// conservation law: equals `crit_path.total_sum_ps()`.
    pub crit_total_ps: u64,
    /// Critical-path attribution: recorded work hidden under other work
    /// per completed read, in nanoseconds — EMCC's overlap credit.
    pub overlap_credit_ns: RunningMean,
    /// Attribution conservation: work spans recorded outside their
    /// access window. The fuzz law demands 0.
    pub crit_violations: u64,
    /// DRAM data reads completed on behalf of integrity-recovery
    /// re-fetches (these serve no *new* LLC miss).
    pub data_refetch_reads: u64,
    /// Completed DRAM data reads whose transaction was served by an LLC
    /// hit instead — XPT mis-speculation observed at completion time
    /// (`xpt_wasted` counts the same event at LLC-lookup time).
    pub xpt_wasted_reads: u64,
    /// Exact cutoff accounting: DRAM data reads still queued or in
    /// flight at run end for transactions that counted an LLC miss.
    pub dram_reads_inflight_at_cutoff: u64,
    /// Exact cutoff accounting: LLC data misses whose DRAM read had not
    /// yet been enqueued at run end.
    pub unissued_misses_at_cutoff: u64,
    /// Shadow differential checker: written lines compared at the end of
    /// the run (0 when `shadow_check` is off).
    pub shadow_lines: u64,
    /// Shadow differential checker: lines whose timing-model counter state
    /// diverged from the functional model (must be 0).
    pub shadow_mismatches: u64,
}

impl SimReport {
    /// Instructions per nanosecond across all cores.
    pub fn ipc(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        // Report IPC per core-cycle at 3.2 GHz equivalents: instructions
        // per ns divided by 3.2 gives IPC per core aggregate.
        self.instructions as f64 / self.elapsed.as_ns_f64()
    }

    /// Runtime-based performance: work per unit time, for normalization
    /// against a baseline run of the same work.
    pub fn perf(&self) -> f64 {
        self.ipc()
    }

    /// L2 data miss ratio.
    pub fn l2_miss_rate(&self) -> f64 {
        ratio(self.l2_data_misses, self.l2_accesses)
    }

    /// LLC data miss ratio (over LLC data lookups).
    pub fn llc_miss_rate(&self) -> f64 {
        ratio(
            self.llc_data_misses,
            self.llc_data_misses + self.llc_data_hits,
        )
    }

    /// Figs 6/7: fraction of DRAM data reads whose counter hit in the MC
    /// metadata cache (L2 hits under EMCC count toward on-chip hits).
    pub fn ctr_mc_hit_frac(&self) -> f64 {
        let total = self.ctr_source.iter().sum::<u64>();
        ratio(self.ctr_source[1] + self.ctr_source[0], total)
    }

    /// Figs 6/7: fraction whose counter hit in the LLC.
    pub fn ctr_llc_hit_frac(&self) -> f64 {
        ratio(self.ctr_source[2], self.ctr_source.iter().sum())
    }

    /// Figs 6/7: fraction whose counter missed on-chip entirely.
    pub fn ctr_llc_miss_frac(&self) -> f64 {
        ratio(self.ctr_source[3], self.ctr_source.iter().sum())
    }

    /// Fig 11: useless counter accesses to LLC per L2 data miss.
    pub fn useless_ctr_frac(&self) -> f64 {
        ratio(self.l2_ctr_useless, self.l2_data_misses)
    }

    /// Fig 12: total counter accesses to LLC per L2 data miss.
    pub fn ctr_llc_access_frac(&self) -> f64 {
        ratio(
            self.l2_ctr_reqs_to_llc + self.mc_ctr_reqs_to_llc,
            self.l2_data_misses,
        )
    }

    /// Fig 19: fraction of DRAM data reads decrypted at L2.
    pub fn l2_decrypt_frac(&self) -> f64 {
        ratio(
            self.decrypted_at_l2,
            self.decrypted_at_l2 + self.decrypted_at_mc,
        )
    }

    /// Fig 23: counter invalidations per counter insertion in L2.
    pub fn ctr_invalidation_frac(&self) -> f64 {
        ratio(self.l2_ctr_invalidations, self.l2_ctr_insertions)
    }

    /// Fig 15-style bandwidth utilization for one traffic class: bus busy
    /// time over elapsed time (per channel, summed across channels the
    /// ratio is of aggregate peak).
    pub fn bandwidth_utilization(&self, class: emcc_dram::RequestClass, channels: u64) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.dram.bus_busy_for(class).as_ns_f64() / (self.elapsed.as_ns_f64() * channels as f64)
    }

    /// Fault campaigns: fraction of corrupted reads that triggered a
    /// verification failure (1.0 = 100% detection; 0.0 when no faults).
    pub fn detection_rate(&self) -> f64 {
        ratio(self.integrity_violations, self.faulty_reads)
    }

    /// Records a counter sourcing event.
    pub fn record_ctr_source(&mut self, src: CtrSource) {
        let i = match src {
            CtrSource::L2 => 0,
            CtrSource::Mc => 1,
            CtrSource::Llc => 2,
            CtrSource::Dram => 3,
        };
        self.ctr_source[i] += 1;
    }

    /// Canonical JSON rendering of every field, for golden-report
    /// snapshots and determinism digests.
    ///
    /// The encoding is bit-stable: keys appear in declaration order,
    /// times are integral picoseconds, and floats use Rust's
    /// shortest-roundtrip `Display` (identical text for identical bits).
    /// Two runs are behaviourally identical iff their canonical JSON is
    /// byte-identical.
    pub fn canonical_json(&self) -> String {
        fn s(out: &mut String, key: &str, val: &str) {
            out.push_str("  \"");
            out.push_str(key);
            out.push_str("\": ");
            out.push_str(val);
            out.push_str(",\n");
        }
        fn u(out: &mut String, key: &str, val: u64) {
            s(out, key, &val.to_string());
        }
        fn f(out: &mut String, key: &str, val: f64) {
            s(out, key, &format!("{val}"));
        }
        fn mean(out: &mut String, key: &str, m: &RunningMean) {
            let fmt_opt = |o: Option<f64>| match o {
                Some(v) => format!("{v}"),
                None => "null".to_string(),
            };
            s(
                out,
                key,
                &format!(
                    "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                    m.count(),
                    m.sum(),
                    fmt_opt(m.min()),
                    fmt_opt(m.max()),
                ),
            );
        }
        let mut out = String::from("{\n");
        s(
            &mut out,
            "benchmark",
            &format!("{:?}", self.benchmark.as_str()),
        );
        s(&mut out, "scheme", &format!("{:?}", self.scheme.as_str()));
        u(&mut out, "elapsed_ps", self.elapsed.as_ps());
        u(&mut out, "instructions", self.instructions);
        u(&mut out, "mem_ops", self.mem_ops);
        u(&mut out, "l1_hits", self.l1_hits);
        u(&mut out, "l2_accesses", self.l2_accesses);
        u(&mut out, "l2_hits", self.l2_hits);
        u(&mut out, "l2_data_misses", self.l2_data_misses);
        u(&mut out, "llc_data_hits", self.llc_data_hits);
        u(&mut out, "llc_data_misses", self.llc_data_misses);
        u(&mut out, "dram_data_reads", self.dram_data_reads);
        u(&mut out, "writebacks", self.writebacks);
        mean(&mut out, "l2_miss_latency_ns", &self.l2_miss_latency_ns);
        mean(
            &mut out,
            "secure_access_latency_ns",
            &self.secure_access_latency_ns,
        );
        let src = self.ctr_source;
        s(
            &mut out,
            "ctr_source",
            &format!("[{}, {}, {}, {}]", src[0], src[1], src[2], src[3]),
        );
        u(&mut out, "l2_ctr_reqs_to_llc", self.l2_ctr_reqs_to_llc);
        u(&mut out, "mc_ctr_reqs_to_llc", self.mc_ctr_reqs_to_llc);
        u(&mut out, "l2_ctr_insertions", self.l2_ctr_insertions);
        u(&mut out, "l2_ctr_invalidations", self.l2_ctr_invalidations);
        u(&mut out, "l2_ctr_useless", self.l2_ctr_useless);
        u(&mut out, "l2_ctr_useful", self.l2_ctr_useful);
        u(&mut out, "decrypted_at_l2", self.decrypted_at_l2);
        u(&mut out, "decrypted_at_mc", self.decrypted_at_mc);
        u(
            &mut out,
            "offloaded_for_bandwidth",
            self.offloaded_for_bandwidth,
        );
        u(&mut out, "xpt_forwards", self.xpt_forwards);
        u(&mut out, "xpt_wasted", self.xpt_wasted);
        u(&mut out, "overflows_l0", self.overflows_l0);
        u(&mut out, "overflows_higher", self.overflows_higher);
        u(&mut out, "overflow_stalls", self.overflow_stalls);
        u(&mut out, "prefetches", self.prefetches);
        mean(&mut out, "l2_finish_wait_ns", &self.l2_finish_wait_ns);
        mean(&mut out, "l2_aes_queue_ns", &self.l2_aes_queue_ns);
        u(&mut out, "l2_ctr_lines_peak", self.l2_ctr_lines_peak);
        u(
            &mut out,
            "emcc_disabled_windows",
            self.emcc_disabled_windows,
        );
        u(
            &mut out,
            "llc_unverified_inserts",
            self.llc_unverified_inserts,
        );
        u(&mut out, "llc_unverified_hits", self.llc_unverified_hits);
        u(
            &mut out,
            "inclusive_back_invals",
            self.inclusive_back_invals,
        );
        for class in [
            emcc_dram::RequestClass::Data,
            emcc_dram::RequestClass::Counter,
            emcc_dram::RequestClass::TreeNode,
            emcc_dram::RequestClass::OverflowL0,
            emcc_dram::RequestClass::OverflowHigher,
        ] {
            let key = format!("dram_{:?}", class).to_lowercase();
            s(
                &mut out,
                &format!("{key}_count"),
                &self.dram.count_for(class).to_string(),
            );
            s(
                &mut out,
                &format!("{key}_bus_busy_ps"),
                &self.dram.bus_busy_for(class).as_ps().to_string(),
            );
        }
        u(&mut out, "dram_row_hits", self.dram.row_hits);
        u(&mut out, "dram_row_opens", self.dram.row_opens);
        u(&mut out, "dram_row_conflicts", self.dram.row_conflicts);
        u(&mut out, "faulty_reads", self.faulty_reads);
        let fi = self.faults_injected;
        s(
            &mut out,
            "faults_injected",
            &format!("[{}, {}, {}, {}, {}]", fi[0], fi[1], fi[2], fi[3], fi[4]),
        );
        u(&mut out, "integrity_violations", self.integrity_violations);
        u(&mut out, "integrity_retries", self.integrity_retries);
        u(
            &mut out,
            "integrity_unrecovered",
            self.integrity_unrecovered,
        );
        u(&mut out, "verify_fallbacks", self.verify_fallbacks);
        u(&mut out, "silent_corruptions", self.silent_corruptions);
        let h = &self.detection_latency_ns;
        let bins: Vec<String> = (0..h.num_bins())
            .map(|i| h.bin_count(i).to_string())
            .collect();
        s(
            &mut out,
            "detection_latency_bins",
            &format!("[{}]", bins.join(", ")),
        );
        u(&mut out, "detection_latency_overflow", h.overflow());
        f(&mut out, "detection_latency_mean", h.mean());
        for comp in Component::ALL {
            let h = self.crit_path.component(comp);
            let bins: Vec<String> = (0..h.num_bins())
                .map(|i| h.bin_count(i).to_string())
                .collect();
            s(
                &mut out,
                &format!("crit_{}_bins", comp.label()),
                &format!("[{}]", bins.join(", ")),
            );
            u(
                &mut out,
                &format!("crit_{}_overflow", comp.label()),
                h.overflow(),
            );
            f(&mut out, &format!("crit_{}_mean", comp.label()), h.mean());
            u(
                &mut out,
                &format!("crit_{}_sum_ps", comp.label()),
                self.crit_path.sum_ps(comp),
            );
        }
        u(&mut out, "crit_total_ps", self.crit_total_ps);
        mean(&mut out, "overlap_credit_ns", &self.overlap_credit_ns);
        u(&mut out, "crit_violations", self.crit_violations);
        u(&mut out, "data_refetch_reads", self.data_refetch_reads);
        u(&mut out, "xpt_wasted_reads", self.xpt_wasted_reads);
        u(
            &mut out,
            "dram_reads_inflight_at_cutoff",
            self.dram_reads_inflight_at_cutoff,
        );
        u(
            &mut out,
            "unissued_misses_at_cutoff",
            self.unissued_misses_at_cutoff,
        );
        u(&mut out, "shadow_lines", self.shadow_lines);
        u(&mut out, "shadow_mismatches", self.shadow_mismatches);
        // Replace the trailing ",\n" with a clean close.
        out.truncate(out.len() - 2);
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_all_zero() {
        let r = SimReport::default();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.l2_miss_rate(), 0.0);
        assert_eq!(r.useless_ctr_frac(), 0.0);
    }

    #[test]
    fn ctr_fractions_partition() {
        let mut r = SimReport::default();
        for _ in 0..65 {
            r.record_ctr_source(CtrSource::Mc);
        }
        for _ in 0..15 {
            r.record_ctr_source(CtrSource::Llc);
        }
        for _ in 0..20 {
            r.record_ctr_source(CtrSource::Dram);
        }
        let total = r.ctr_mc_hit_frac() + r.ctr_llc_hit_frac() + r.ctr_llc_miss_frac();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((r.ctr_llc_miss_frac() - 0.20).abs() < 1e-12);
    }

    #[test]
    fn ipc_computation() {
        let r = SimReport {
            instructions: 3200,
            elapsed: Time::from_ns(1000),
            ..SimReport::default()
        };
        assert!((r.ipc() - 3.2).abs() < 1e-9);
    }

    #[test]
    fn canonical_json_is_stable_and_complete() {
        let mut r = SimReport {
            benchmark: "bfs \"x\"".into(),
            scheme: "emcc".into(),
            elapsed: Time::from_ns(12),
            mem_ops: 7,
            ..SimReport::default()
        };
        r.l2_miss_latency_ns.add(3.5);
        let a = r.canonical_json();
        let b = r.canonical_json();
        assert_eq!(a, b);
        assert!(a.contains("\"benchmark\": \"bfs \\\"x\\\"\""));
        assert!(a.contains("\"elapsed_ps\": 12000"));
        assert!(a.contains("\"mem_ops\": 7"));
        assert!(a.contains("\"sum\": 3.5"));
        assert!(a.contains("\"shadow_mismatches\": 0"));
        assert!(a.ends_with("}\n") && a.starts_with("{\n"));
        // Differing reports must differ textually.
        let mut r2 = r.clone();
        r2.mem_ops = 8;
        assert_ne!(a, r2.canonical_json());
    }

    #[test]
    fn derived_fracs() {
        let r = SimReport {
            l2_data_misses: 100,
            l2_ctr_useless: 3,
            l2_ctr_reqs_to_llc: 30,
            mc_ctr_reqs_to_llc: 5,
            decrypted_at_l2: 76,
            decrypted_at_mc: 24,
            l2_ctr_insertions: 100,
            l2_ctr_invalidations: 2,
            ..SimReport::default()
        };
        assert!((r.useless_ctr_frac() - 0.03).abs() < 1e-12);
        assert!((r.ctr_llc_access_frac() - 0.35).abs() < 1e-12);
        assert!((r.l2_decrypt_frac() - 0.76).abs() < 1e-12);
        assert!((r.ctr_invalidation_frac() - 0.02).abs() < 1e-12);
    }
}
