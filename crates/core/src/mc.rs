//! Memory-controller side of the system: the secure pipeline, counter
//! fetch + integrity verification, write-backs, overflow re-encryption and
//! DRAM glue.

use std::collections::{HashMap, VecDeque};

use emcc_cache::BlockKind;
use emcc_crypto::DataBlock;
use emcc_dram::{Dram, DramRequest, FaultModel, RequestClass};
use emcc_secmem::{AesPool, MetadataCache, OverflowEngine, OverflowTask};
use emcc_sim::trace::{Component, Span};
use emcc_sim::{LineAddr, Time};

use crate::report::CtrSource;
use crate::system::{Ev, SecureSystem, TxnId};

/// Who asked for a counter block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CtrOrigin {
    /// An EMCC L2 (parallel counter request).
    L2 { core: usize },
    /// The MC itself (baseline serial access).
    Mc,
    /// Internal: the LLC found the block and is replying to the MC.
    LlcHitReply,
}

/// What a DRAM completion corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DramTarget {
    /// A demand/prefetch data read for a transaction. `refetch` marks
    /// integrity-recovery re-reads (they serve no new LLC miss).
    DataRead { txn: TxnId, refetch: bool },
    /// A metadata node fetch feeding the counter transaction keyed by its
    /// level-0 block address.
    NodeFetch { ctr_block: LineAddr },
    /// A posted write (data or metadata); nothing waits on it.
    PostedWrite,
    /// Background overflow re-encryption traffic.
    Overflow,
}

/// An in-flight counter resolution at the MC.
#[derive(Debug, Default)]
pub(crate) struct CtrTxn {
    /// Data reads at the MC waiting for this counter.
    pub data_waiters: Vec<TxnId>,
    /// Write-backs waiting for this counter.
    pub wb_waiters: Vec<LineAddr>,
    /// EMCC cores to forward the verified block to.
    pub l2_reply: Vec<usize>,
    /// Insert the verified block into the LLC when ready.
    pub llc_reply: bool,
    /// Outstanding node fetches (the block itself + missing ancestors).
    pub pending_fetches: u32,
    /// Levels fetched (for verification cost).
    pub fetched_levels: u32,
    /// Ancestor nodes fetched from DRAM; inserted into the MC cache on
    /// verification so later walks stop early.
    pub fetched_ancestors: Vec<LineAddr>,
    /// Where the level-0 block was found.
    pub source: Option<CtrSource>,
    /// The LLC probe for the level-0 block is in flight.
    pub llc_probe_outstanding: bool,
    /// DRAM fetches have been launched.
    pub dram_started: bool,
    /// Node fetches in the current walk that returned corrupted contents
    /// (each fails its own per-level MAC check at verification time).
    pub corrupt: u32,
    /// Tree re-walks performed after failed verifications.
    pub retries: u32,
}

/// MC state owned by the system.
pub(crate) struct McState {
    pub meta: MetadataCache,
    /// Read-path AES: OTPs for MC-decrypted reads and counter-block
    /// verification. Write-path AES runs on [`Self::aes_wr`] — real MCs
    /// deprioritize write-back crypto so it never delays read OTPs.
    pub aes: AesPool,
    /// Write-path AES (encryption + MAC update for write-backs).
    pub aes_wr: AesPool,
    pub overflow: OverflowEngine,
    pub ctr_txns: HashMap<LineAddr, CtrTxn>,
    pub dram_targets: HashMap<u64, DramTarget>,
    pub next_dram_id: u64,
    pub dram: Dram,
    pub deferred_wb: VecDeque<LineAddr>,
    /// Optional DRAM fault injector, consulted on every demand/metadata
    /// completion (`None` in fault-free runs — zero behavioral change).
    pub fault: Option<FaultModel>,
}

impl SecureSystem {
    // ----- DRAM plumbing ---------------------------------------------------

    pub(crate) fn enqueue_dram(
        &mut self,
        line: LineAddr,
        is_write: bool,
        class: RequestClass,
        target: DramTarget,
    ) -> bool {
        let id = self.mc.next_dram_id;
        self.mc.next_dram_id += 1;
        let req = if is_write {
            DramRequest::write(id, line, class)
        } else {
            DramRequest::read(id, line, class)
        };
        match self.mc.dram.enqueue(req, self.now) {
            Ok(()) => {
                self.mc.dram_targets.insert(id, target);
                self.pump_dram();
                true
            }
            Err(_) => false,
        }
    }

    pub(crate) fn pump_dram(&mut self) {
        let r = self.mc.dram.pump(self.now);
        for c in r.completions {
            self.queue.push(
                c.done,
                Ev::DramDone {
                    id: c.id,
                    row_hit: c.row_hit,
                    line: c.line,
                    class: c.class,
                    is_write: c.is_write,
                    enqueued: c.enqueued,
                    issued: c.issued,
                },
            );
        }
        if let Some(w) = r.next_wake {
            let need = match self.dram_pump_at {
                None => true,
                Some(t) => w < t,
            };
            if need {
                self.dram_pump_at = Some(w);
                self.queue.push(w, Ev::DramPump);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn dram_done(
        &mut self,
        id: u64,
        row_hit: bool,
        line: LineAddr,
        class: RequestClass,
        is_write: bool,
        enqueued: Time,
        issued: Time,
    ) {
        let Some(target) = self.mc.dram_targets.remove(&id) else {
            return;
        };
        // Fault model: writes repair soft faults in the written line;
        // demand and metadata reads may return corrupted contents.
        // Overflow re-encryption traffic bypasses the model — its reads
        // are re-verified by the re-encryption itself.
        let fault = match self.mc.fault.as_mut() {
            Some(fm) if is_write => {
                fm.on_write(line);
                None
            }
            Some(fm)
                if matches!(
                    target,
                    DramTarget::DataRead { .. } | DramTarget::NodeFetch { .. }
                ) =>
            {
                fm.on_read(line, class)
            }
            _ => None,
        };
        if let Some(ev) = fault {
            if ev.fresh {
                self.report.faults_injected[ev.class.index()] += 1;
            }
        }
        match target {
            DramTarget::DataRead {
                txn: txn_id,
                refetch,
            } => {
                self.report.dram_data_reads += 1;
                if refetch {
                    self.report.data_refetch_reads += 1;
                }
                match self.txns.get_mut(&txn_id) {
                    Some(txn) => {
                        txn.mc_data_at = Some(self.now);
                        txn.spans
                            .push(Span::new(Component::McQueue, enqueued, issued));
                        let row = if row_hit {
                            Component::DramRowHit
                        } else {
                            Component::DramRowMiss
                        };
                        txn.spans.push(Span::new(row, issued, self.now));
                        // Attach the corruption to the transaction; it is
                        // counted as a consumed faulty read at the point a
                        // verifier (or unverified delivery) observes it, so
                        // speculative reads whose data is discarded do not
                        // skew the detection-rate denominator.
                        if let Some(ev) = fault {
                            txn.corrupt = Some(ev.class);
                        }
                    }
                    // The transaction already completed (the LLC served it
                    // under an XPT speculative read): wasted bandwidth.
                    None => {
                        if !refetch {
                            self.report.xpt_wasted_reads += 1;
                        }
                    }
                }
                self.try_ship_data(txn_id);
            }
            DramTarget::NodeFetch { ctr_block } => {
                if fault.is_some() {
                    if let Some(ctr) = self.mc.ctr_txns.get_mut(&ctr_block) {
                        ctr.corrupt += 1;
                    }
                }
                self.ctr_node_arrived(ctr_block);
            }
            DramTarget::PostedWrite => {}
            DramTarget::Overflow => {
                self.mc.overflow.complete_one();
                self.pump_overflow();
                if self.mc.overflow.can_add() {
                    while let Some(line) = self.mc.deferred_wb.pop_front() {
                        self.mc_writeback(line);
                        if !self.mc.overflow.can_add() {
                            break;
                        }
                    }
                }
            }
        }
        self.pump_dram();
    }

    // ----- Data reads at the MC --------------------------------------------

    pub(crate) fn mc_data_req(&mut self, txn_id: TxnId, via_xpt: bool) {
        let (line, already_at_mc, dram_issued, done) = match self.txns.get(&txn_id) {
            Some(t) => (t.line, t.at_mc, t.dram_issued, t.done),
            None => return,
        };
        if done {
            return;
        }
        // The speculative XPT copy only starts the DRAM read early; the
        // secure pipeline acts on the confirmed miss (Intel XPT semantics:
        // the response still flows through the normal path).
        if !dram_issued {
            if self.enqueue_dram(
                line,
                false,
                RequestClass::Data,
                DramTarget::DataRead {
                    txn: txn_id,
                    refetch: false,
                },
            ) {
                self.txns.get_mut(&txn_id).expect("txn exists").dram_issued = true;
            } else {
                // DRAM queue full. Marking the read issued without a queue
                // slot used to drop it silently, wedging the access until
                // cutoff; retry the enqueue shortly instead (`via_xpt`
                // skips the already-done confirmation bookkeeping).
                self.queue.push(
                    self.now + Time::from_ns(50),
                    Ev::McDataReq {
                        txn: txn_id,
                        via_xpt: true,
                    },
                );
            }
        }
        if via_xpt || already_at_mc {
            return;
        }
        {
            let txn = self.txns.get_mut(&txn_id).expect("txn exists");
            txn.at_mc = true;
            txn.t_mc_arrival = self.now;
            txn.from_dram = true;
            // NoC leg: slice (where the miss was classified) to MC.
            let from = txn.t_slice_done.unwrap_or(self.now);
            txn.spans.push(Span::new(Component::Noc, from, self.now));
        }
        if !self.cfg.scheme.is_secure() {
            self.try_ship_data(txn_id);
            return;
        }
        let mc_decrypt = self.txns[&txn_id].mc_decrypt;
        if mc_decrypt {
            self.mc_resolve_counter_for_read(txn_id);
        } else {
            // EMCC non-offload reads: the L2 handles the counter; the MC
            // ships ciphertext + MAC⊕dot when data arrives — unless a
            // counter LLC miss later flips this to `mc_decrypt`.
            self.try_ship_data(txn_id);
        }
    }

    /// Baseline / offload path: find the counter for a data read.
    fn mc_resolve_counter_for_read(&mut self, txn_id: TxnId) {
        let line = self.txns[&txn_id].line;
        let block = self.ctr_block_of(line);
        let lookup_done = self.now + self.cfg.mc_cache_latency;
        if self.mc.meta.lookup(block) {
            let ready = lookup_done + self.cfg.crypto.counter_decode;
            // Start the OTP AES as soon as the counter is decoded.
            let aes = self.mc.aes.schedule_span(ready);
            let txn = self.txns.get_mut(&txn_id).expect("txn exists");
            txn.mc_ctr_ready = Some(aes.end);
            txn.ctr_source = Some(CtrSource::Mc);
            // Metadata-cache lookup + counter decode, then the OTP AES.
            txn.spans
                .push(Span::new(Component::CtrFetch, self.now, ready));
            txn.spans.push(aes);
            self.try_ship_data(txn_id);
        } else {
            self.mc_fetch_counter(block, Some(txn_id), None, Vec::new());
        }
    }

    /// The counter block covering a data line, as a metadata line address.
    pub(crate) fn ctr_block_of(&self, line: LineAddr) -> LineAddr {
        let idx = self.tree.geometry().counter_block_of(line);
        self.tree.geometry().node_addr(0, idx)
    }

    /// Attempts to respond to a data read: requires data from DRAM plus
    /// (for MC-decrypt transactions) the finished OTP.
    pub(crate) fn try_ship_data(&mut self, txn_id: TxnId) {
        let Some(txn) = self.txns.get(&txn_id) else {
            return;
        };
        if txn.done || !txn.at_mc {
            return;
        }
        let Some(data_at) = txn.mc_data_at else {
            return;
        };
        let secure = self.cfg.scheme.is_secure();
        let (ship_at, verified) = if !secure {
            (data_at.max(self.now), true)
        } else if txn.mc_decrypt {
            match txn.mc_ctr_ready {
                Some(otp_done) => (
                    data_at.max(otp_done).max(self.now) + self.cfg.crypto.xor_and_compare,
                    true,
                ),
                None => return, // counter fetch still in flight
            }
        } else {
            // EMCC: ship ciphertext + MAC⊕dot (the GF dot product is
            // parallel and fast — charge the same small constant).
            (
                data_at.max(self.now) + self.cfg.crypto.xor_and_compare,
                false,
            )
        };

        // MC-side detection: corrupted data cannot pass the MAC compare
        // that gates a verified ship. Unverified EMCC ships carry the
        // corruption to the requesting L2, whose local verify catches it.
        if txn.corrupt.is_some() {
            if !secure {
                // No verification exists; the corrupted line is consumed.
                self.report.faulty_reads += 1;
                self.report.silent_corruptions += 1;
                self.txns.get_mut(&txn_id).expect("txn exists").corrupt = None;
            } else if verified {
                let retries = txn.retries;
                self.report.faulty_reads += 1;
                self.report.integrity_violations += 1;
                self.report
                    .detection_latency_ns
                    .add_time(ship_at.saturating_sub(data_at));
                let xor = self.cfg.crypto.xor_and_compare;
                let txn = self.txns.get_mut(&txn_id).expect("txn exists");
                txn.corrupt = None;
                if self.cfg.recovery.retry.should_retry(retries) {
                    txn.retries += 1;
                    txn.mc_data_at = None;
                    // The failed MAC compare is real verify work; the
                    // backoff gap after it shows up as unattributed time.
                    txn.spans.push(Span::new(
                        Component::Verify,
                        ship_at.saturating_sub(xor),
                        ship_at,
                    ));
                    self.report.integrity_retries += 1;
                    let backoff = self.cfg.recovery.retry.backoff(retries);
                    self.queue
                        .push(ship_at + backoff, Ev::DataRefetch { txn: txn_id });
                    return;
                }
                // Retry budget exhausted: deliver the poisoned line
                // (machine-check semantics — the OS would contain it; the
                // simulation completes the access so cores never wedge).
                self.report.integrity_unrecovered += 1;
            }
        }
        let txn = self.txns.get(&txn_id).expect("txn exists");
        let core = txn.core;
        let line = txn.line;
        if verified && secure {
            self.report.decrypted_at_mc += 1;
        }
        let t_arrival = txn.t_mc_arrival;
        self.report
            .secure_access_latency_ns
            .add_time(ship_at.saturating_sub(t_arrival));

        // Response route: MC → owning slice → L2 (both legs carry data).
        // Inclusive mode mirrors the fill into the slice it passes.
        self.inclusive_fill(line, verified);
        let slice = self.slice_of(line);
        let t = ship_at + self.noc_slice_mc(slice, true) + self.noc_l2_slice(core, slice, true);
        self.queue.push(
            t,
            Ev::L2Fill {
                txn: txn_id,
                verified,
            },
        );
        // Mark shipped so duplicate calls do nothing.
        let xor = self.cfg.crypto.xor_and_compare;
        let txn = self.txns.get_mut(&txn_id).expect("txn exists");
        txn.mc_data_at = None;
        if secure {
            // MAC compare (verified) or MAC⊕dot generation (EMCC ship).
            txn.spans.push(Span::new(
                Component::Verify,
                ship_at.saturating_sub(xor),
                ship_at,
            ));
        }
        txn.t_shipped = Some(ship_at);
        if !verified {
            txn.shipped_unverified = true;
        }
    }

    // ----- Counter fetch + verification -------------------------------------

    /// Begins (or joins) resolution of a counter block at the MC.
    pub(crate) fn mc_fetch_counter(
        &mut self,
        block: LineAddr,
        data_waiter: Option<TxnId>,
        wb_waiter: Option<LineAddr>,
        l2_reply: Vec<usize>,
    ) {
        let scheme = self.cfg.scheme;
        let exists = self.mc.ctr_txns.contains_key(&block);
        let ctr = self.mc.ctr_txns.entry(block).or_default();
        if let Some(t) = data_waiter {
            ctr.data_waiters.push(t);
        }
        if let Some(w) = wb_waiter {
            ctr.wb_waiters.push(w);
        }
        ctr.l2_reply.extend(l2_reply);
        if exists {
            return;
        }
        // New resolution: probe the LLC for the block when the scheme
        // caches counters there; otherwise go straight to DRAM.
        if scheme.counters_in_llc() {
            ctr.llc_probe_outstanding = true;
            ctr.llc_reply = true;
            self.report.mc_ctr_reqs_to_llc += 1;
            let slice = self.slice_of(block);
            let t = self.now + self.noc_slice_mc(slice, false);
            self.queue.push(
                t,
                Ev::SliceCtrReq {
                    block,
                    origin: CtrOrigin::Mc,
                },
            );
        } else {
            self.ctr_start_dram_fetch(block);
        }
    }

    /// Fetches the block and its unverified ancestors from DRAM.
    pub(crate) fn ctr_start_dram_fetch(&mut self, block: LineAddr) {
        let (level0, idx0) = self.tree.geometry().node_of_addr(block);
        debug_assert_eq!(level0, 0);
        // Walk ancestors until one is resident (verified) in the MC cache;
        // walking *touches* the resident ancestor so hot tree nodes stay
        // cached.
        let mut nodes = vec![block];
        let mut cur = (0u32, idx0);
        while let Some((lvl, idx)) = self.tree.geometry().parent_of(cur.0, cur.1) {
            let addr = self.tree.geometry().node_addr(lvl, idx);
            if self.mc.meta.touch_quiet(addr) {
                break;
            }
            nodes.push(addr);
            cur = (lvl, idx);
        }
        let ctr = self.mc.ctr_txns.get_mut(&block).expect("ctr txn exists");
        ctr.dram_started = true;
        ctr.pending_fetches = nodes.len() as u32;
        ctr.fetched_levels = nodes.len() as u32;
        ctr.fetched_ancestors = nodes[1..].to_vec();
        if ctr.source.is_none() {
            ctr.source = Some(CtrSource::Dram);
        }
        for (i, node) in nodes.into_iter().enumerate() {
            let class = if i == 0 {
                RequestClass::Counter
            } else {
                RequestClass::TreeNode
            };
            if !self.enqueue_dram(
                node,
                false,
                class,
                DramTarget::NodeFetch { ctr_block: block },
            ) {
                // Queue full: model as a short retry by completing later.
                let ctr = self.mc.ctr_txns.get_mut(&block).expect("ctr txn exists");
                ctr.pending_fetches -= 1;
                ctr.fetched_levels -= 1;
            }
        }
        // Degenerate case: every node already cached (only the block was
        // missing from `lookup` but an earlier txn inserted it).
        if self.mc.ctr_txns[&block].pending_fetches == 0 {
            self.queue.push(self.now, Ev::McCtrReady { block });
        }
    }

    /// One metadata node arrived from DRAM.
    pub(crate) fn ctr_node_arrived(&mut self, ctr_block: LineAddr) {
        let Some(ctr) = self.mc.ctr_txns.get_mut(&ctr_block) else {
            return;
        };
        ctr.pending_fetches = ctr.pending_fetches.saturating_sub(1);
        if ctr.pending_fetches > 0 {
            return;
        }
        // All nodes here: verify each fetched level (one MAC AES per
        // level, pipelined on the MC pool) then decode the counter.
        let levels = ctr.fetched_levels.max(1);
        let corrupt = ctr.corrupt;
        let retries = ctr.retries;
        let mut done = self.now;
        for _ in 0..levels {
            let (_, d) = self.mc.aes.schedule(self.now);
            done = done.max(d);
        }
        let ready = done + self.cfg.crypto.counter_decode;
        if corrupt > 0 {
            // Counter/tree detection: each corrupted node fails its own
            // per-level MAC check at verify time. Recovery invalidates the
            // cached copy and re-walks the tree after a bounded backoff.
            self.report.faulty_reads += u64::from(corrupt);
            self.report.integrity_violations += u64::from(corrupt);
            for _ in 0..corrupt {
                self.report
                    .detection_latency_ns
                    .add_time(ready.saturating_sub(self.now));
            }
            let ctr = self
                .mc
                .ctr_txns
                .get_mut(&ctr_block)
                .expect("ctr txn exists");
            ctr.corrupt = 0;
            if self.cfg.recovery.retry.should_retry(retries) {
                ctr.retries += 1;
                self.report.integrity_retries += 1;
                let backoff = self.cfg.recovery.retry.backoff(retries);
                self.queue
                    .push(ready + backoff, Ev::CtrRefetch { block: ctr_block });
                return;
            }
            // Retry budget exhausted: proceed with the unverifiable
            // counter (machine-check semantics) so waiters never wedge.
            self.report.integrity_unrecovered += u64::from(corrupt);
        }
        self.queue.push(ready, Ev::McCtrReady { block: ctr_block });
    }

    // ----- Fault recovery ----------------------------------------------------

    /// Drops every cached copy of a counter block (MC metadata cache, LLC,
    /// EMCC L2s) so the next walk re-fetches and re-verifies from DRAM.
    fn invalidate_ctr_block(&mut self, block: LineAddr) {
        self.mc.meta.invalidate(block);
        if self.cfg.scheme.counters_in_llc() {
            let slice = self.slice_of(block);
            self.slices[slice].invalidate(block);
        }
        if self.cfg.scheme.is_emcc() {
            for core in 0..self.cfg.cores {
                if self.l2[core].cache.contains(block) {
                    self.evict_l2_ctr_line(core, block, true);
                }
            }
        }
    }

    /// Recovery: re-fetch a data line whose verification failed. The
    /// covering counter block is invalidated everywhere first, so the
    /// retry re-walks (and re-verifies) the tree path from DRAM.
    pub(crate) fn data_refetch(&mut self, txn_id: TxnId) {
        let Some(txn) = self.txns.get_mut(&txn_id) else {
            return;
        };
        if txn.done {
            return;
        }
        let line = txn.line;
        txn.corrupt = None;
        txn.mc_data_at = None;
        txn.mc_ctr_ready = None;
        txn.mc_decrypt = true;
        txn.shipped_unverified = false;
        txn.cipher_at = None;
        txn.aes_done = None;
        let block = self.ctr_block_of(line);
        self.invalidate_ctr_block(block);
        if !self.enqueue_dram(
            line,
            false,
            RequestClass::Data,
            DramTarget::DataRead {
                txn: txn_id,
                refetch: true,
            },
        ) {
            // DRAM queue full: retry shortly (same pattern as writes).
            self.queue.push(
                self.now + Time::from_ns(50),
                Ev::DataRefetch { txn: txn_id },
            );
            return;
        }
        if self.cfg.scheme.is_secure() {
            self.mc_resolve_counter_for_read(txn_id);
        }
    }

    /// Recovery: re-walk the integrity tree for a counter block whose
    /// verification failed (the resolution stays alive; its waiters are
    /// released by the eventual `McCtrReady`).
    pub(crate) fn ctr_refetch(&mut self, block: LineAddr) {
        if !self.mc.ctr_txns.contains_key(&block) {
            return;
        }
        self.invalidate_ctr_block(block);
        self.ctr_start_dram_fetch(block);
    }

    /// A counter request (or LLC reply) arrives at the MC.
    pub(crate) fn mc_ctr_req(&mut self, block: LineAddr, origin: CtrOrigin) {
        match origin {
            CtrOrigin::LlcHitReply => {
                // The LLC had the verified block.
                if let Some(ctr) = self.mc.ctr_txns.get_mut(&block) {
                    ctr.llc_probe_outstanding = false;
                    ctr.source = Some(CtrSource::Llc);
                    ctr.llc_reply = false; // already in LLC
                    let decode = self.cfg.crypto.counter_decode;
                    self.queue.push(self.now + decode, Ev::McCtrReady { block });
                }
            }
            CtrOrigin::Mc => {
                // Our own probe missed in LLC: fetch from DRAM.
                if let Some(ctr) = self.mc.ctr_txns.get_mut(&block) {
                    ctr.llc_probe_outstanding = false;
                    if !ctr.dram_started {
                        self.ctr_start_dram_fetch(block);
                    }
                }
            }
            CtrOrigin::L2 { core } => {
                // An EMCC L2's parallel counter request missed in LLC.
                // Per §IV-D the MC takes over decryption for the linked
                // data accesses and will reply the verified counter to
                // both LLC and L2.
                let waiters = self
                    .l2_ctr_waiters
                    .get(&(core, block))
                    .cloned()
                    .unwrap_or_default();
                for txn_id in &waiters {
                    if let Some(txn) = self.txns.get_mut(txn_id) {
                        // Take over decryption only if the MC has not
                        // already shipped the ciphertext (fast-DRAM race:
                        // the L2 then finishes locally once the counter
                        // arrives).
                        if !txn.done && !txn.shipped_unverified {
                            txn.mc_decrypt = true;
                            txn.ctr_source = Some(CtrSource::Dram);
                        }
                    }
                }
                // Data transactions already at the MC join as waiters so
                // their OTPs start the moment the counter verifies.
                let mc_side: Vec<TxnId> = waiters
                    .iter()
                    .copied()
                    .filter(|t| {
                        self.txns
                            .get(t)
                            .is_some_and(|x| x.at_mc && !x.done && x.mc_decrypt)
                    })
                    .collect();
                let exists = self.mc.ctr_txns.contains_key(&block);
                if self.mc.meta.lookup(block) && !exists {
                    // Rare: the MC already holds it (inserted after the
                    // L2 looked). Reply directly.
                    self.ctr_reply_to_l2(block, core, self.now + self.cfg.mc_cache_latency);
                    for txn_id in mc_side {
                        self.mc_ctr_ready_for_txn(txn_id, self.now + self.cfg.mc_cache_latency);
                    }
                    return;
                }
                self.mc_fetch_counter_from_l2_path(block, mc_side, core);
            }
        }
    }

    fn mc_fetch_counter_from_l2_path(
        &mut self,
        block: LineAddr,
        data_waiters: Vec<TxnId>,
        core: usize,
    ) {
        let exists = self.mc.ctr_txns.contains_key(&block);
        let ctr = self.mc.ctr_txns.entry(block).or_default();
        ctr.data_waiters.extend(data_waiters);
        if !ctr.l2_reply.contains(&core) {
            ctr.l2_reply.push(core);
        }
        ctr.llc_reply = true;
        if ctr.source.is_none() {
            ctr.source = Some(CtrSource::Dram);
        }
        if !exists || !ctr.dram_started {
            // The L2's request already missed LLC — no point probing again.
            self.ctr_start_dram_fetch(block);
        }
    }

    /// The counter block is verified and usable.
    pub(crate) fn mc_ctr_ready(&mut self, block: LineAddr) {
        let Some(mut ctr) = self.mc.ctr_txns.remove(&block) else {
            return;
        };
        // Insert the block and its fetched ancestors into the MC's
        // metadata cache (all verified by now).
        if let Some(victim) = self.mc.meta.fill(block, BlockKind::Counter, false) {
            self.meta_victim_writeback(victim.addr, victim.meta.kind);
        }
        for node in std::mem::take(&mut ctr.fetched_ancestors) {
            if let Some(victim) = self.mc.meta.fill(node, BlockKind::TreeNode, false) {
                self.meta_victim_writeback(victim.addr, victim.meta.kind);
            }
        }
        // Reply to the LLC (the baseline's "second-level counter cache").
        if ctr.llc_reply {
            let slice = self.slice_of(block);
            let victim = self.slices[slice].insert(
                block,
                false,
                crate::system::LlcMeta::verified(BlockKind::Counter),
            );
            self.handle_llc_eviction(victim);
        }
        // Reply to EMCC L2s.
        for core in std::mem::take(&mut ctr.l2_reply) {
            self.ctr_reply_to_l2(block, core, self.now);
        }
        // Resume MC-side data reads.
        let src = ctr.source.unwrap_or(CtrSource::Dram);
        for txn_id in ctr.data_waiters {
            if let Some(txn) = self.txns.get_mut(&txn_id) {
                if txn.ctr_source.is_none() {
                    txn.ctr_source = Some(src);
                }
            }
            self.mc_ctr_ready_for_txn(txn_id, self.now);
        }
        // Resume write-backs.
        for line in ctr.wb_waiters {
            self.mc_do_writeback_with_counter(line);
        }
    }

    fn mc_ctr_ready_for_txn(&mut self, txn_id: TxnId, ready: Time) {
        let Some(txn) = self.txns.get_mut(&txn_id) else {
            return;
        };
        if txn.done || !txn.mc_decrypt || txn.mc_ctr_ready.is_some() {
            return;
        }
        let decoded = ready + self.cfg.crypto.counter_decode;
        let aes = self.mc.aes.schedule_span(decoded);
        let txn = self.txns.get_mut(&txn_id).expect("txn exists");
        txn.mc_ctr_ready = Some(aes.end);
        // The MC-side counter wait: from this read's arrival at the MC
        // (the walk may predate it) until the counter is decoded.
        let from = txn.t_mc_arrival.min(decoded);
        txn.spans
            .push(Span::new(Component::CtrFetch, from, decoded));
        txn.spans.push(aes);
        self.try_ship_data(txn_id);
    }

    fn ctr_reply_to_l2(&mut self, block: LineAddr, core: usize, ship_at: Time) {
        let slice = self.slice_of(block);
        let t = ship_at + self.noc_slice_mc(slice, true) + self.noc_l2_slice(core, slice, true);
        self.queue.push(t, Ev::L2CtrFill { core, block });
    }

    // ----- Write-backs -------------------------------------------------------

    pub(crate) fn mc_writeback(&mut self, line: LineAddr) {
        self.report.writebacks += 1;
        if !self.cfg.scheme.is_secure() {
            self.enqueue_dram(line, true, RequestClass::Data, DramTarget::PostedWrite);
            return;
        }
        let block = self.ctr_block_of(line);
        if self.mc.meta.lookup(block) {
            self.mc_do_writeback_with_counter(line);
        } else {
            self.mc_fetch_counter(block, None, Some(line), Vec::new());
        }
    }

    /// Counter block is on hand: bump the counter, encrypt, write.
    pub(crate) fn mc_do_writeback_with_counter(&mut self, line: LineAddr) {
        // Overflow admission control (§V: at most two outstanding).
        if self.tree.would_overflow_data(line) && !self.mc.overflow.can_add() {
            let _ = self.mc.overflow.try_add(OverflowTask {
                base: LineAddr::new(0),
                blocks: 0,
                level: 0,
            }); // records the rejection stat
            self.mc.deferred_wb.push_back(line);
            return;
        }
        let block = self.ctr_block_of(line);
        if let Some(shadow) = self.shadow.as_mut() {
            // Differential oracle: mirror the write-back so both trees see
            // exactly one counter increment per write-back.
            shadow.write(line, DataBlock::from_words([line.get(); 8]));
        }
        let r = self.tree.increment_data(line);
        self.mc.meta.mark_dirty(block);

        // Coherence: invalidate stale copies in L2s (Fig 23) and LLC.
        if self.cfg.scheme.is_emcc() {
            for core in 0..self.cfg.cores {
                if self.l2[core].cache.contains(block) {
                    self.evict_l2_ctr_line(core, block, true);
                }
            }
        }
        if self.cfg.scheme.counters_in_llc() {
            let slice = self.slice_of(block);
            self.slices[slice].invalidate(block);
        }

        if r.overflow.is_some() {
            let coverage = self.cfg.counter_design.coverage();
            let cb_idx = self.tree.geometry().counter_block_of(line);
            let added = self.mc.overflow.try_add(OverflowTask {
                base: LineAddr::new(cb_idx * coverage),
                blocks: coverage,
                level: 0,
            });
            debug_assert!(added, "admission control checked capacity");
            self.pump_overflow();
        }

        // Encryption + MAC: a write needs 8 AES (4 OTP + 4 MAC words),
        // charged as two pipelined slots on the deprioritized write pool.
        let (_, d1) = self.mc.aes_wr.schedule(self.now);
        let (_, d2) = self.mc.aes_wr.schedule(self.now);
        let pad_ready = d1.max(d2);
        // The DRAM write is posted once the ciphertext is ready; enqueue
        // through a zero-payload event to respect the time.
        let line_copy = line;
        self.queue
            .push(pad_ready, Ev::McWriteIssue { line: line_copy });
    }

    pub(crate) fn mc_write_issue(&mut self, line: LineAddr) {
        if !self.enqueue_dram(line, true, RequestClass::Data, DramTarget::PostedWrite) {
            // Write queue full: retry shortly.
            self.queue
                .push(self.now + Time::from_ns(50), Ev::McWriteIssue { line });
        }
    }

    /// A dirty metadata block leaves the MC cache: write it to DRAM and
    /// bump its protecting counter (which may overflow at a higher level).
    pub(crate) fn meta_victim_writeback(&mut self, addr: LineAddr, kind: BlockKind) {
        let class = match kind {
            BlockKind::Counter => RequestClass::Counter,
            _ => RequestClass::TreeNode,
        };
        self.enqueue_dram(addr, true, class, DramTarget::PostedWrite);
        let (level, idx) = self.tree.geometry().node_of_addr(addr);
        let r = self.tree.increment_node(level, idx);
        // Mark/insert the parent dirty.
        if let Some((plvl, pidx)) = self.tree.geometry().parent_of(level, idx) {
            let paddr = self.tree.geometry().node_addr(plvl, pidx);
            if !self.mc.meta.mark_dirty(paddr) {
                if let Some(v) = self.mc.meta.fill(paddr, BlockKind::TreeNode, true) {
                    self.meta_victim_writeback(v.addr, v.meta.kind);
                }
            }
        }
        if r.overflow.is_some() {
            // A level-(level+1) block overflowed: re-MAC its children
            // (the `level`-level nodes).
            let arity = self.cfg.counter_design.coverage();
            let first_child = (idx / arity) * arity;
            let max_idx = self.tree.geometry().blocks_at_level(level);
            let blocks = arity.min(max_idx - first_child);
            let base = self.tree.geometry().node_addr(level, first_child);
            if self.mc.overflow.can_add() {
                let added = self.mc.overflow.try_add(OverflowTask {
                    base,
                    blocks,
                    level: level + 1,
                });
                debug_assert!(added);
                self.pump_overflow();
            }
            // Else: drop silently — higher-level overflows during a full
            // engine are vanishingly rare; counted in tree stats anyway.
        }
    }

    // ----- Overflow engine ----------------------------------------------------

    pub(crate) fn pump_overflow(&mut self) {
        while let Some(req) = {
            // Only pull a request when the DRAM can take it.
            if self.mc.dram.can_accept(LineAddr::new(0), true) {
                self.mc.overflow.next_request()
            } else {
                None
            }
        } {
            let class = if req.level == 0 {
                RequestClass::OverflowL0
            } else {
                RequestClass::OverflowHigher
            };
            let ok = self.enqueue_dram(req.line, req.is_write, class, DramTarget::Overflow);
            if !ok {
                // Roll the slot back by treating it as completed; retry on
                // the next completion.
                self.mc.overflow.complete_one();
                break;
            }
        }
    }
}
