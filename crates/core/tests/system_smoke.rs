//! End-to-end smoke and behavior tests for the full-system simulator.

use emcc_secmem::SecurityScheme;
use emcc_system::{SecureSystem, SystemConfig};
use emcc_workloads::kernels::GraphKernel;
use emcc_workloads::presets::WorkloadScale;
use emcc_workloads::Benchmark;

fn run(scheme: SecurityScheme, bench: Benchmark, ops: u64) -> emcc_system::SimReport {
    let cfg = SystemConfig::table_i(scheme);
    let sources = bench.build_scaled(7, cfg.cores, WorkloadScale::Test);
    SecureSystem::new(cfg).run(sources, ops)
}

#[test]
fn nonsecure_run_terminates_with_work_done() {
    let r = run(SecurityScheme::NonSecure, Benchmark::Canneal, 3_000);
    assert_eq!(r.mem_ops, 4 * 3_000);
    assert!(r.instructions > r.mem_ops);
    assert!(!r.elapsed.is_zero());
    assert!(r.ipc() > 0.0);
    assert!(r.dram_data_reads > 0, "canneal must reach DRAM");
}

#[test]
fn all_schemes_terminate_on_graph_workload() {
    let bench = Benchmark::Graph(GraphKernel::Bfs);
    for scheme in SecurityScheme::all() {
        let r = run(scheme, bench, 2_000);
        assert_eq!(r.mem_ops, 4 * 2_000, "{scheme} did not finish");
        assert!(!r.elapsed.is_zero());
    }
}

#[test]
fn secure_schemes_are_slower_than_nonsecure() {
    let bench = Benchmark::Canneal;
    let ns = run(SecurityScheme::NonSecure, bench, 4_000);
    let base = run(SecurityScheme::CtrInLlc, bench, 4_000);
    assert!(
        base.elapsed > ns.elapsed,
        "secure ({}) must be slower than non-secure ({})",
        base.elapsed,
        ns.elapsed
    );
}

#[test]
fn secure_runs_generate_counter_traffic() {
    let r = run(SecurityScheme::CtrInLlc, Benchmark::Canneal, 4_000);
    let ctr = r.dram.count_for(emcc_dram::RequestClass::Counter);
    assert!(ctr > 0, "counter DRAM traffic expected");
    let total: u64 = r.ctr_source.iter().sum();
    assert!(total > 0, "counter sourcing must be recorded");
}

#[test]
fn nonsecure_has_no_counter_traffic() {
    let r = run(SecurityScheme::NonSecure, Benchmark::Canneal, 4_000);
    assert_eq!(r.dram.count_for(emcc_dram::RequestClass::Counter), 0);
    assert_eq!(r.dram.count_for(emcc_dram::RequestClass::TreeNode), 0);
}

#[test]
fn emcc_decrypts_mostly_at_l2() {
    let r = run(SecurityScheme::Emcc, Benchmark::Canneal, 4_000);
    assert!(
        r.decrypted_at_l2 > 0,
        "EMCC must decrypt something at L2 (got {} at MC)",
        r.decrypted_at_mc
    );
    assert!(r.l2_ctr_insertions > 0, "counters must be cached in L2");
}

#[test]
fn emcc_outperforms_baseline_on_irregular_workload() {
    let bench = Benchmark::Canneal;
    let base = run(SecurityScheme::CtrInLlc, bench, 6_000);
    let emcc = run(SecurityScheme::Emcc, bench, 6_000);
    // The headline result, directionally: EMCC should not be slower.
    assert!(
        emcc.elapsed <= base.elapsed + base.elapsed / 20,
        "EMCC ({}) much slower than baseline ({})",
        emcc.elapsed,
        base.elapsed
    );
}

#[test]
fn mconly_fetches_counters_without_llc_requests() {
    let r = run(SecurityScheme::McOnly, Benchmark::Canneal, 3_000);
    assert_eq!(r.mc_ctr_reqs_to_llc, 0);
    assert_eq!(r.l2_ctr_reqs_to_llc, 0);
    assert!(r.dram.count_for(emcc_dram::RequestClass::Counter) > 0);
}

#[test]
fn baseline_counter_requests_go_through_llc() {
    let r = run(SecurityScheme::CtrInLlc, Benchmark::Canneal, 3_000);
    assert!(r.mc_ctr_reqs_to_llc > 0);
    assert_eq!(r.l2_ctr_reqs_to_llc, 0, "only EMCC issues L2 ctr reqs");
}

#[test]
fn emcc_l2_counter_budget_respected() {
    let r = run(SecurityScheme::Emcc, Benchmark::Canneal, 6_000);
    // Inserted many, but the budget bounds residency — checked indirectly:
    // inserted counters are eventually evicted/invalidated, so useless +
    // useful + invalidations accounts for insertions minus residents.
    assert!(r.l2_ctr_insertions >= r.l2_ctr_useless + r.l2_ctr_useful);
}

#[test]
fn writes_eventually_reach_dram() {
    // Shrink the hierarchy so the Test-scale footprint evicts dirty lines
    // all the way to DRAM within a short run.
    let mut cfg = SystemConfig::table_i(SecurityScheme::CtrInLlc);
    cfg.l2_size = 128 * 1024;
    cfg.llc_slice_size = 32 * 1024;
    let sources = Benchmark::Mcf.build_scaled(7, cfg.cores, WorkloadScale::Test);
    let r = SecureSystem::new(cfg).run(sources, 6_000);
    assert!(r.writebacks > 0, "mcf writes must cause writebacks");
    let wr = r.dram.bucket(emcc_dram::RequestClass::Data, true).count;
    assert!(wr > 0, "DRAM data writes expected");
}

#[test]
fn deterministic_across_runs() {
    let a = run(SecurityScheme::Emcc, Benchmark::Omnetpp, 2_000);
    let b = run(SecurityScheme::Emcc, Benchmark::Omnetpp, 2_000);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.dram_data_reads, b.dram_data_reads);
    assert_eq!(a.l2_ctr_insertions, b.l2_ctr_insertions);
}
