//! End-to-end smoke and behavior tests for the full-system simulator.

use emcc_secmem::SecurityScheme;
use emcc_system::{SecureSystem, SystemConfig};
use emcc_workloads::kernels::GraphKernel;
use emcc_workloads::presets::WorkloadScale;
use emcc_workloads::Benchmark;

fn run(scheme: SecurityScheme, bench: Benchmark, ops: u64) -> emcc_system::SimReport {
    let cfg = SystemConfig::table_i(scheme);
    let sources = bench.build_scaled(7, cfg.cores, WorkloadScale::Test);
    SecureSystem::new(cfg).run(sources, ops)
}

#[test]
fn nonsecure_run_terminates_with_work_done() {
    let r = run(SecurityScheme::NonSecure, Benchmark::Canneal, 3_000);
    assert_eq!(r.mem_ops, 4 * 3_000);
    assert!(r.instructions > r.mem_ops);
    assert!(!r.elapsed.is_zero());
    assert!(r.ipc() > 0.0);
    assert!(r.dram_data_reads > 0, "canneal must reach DRAM");
}

#[test]
fn all_schemes_terminate_on_graph_workload() {
    let bench = Benchmark::Graph(GraphKernel::Bfs);
    for scheme in SecurityScheme::all() {
        let r = run(scheme, bench, 2_000);
        assert_eq!(r.mem_ops, 4 * 2_000, "{scheme} did not finish");
        assert!(!r.elapsed.is_zero());
    }
}

#[test]
fn secure_schemes_are_slower_than_nonsecure() {
    let bench = Benchmark::Canneal;
    let ns = run(SecurityScheme::NonSecure, bench, 4_000);
    let base = run(SecurityScheme::CtrInLlc, bench, 4_000);
    assert!(
        base.elapsed > ns.elapsed,
        "secure ({}) must be slower than non-secure ({})",
        base.elapsed,
        ns.elapsed
    );
}

#[test]
fn secure_runs_generate_counter_traffic() {
    let r = run(SecurityScheme::CtrInLlc, Benchmark::Canneal, 4_000);
    let ctr = r.dram.count_for(emcc_dram::RequestClass::Counter);
    assert!(ctr > 0, "counter DRAM traffic expected");
    let total: u64 = r.ctr_source.iter().sum();
    assert!(total > 0, "counter sourcing must be recorded");
}

#[test]
fn nonsecure_has_no_counter_traffic() {
    let r = run(SecurityScheme::NonSecure, Benchmark::Canneal, 4_000);
    assert_eq!(r.dram.count_for(emcc_dram::RequestClass::Counter), 0);
    assert_eq!(r.dram.count_for(emcc_dram::RequestClass::TreeNode), 0);
}

#[test]
fn emcc_decrypts_mostly_at_l2() {
    let r = run(SecurityScheme::Emcc, Benchmark::Canneal, 4_000);
    assert!(
        r.decrypted_at_l2 > 0,
        "EMCC must decrypt something at L2 (got {} at MC)",
        r.decrypted_at_mc
    );
    assert!(r.l2_ctr_insertions > 0, "counters must be cached in L2");
}

#[test]
fn emcc_outperforms_baseline_on_irregular_workload() {
    let bench = Benchmark::Canneal;
    let base = run(SecurityScheme::CtrInLlc, bench, 6_000);
    let emcc = run(SecurityScheme::Emcc, bench, 6_000);
    // The headline result, directionally: EMCC should not be slower.
    assert!(
        emcc.elapsed <= base.elapsed + base.elapsed / 20,
        "EMCC ({}) much slower than baseline ({})",
        emcc.elapsed,
        base.elapsed
    );
}

#[test]
fn mconly_fetches_counters_without_llc_requests() {
    let r = run(SecurityScheme::McOnly, Benchmark::Canneal, 3_000);
    assert_eq!(r.mc_ctr_reqs_to_llc, 0);
    assert_eq!(r.l2_ctr_reqs_to_llc, 0);
    assert!(r.dram.count_for(emcc_dram::RequestClass::Counter) > 0);
}

#[test]
fn baseline_counter_requests_go_through_llc() {
    let r = run(SecurityScheme::CtrInLlc, Benchmark::Canneal, 3_000);
    assert!(r.mc_ctr_reqs_to_llc > 0);
    assert_eq!(r.l2_ctr_reqs_to_llc, 0, "only EMCC issues L2 ctr reqs");
}

#[test]
fn emcc_l2_counter_budget_respected() {
    let r = run(SecurityScheme::Emcc, Benchmark::Canneal, 6_000);
    // Inserted many, but the budget bounds residency — checked indirectly:
    // inserted counters are eventually evicted/invalidated, so useless +
    // useful + invalidations accounts for insertions minus residents.
    assert!(r.l2_ctr_insertions >= r.l2_ctr_useless + r.l2_ctr_useful);
}

#[test]
fn writes_eventually_reach_dram() {
    // Shrink the hierarchy so the Test-scale footprint evicts dirty lines
    // all the way to DRAM within a short run.
    let mut cfg = SystemConfig::table_i(SecurityScheme::CtrInLlc);
    cfg.l2_size = 128 * 1024;
    cfg.llc_slice_size = 32 * 1024;
    let sources = Benchmark::Mcf.build_scaled(7, cfg.cores, WorkloadScale::Test);
    let r = SecureSystem::new(cfg).run(sources, 6_000);
    assert!(r.writebacks > 0, "mcf writes must cause writebacks");
    let wr = r.dram.bucket(emcc_dram::RequestClass::Data, true).count;
    assert!(wr > 0, "DRAM data writes expected");
}

#[test]
fn attribution_conserves_latency_across_schemes() {
    use emcc_sim::trace::Component;
    for scheme in SecurityScheme::all() {
        let r = run(scheme, Benchmark::Canneal, 3_000);
        assert!(r.crit_path.accesses() > 0, "{scheme}: nothing attributed");
        assert_eq!(r.crit_violations, 0, "{scheme}: span outside its window");
        // Tiling law, exact in picoseconds: every attributed instant is
        // charged to exactly one component.
        assert_eq!(
            r.crit_path.total_sum_ps(),
            r.crit_total_ps,
            "{scheme}: attributed segments do not tile end-to-end latency"
        );
        // DRAM-served reads must charge some time to the memory system.
        if r.dram_data_reads > 0 {
            assert!(
                r.crit_path.sum_ps(Component::DramRowHit)
                    + r.crit_path.sum_ps(Component::DramRowMiss)
                    > 0,
                "{scheme}: no DRAM time on the critical path"
            );
        }
    }
}

#[test]
fn emcc_earns_overlap_credit() {
    // EMCC's point: counter fetch + AES run under the data fetch. The
    // recorder must see that hidden work as overlap credit.
    let r = run(SecurityScheme::Emcc, Benchmark::Canneal, 4_000);
    assert!(r.overlap_credit_ns.count() > 0);
    assert!(
        r.overlap_credit_ns.sum() > 0.0,
        "EMCC runs must hide work under the data fetch"
    );
}

#[test]
fn exact_cutoff_accounting_holds_without_warmup() {
    for scheme in SecurityScheme::all() {
        let r = run(scheme, Benchmark::Canneal, 3_000);
        assert_eq!(
            r.llc_data_misses + r.data_refetch_reads + r.xpt_wasted_reads,
            r.dram_data_reads + r.dram_reads_inflight_at_cutoff + r.unissued_misses_at_cutoff,
            "{scheme}: LLC-miss/DRAM-read ledger out of balance"
        );
    }
}

#[test]
fn traced_run_matches_untraced_and_exports_chrome_json() {
    let cfg = SystemConfig::table_i(SecurityScheme::Emcc);
    let sources = Benchmark::Canneal.build_scaled(7, cfg.cores, WorkloadScale::Test);
    let plain = SecureSystem::new(cfg).run(sources, 2_000);

    let cfg = SystemConfig::table_i(SecurityScheme::Emcc);
    let sources = Benchmark::Canneal.build_scaled(7, cfg.cores, WorkloadScale::Test);
    let (traced, rec) = SecureSystem::new(cfg).run_traced(sources, 0, 2_000, 256);

    // Recording only observes: reports must be byte-identical.
    assert_eq!(plain.canonical_json(), traced.canonical_json());
    assert!(!rec.is_empty());
    let json = rec.chrome_json();
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"name\":\"thread_name\""));
}

#[test]
fn deterministic_across_runs() {
    let a = run(SecurityScheme::Emcc, Benchmark::Omnetpp, 2_000);
    let b = run(SecurityScheme::Emcc, Benchmark::Omnetpp, 2_000);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.dram_data_reads, b.dram_data_reads);
    assert_eq!(a.l2_ctr_insertions, b.l2_ctr_insertions);
}
