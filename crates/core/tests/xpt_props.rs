//! Property tests for the XPT miss predictor.
//!
//! The predictor drives speculative fills: a wrong "miss" prediction
//! forwards a request to the MC whose fill is later discarded, so the
//! properties pin the saturation and region-sharing behavior the discard
//! accounting (`xpt_wasted ≤ xpt_forwards`) depends on.

use emcc_sim::LineAddr;
use emcc_system::XptPredictor;
use proptest::prelude::*;

proptest! {
    /// Two consecutive miss-trainings force a "miss" prediction from any
    /// starting state (counter floor 0 + 2 increments reaches the ≥2
    /// threshold), no matter what training history preceded them.
    #[test]
    fn two_miss_trains_force_predict_miss(
        line in 0u64..1_000_000,
        history in prop::collection::vec(any::<bool>(), 0..=16),
    ) {
        let mut p = XptPredictor::new(256);
        let addr = LineAddr::new(line);
        for missed in history {
            p.train(addr, missed);
        }
        p.train(addr, true);
        p.train(addr, true);
        prop_assert!(p.predict_miss(addr));
    }

    /// Three consecutive hit-trainings force a "hit" prediction from any
    /// starting state: saturation at 3 means three decrements always land
    /// below the threshold. This is the path that stops wasteful
    /// speculative fills once a region turns LLC-resident.
    #[test]
    fn three_hit_trains_force_predict_hit(
        line in 0u64..1_000_000,
        history in prop::collection::vec(any::<bool>(), 0..=16),
    ) {
        let mut p = XptPredictor::new(256);
        let addr = LineAddr::new(line);
        for missed in history {
            p.train(addr, missed);
        }
        for _ in 0..3 {
            p.train(addr, false);
        }
        prop_assert!(!p.predict_miss(addr));
    }

    /// Saturation is real: an arbitrarily long miss streak is forgotten
    /// after the same three hit-trainings (the counter cannot wind up
    /// past 3), and symmetrically a long hit streak after two
    /// miss-trainings. Unbounded counters would fail both directions.
    #[test]
    fn streak_length_does_not_delay_turnaround(
        line in 0u64..1_000_000,
        streak in 4usize..=64,
    ) {
        let addr = LineAddr::new(line);

        let mut p = XptPredictor::new(256);
        for _ in 0..streak {
            p.train(addr, true);
        }
        for _ in 0..3 {
            p.train(addr, false);
        }
        prop_assert!(!p.predict_miss(addr), "miss streak {} survived 3 hits", streak);

        let mut p = XptPredictor::new(256);
        for _ in 0..streak {
            p.train(addr, false);
        }
        p.train(addr, true);
        p.train(addr, true);
        prop_assert!(p.predict_miss(addr), "hit streak {} survived 2 misses", streak);
    }

    /// All lines of one 4 KB region share a counter: training on any line
    /// in the region steers predictions for every other line in it.
    #[test]
    fn region_lines_share_training(
        region in 0u64..10_000,
        off_a in 0u64..64,
        off_b in 0u64..64,
        toward_miss in any::<bool>(),
    ) {
        let mut p = XptPredictor::new(256);
        let a = LineAddr::new(region * 64 + off_a);
        let b = LineAddr::new(region * 64 + off_b);
        for _ in 0..4 {
            p.train(a, toward_miss);
        }
        prop_assert_eq!(p.predict_miss(b), toward_miss);
    }

    /// Bookkeeping: `predictions()` counts every query, and accuracy stays
    /// a valid ratio when an arbitrary subset of predictions is recorded
    /// as correct.
    #[test]
    fn prediction_and_accuracy_bookkeeping(
        lines in prop::collection::vec(0u64..100_000, 1..=40),
        correct_mask in prop::collection::vec(any::<bool>(), 40..=40),
    ) {
        let mut p = XptPredictor::new(1024);
        let mut correct = 0u64;
        for (i, &line) in lines.iter().enumerate() {
            let predicted_miss = p.predict_miss(LineAddr::new(line));
            p.train(LineAddr::new(line), predicted_miss);
            if correct_mask[i] {
                p.record_correct();
                correct += 1;
            }
        }
        prop_assert_eq!(p.predictions(), lines.len() as u64);
        let acc = p.accuracy();
        prop_assert!((0.0..=1.0).contains(&acc), "accuracy {} out of range", acc);
        prop_assert_eq!(acc, correct as f64 / lines.len() as f64);
    }
}
