//! End-to-end fault-injection tests: every corrupted DRAM read that the
//! pipeline consumes must be detected by exactly one verifier (MC-side or
//! EMCC L2-side), recovery must be bounded, and the differential shadow
//! checker must agree with the timing model in fault-free runs.

use emcc_dram::{FaultClass, FaultConfig};
use emcc_secmem::{RecoveryConfig, RetryPolicy, SecurityScheme};
use emcc_system::{SecureSystem, SystemConfig};
use emcc_workloads::presets::WorkloadScale;
use emcc_workloads::Benchmark;

fn run_with(cfg: SystemConfig, bench: Benchmark, ops: u64) -> emcc_system::SimReport {
    let sources = bench.build_scaled(7, cfg.cores, WorkloadScale::Test);
    SecureSystem::new(cfg).run(sources, ops)
}

fn faulty_cfg(scheme: SecurityScheme, class: FaultClass, rate: f64) -> SystemConfig {
    SystemConfig::table_i(scheme).with_fault(FaultConfig::uniform(0xFA17, class, rate))
}

#[test]
fn mc_side_verification_detects_every_consumed_fault() {
    for class in [
        FaultClass::BitFlip,
        FaultClass::MacCorrupt,
        FaultClass::Replay,
    ] {
        let cfg = faulty_cfg(SecurityScheme::CtrInLlc, class, 0.05);
        let r = run_with(cfg, Benchmark::Canneal, 4_000);
        assert!(r.faulty_reads > 0, "{class}: no faults consumed");
        assert_eq!(
            r.integrity_violations, r.faulty_reads,
            "{class}: consumed faults must all be detected"
        );
        assert!((r.detection_rate() - 1.0).abs() < f64::EPSILON);
        assert_eq!(r.silent_corruptions, 0, "{class}: secure scheme leaked");
        assert!(r.detection_latency_ns.total() >= r.integrity_violations);
    }
}

#[test]
fn l2_side_verification_detects_every_consumed_fault() {
    let cfg = faulty_cfg(SecurityScheme::Emcc, FaultClass::BitFlip, 0.05);
    let r = run_with(cfg, Benchmark::Canneal, 4_000);
    assert!(r.faulty_reads > 0, "no faults consumed");
    assert_eq!(r.integrity_violations, r.faulty_reads);
    assert_eq!(r.silent_corruptions, 0);
}

#[test]
fn nonsecure_consumes_corruption_silently() {
    let cfg = faulty_cfg(SecurityScheme::NonSecure, FaultClass::BitFlip, 0.05);
    let r = run_with(cfg, Benchmark::Canneal, 4_000);
    assert!(r.silent_corruptions > 0, "faults must reach the consumer");
    assert_eq!(r.integrity_violations, 0, "nothing verifies in non-secure");
    assert_eq!(r.silent_corruptions, r.faulty_reads);
}

#[test]
fn metadata_faults_detected_at_tree_verification() {
    // Target only counter blocks and tree nodes: detections then come from
    // the MC's per-level MAC checks during the tree walk.
    let fault =
        FaultConfig::uniform(0xFA17, FaultClass::BitFlip, 0.10).with_targets([false, true, true]);
    let cfg = SystemConfig::table_i(SecurityScheme::CtrInLlc).with_fault(fault);
    let r = run_with(cfg, Benchmark::Canneal, 4_000);
    assert!(r.faulty_reads > 0, "metadata faults must be consumed");
    assert_eq!(r.integrity_violations, r.faulty_reads);
    assert!(r.integrity_retries > 0, "tree re-walks expected");
}

#[test]
fn detections_trigger_bounded_retries() {
    let cfg = faulty_cfg(SecurityScheme::CtrInLlc, FaultClass::TransientRead, 0.05);
    let r = run_with(cfg, Benchmark::Canneal, 4_000);
    assert!(r.integrity_violations > 0);
    assert!(
        r.integrity_retries > 0,
        "transient faults should be retried"
    );
    // A transient fault clears on re-read, so nearly all retries succeed;
    // the retry budget (3) makes lingering failures vanishingly rare.
    assert_eq!(r.integrity_unrecovered, 0, "transients must recover");
}

#[test]
fn repeated_l2_failures_fall_back_to_mc_verification() {
    let cfg =
        faulty_cfg(SecurityScheme::Emcc, FaultClass::BitFlip, 0.08).with_recovery(RecoveryConfig {
            retry: RetryPolicy::default(),
            l2_fallback_threshold: 1,
        });
    let r = run_with(cfg, Benchmark::Canneal, 4_000);
    assert!(r.integrity_violations > 0);
    assert!(
        r.verify_fallbacks > 0,
        "an L2 that fails local verification must degrade to MC-side"
    );
}

#[test]
fn shadow_checker_agrees_with_timing_model_counters() {
    for scheme in [
        SecurityScheme::McOnly,
        SecurityScheme::CtrInLlc,
        SecurityScheme::Emcc,
    ] {
        let mut cfg = SystemConfig::table_i(scheme).with_shadow_check(true);
        // Shrink the hierarchy so dirty lines reach DRAM within the run.
        cfg.l2_size = 128 * 1024;
        cfg.llc_slice_size = 32 * 1024;
        let r = run_with(cfg, Benchmark::Mcf, 6_000);
        assert!(r.shadow_lines > 0, "{scheme}: no write-backs mirrored");
        assert_eq!(r.shadow_mismatches, 0, "{scheme}: counter state diverged");
    }
}

#[test]
fn fault_free_runs_are_unchanged_by_recovery_plumbing() {
    // The fault hook must be a strict no-op when disabled: identical
    // timing with and without the shadow checker, and zero fault stats.
    let base = run_with(
        SystemConfig::table_i(SecurityScheme::Emcc),
        Benchmark::Omnetpp,
        2_000,
    );
    let shadowed = run_with(
        SystemConfig::table_i(SecurityScheme::Emcc).with_shadow_check(true),
        Benchmark::Omnetpp,
        2_000,
    );
    assert_eq!(base.elapsed, shadowed.elapsed);
    assert_eq!(base.dram_data_reads, shadowed.dram_data_reads);
    assert_eq!(base.faulty_reads, 0);
    assert_eq!(base.integrity_violations, 0);
    assert_eq!(base.faults_injected, [0; 5]);
}

#[test]
fn fault_runs_are_deterministic() {
    let a = run_with(
        faulty_cfg(SecurityScheme::Emcc, FaultClass::BitFlip, 0.03),
        Benchmark::Omnetpp,
        2_000,
    );
    let b = run_with(
        faulty_cfg(SecurityScheme::Emcc, FaultClass::BitFlip, 0.03),
        Benchmark::Omnetpp,
        2_000,
    );
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.integrity_violations, b.integrity_violations);
    assert_eq!(a.integrity_retries, b.integrity_retries);
    assert_eq!(a.faults_injected, b.faults_injected);
}
