//! Offline drop-in subset of the [criterion](https://docs.rs/criterion)
//! benchmarking API.
//!
//! This workspace must build without network access (DESIGN.md §8), so the
//! bench harness ships its own minimal implementation of the criterion
//! surface the benches use: [`Criterion::bench_function`], benchmark
//! groups with sample/warmup/measurement knobs, [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Bench files depend on
//! it under the name `criterion`, so swapping back to the real crate is a
//! one-line Cargo.toml change.
//!
//! Measurement model: each sample runs the closure in a timed batch and
//! reports the median over samples as ns/iter, with min/max spread —
//! deliberately simple, but stable enough to compare two implementations
//! of the same kernel (e.g. byte-wise vs T-table AES).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `body` repeatedly; called once per sample by the harness.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(body());
        }
        self.samples.push(start.elapsed());
    }
}

/// Top-level benchmark registry and runner.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First CLI arg (as passed by `cargo bench -- <filter>`) filters
        // benchmark names by substring, like real criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Runs one benchmark with default settings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, body: F) -> &mut Self {
        let cfg = GroupConfig::default();
        run_one(name, &self.filter, &cfg, body);
        self
    }

    /// Opens a named group whose settings apply to its benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            filter: self.filter.clone(),
            cfg: GroupConfig::default(),
            _parent: std::marker::PhantomData,
        }
    }
}

#[derive(Clone)]
struct GroupConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// A group of benchmarks sharing sample/timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    filter: Option<String>,
    cfg: GroupConfig,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Total measurement budget across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, body: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, &self.filter, &self.cfg, body);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    filter: &Option<String>,
    cfg: &GroupConfig,
    mut body: F,
) {
    if let Some(f) = filter {
        if !name.contains(f.as_str()) {
            return;
        }
    }

    // Warm-up: discover a per-sample iteration count such that one sample
    // lands near measurement_time / sample_size.
    let mut iters = 1u64;
    let warm_deadline = Instant::now() + cfg.warm_up_time;
    let mut per_iter = Duration::from_nanos(1);
    loop {
        let mut b = Bencher {
            iters_per_sample: iters,
            samples: Vec::new(),
        };
        body(&mut b);
        let elapsed = b.samples.last().copied().unwrap_or_default();
        per_iter = elapsed.checked_div(iters as u32).unwrap_or(per_iter);
        if Instant::now() >= warm_deadline {
            break;
        }
        if elapsed < Duration::from_millis(1) {
            iters = iters.saturating_mul(4).max(1);
        }
    }
    let sample_budget = cfg.measurement_time.as_nanos() / cfg.sample_size as u128;
    let per_iter_ns = per_iter.as_nanos().max(1);
    iters = ((sample_budget / per_iter_ns) as u64).clamp(1, 1 << 30);

    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(cfg.sample_size),
    };
    for _ in 0..cfg.sample_size {
        body(&mut b);
    }

    let mut ns: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters as f64)
        .collect();
    ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = ns[ns.len() / 2];
    let (lo, hi) = (ns[0], ns[ns.len() - 1]);
    println!(
        "{name:<48} {median:>12.1} ns/iter  [{lo:.1} .. {hi:.1}]  ({} samples x {iters} iters)",
        ns.len()
    );
}

/// Registers benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $bench(c); )+
        }
    };
}

/// Generates `main` running the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            iters_per_sample: 10,
            samples: Vec::new(),
        };
        b.iter(|| black_box(1 + 1));
        assert_eq!(b.samples.len(), 1);
    }

    #[test]
    fn group_settings_clamp() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("g");
        g.sample_size(1);
        assert_eq!(g.cfg.sample_size, 2);
    }
}
