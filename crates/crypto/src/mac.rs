//! 56-bit message authentication codes over GF(2⁶⁴).
//!
//! Per the paper's Figure 1b, a block's MAC is computed as
//!
//! ```text
//! MAC = truncate56( AES(µ', address, counter)  XOR  Σᵢ wordᵢ ⊗ keyᵢ )
//! ```
//!
//! where `⊗` is carry-less multiplication in GF(2⁶⁴), the eight 64-bit
//! `wordᵢ` are the block contents and the `keyᵢ` are secret per-word keys.
//! The dot product is fast in hardware (all GF multiplications in
//! parallel); AES dominates the latency — which is exactly why caching
//! counters (the AES input) ahead of data arrival speeds verification up.
//!
//! EMCC's twist (§IV-D): the MC computes the dot product over the
//! **ciphertext** and embeds `MAC ⊕ dot-product` in the data response so
//! that L2 can verify by comparing against its locally computed AES result.

use crate::aes::Aes128;

/// Reduction polynomial for GF(2⁶⁴): x⁶⁴ + x⁴ + x³ + x + 1.
#[cfg(test)]
const GF64_POLY: u64 = 0x1B;

/// Carry-less multiplication in GF(2⁶⁴).
///
/// # Examples
///
/// ```
/// use emcc_crypto::mac::gf64_mul;
///
/// let x = 0x1234_5678_9abc_def0;
/// assert_eq!(gf64_mul(x, 1), x);          // 1 is the identity
/// assert_eq!(gf64_mul(x, 0), 0);          // 0 annihilates
/// ```
pub fn gf64_mul(a: u64, b: u64) -> u64 {
    // Schoolbook carry-less multiply into 128 bits, then reduce.
    let mut hi = 0u64;
    let mut lo = 0u64;
    for i in 0..64 {
        if (b >> i) & 1 == 1 {
            lo ^= a << i;
            if i > 0 {
                hi ^= a >> (64 - i);
            }
        }
    }
    reduce128(hi, lo)
}

fn reduce128(mut hi: u64, mut lo: u64) -> u64 {
    // Fold the high half down twice: x^64 ≡ x^4 + x^3 + x + 1 (mod p).
    for _ in 0..2 {
        if hi == 0 {
            break;
        }
        let h = hi;
        hi = 0;
        // h * (x^4 + x^3 + x + 1) spills at most 4 bits back into hi.
        lo ^= h ^ (h << 1) ^ (h << 3) ^ (h << 4);
        hi ^= (h >> 63) ^ (h >> 61) ^ (h >> 60);
    }
    debug_assert_eq!(hi, 0);
    lo // reduction complete
}

/// A 56-bit MAC value.
///
/// Stored in the low 56 bits of a `u64`; the top byte is always zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Mac56(u64);

impl Mac56 {
    /// Masks a 64-bit value down to the 56-bit MAC domain.
    pub fn from_u64(v: u64) -> Self {
        Mac56(v & 0x00FF_FFFF_FFFF_FFFF)
    }

    /// The raw 56-bit value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Mac56 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:014x}", self.0)
    }
}

/// The secret material for MAC computation: one AES key plus eight GF keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacKeys {
    aes: Aes128,
    word_keys: [u64; 8],
}

/// Domain-separation tag µ' for MAC AES invocations (Fig 1b).
const MU_MAC: u64 = 0xA5;

impl MacKeys {
    /// Derives MAC keys deterministically from a seed.
    ///
    /// Real hardware fuses these at manufacturing; the simulator derives
    /// them from the experiment seed so runs are reproducible.
    pub fn from_seed(seed: u64) -> Self {
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&seed.to_be_bytes());
        key[8..].copy_from_slice(&(!seed).rotate_left(17).to_be_bytes());
        let aes = Aes128::new(key);
        let mut word_keys = [0u64; 8];
        for (i, wk) in word_keys.iter_mut().enumerate() {
            let out = aes.encrypt_u64_pair(0xFEED_0000 + i as u64, seed);
            *wk = u64::from_be_bytes(out[..8].try_into().expect("8 bytes")) | 1;
        }
        MacKeys { aes, word_keys }
    }

    /// The AES-only half of the MAC: `truncate56(AES(µ', addr, counter))`.
    ///
    /// This is the part that depends only on the counter and can be
    /// precomputed before data arrives — the quantity EMCC computes at L2.
    pub fn aes_half(&self, addr: u64, counter: u64) -> Mac56 {
        let hi = (MU_MAC << 56) | (addr & 0x00FF_FFFF_FFFF_FFFF);
        let out = self.aes.encrypt_u64_pair(hi, counter);
        Mac56::from_u64(u64::from_be_bytes(out[..8].try_into().expect("8 bytes")))
    }

    /// The data-only half: `truncate56(Σ wordᵢ ⊗ keyᵢ)` over the block.
    ///
    /// Under EMCC this is computed at the MC over the *ciphertext* and
    /// shipped to L2 XOR-ed with the stored MAC (§IV-D).
    pub fn dot_product(&self, words: &[u64; 8]) -> Mac56 {
        let mut acc = 0u64;
        for (w, k) in words.iter().zip(self.word_keys.iter()) {
            acc ^= gf64_mul(*w, *k);
        }
        Mac56::from_u64(acc)
    }

    /// Full MAC for a block: AES half XOR dot-product half.
    pub fn mac(&self, addr: u64, counter: u64, words: &[u64; 8]) -> Mac56 {
        Mac56::from_u64(self.aes_half(addr, counter).as_u64() ^ self.dot_product(words).as_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf_identity_and_zero() {
        for v in [1u64, 0xdead_beef, u64::MAX] {
            assert_eq!(gf64_mul(v, 1), v);
            assert_eq!(gf64_mul(1, v), v);
            assert_eq!(gf64_mul(v, 0), 0);
        }
    }

    #[test]
    fn gf_commutative() {
        let pairs = [(3u64, 7u64), (0xffff, 0x1234_5678), (u64::MAX, u64::MAX)];
        for (a, b) in pairs {
            assert_eq!(gf64_mul(a, b), gf64_mul(b, a));
        }
    }

    #[test]
    fn gf_distributes_over_xor() {
        let (a, b, c) = (
            0x0123_4567_89ab_cdef,
            0xfedc_ba98_7654_3210,
            0x5a5a_5a5a_a5a5_a5a5,
        );
        assert_eq!(gf64_mul(a, b ^ c), gf64_mul(a, b) ^ gf64_mul(a, c));
    }

    #[test]
    fn gf_associative() {
        let (a, b, c) = (
            0x1111_2222_3333_4444u64,
            0x9999_8888u64,
            0xabcd_ef01_2345u64,
        );
        assert_eq!(gf64_mul(gf64_mul(a, b), c), gf64_mul(a, gf64_mul(b, c)));
    }

    #[test]
    fn gf_x64_reduction() {
        // x^63 * x = x^64 ≡ x^4 + x^3 + x + 1 = 0x1B.
        assert_eq!(gf64_mul(1 << 63, 2), GF64_POLY);
    }

    #[test]
    fn mac56_masks_top_byte() {
        let m = Mac56::from_u64(u64::MAX);
        assert_eq!(m.as_u64() >> 56, 0);
        assert_eq!(m.to_string().len(), 14);
    }

    #[test]
    fn mac_is_deterministic() {
        let keys = MacKeys::from_seed(99);
        let words = [1u64, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(keys.mac(0x40, 7, &words), keys.mac(0x40, 7, &words));
    }

    #[test]
    fn mac_depends_on_all_inputs() {
        let keys = MacKeys::from_seed(99);
        let words = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let base = keys.mac(0x40, 7, &words);
        assert_ne!(base, keys.mac(0x80, 7, &words), "address must matter");
        assert_ne!(base, keys.mac(0x40, 8, &words), "counter must matter");
        let mut tampered = words;
        tampered[3] ^= 1;
        assert_ne!(base, keys.mac(0x40, 7, &tampered), "data must matter");
    }

    #[test]
    fn mac_splits_into_halves() {
        // The XOR split is what lets the MC ship MAC⊕dot-product while L2
        // computes the AES half locally (EMCC §IV-D).
        let keys = MacKeys::from_seed(5);
        let words = [0xAAu64; 8];
        let full = keys.mac(0x1000, 3, &words);
        let rebuilt =
            Mac56::from_u64(keys.aes_half(0x1000, 3).as_u64() ^ keys.dot_product(&words).as_u64());
        assert_eq!(full, rebuilt);
    }

    #[test]
    fn different_seeds_different_macs() {
        let words = [7u64; 8];
        let a = MacKeys::from_seed(1).mac(0, 0, &words);
        let b = MacKeys::from_seed(2).mac(0, 0, &words);
        assert_ne!(a, b);
    }
}
