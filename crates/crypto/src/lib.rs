//! Memory-cryptography primitives for the EMCC reproduction.
//!
//! Secure memory systems (Background, §II of the paper) encrypt each 64 B
//! block with **counter-mode AES** and protect it with a 56-bit **MAC**
//! computed as `truncate(AES(µ', addr, counter) XOR dot-product(words, keys))`
//! over a Galois field. This crate implements those primitives
//! *functionally* — real FIPS-197 AES-128, real carry-less GF(2⁶⁴)
//! arithmetic — so the security data path can be tested end-to-end
//! (decrypt∘encrypt = identity, tamper detection, OTP uniqueness), plus the
//! *latency parameters* the timing simulator charges for them.
//!
//! # Examples
//!
//! ```
//! use emcc_crypto::{BlockCipherKeys, DataBlock};
//!
//! let keys = BlockCipherKeys::from_seed(42);
//! let plain = DataBlock::from_bytes([7u8; 64]);
//! let addr = 0x1234_5680;
//! let counter = 9;
//!
//! let cipher = keys.encrypt_block(addr, counter, &plain);
//! let mac = keys.mac_block(addr, counter, &cipher);
//! assert_eq!(keys.decrypt_block(addr, counter, &cipher), plain);
//! assert!(keys.verify_block(addr, counter, &cipher, mac));
//! ```

pub mod aes;
pub mod latency;
pub mod mac;
pub mod otp;

pub use aes::Aes128;
pub use latency::CryptoLatencies;
pub use mac::{Mac56, MacKeys};
pub use otp::{BlockCipherKeys, DataBlock};
