//! Counter-mode encryption of 64 B memory blocks via one-time pads.
//!
//! Per the paper's Figure 1a, each 16 B word of a 64 B block is encrypted by
//! XOR-ing it with a one-time pad `OTP = AES(µ | address | word-index |
//! counter)`. Since only the address and counter feed AES, the four OTPs can
//! be computed *before* the data arrives from DRAM — the property both the
//! baseline MC counter cache and EMCC's L2-side computation exploit.

use crate::aes::Aes128;
use crate::mac::{Mac56, MacKeys};

/// A 64 B memory block, stored as eight 64-bit words.
///
/// # Examples
///
/// ```
/// use emcc_crypto::DataBlock;
///
/// let b = DataBlock::from_bytes([0xAB; 64]);
/// assert_eq!(b.words()[0], 0xABAB_ABAB_ABAB_ABAB);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DataBlock {
    words: [u64; 8],
}

impl DataBlock {
    /// Creates a block from eight 64-bit words.
    pub fn from_words(words: [u64; 8]) -> Self {
        DataBlock { words }
    }

    /// Creates a block from 64 raw bytes (big-endian word packing).
    pub fn from_bytes(bytes: [u8; 64]) -> Self {
        let mut words = [0u64; 8];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u64::from_be_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        DataBlock { words }
    }

    /// The block contents as words.
    pub fn words(&self) -> &[u64; 8] {
        &self.words
    }

    /// The block contents as 64 bytes.
    pub fn to_bytes(self) -> [u8; 64] {
        let mut out = [0u8; 64];
        for (chunk, w) in out.chunks_exact_mut(8).zip(self.words.iter()) {
            chunk.copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// XOR of two blocks (pad application).
    pub fn xor(&self, other: &DataBlock) -> DataBlock {
        let mut words = [0u64; 8];
        for ((w, a), b) in words.iter_mut().zip(&self.words).zip(&other.words) {
            *w = a ^ b;
        }
        DataBlock { words }
    }

    /// Flips a single bit — used by tamper-detection tests.
    pub fn with_bit_flipped(mut self, bit: usize) -> DataBlock {
        assert!(bit < 512, "bit index out of range");
        self.words[bit / 64] ^= 1 << (bit % 64);
        self
    }
}

/// Domain-separation tag µ for encryption AES invocations (Fig 1a).
const MU_ENC: u64 = 0x5A;

/// The full secret material of the secure-memory engine: the OTP cipher
/// plus the MAC keys.
///
/// One instance lives in the (simulated) memory controller; under EMCC the
/// L2s hold a copy of the same keys (hardware would route them at boot over
/// fuse/private wires).
///
/// # Examples
///
/// ```
/// use emcc_crypto::{BlockCipherKeys, DataBlock};
///
/// let keys = BlockCipherKeys::from_seed(1);
/// let plain = DataBlock::from_words([1, 2, 3, 4, 5, 6, 7, 8]);
/// let cipher = keys.encrypt_block(0x40, 1, &plain);
/// assert_ne!(cipher, plain);
/// assert_eq!(keys.decrypt_block(0x40, 1, &cipher), plain);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCipherKeys {
    otp_cipher: Aes128,
    mac_keys: MacKeys,
}

impl BlockCipherKeys {
    /// Derives all key material deterministically from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&seed.rotate_left(31).to_be_bytes());
        key[8..].copy_from_slice(&seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_be_bytes());
        BlockCipherKeys {
            otp_cipher: Aes128::new(key),
            mac_keys: MacKeys::from_seed(seed ^ 0xC0DE_CAFE),
        }
    }

    /// Computes the four 16 B one-time pads for `(addr, counter)` as one
    /// 64 B pad block.
    ///
    /// This is the counter-only work that can run ahead of the data; it
    /// costs one (pipelined) AES latency in the timing model.
    pub fn pad(&self, addr: u64, counter: u64) -> DataBlock {
        let mut words = [0u64; 8];
        for word_index in 0..4u64 {
            let hi = (MU_ENC << 56) | ((addr & 0xFFFF_FFFF_FFFF) << 8) | word_index;
            let otp = self.otp_cipher.encrypt_u64_pair(hi, counter);
            words[word_index as usize * 2] =
                u64::from_be_bytes(otp[..8].try_into().expect("8 bytes"));
            words[word_index as usize * 2 + 1] =
                u64::from_be_bytes(otp[8..].try_into().expect("8 bytes"));
        }
        DataBlock::from_words(words)
    }

    /// Encrypts a plaintext block for write-back to DRAM.
    pub fn encrypt_block(&self, addr: u64, counter: u64, plain: &DataBlock) -> DataBlock {
        plain.xor(&self.pad(addr, counter))
    }

    /// Decrypts a ciphertext block fetched from DRAM.
    pub fn decrypt_block(&self, addr: u64, counter: u64, cipher: &DataBlock) -> DataBlock {
        cipher.xor(&self.pad(addr, counter))
    }

    /// MAC over the **ciphertext** (the paper's §IV-D adjustment so the MC
    /// can compute the dot product without decrypting).
    pub fn mac_block(&self, addr: u64, counter: u64, cipher: &DataBlock) -> Mac56 {
        self.mac_keys.mac(addr, counter, cipher.words())
    }

    /// Verifies a fetched ciphertext block against its stored MAC.
    pub fn verify_block(&self, addr: u64, counter: u64, cipher: &DataBlock, mac: Mac56) -> bool {
        self.mac_block(addr, counter, cipher) == mac
    }

    /// The counter-dependent AES half of the MAC (computable at L2 before
    /// data arrives).
    pub fn mac_aes_half(&self, addr: u64, counter: u64) -> Mac56 {
        self.mac_keys.aes_half(addr, counter)
    }

    /// The data-dependent dot-product half of the MAC (computed at the MC
    /// over ciphertext; shipped as `MAC ⊕ dot-product` under EMCC).
    pub fn mac_dot_half(&self, cipher: &DataBlock) -> Mac56 {
        self.mac_keys.dot_product(cipher.words())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let mut bytes = [0u8; 64];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        assert_eq!(DataBlock::from_bytes(bytes).to_bytes(), bytes);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let keys = BlockCipherKeys::from_seed(7);
        let plain = DataBlock::from_words([11, 22, 33, 44, 55, 66, 77, 88]);
        for counter in [0u64, 1, 1 << 40, u64::MAX] {
            let cipher = keys.encrypt_block(0xABC0, counter, &plain);
            assert_eq!(keys.decrypt_block(0xABC0, counter, &cipher), plain);
        }
    }

    #[test]
    fn pads_differ_across_counters() {
        // The core security property counter-mode relies on: reusing a
        // counter would reuse a pad (§II "Ensuring Confidentiality").
        let keys = BlockCipherKeys::from_seed(7);
        let a = keys.pad(0x40, 1);
        let b = keys.pad(0x40, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn pads_differ_across_addresses() {
        let keys = BlockCipherKeys::from_seed(7);
        assert_ne!(keys.pad(0x40, 1), keys.pad(0x80, 1));
    }

    #[test]
    fn pads_differ_across_words_within_block() {
        let keys = BlockCipherKeys::from_seed(7);
        let pad = keys.pad(0x40, 1);
        let w = pad.words();
        // All four 16B OTPs distinct (pairwise over their first words).
        assert_ne!(w[0], w[2]);
        assert_ne!(w[2], w[4]);
        assert_ne!(w[4], w[6]);
    }

    #[test]
    fn mac_detects_single_bit_tamper() {
        let keys = BlockCipherKeys::from_seed(13);
        let plain = DataBlock::from_words([1, 2, 3, 4, 5, 6, 7, 8]);
        let cipher = keys.encrypt_block(0x100, 5, &plain);
        let mac = keys.mac_block(0x100, 5, &cipher);
        for bit in [0usize, 63, 64, 255, 511] {
            let tampered = cipher.with_bit_flipped(bit);
            assert!(
                !keys.verify_block(0x100, 5, &tampered, mac),
                "bit {bit} flip went undetected"
            );
        }
        assert!(keys.verify_block(0x100, 5, &cipher, mac));
    }

    #[test]
    fn mac_detects_replay_of_old_counter() {
        // Replay attack: attacker restores an old ciphertext+MAC pair, but
        // the on-chip counter has advanced.
        let keys = BlockCipherKeys::from_seed(13);
        let old_plain = DataBlock::from_words([1; 8]);
        let old_cipher = keys.encrypt_block(0x200, 5, &old_plain);
        let old_mac = keys.mac_block(0x200, 5, &old_cipher);
        // Verification with the *current* counter (6) must fail.
        assert!(!keys.verify_block(0x200, 6, &old_cipher, old_mac));
    }

    #[test]
    fn emcc_split_verification_matches_monolithic() {
        // L2 verifies by comparing its local AES half with the MC-shipped
        // MAC ⊕ dot-product; this must agree with full verification.
        let keys = BlockCipherKeys::from_seed(21);
        let plain = DataBlock::from_words([9; 8]);
        let cipher = keys.encrypt_block(0x340, 11, &plain);
        let stored_mac = keys.mac_block(0x340, 11, &cipher);
        // MC side: ships cipher and mac ⊕ dot(cipher).
        let shipped = stored_mac.as_u64() ^ keys.mac_dot_half(&cipher).as_u64();
        // L2 side: compares against locally computed AES half.
        assert_eq!(shipped, keys.mac_aes_half(0x340, 11).as_u64());
    }

    #[test]
    fn bit_flip_helper_flips_exactly_one_bit() {
        let b = DataBlock::default().with_bit_flipped(70);
        assert_eq!(b.words()[1], 1 << 6);
        assert!(b.words().iter().enumerate().all(|(i, &w)| i == 1 || w == 0));
    }
}
