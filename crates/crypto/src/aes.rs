//! FIPS-197 AES-128 block cipher.
//!
//! A u32 T-table implementation: each round's SubBytes + ShiftRows +
//! MixColumns collapses into four table lookups and three XORs per
//! column, with tables built at compile time from the S-box. AES is on
//! the simulator's hottest path (every modeled memory line is encrypted
//! and MACed twice per round trip), so the ~4–5× over the byte-wise
//! version is wall-clock visible in full figure runs.
//!
//! It is used functionally (correctness of the secure-memory data path),
//! not for side-channel resistance — table lookups are fine here; the
//! *timing* of hardware AES units is modeled separately by
//! [`crate::latency::CryptoLatencies`] and the memory controller's
//! AES-unit pool. The pre-T-table byte-wise round survives as
//! [`Aes128::encrypt_reference`] so tests and benches can cross-check
//! the two paths.

/// AES-128 with an expanded key schedule.
///
/// # Examples
///
/// ```
/// use emcc_crypto::Aes128;
///
/// let key = [0u8; 16];
/// let aes = Aes128::new(key);
/// let ct = aes.encrypt([0u8; 16]);
/// assert_ne!(ct, [0u8; 16]);
/// assert_eq!(ct, aes.encrypt_reference([0u8; 16]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aes128 {
    /// Round keys as big-endian column words (4 per round).
    round_keys: [u32; 44],
}

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
const fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

/// T-table for column byte 0: `[2·S[x], S[x], S[x], 3·S[x]]` packed
/// big-endian. Tables 1–3 are byte rotations of it (the MixColumns
/// matrix is circulant), taken at lookup time — one 1 KB table keeps
/// L1-cache pressure low, and `rotate_right` is free on every target.
static TE0: [u32; 256] = build_te0();

const fn build_te0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut x = 0usize;
    while x < 256 {
        let s = SBOX[x];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        t[x] = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | s3 as u32;
        x += 1;
    }
    t
}

#[inline(always)]
fn te(byte: u32, rot: u32) -> u32 {
    TE0[(byte & 0xff) as usize].rotate_right(8 * rot)
}

impl Aes128 {
    /// Expands a 128-bit key into the 11 round keys.
    pub fn new(key: [u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [0u32; 44];
        for (rk, word) in round_keys.iter_mut().zip(&w) {
            *rk = u32::from_be_bytes(*word);
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt(&self, block: [u8; 16]) -> [u8; 16] {
        let rk = &self.round_keys;
        // State as four big-endian column words (FIPS-197 layout: byte
        // c*4+r is row r of column c, so column c is bytes 4c..4c+4).
        let mut s = [0u32; 4];
        for (c, col) in s.iter_mut().enumerate() {
            *col = u32::from_be_bytes([
                block[c * 4],
                block[c * 4 + 1],
                block[c * 4 + 2],
                block[c * 4 + 3],
            ]) ^ rk[c];
        }
        for round in 1..10 {
            // ShiftRows: output column c takes row r from column c+r.
            let t = [
                te(s[0] >> 24, 0) ^ te(s[1] >> 16, 1) ^ te(s[2] >> 8, 2) ^ te(s[3], 3),
                te(s[1] >> 24, 0) ^ te(s[2] >> 16, 1) ^ te(s[3] >> 8, 2) ^ te(s[0], 3),
                te(s[2] >> 24, 0) ^ te(s[3] >> 16, 1) ^ te(s[0] >> 8, 2) ^ te(s[1], 3),
                te(s[3] >> 24, 0) ^ te(s[0] >> 16, 1) ^ te(s[1] >> 8, 2) ^ te(s[2], 3),
            ];
            for (c, col) in s.iter_mut().enumerate() {
                *col = t[c] ^ rk[round * 4 + c];
            }
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        let mut out = [0u8; 16];
        for c in 0..4 {
            let word = ((SBOX[(s[c] >> 24) as usize] as u32) << 24)
                | ((SBOX[((s[(c + 1) % 4] >> 16) & 0xff) as usize] as u32) << 16)
                | ((SBOX[((s[(c + 2) % 4] >> 8) & 0xff) as usize] as u32) << 8)
                | SBOX[(s[(c + 3) % 4] & 0xff) as usize] as u32;
            out[c * 4..c * 4 + 4].copy_from_slice(&(word ^ rk[40 + c]).to_be_bytes());
        }
        out
    }

    /// Encrypts one block with the pre-T-table byte-wise rounds.
    ///
    /// Kept as the validation oracle: property tests and the
    /// `components` bench assert it produces the same ciphertext as
    /// [`Aes128::encrypt`].
    pub fn encrypt_reference(&self, block: [u8; 16]) -> [u8; 16] {
        let rk: Vec<[u8; 16]> = (0..11)
            .map(|r| {
                let mut k = [0u8; 16];
                for c in 0..4 {
                    k[c * 4..c * 4 + 4].copy_from_slice(&self.round_keys[r * 4 + c].to_be_bytes());
                }
                k
            })
            .collect();
        let mut s = block;
        add_round_key(&mut s, &rk[0]);
        for round_key in &rk[1..10] {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, round_key);
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &rk[10]);
        s
    }

    /// Encrypts a 128-bit value given as a pair of `u64` (big-endian halves).
    ///
    /// Convenience for building one-time pads from packed
    /// `(µ, address, word-index, counter)` tuples.
    pub fn encrypt_u64_pair(&self, hi: u64, lo: u64) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&hi.to_be_bytes());
        block[8..].copy_from_slice(&lo.to_be_bytes());
        self.encrypt(block)
    }
}

fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        s[i] ^= rk[i];
    }
}

fn sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

// State is column-major: s[c*4 + r] is row r, column c (FIPS-197 layout).
fn shift_rows(s: &mut [u8; 16]) {
    let t = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[c * 4 + r] = t[((c + r) % 4) * 4 + r];
        }
    }
}

fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[c * 4], s[c * 4 + 1], s[c * 4 + 2], s[c * 4 + 3]];
        let all = col[0] ^ col[1] ^ col[2] ^ col[3];
        for r in 0..4 {
            s[c * 4 + r] = col[r] ^ all ^ xtime(col[r] ^ col[(r + 1) % 4]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn fips197_appendix_b() {
        // FIPS-197 Appendix B example vector.
        let aes = Aes128::new(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let ct = aes.encrypt(hex16("3243f6a8885a308d313198a2e0370734"));
        assert_eq!(ct, hex16("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c() {
        // FIPS-197 Appendix C.1 (AES-128) known-answer test.
        let aes = Aes128::new(hex16("000102030405060708090a0b0c0d0e0f"));
        let ct = aes.encrypt(hex16("00112233445566778899aabbccddeeff"));
        assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn nist_sp800_38a_ecb_vectors() {
        // SP 800-38A F.1.1 ECB-AES128.Encrypt, all four blocks.
        let aes = Aes128::new(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let cases = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "3ad77bb40d7a3660a89ecaf32466ef97",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "f5d3d58503b9699de785895a96fdbaaf",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "43b1cd7f598ece23881b00e3ed030688",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "7b0c785e27e8ad3f8223207104725dd4",
            ),
        ];
        for (pt, ct) in cases {
            assert_eq!(aes.encrypt(hex16(pt)), hex16(ct));
        }
    }

    #[test]
    fn distinct_inputs_distinct_outputs() {
        let aes = Aes128::new([9u8; 16]);
        let a = aes.encrypt([0u8; 16]);
        let mut input = [0u8; 16];
        input[15] = 1;
        let b = aes.encrypt(input);
        assert_ne!(a, b);
    }

    #[test]
    fn key_sensitivity() {
        let a = Aes128::new([0u8; 16]).encrypt([1u8; 16]);
        let mut key = [0u8; 16];
        key[0] = 1;
        let b = Aes128::new(key).encrypt([1u8; 16]);
        assert_ne!(a, b);
    }

    #[test]
    fn ttable_matches_reference_implementation() {
        // Pseudo-random keys and blocks: the T-table fast path and the
        // byte-wise FIPS-197 rounds must agree everywhere.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..200 {
            let mut key = [0u8; 16];
            let mut block = [0u8; 16];
            key[..8].copy_from_slice(&next().to_le_bytes());
            key[8..].copy_from_slice(&next().to_le_bytes());
            block[..8].copy_from_slice(&next().to_le_bytes());
            block[8..].copy_from_slice(&next().to_le_bytes());
            let aes = Aes128::new(key);
            assert_eq!(aes.encrypt(block), aes.encrypt_reference(block));
        }
    }

    #[test]
    fn te0_packs_mixcolumns_coefficients() {
        // Spot-check the table against the MixColumns column (2,1,1,3).
        let s = SBOX[0x53] as u32;
        let s2 = super::xtime(SBOX[0x53]) as u32;
        assert_eq!(TE0[0x53], (s2 << 24) | (s << 16) | (s << 8) | (s2 ^ s));
    }

    #[test]
    fn u64_pair_packing_is_big_endian() {
        let aes = Aes128::new([3u8; 16]);
        let via_pair = aes.encrypt_u64_pair(0x0001_0203_0405_0607, 0x0809_0a0b_0c0d_0e0f);
        let via_bytes = aes.encrypt(hex16("000102030405060708090a0b0c0d0e0f"));
        assert_eq!(via_pair, via_bytes);
    }
}
