//! Latency parameters of the cryptography hardware.
//!
//! The paper's Table I and §III fix the latencies the timing simulator
//! charges: 14 ns for AES-128 (faster than the measured 7 nm AES latency,
//! anticipating improvements — footnote 2), 3 ns for decoding a Morphable
//! counter block, and sensitivity points at 20/25 ns AES (Fig 18,
//! approximating AES-192/AES-256 round counts).

use emcc_sim::Time;

/// Latencies charged for cryptographic operations.
///
/// # Examples
///
/// ```
/// use emcc_crypto::CryptoLatencies;
/// use emcc_sim::Time;
///
/// let lat = CryptoLatencies::paper_default();
/// assert_eq!(lat.aes, Time::from_ns(14));
/// assert_eq!(lat.counter_decode, Time::from_ns(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CryptoLatencies {
    /// One counter-mode AES computation (OTP generation or MAC AES half).
    /// The four OTPs of a block are computed by parallel units, so a block
    /// decryption charges one AES latency, not four.
    pub aes: Time,
    /// Decoding a split-counter block (extracting the minor counter and
    /// adding major + minor); 3 ns for Morphable Counters.
    pub counter_decode: Time,
    /// The XOR of pad with ciphertext and the final MAC comparison; small
    /// and fixed.
    pub xor_and_compare: Time,
}

impl CryptoLatencies {
    /// The paper's primary configuration (Table I).
    pub fn paper_default() -> Self {
        CryptoLatencies {
            aes: Time::from_ns(14),
            counter_decode: Time::from_ns(3),
            xor_and_compare: Time::from_ns(1),
        }
    }

    /// Same as the default but with a different AES latency (Fig 18 sweeps
    /// 14/20/25 ns).
    pub fn with_aes(mut self, aes: Time) -> Self {
        self.aes = aes;
        self
    }

    /// Total counter-dependent latency before data is needed: decode + AES.
    pub fn counter_path(&self) -> Time {
        self.counter_decode + self.aes
    }

    /// Total latency from data arrival to verified plaintext, assuming the
    /// counter-dependent work already finished.
    pub fn data_path(&self) -> Time {
        self.xor_and_compare
    }
}

impl Default for CryptoLatencies {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_i() {
        let lat = CryptoLatencies::default();
        assert_eq!(lat.aes, Time::from_ns(14));
        assert_eq!(lat.counter_decode, Time::from_ns(3));
    }

    #[test]
    fn aes_sweep_points() {
        for ns in [14u64, 20, 25] {
            let lat = CryptoLatencies::paper_default().with_aes(Time::from_ns(ns));
            assert_eq!(lat.aes, Time::from_ns(ns));
            assert_eq!(lat.counter_path(), Time::from_ns(ns + 3));
        }
    }

    #[test]
    fn data_path_is_short() {
        // Post-data work must be far below AES latency: the entire point of
        // eager computation is that only the XOR/compare remains.
        let lat = CryptoLatencies::paper_default();
        assert!(lat.data_path() < lat.aes / 4);
    }
}
