//! Integration tests for [`SecureMemoryService`]: concurrent use from
//! real threads, differentially checked against a single-threaded
//! [`FunctionalSecureMemory`] oracle, plus the backpressure and
//! degraded read-only paths exercised through the public API.

use std::collections::HashMap;
use std::sync::Arc;

use emcc_counters::CounterDesign;
use emcc_crypto::DataBlock;
use emcc_secmem::service::{InMemoryBackend, ServiceError};
use emcc_secmem::{recover, FunctionalSecureMemory, MemoryAdt, SecureMemoryService, ServiceConfig};
use emcc_sim::LineAddr;

const SEED: u64 = 7;
const LINES: u64 = 1 << 12;
const THREADS: u64 = 8;
const OPS_PER_THREAD: u64 = 200;

fn block(v: u64) -> DataBlock {
    DataBlock::from_words([v; 8])
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One thread's scripted operation.
#[derive(Clone)]
enum Op {
    Write(Vec<(LineAddr, DataBlock)>),
    /// Guarded on the first line's current value (from the thread's own
    /// model — threads own disjoint lines, so the guard is authoritative).
    GuardedWrite(LineAddr, DataBlock),
    Read(Vec<LineAddr>),
}

/// Thread `t` owns the lines `{ l | l % THREADS == t }`: adjacent lines
/// in the same counter block belong to *different* threads, so shared
/// counter-block mutation (and split-counter rebases) is exercised under
/// contention, while per-line values stay linearizable trivially.
fn owned_line(thread: u64, r: u64) -> LineAddr {
    LineAddr::new((r % (LINES / THREADS)) * THREADS + thread)
}

/// Deterministic per-thread script; regenerated identically by the
/// oracle, so nothing is shared between threads but the service.
fn script(thread: u64) -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..OPS_PER_THREAD {
        let r = mix(thread.wrapping_mul(0x51ab).wrapping_add(i));
        match r % 3 {
            0 => {
                let n = 1 + (r >> 8) % 3;
                let writes = (0..n)
                    .map(|k| (owned_line(thread, r >> (16 + k)), block(mix(r ^ k))))
                    .collect();
                ops.push(Op::Write(writes));
            }
            1 => ops.push(Op::GuardedWrite(owned_line(thread, r >> 8), block(mix(!r)))),
            _ => {
                let n = 1 + (r >> 8) % 4;
                ops.push(Op::Read(
                    (0..n).map(|k| owned_line(thread, r >> (16 + k))).collect(),
                ));
            }
        }
    }
    ops
}

/// Retries an op through transient backpressure; any other error panics.
fn with_retry<T>(mut f: impl FnMut() -> Result<T, ServiceError>) -> T {
    loop {
        match f() {
            Ok(v) => return v,
            Err(ServiceError::Overloaded { .. }) => std::thread::yield_now(),
            Err(e) => panic!("unexpected service error: {e}"),
        }
    }
}

/// Runs one thread's script, checking reads against its private model as
/// it goes (per-line linearizability for disjoint ownership).
fn run_script(svc: &SecureMemoryService<InMemoryBackend>, thread: u64) {
    let mut model: HashMap<LineAddr, DataBlock> = HashMap::new();
    for op in script(thread) {
        match op {
            Op::Write(writes) => {
                let ack = with_retry(|| svc.batch_write(&writes));
                assert_eq!(ack.committed, writes.len());
                for (l, v) in writes {
                    model.insert(l, v);
                }
            }
            Op::GuardedWrite(line, value) => {
                let expect = model.get(&line).copied();
                let seen = with_retry(|| svc.guarded_write((line, expect), &[(line, value)]));
                assert_eq!(seen, expect, "guard on an owned line must see own value");
                model.insert(line, value);
            }
            Op::Read(lines) => {
                let got = with_retry(|| svc.batch_read(&lines));
                for (l, v) in lines.iter().zip(got) {
                    assert_eq!(v, model.get(l).copied(), "stale read of owned line {l:?}");
                }
            }
        }
    }
}

/// Replays every thread's script single-threaded into the oracle. Any
/// interleaving of disjoint-line scripts linearizes to the same per-line
/// final values, so replay order between threads does not matter.
fn oracle() -> (FunctionalSecureMemory, HashMap<LineAddr, DataBlock>) {
    let mut mem = FunctionalSecureMemory::with_design(SEED, LINES, CounterDesign::Morphable);
    let mut finals = HashMap::new();
    for t in 0..THREADS {
        for op in script(t) {
            match op {
                Op::Write(writes) => {
                    for (l, v) in writes {
                        mem.write(l, v);
                        finals.insert(l, v);
                    }
                }
                Op::GuardedWrite(l, v) => {
                    mem.write(l, v);
                    finals.insert(l, v);
                }
                Op::Read(_) => {}
            }
        }
    }
    (mem, finals)
}

/// The acceptance-criteria differential test: many threads against the
/// service vs a single-threaded functional oracle on the linearized log.
#[test]
fn concurrent_threads_match_single_threaded_oracle() {
    let svc = Arc::new(SecureMemoryService::new(
        InMemoryBackend::new(),
        SEED,
        LINES,
        ServiceConfig {
            max_in_flight: 4, // small window: overload path races for real
            ..ServiceConfig::default()
        },
    ));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || run_script(&svc, t))
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let (oracle_mem, finals) = oracle();
    assert!(!finals.is_empty());

    // Every line the oracle saw written must read back identically.
    let lines: Vec<LineAddr> = finals.keys().copied().collect();
    let got = svc.batch_read(&lines).unwrap();
    for (l, v) in lines.iter().zip(got) {
        assert_eq!(v.as_ref(), finals.get(l), "divergence at line {l:?}");
        assert_eq!(
            oracle_mem.read_checked(*l).ok().as_ref(),
            finals.get(l),
            "oracle self-check at line {l:?}"
        );
    }
    assert!(!svc.is_degraded());
    let stats = svc.stats();
    assert_eq!(stats.rollbacks, 0);
    assert!(stats.writes > 0 && stats.reads > 0 && stats.guarded_writes > 0);

    // The journal written under concurrency must recover to the same
    // state: end-to-end crash-consistency of the concurrent run.
    let backend = Arc::try_unwrap(svc)
        .expect("all workers joined")
        .into_backend();
    let (recovered, report) = recover(
        backend,
        SEED,
        LINES,
        CounterDesign::Morphable,
        ServiceConfig::default(),
    )
    .expect("journal written under concurrency must recover");
    assert!(report.quarantined.is_empty());
    let got = recovered.batch_read(&lines).unwrap();
    for (l, v) in lines.iter().zip(got) {
        assert_eq!(
            v.as_ref(),
            finals.get(l),
            "post-recovery divergence at {l:?}"
        );
    }
}

/// Backpressure through the public API: held permits shrink the window
/// until real operations are rejected with a typed error, and capacity
/// returns as soon as permits drop.
#[test]
fn backpressure_rejects_then_recovers_capacity() {
    let svc = Arc::new(SecureMemoryService::new(
        InMemoryBackend::new(),
        SEED,
        LINES,
        ServiceConfig {
            max_in_flight: 2,
            ..ServiceConfig::default()
        },
    ));
    let p1 = svc.permit().unwrap();
    let p2 = svc.permit().unwrap();

    // A concurrent caller observes Overloaded, not a hang.
    let svc2 = Arc::clone(&svc);
    let rejected = std::thread::spawn(move || {
        matches!(
            svc2.batch_write(&[(LineAddr::new(1), block(1))]),
            Err(ServiceError::Overloaded {
                in_flight: 2,
                limit: 2
            })
        )
    })
    .join()
    .unwrap();
    assert!(rejected, "full window must reject with Overloaded");
    assert!(svc.stats().overloaded >= 1);

    // Nothing was acknowledged, so nothing may be durable.
    drop(p1);
    drop(p2);
    assert_eq!(svc.batch_read(&[LineAddr::new(1)]).unwrap(), vec![None]);

    // Window freed: the same op now succeeds.
    svc.batch_write(&[(LineAddr::new(1), block(1))]).unwrap();
    assert_eq!(
        svc.batch_read(&[LineAddr::new(1)]).unwrap(),
        vec![Some(block(1))]
    );
}

/// Degraded read-only mode through the public API: a verify-failure
/// streak flips the service to read-only for writers on every entry
/// point while intact lines stay readable — and because the tampering
/// hit volatile state only, recovery from the journal yields a healthy
/// service with the acknowledged data intact.
#[test]
fn degraded_mode_is_read_only_and_recoverable() {
    let svc = SecureMemoryService::new(
        InMemoryBackend::new(),
        SEED,
        LINES,
        ServiceConfig {
            degrade_after: 2,
            ..ServiceConfig::default()
        },
    );
    let good = LineAddr::new(10);
    let bad = LineAddr::new(11);
    svc.batch_write(&[(good, block(1)), (bad, block(2))])
        .unwrap();

    // DRAM corruption after the journal append: reads must detect it.
    svc.with_memory_mut(|m| m.tamper_flip_bit(bad, 3));
    for _ in 0..2 {
        assert!(matches!(
            svc.batch_read(&[bad]),
            Err(ServiceError::Corruption(_))
        ));
    }
    assert!(svc.is_degraded());
    assert!(matches!(
        svc.batch_write(&[(good, block(9))]),
        Err(ServiceError::ReadOnly { .. })
    ));
    assert!(matches!(
        svc.guarded_write((good, Some(block(1))), &[(good, block(9))]),
        Err(ServiceError::ReadOnly { .. })
    ));
    // Intact data remains readable in degraded mode.
    assert_eq!(svc.batch_read(&[good]).unwrap(), vec![Some(block(1))]);

    // The journal predates the corruption: recovery restores both lines
    // and starts healthy.
    let (recovered, report) = recover(
        svc.into_backend(),
        SEED,
        LINES,
        CounterDesign::Morphable,
        ServiceConfig::default(),
    )
    .unwrap();
    assert!(!report.degraded && report.quarantined.is_empty());
    assert_eq!(
        recovered.batch_read(&[good, bad]).unwrap(),
        vec![Some(block(1)), Some(block(2))]
    );
}
