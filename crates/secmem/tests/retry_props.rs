//! Property tests for the retry/backoff arithmetic in
//! `emcc_secmem::verify::RetryPolicy`.
//!
//! The service layer budgets per-op timeouts against
//! `cumulative_backoff`, so these properties are load-bearing: an
//! overflow or a cap violation would let a misconfigured policy wedge an
//! op forever or wrap a timeout comparison.

use emcc_secmem::verify::{RetryPolicy, DRAM_TCK};
use emcc_sim::Time;
use proptest::prelude::*;

/// The hard ceiling on any single backoff term: 2^20 DRAM ticks.
const CAP_PS: u64 = DRAM_TCK.as_ps() * (1 << 20);

/// Oracle: sum the per-attempt backoffs in 128-bit arithmetic, then
/// saturate to u64 — what `cumulative_backoff` must compute without ever
/// iterating `max_attempts` times or overflowing.
fn naive_cumulative_ps(p: &RetryPolicy) -> u64 {
    let mut total: u128 = 0;
    for attempt in 0..p.max_attempts {
        total += u128::from(p.backoff(attempt).as_ps());
    }
    u64::try_from(total).unwrap_or(u64::MAX)
}

proptest! {
    /// Every single backoff term respects the 2^20-tick cap.
    #[test]
    fn backoff_respects_cap(
        base in 0u64..=u64::MAX,
        attempt in 0u32..=1_000_000,
    ) {
        let p = RetryPolicy { max_attempts: 1, base_ticks: base };
        prop_assert!(
            p.backoff(attempt).as_ps() <= CAP_PS,
            "backoff({attempt}) = {} ps exceeds cap {} ps",
            p.backoff(attempt).as_ps(),
            CAP_PS
        );
    }

    /// Backoff is monotone non-decreasing in the attempt index (it
    /// doubles until the cap, then stays at the cap).
    #[test]
    fn backoff_is_monotone_in_attempt(
        base in 0u64..=(1u64 << 40),
        attempt in 0u32..64,
    ) {
        let p = RetryPolicy { max_attempts: 1, base_ticks: base };
        prop_assert!(
            p.backoff(attempt) <= p.backoff(attempt + 1),
            "backoff({}) = {:?} > backoff({}) = {:?}",
            attempt, p.backoff(attempt), attempt + 1, p.backoff(attempt + 1)
        );
    }

    /// `cumulative_backoff` matches a 128-bit naive sum (saturated to
    /// u64) over policies small enough to sum directly.
    #[test]
    fn cumulative_matches_naive_sum(
        max_attempts in 0u32..=4096,
        base in 0u64..=u64::MAX,
    ) {
        let p = RetryPolicy { max_attempts, base_ticks: base };
        prop_assert_eq!(p.cumulative_backoff().as_ps(), naive_cumulative_ps(&p));
    }

    /// `cumulative_backoff` is monotone in `max_attempts`: granting more
    /// retries never shrinks the worst-case delay.
    #[test]
    fn cumulative_is_monotone_in_max_attempts(
        max_attempts in 0u32..=100_000,
        base in 0u64..=u64::MAX,
    ) {
        let lo = RetryPolicy { max_attempts, base_ticks: base };
        let hi = RetryPolicy { max_attempts: max_attempts + 1, base_ticks: base };
        prop_assert!(lo.cumulative_backoff() <= hi.cumulative_backoff());
    }

    /// No overflow for any configuration, including the adversarial
    /// corner (u32::MAX attempts, u64::MAX base): the sum saturates and
    /// the arithmetic closure keeps it O(cap-exponent), not O(attempts).
    #[test]
    fn cumulative_never_overflows(
        max_attempts in 0u32..=u32::MAX,
        base in 0u64..=u64::MAX,
    ) {
        let p = RetryPolicy { max_attempts, base_ticks: base };
        let total = p.cumulative_backoff().as_ps();
        // An upper bound that itself cannot overflow: every term is
        // capped, so total <= max_attempts * CAP_PS (in 128-bit math).
        let bound = u128::from(max_attempts) * u128::from(CAP_PS);
        prop_assert!(u128::from(total) <= bound.min(u128::from(u64::MAX)));
    }

    /// `should_retry` is exactly the budget predicate: true strictly
    /// below `max_attempts`, false at and beyond it.
    #[test]
    fn should_retry_is_budget_boundary(
        max_attempts in 0u32..1_000,
        probe in 0u32..2_000,
    ) {
        let p = RetryPolicy { max_attempts, base_ticks: 64 };
        prop_assert_eq!(p.should_retry(probe), probe < max_attempts);
    }
}

/// Zero retries means zero worst-case delay — the degenerate policy the
/// crash campaign uses for "fail fast" runs.
#[test]
fn zero_attempts_zero_delay() {
    let p = RetryPolicy {
        max_attempts: 0,
        base_ticks: u64::MAX,
    };
    assert_eq!(p.cumulative_backoff(), Time::ZERO);
    assert!(!p.should_retry(0));
}

/// A zero base never backs off, regardless of attempt count.
#[test]
fn zero_base_never_backs_off() {
    let p = RetryPolicy {
        max_attempts: u32::MAX,
        base_ticks: 0,
    };
    assert_eq!(p.backoff(0), Time::ZERO);
    assert_eq!(p.backoff(63), Time::ZERO);
    assert_eq!(p.cumulative_backoff(), Time::ZERO);
}

/// The adversarial corner must terminate promptly (the closed-form
/// shortcut) and saturate rather than wrap.
#[test]
fn adversarial_corner_terminates_and_saturates() {
    let p = RetryPolicy {
        max_attempts: u32::MAX,
        base_ticks: u64::MAX,
    };
    let total = p.cumulative_backoff();
    // Every term is the cap; u32::MAX * CAP_PS fits in u64, so the sum
    // is exact here — and trivially below u64::MAX.
    assert_eq!(
        u128::from(total.as_ps()),
        u128::from(u32::MAX) * u128::from(CAP_PS)
    );
}
