//! Functional (non-timing) secure memory.
//!
//! A complete architectural model of the secure-memory data path: every
//! write encrypts with the line's fresh counter and stores a real 56-bit
//! MAC; every read recomputes and checks the MAC before decrypting. The
//! integrity tree supplies the counters, including split-counter rebases
//! (which transparently re-encrypt the covered region, exactly the work
//! the timing model charges as overflow traffic).
//!
//! This model exists to *prove the protocol*: the timing simulator reuses
//! the same counter state machine but does not move data bytes around.

use std::collections::HashMap;

use emcc_counters::{CounterBlock, CounterDesign, IntegrityTree};
use emcc_crypto::{BlockCipherKeys, DataBlock, Mac56};
use emcc_sim::LineAddr;

/// Persistent state touched by one [`FunctionalSecureMemory::write_logged`]
/// call — the payload a write-ahead journal record must carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteLog {
    /// Index of the (single) level-0 counter block the write mutated.
    pub counter_block: u64,
    /// Post-write snapshot of that block. All slots share one major, so
    /// whole-block capture is the smallest sound unit: a rebase rewrites
    /// every minor, and per-slot deltas could not reproduce that.
    pub block: CounterBlock,
    /// Post-write ciphertext+MAC of every line the write re-encrypted.
    pub touched: Vec<(LineAddr, StoredLine)>,
}

/// Why a read failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadError {
    /// The stored MAC does not match the recomputed MAC: tampering or
    /// replay detected. Hardware would raise the ECC-style interrupt the
    /// paper describes (§IV-D).
    MacMismatch {
        /// The offending line.
        line: LineAddr,
    },
    /// An integrity-tree node on the line's verification path failed its
    /// MAC check: counter-block or tree-node tampering detected during the
    /// tree walk.
    TreeMismatch {
        /// Tree level of the corrupt node (0 = counter blocks).
        level: u32,
        /// Node index within its level.
        index: u64,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::MacMismatch { line } => {
                write!(f, "integrity violation detected at line {line}")
            }
            ReadError::TreeMismatch { level, index } => {
                write!(f, "integrity-tree violation at level {level} node {index}")
            }
        }
    }
}

impl std::error::Error for ReadError {}

/// A stored ciphertext line with its MAC (co-located, as in §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredLine {
    /// The encrypted block as it would sit in DRAM.
    pub cipher: DataBlock,
    /// The 56-bit MAC co-located with the data.
    pub mac: Mac56,
}

/// Functional secure memory over a sparse line store.
///
/// Unwritten lines read as all-zero plaintext (fresh memory), matching how
/// real systems initialize counters to zero at boot.
///
/// # Examples
///
/// ```
/// use emcc_secmem::FunctionalSecureMemory;
/// use emcc_crypto::DataBlock;
/// use emcc_sim::LineAddr;
///
/// let mut mem = FunctionalSecureMemory::new(7, 1 << 16);
/// let line = LineAddr::new(3);
/// let block = DataBlock::from_words([42; 8]);
/// mem.write(line, block);
/// assert_eq!(mem.read(line).unwrap(), block);
///
/// // Physical tampering is detected.
/// mem.tamper_flip_bit(line, 17);
/// assert!(mem.read(line).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct FunctionalSecureMemory {
    keys: BlockCipherKeys,
    tree: IntegrityTree,
    store: HashMap<LineAddr, StoredLine>,
    reencrypted_lines: u64,
    /// Tamper state for integrity-tree nodes, keyed by `(level, index)`.
    /// An XOR mask over the node's 512-bit image models corrupted node
    /// contents in DRAM; nodes without an entry are intact.
    node_masks: HashMap<(u32, u64), [u64; 8]>,
    /// Stored-MAC overrides for tampered tree nodes; absent means the MAC
    /// in "DRAM" is the correct MAC of the intact node image.
    node_macs: HashMap<(u32, u64), Mac56>,
}

impl FunctionalSecureMemory {
    /// Creates a memory with Morphable counters over `data_lines` lines.
    pub fn new(seed: u64, data_lines: u64) -> Self {
        Self::with_design(seed, data_lines, CounterDesign::Morphable)
    }

    /// Creates a memory with an explicit counter design.
    pub fn with_design(seed: u64, data_lines: u64, design: CounterDesign) -> Self {
        FunctionalSecureMemory {
            keys: BlockCipherKeys::from_seed(seed),
            tree: IntegrityTree::new(design, data_lines),
            store: HashMap::new(),
            reencrypted_lines: 0,
            node_masks: HashMap::new(),
            node_macs: HashMap::new(),
        }
    }

    /// The integrity tree (counter state), for inspection.
    pub fn tree(&self) -> &IntegrityTree {
        &self.tree
    }

    /// Lines re-encrypted by rebases so far — the functional analogue of
    /// overflow DRAM traffic.
    pub fn reencrypted_lines(&self) -> u64 {
        self.reencrypted_lines
    }

    /// Writes a plaintext block: bumps the counter, encrypts, MACs.
    ///
    /// Split-counter rebases transparently re-encrypt every stored line the
    /// counter block covers.
    pub fn write(&mut self, line: LineAddr, plain: DataBlock) {
        // If this increment will rebase, decrypt the covered region with
        // the *old* counters first.
        let saved: Vec<(LineAddr, DataBlock)> = if self.tree.would_overflow_data(line) {
            self.covered_lines(line)
                .filter(|l| *l != line && self.store.contains_key(l))
                .map(|l| {
                    let plain = self
                        .read(l)
                        .expect("pre-rebase re-read of intact line succeeds");
                    (l, plain)
                })
                .collect()
        } else {
            Vec::new()
        };

        let r = self.tree.increment_data(line);
        if r.overflow.is_some() {
            for (l, plain) in saved {
                let counter = self.tree.data_counter(l);
                self.store_encrypted(l, plain, counter);
                self.reencrypted_lines += 1;
            }
        }
        self.store_encrypted(line, plain, r.new_counter);

        // The write updates the metadata blocks along this line's path, so
        // hardware re-MACs them as it goes: any prior node tampering on the
        // path is overwritten (mirrors data tampering being repaired by a
        // rewrite of the line).
        for addr in self.tree.geometry().verification_path(line) {
            let key = self.tree.geometry().node_of_addr(addr);
            self.node_masks.remove(&key);
            self.node_macs.remove(&key);
        }
    }

    /// Reads and verifies a block.
    ///
    /// # Errors
    ///
    /// Returns [`ReadError::MacMismatch`] when the stored MAC fails to
    /// verify — tampering or replay.
    pub fn read(&self, line: LineAddr) -> Result<DataBlock, ReadError> {
        let Some(stored) = self.store.get(&line) else {
            return Ok(DataBlock::default());
        };
        let counter = self.tree.data_counter(line);
        let addr = line.base().get();
        if !self
            .keys
            .verify_block(addr, counter, &stored.cipher, stored.mac)
        {
            return Err(ReadError::MacMismatch { line });
        }
        Ok(self.keys.decrypt_block(addr, counter, &stored.cipher))
    }

    /// Reads via the EMCC split path: the "MC" ships
    /// `(ciphertext, MAC ⊕ dot-product)` and the "L2" verifies against its
    /// locally computed AES half and decrypts with its locally computed
    /// pad. Must behave identically to [`Self::read`].
    ///
    /// # Errors
    ///
    /// Returns [`ReadError::MacMismatch`] exactly when [`Self::read`] does.
    pub fn read_split(&self, line: LineAddr) -> Result<DataBlock, ReadError> {
        let Some(stored) = self.store.get(&line) else {
            return Ok(DataBlock::default());
        };
        let counter = self.tree.data_counter(line);
        let addr = line.base().get();
        // MC side: data-dependent half only.
        let shipped = stored.mac.as_u64() ^ self.keys.mac_dot_half(&stored.cipher).as_u64();
        // L2 side: counter-dependent half, computed before data arrives.
        let aes_half = self.keys.mac_aes_half(addr, counter).as_u64();
        if shipped != aes_half {
            return Err(ReadError::MacMismatch { line });
        }
        Ok(self.keys.decrypt_block(addr, counter, &stored.cipher))
    }

    /// Raw stored state (ciphertext + MAC) — what a bus probe would see.
    pub fn raw(&self, line: LineAddr) -> Option<StoredLine> {
        self.store.get(&line).copied()
    }

    /// Like [`Self::write`], but also reports exactly which persistent
    /// state the write touched, so a write-ahead journal can capture it:
    /// the (single) mutated counter block and every stored line whose
    /// ciphertext changed — one line normally, the whole covered region on
    /// a rebase.
    pub fn write_logged(&mut self, line: LineAddr, plain: DataBlock) -> WriteLog {
        let rebased = self.tree.would_overflow_data(line);
        self.write(line, plain);
        let cb_index = self.tree.geometry().counter_block_of(line);
        let block = self
            .tree
            .level0_block(cb_index)
            .expect("write materializes its counter block")
            .clone();
        let touched: Vec<(LineAddr, StoredLine)> = if rebased {
            self.covered_lines(line)
                .filter_map(|l| self.store.get(&l).map(|s| (l, *s)))
                .collect()
        } else {
            vec![(line, self.store[&line])]
        };
        WriteLog {
            counter_block: cb_index,
            block,
            touched,
        }
    }

    /// Installs a raw ciphertext+MAC image, or clears the line with `None`
    /// — crash recovery replaying a journal, and write rollback.
    pub fn restore_line(&mut self, line: LineAddr, stored: Option<StoredLine>) {
        match stored {
            Some(s) => {
                self.store.insert(line, s);
            }
            None => {
                self.store.remove(&line);
            }
        }
    }

    /// The materialized counter block covering `line`, if any.
    pub fn counter_block_state(&self, index: u64) -> Option<&CounterBlock> {
        self.tree.level0_block(index)
    }

    /// Installs (or clears) a level-0 counter block during recovery or
    /// write rollback. See [`IntegrityTree::restore_level0_block`].
    pub fn restore_counter_block(&mut self, index: u64, block: Option<CounterBlock>) {
        self.tree.restore_level0_block(index, block);
    }

    /// Attack: flip one bit of the stored ciphertext.
    ///
    /// # Panics
    ///
    /// Panics if the line was never written or `bit >= 512`.
    pub fn tamper_flip_bit(&mut self, line: LineAddr, bit: usize) {
        let s = self
            .store
            .get_mut(&line)
            .expect("line must exist to tamper");
        s.cipher = s.cipher.with_bit_flipped(bit);
    }

    /// Attack: replace the stored line with a previously captured copy
    /// (replay attack).
    pub fn tamper_replay(&mut self, line: LineAddr, old: StoredLine) {
        self.store.insert(line, old);
    }

    /// Attack: overwrite the stored MAC.
    ///
    /// # Panics
    ///
    /// Panics if the line was never written.
    pub fn tamper_mac(&mut self, line: LineAddr, mac: Mac56) {
        self.store.get_mut(&line).expect("line must exist").mac = mac;
    }

    /// Attack: flip one bit of the stored 56-bit MAC.
    ///
    /// # Panics
    ///
    /// Panics if the line was never written or `bit >= 56`.
    pub fn tamper_mac_flip_bit(&mut self, line: LineAddr, bit: usize) {
        assert!(bit < 56, "MAC has 56 bits");
        let s = self.store.get_mut(&line).expect("line must exist");
        s.mac = Mac56::from_u64(s.mac.as_u64() ^ (1 << bit));
    }

    /// Attack: corrupt an integrity-tree node as stored in DRAM. Bits
    /// `0..512` flip the node's 512-bit counter image; bits `512..568`
    /// flip the node's co-located 56-bit MAC.
    ///
    /// Detected by [`Self::verify_path`] for any data line whose path
    /// includes the node, until a write to such a line rewrites the path.
    ///
    /// # Panics
    ///
    /// Panics if `level`/`index` are out of range or `bit >= 568`.
    pub fn tamper_tree_flip_bit(&mut self, level: u32, index: u64, bit: usize) {
        // Range-check through the geometry.
        let _ = self.tree.geometry().node_addr(level, index);
        let key = (level, index);
        if bit < 512 {
            let mask = self.node_masks.entry(key).or_insert([0u64; 8]);
            mask[bit / 64] ^= 1 << (bit % 64);
        } else {
            assert!(bit < 568, "node line is 512 image bits + 56 MAC bits");
            let current = self
                .node_macs
                .get(&key)
                .copied()
                .unwrap_or_else(|| self.intact_node_mac(level, index));
            self.node_macs
                .insert(key, Mac56::from_u64(current.as_u64() ^ (1 << (bit - 512))));
        }
    }

    /// Walks the integrity tree from the line's counter block to the root,
    /// verifying each node's stored MAC against its observed contents —
    /// the functional analogue of the MC's tree walk.
    ///
    /// # Errors
    ///
    /// Returns [`ReadError::TreeMismatch`] naming the first corrupt node,
    /// from the leaves upward.
    pub fn verify_path(&self, line: LineAddr) -> Result<(), ReadError> {
        for addr in self.tree.geometry().verification_path(line) {
            let (level, index) = self.tree.geometry().node_of_addr(addr);
            let observed = self.observed_node_image(level, index);
            let stored_mac = self
                .node_macs
                .get(&(level, index))
                .copied()
                .unwrap_or_else(|| self.intact_node_mac(level, index));
            let recomputed = self.keys.mac_block(
                addr.base().get(),
                self.tree.node_counter(level, index),
                &DataBlock::from_words(observed),
            );
            if recomputed != stored_mac {
                return Err(ReadError::TreeMismatch { level, index });
            }
        }
        Ok(())
    }

    /// Tree-walk verification followed by the data read — the full check a
    /// cold miss performs.
    ///
    /// # Errors
    ///
    /// Returns the tree failure if any path node is corrupt, else any data
    /// MAC failure from [`Self::read`].
    pub fn read_checked(&self, line: LineAddr) -> Result<DataBlock, ReadError> {
        self.verify_path(line)?;
        self.read(line)
    }

    /// Every line that has been written, in ascending order — the domain a
    /// differential checker must compare.
    pub fn written_lines(&self) -> Vec<LineAddr> {
        let mut lines: Vec<LineAddr> = self.store.keys().copied().collect();
        lines.sort_unstable();
        lines
    }

    /// The node's intact 512-bit image: a deterministic packing of the
    /// counters it stores (data counters at level 0, child node counters
    /// above). Any single counter change flips image bits.
    fn intact_node_image(&self, level: u32, index: u64) -> [u64; 8] {
        fn mix(c: u64, slot: u64) -> u64 {
            let mut z = c ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let g = self.tree.geometry();
        let arity = g.design().coverage();
        let mut img = [0u64; 8];
        for slot in 0..arity {
            let c = if level == 0 {
                self.tree.data_counter(LineAddr::new(index * arity + slot))
            } else {
                let child = index * arity + slot;
                if child >= g.blocks_at_level(level - 1) {
                    continue;
                }
                self.tree.node_counter(level - 1, child)
            };
            img[(slot % 8) as usize] ^= mix(c, slot);
        }
        img
    }

    fn observed_node_image(&self, level: u32, index: u64) -> [u64; 8] {
        let mut img = self.intact_node_image(level, index);
        if let Some(mask) = self.node_masks.get(&(level, index)) {
            for (w, m) in img.iter_mut().zip(mask) {
                *w ^= m;
            }
        }
        img
    }

    /// The MAC hardware would have stored for the node's intact contents.
    fn intact_node_mac(&self, level: u32, index: u64) -> Mac56 {
        let addr = self.tree.geometry().node_addr(level, index);
        self.keys.mac_block(
            addr.base().get(),
            self.tree.node_counter(level, index),
            &DataBlock::from_words(self.intact_node_image(level, index)),
        )
    }

    fn covered_lines(&self, line: LineAddr) -> impl Iterator<Item = LineAddr> {
        let coverage = self.tree.geometry().design().coverage();
        let cb = self.tree.geometry().counter_block_of(line);
        (cb * coverage..(cb + 1) * coverage).map(LineAddr::new)
    }

    fn store_encrypted(&mut self, line: LineAddr, plain: DataBlock, counter: u64) {
        let addr = line.base().get();
        let cipher = self.keys.encrypt_block(addr, counter, &plain);
        let mac = self.keys.mac_block(addr, counter, &cipher);
        self.store.insert(line, StoredLine { cipher, mac });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(v: u64) -> DataBlock {
        DataBlock::from_words([v; 8])
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = FunctionalSecureMemory::new(1, 1 << 16);
        m.write(LineAddr::new(5), block(9));
        assert_eq!(m.read(LineAddr::new(5)).unwrap(), block(9));
    }

    #[test]
    fn unwritten_lines_read_zero() {
        let m = FunctionalSecureMemory::new(1, 1 << 16);
        assert_eq!(m.read(LineAddr::new(99)).unwrap(), DataBlock::default());
    }

    #[test]
    fn overwrite_uses_fresh_counter() {
        let mut m = FunctionalSecureMemory::new(1, 1 << 16);
        let l = LineAddr::new(2);
        m.write(l, block(1));
        let c1 = m.raw(l).unwrap();
        m.write(l, block(1)); // same plaintext again
        let c2 = m.raw(l).unwrap();
        // Counter-mode with a fresh counter: identical plaintext encrypts
        // to a different ciphertext (no pad reuse — the §II vulnerability).
        assert_ne!(c1.cipher, c2.cipher);
        assert_eq!(m.read(l).unwrap(), block(1));
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let mut m = FunctionalSecureMemory::new(1, 1 << 16);
        let l = LineAddr::new(3);
        m.write(l, block(0xDEAD_BEEF));
        let raw = m.raw(l).unwrap();
        assert!(raw.cipher.words().iter().all(|&w| w != 0xDEAD_BEEF));
    }

    #[test]
    fn bit_flip_detected() {
        let mut m = FunctionalSecureMemory::new(1, 1 << 16);
        let l = LineAddr::new(4);
        m.write(l, block(7));
        m.tamper_flip_bit(l, 100);
        assert_eq!(m.read(l), Err(ReadError::MacMismatch { line: l }));
    }

    #[test]
    fn mac_forgery_detected() {
        let mut m = FunctionalSecureMemory::new(1, 1 << 16);
        let l = LineAddr::new(4);
        m.write(l, block(7));
        m.tamper_mac(l, Mac56::from_u64(0x1234));
        assert!(m.read(l).is_err());
    }

    #[test]
    fn replay_attack_detected() {
        let mut m = FunctionalSecureMemory::new(1, 1 << 16);
        let l = LineAddr::new(8);
        m.write(l, block(1));
        let old = m.raw(l).unwrap(); // attacker snapshots bus traffic
        m.write(l, block(2)); // victim updates the value
        m.tamper_replay(l, old); // attacker restores the old ciphertext+MAC
        assert!(
            m.read(l).is_err(),
            "replayed old ciphertext must fail: counter has advanced"
        );
    }

    #[test]
    fn split_read_matches_monolithic_read() {
        let mut m = FunctionalSecureMemory::new(3, 1 << 16);
        for i in 0..50u64 {
            m.write(LineAddr::new(i), block(i * 31 + 1));
        }
        for i in 0..50u64 {
            let l = LineAddr::new(i);
            assert_eq!(m.read(l).unwrap(), m.read_split(l).unwrap());
        }
    }

    #[test]
    fn split_read_detects_tamper() {
        let mut m = FunctionalSecureMemory::new(3, 1 << 16);
        let l = LineAddr::new(11);
        m.write(l, block(5));
        m.tamper_flip_bit(l, 0);
        assert!(m.read_split(l).is_err());
    }

    #[test]
    fn rebase_preserves_all_covered_values() {
        // Force a rebase with SC-64 (overflows after 128 writes to one
        // line) and check neighbors survive re-encryption.
        let mut m = FunctionalSecureMemory::with_design(9, 1 << 16, CounterDesign::Sc64);
        m.write(LineAddr::new(0), block(100));
        m.write(LineAddr::new(1), block(101));
        m.write(LineAddr::new(63), block(163));
        for _ in 0..130 {
            m.write(LineAddr::new(5), block(5));
        }
        assert!(m.tree().overflows_by_level()[0] >= 1, "rebase must occur");
        assert!(m.reencrypted_lines() > 0);
        assert_eq!(m.read(LineAddr::new(0)).unwrap(), block(100));
        assert_eq!(m.read(LineAddr::new(1)).unwrap(), block(101));
        assert_eq!(m.read(LineAddr::new(63)).unwrap(), block(163));
        assert_eq!(m.read(LineAddr::new(5)).unwrap(), block(5));
    }

    #[test]
    fn rebase_with_morphable_counters() {
        let mut m = FunctionalSecureMemory::new(9, 1 << 16);
        for i in 0..128u64 {
            m.write(LineAddr::new(i), block(i));
        }
        // Uniform writes overflow Morphable around value 8 per line.
        for _round in 0..10 {
            for i in 0..128u64 {
                m.write(LineAddr::new(i), block(i + 1000));
            }
        }
        assert!(m.tree().overflows_by_level()[0] >= 1);
        for i in 0..128u64 {
            assert_eq!(m.read(LineAddr::new(i)).unwrap(), block(i + 1000));
        }
    }

    #[test]
    fn mac_bit_flip_detected() {
        let mut m = FunctionalSecureMemory::new(2, 1 << 16);
        let l = LineAddr::new(6);
        m.write(l, block(3));
        m.tamper_mac_flip_bit(l, 55);
        assert!(m.read(l).is_err());
        assert!(m.read_split(l).is_err());
    }

    #[test]
    fn clean_path_verifies_at_every_level() {
        let mut m = FunctionalSecureMemory::new(4, 1 << 16);
        for i in 0..40u64 {
            m.write(LineAddr::new(i * 7), block(i));
        }
        for i in 0..40u64 {
            let l = LineAddr::new(i * 7);
            assert_eq!(m.verify_path(l), Ok(()));
            assert_eq!(m.read_checked(l).unwrap(), block(i));
        }
    }

    #[test]
    fn tree_node_tamper_detected_at_each_level() {
        // 1 << 16 lines under Morphable: L0 = 512 blocks, L1 = 4, + root.
        let mut m = FunctionalSecureMemory::new(4, 1 << 16);
        let l = LineAddr::new(200);
        m.write(l, block(1));
        let levels = m.tree().geometry().num_levels();
        assert!(levels >= 2, "need a multi-level tree for this test");
        for level in 0..levels {
            let mut probe = m.clone();
            let idx = if level == 0 {
                probe.tree().geometry().counter_block_of(l)
            } else {
                // Walk the path up to this level's node index.
                let mut i = probe.tree().geometry().counter_block_of(l);
                for _ in 0..level {
                    i /= probe.tree().geometry().design().coverage();
                }
                i
            };
            probe.tamper_tree_flip_bit(level, idx, 17);
            assert_eq!(
                probe.verify_path(l),
                Err(ReadError::TreeMismatch { level, index: idx }),
                "image corruption at level {level} must be detected"
            );
            // MAC-side corruption of the same node.
            let mut probe = m.clone();
            probe.tamper_tree_flip_bit(level, idx, 512);
            assert!(probe.verify_path(l).is_err());
        }
    }

    #[test]
    fn tree_tamper_off_path_not_reported() {
        let mut m = FunctionalSecureMemory::new(4, 1 << 16);
        let l = LineAddr::new(0);
        m.write(l, block(1));
        // Corrupt a counter block far from line 0's path.
        m.tamper_tree_flip_bit(0, 300, 5);
        assert_eq!(m.verify_path(l), Ok(()));
    }

    #[test]
    fn write_repairs_tree_tamper_on_its_path() {
        let mut m = FunctionalSecureMemory::new(4, 1 << 16);
        let l = LineAddr::new(9);
        m.write(l, block(1));
        let cb = m.tree().geometry().counter_block_of(l);
        m.tamper_tree_flip_bit(0, cb, 3);
        assert!(m.verify_path(l).is_err());
        m.write(l, block(2));
        assert_eq!(m.verify_path(l), Ok(()));
        assert_eq!(m.read_checked(l).unwrap(), block(2));
    }

    #[test]
    fn written_lines_sorted_and_complete() {
        let mut m = FunctionalSecureMemory::new(4, 1 << 16);
        for l in [9u64, 2, 40, 7] {
            m.write(LineAddr::new(l), block(l));
        }
        assert_eq!(
            m.written_lines(),
            vec![
                LineAddr::new(2),
                LineAddr::new(7),
                LineAddr::new(9),
                LineAddr::new(40)
            ]
        );
    }

    #[test]
    fn write_logged_plain_write_touches_one_line() {
        let mut m = FunctionalSecureMemory::new(5, 1 << 16);
        let l = LineAddr::new(17);
        let log = m.write_logged(l, block(4));
        assert_eq!(log.counter_block, m.tree().geometry().counter_block_of(l));
        assert_eq!(log.touched.len(), 1);
        assert_eq!(log.touched[0], (l, m.raw(l).unwrap()));
        assert_eq!(log.block.counter(m.tree().geometry().slot_of(l)), 1);
    }

    #[test]
    fn write_logged_rebase_captures_covered_region() {
        let mut m = FunctionalSecureMemory::with_design(9, 1 << 16, CounterDesign::Sc64);
        m.write(LineAddr::new(0), block(100));
        m.write(LineAddr::new(7), block(107));
        let mut last = None;
        for _ in 0..130 {
            last = Some(m.write_logged(LineAddr::new(5), block(5)));
        }
        // At least one of those 130 writes rebased; the rebase log must
        // carry all three stored lines of the covered region.
        assert!(m.tree().overflows_by_level()[0] >= 1);
        let _ = last;
        // Replaying the full sequence of logs into a fresh memory must
        // reproduce the exact persistent state.
        let mut src = FunctionalSecureMemory::with_design(9, 1 << 16, CounterDesign::Sc64);
        let mut dst = FunctionalSecureMemory::with_design(9, 1 << 16, CounterDesign::Sc64);
        let writes: Vec<(u64, u64)> = (0..140).map(|i| (i % 9, i)).collect();
        for (l, v) in writes {
            let log = src.write_logged(LineAddr::new(l), block(v));
            dst.restore_counter_block(log.counter_block, Some(log.block.clone()));
            for (line, stored) in &log.touched {
                dst.restore_line(*line, Some(*stored));
            }
        }
        for l in src.written_lines() {
            assert_eq!(dst.read(l).unwrap(), src.read(l).unwrap());
        }
    }

    #[test]
    fn restore_line_none_clears() {
        let mut m = FunctionalSecureMemory::new(5, 1 << 16);
        let l = LineAddr::new(3);
        m.write(l, block(1));
        m.restore_line(l, None);
        assert_eq!(m.read(l).unwrap(), DataBlock::default());
        assert!(m.raw(l).is_none());
    }

    #[test]
    fn stress_random_writes_and_reads() {
        let mut rng = emcc_sim::Rng64::new(77);
        let mut m = FunctionalSecureMemory::new(77, 1 << 12);
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        for _ in 0..5_000 {
            let l = rng.below(512);
            let v = rng.next_u64();
            m.write(LineAddr::new(l), block(v));
            shadow.insert(l, v);
        }
        for (l, v) in shadow {
            assert_eq!(m.read(LineAddr::new(l)).unwrap(), block(v));
        }
    }
}
