//! Split-counter overflow re-encryption engine.
//!
//! When a minor counter overflows, the major counter is bumped and every
//! block the counter block covers must be re-encrypted: read, decrypted
//! with its old counter, re-encrypted with the new one, written back. The
//! paper's §V fixes the engine's limits: **at most two outstanding
//! overflows** (a write-back that would start a third causes the MC to
//! reject incoming LLC requests), and the background requests may occupy
//! **at most eight read/write-queue slots** at a time.

use std::collections::VecDeque;

use emcc_sim::LineAddr;

/// One pending overflow: re-encrypt `blocks` lines starting at `base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowTask {
    /// First line of the covered region.
    pub base: LineAddr,
    /// Number of 64 B blocks to re-encrypt.
    pub blocks: u64,
    /// Tree level of the overflowed counter block (0 = data counters).
    pub level: u32,
}

/// A 64 B request the engine wants to enqueue at the DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowRequest {
    /// The line to access.
    pub line: LineAddr,
    /// Read (fetch old ciphertext) or write (store re-encrypted).
    pub is_write: bool,
    /// Tree level of the causing overflow.
    pub level: u32,
}

#[derive(Debug, Clone)]
struct ActiveTask {
    task: OverflowTask,
    issued: u64,    // total requests issued (2 per block: read + write)
    completed: u64, // total completions observed
}

impl ActiveTask {
    fn total_requests(&self) -> u64 {
        self.task.blocks * 2
    }
}

/// The background re-encryption engine.
///
/// # Examples
///
/// ```
/// use emcc_secmem::{OverflowEngine, OverflowTask};
/// use emcc_sim::LineAddr;
///
/// let mut e = OverflowEngine::new();
/// assert!(e.try_add(OverflowTask { base: LineAddr::new(0), blocks: 4, level: 0 }));
/// let r = e.next_request().unwrap();
/// assert!(!r.is_write); // reads the old ciphertext first
/// ```
#[derive(Debug, Clone)]
pub struct OverflowEngine {
    active: VecDeque<ActiveTask>,
    in_flight: u32,
    max_outstanding: usize,
    max_in_flight: u32,
    finished: u64,
    rejected: u64,
}

impl OverflowEngine {
    /// Creates an engine with the paper's limits (2 outstanding, 8 slots).
    pub fn new() -> Self {
        OverflowEngine {
            active: VecDeque::new(),
            in_flight: 0,
            max_outstanding: 2,
            max_in_flight: 8,
            finished: 0,
            rejected: 0,
        }
    }

    /// True if a new overflow can be accepted without blocking the MC.
    pub fn can_add(&self) -> bool {
        self.active.len() < self.max_outstanding
    }

    /// Attempts to register a new overflow. Returns false (and counts a
    /// rejection) when two are already outstanding — the caller must stall
    /// incoming requests until one drains.
    pub fn try_add(&mut self, task: OverflowTask) -> bool {
        if !self.can_add() {
            self.rejected += 1;
            return false;
        }
        self.active.push_back(ActiveTask {
            task,
            issued: 0,
            completed: 0,
        });
        true
    }

    /// Next background request to enqueue, or `None` if the 8-slot budget
    /// is exhausted or no work remains.
    ///
    /// Requests alternate read (even) / write (odd) per block, front task
    /// first.
    pub fn next_request(&mut self) -> Option<OverflowRequest> {
        if self.in_flight >= self.max_in_flight {
            return None;
        }
        let t = self
            .active
            .iter_mut()
            .find(|t| t.issued < t.total_requests())?;
        let block = t.issued / 2;
        let is_write = t.issued % 2 == 1;
        t.issued += 1;
        self.in_flight += 1;
        Some(OverflowRequest {
            line: t.task.base.offset(block),
            is_write,
            level: t.task.level,
        })
    }

    /// Records a DRAM completion of an overflow request.
    ///
    /// # Panics
    ///
    /// Panics if called with no request in flight.
    pub fn complete_one(&mut self) {
        assert!(self.in_flight > 0, "no overflow request in flight");
        self.in_flight -= 1;
        if let Some(front) = self.active.front_mut() {
            front.completed += 1;
            if front.completed >= front.total_requests() {
                self.active.pop_front();
                self.finished += 1;
            }
        }
    }

    /// Overflows currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.active.len()
    }

    /// Requests currently occupying DRAM queue slots.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Total overflows fully re-encrypted.
    pub fn finished(&self) -> u64 {
        self.finished
    }

    /// Times `try_add` had to reject (MC stalled incoming traffic).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

impl Default for OverflowEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(base: u64, blocks: u64) -> OverflowTask {
        OverflowTask {
            base: LineAddr::new(base),
            blocks,
            level: 0,
        }
    }

    #[test]
    fn accepts_two_rejects_third() {
        let mut e = OverflowEngine::new();
        assert!(e.try_add(task(0, 128)));
        assert!(e.try_add(task(1000, 128)));
        assert!(!e.try_add(task(2000, 128)));
        assert_eq!(e.rejected(), 1);
        assert_eq!(e.outstanding(), 2);
    }

    #[test]
    fn read_then_write_per_block() {
        let mut e = OverflowEngine::new();
        e.try_add(task(10, 2));
        let r0 = e.next_request().unwrap();
        let r1 = e.next_request().unwrap();
        let r2 = e.next_request().unwrap();
        let r3 = e.next_request().unwrap();
        assert_eq!((r0.line.get(), r0.is_write), (10, false));
        assert_eq!((r1.line.get(), r1.is_write), (10, true));
        assert_eq!((r2.line.get(), r2.is_write), (11, false));
        assert_eq!((r3.line.get(), r3.is_write), (11, true));
        assert!(e.next_request().is_none(), "task exhausted");
    }

    #[test]
    fn eight_slot_budget_enforced() {
        let mut e = OverflowEngine::new();
        e.try_add(task(0, 128));
        for _ in 0..8 {
            assert!(e.next_request().is_some());
        }
        assert!(e.next_request().is_none(), "budget exhausted");
        e.complete_one();
        assert!(e.next_request().is_some(), "slot freed");
    }

    #[test]
    fn completion_drains_task_and_unblocks() {
        let mut e = OverflowEngine::new();
        e.try_add(task(0, 1));
        e.try_add(task(5, 1));
        assert!(!e.can_add());
        // Drain the first task: 2 requests, 2 completions.
        e.next_request().unwrap();
        e.next_request().unwrap();
        e.complete_one();
        e.complete_one();
        assert_eq!(e.finished(), 1);
        assert!(e.can_add(), "finished task frees an outstanding slot");
    }

    #[test]
    fn requests_span_second_task_after_first_issued() {
        let mut e = OverflowEngine::new();
        e.try_add(task(0, 1));
        e.try_add(task(100, 1));
        let mut lines = Vec::new();
        while let Some(r) = e.next_request() {
            lines.push(r.line.get());
        }
        assert_eq!(lines, vec![0, 0, 100, 100]);
    }

    #[test]
    #[should_panic]
    fn complete_without_inflight_panics() {
        let mut e = OverflowEngine::new();
        e.complete_one();
    }
}
