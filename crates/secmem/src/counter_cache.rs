//! The memory controller's private metadata cache.
//!
//! Table I: 128 KB, 32-way, 3 ns. It holds both level-0 counter blocks and
//! integrity-tree nodes ("MC also caches the counter block's counter like
//! data's counter", §II), tagged by [`BlockKind`].

use emcc_cache::{BlockKind, CacheConfig, EvictedLine, SetAssocCache};
use emcc_sim::LineAddr;

/// Per-line metadata kept by the MC's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaLine {
    /// Counter block vs tree node.
    pub kind: BlockKind,
}

/// The MC's private counter/tree-node cache with hit/miss accounting.
///
/// # Examples
///
/// ```
/// use emcc_secmem::MetadataCache;
/// use emcc_cache::BlockKind;
/// use emcc_sim::LineAddr;
///
/// let mut c = MetadataCache::new(128 * 1024, 32);
/// assert!(!c.lookup(LineAddr::new(9)));
/// c.fill(LineAddr::new(9), BlockKind::Counter, false);
/// assert!(c.lookup(LineAddr::new(9)));
/// ```
#[derive(Debug, Clone)]
pub struct MetadataCache {
    cache: SetAssocCache<MetaLine>,
    hits: u64,
    misses: u64,
}

impl MetadataCache {
    /// Creates the cache with the given size and associativity.
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        MetadataCache {
            cache: SetAssocCache::new(CacheConfig::new(size_bytes, ways)),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a metadata block, updating LRU and hit/miss statistics.
    pub fn lookup(&mut self, addr: LineAddr) -> bool {
        if self.cache.touch(addr) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Presence check without statistics or LRU update.
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.cache.contains(addr)
    }

    /// Presence check that refreshes LRU but records no hit/miss
    /// statistics — used for integrity-tree walks, where touching an
    /// ancestor node is a real access that must keep it resident.
    pub fn touch_quiet(&mut self, addr: LineAddr) -> bool {
        self.cache.touch(addr)
    }

    /// Inserts a verified metadata block; returns a dirty victim that must
    /// be written back to DRAM, if any.
    pub fn fill(
        &mut self,
        addr: LineAddr,
        kind: BlockKind,
        dirty: bool,
    ) -> Option<EvictedLine<MetaLine>> {
        self.cache
            .insert(addr, dirty, MetaLine { kind })
            .filter(|ev| ev.dirty)
    }

    /// Marks a resident block dirty (its counters were updated). Returns
    /// false if the block is not resident.
    pub fn mark_dirty(&mut self, addr: LineAddr) -> bool {
        self.cache.mark_dirty(addr)
    }

    /// Drops a block from the cache, returning whether it was resident —
    /// used by the recovery path to discard possibly-stale metadata before
    /// re-walking the integrity tree. The copy is discarded even if dirty:
    /// a verification failure means its contents cannot be trusted.
    pub fn invalidate(&mut self, addr: LineAddr) -> bool {
        self.cache.invalidate(addr).is_some()
    }

    /// Clears hit/miss statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over lookups so far (0.0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        emcc_sim::stats::ratio(self.hits, self.hits + self.misses)
    }

    /// Resident line count.
    pub fn len(&self) -> u64 {
        self.cache.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_shape() {
        let c = MetadataCache::new(128 * 1024, 32);
        assert!(c.is_empty());
        // 128 KB / 64 B = 2048 lines.
        assert_eq!(c.cache.config().capacity_lines(), 2048);
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = MetadataCache::new(4096, 4);
        assert!(!c.lookup(LineAddr::new(1)));
        c.fill(LineAddr::new(1), BlockKind::Counter, false);
        assert!(c.lookup(LineAddr::new(1)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn dirty_victims_surface() {
        // 1 set x 2 ways.
        let mut c = MetadataCache::new(128, 2);
        c.fill(LineAddr::new(0), BlockKind::Counter, false);
        assert!(c.mark_dirty(LineAddr::new(0)));
        c.fill(LineAddr::new(1), BlockKind::TreeNode, false);
        let ev = c.fill(LineAddr::new(2), BlockKind::Counter, false);
        let ev = ev.expect("dirty victim must be returned");
        assert_eq!(ev.addr, LineAddr::new(0));
        assert_eq!(ev.meta.kind, BlockKind::Counter);
    }

    #[test]
    fn clean_victims_silent() {
        let mut c = MetadataCache::new(128, 2);
        c.fill(LineAddr::new(0), BlockKind::Counter, false);
        c.fill(LineAddr::new(1), BlockKind::Counter, false);
        assert!(c
            .fill(LineAddr::new(2), BlockKind::Counter, false)
            .is_none());
    }
}
