//! Secure-memory machinery: the memory controller's building blocks plus a
//! functional end-to-end model.
//!
//! The timing simulator (`emcc-system`) composes these pieces:
//!
//! * [`SecurityScheme`] — which design point a simulation runs
//!   (non-secure / counters only in MC / counters also in LLC / EMCC),
//! * [`MetadataCache`] — the MC's private counter/tree cache (Table I:
//!   128 KB, 32-way, 3 ns),
//! * [`AesPool`] — a bandwidth-limited pool of AES units (the §V
//!   arithmetic: 2.6 G AES/s peak for Morphable at DDR4-3200; EMCC moves
//!   half of it to the L2s),
//! * [`OverflowEngine`] — split-counter overflow re-encryption with the
//!   paper's limits (≤ 2 outstanding overflows, ≤ 8 in-queue requests),
//! * [`FunctionalSecureMemory`] — a *functional* (non-timing) secure
//!   memory: real encryption, MACs and an integrity tree over a sparse
//!   store, used to validate the security data path end-to-end,
//! * [`SecureMemoryService`] — a thread-safe, crash-consistent service
//!   over the functional model: write-ahead journaling, atomic
//!   checkpoints, verified recovery, and request-level robustness
//!   policies (retry, timeout, backpressure, degraded read-only mode).
//!
//! # Examples
//!
//! ```
//! use emcc_secmem::FunctionalSecureMemory;
//! use emcc_crypto::DataBlock;
//! use emcc_sim::LineAddr;
//!
//! let mut mem = FunctionalSecureMemory::new(42, 1 << 20);
//! let line = LineAddr::new(7);
//! mem.write(line, DataBlock::from_words([1, 2, 3, 4, 5, 6, 7, 8]));
//! assert_eq!(mem.read(line).unwrap().words()[0], 1);
//! ```

pub mod counter_cache;
pub mod engine;
pub mod functional;
pub mod overflow;
pub mod scheme;
pub mod service;
pub mod verify;

pub use counter_cache::MetadataCache;
pub use engine::AesPool;
pub use functional::{FunctionalSecureMemory, ReadError, StoredLine, WriteLog};
pub use overflow::{OverflowEngine, OverflowTask};
pub use scheme::SecurityScheme;
pub use service::{
    recover, MemoryAdt, RecoveryError, RecoveryReport, SecureMemoryService, ServiceConfig,
    ServiceError,
};
pub use verify::{RecoveryConfig, RetryPolicy, VerifyOutcome};
