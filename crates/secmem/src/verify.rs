//! Verification outcomes and the recovery policy for integrity failures.
//!
//! The paper (§IV-D) specifies *detection*: a MAC mismatch raises an
//! ECC-style machine-check interrupt. What a real memory system does next
//! is platform policy; this module pins down the policy our timing model
//! implements so campaigns are reproducible and documented:
//!
//! 1. **Bounded re-fetch retry.** A failed verification re-reads the line
//!    from DRAM up to [`RetryPolicy::max_attempts`] times, with
//!    exponential backoff measured in DRAM clock ticks (DDR4-3200:
//!    tCK = 0.625 ns). Before each retry the covering counter block is
//!    invalidated from every cached copy and the tree is re-walked, so a
//!    stale cached counter cannot mask (or cause) repeated failures.
//! 2. **Graceful degradation.** Under EMCC, an L2 whose local
//!    verifications keep failing (a streak of
//!    [`RecoveryConfig::l2_fallback_threshold`] consecutive failures)
//!    stops verifying locally and offloads to MC-side verification — the
//!    same adaptive-offload lever as §IV-F, reused as a safety valve.
//! 3. **Unrecoverable faults** (still failing after the last retry) are
//!    surfaced as machine-check events in `SimReport` and the simulation
//!    continues, mirroring an OS that logs and poisons the page.

use emcc_sim::{LineAddr, Time};

/// DDR4-3200 clock period: backoff is quantised to this tick.
pub const DRAM_TCK: Time = Time::from_ps(625);

/// Result of a MAC / tree verification in the timing pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The MAC (and, where applicable, the tree path) checked out.
    Ok,
    /// Verification failed for this line's fetch.
    Mismatch {
        /// The line whose verification failed.
        line: LineAddr,
    },
}

impl VerifyOutcome {
    /// True for [`VerifyOutcome::Ok`].
    pub fn is_ok(self) -> bool {
        matches!(self, VerifyOutcome::Ok)
    }
}

/// Bounded-retry policy with exponential backoff in DRAM clock ticks.
///
/// # Examples
///
/// ```
/// use emcc_secmem::verify::RetryPolicy;
///
/// let p = RetryPolicy::default(); // 3 attempts, 64-tick base
/// assert!(p.should_retry(0) && p.should_retry(2) && !p.should_retry(3));
/// assert_eq!(p.backoff(1), p.backoff(0) * 2); // exponential
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Maximum re-fetch attempts after the initial failed read.
    pub max_attempts: u32,
    /// Backoff before the first retry, in DRAM clock ticks.
    pub base_ticks: u64,
}

impl Default for RetryPolicy {
    /// Three retries starting at 64 tCK (40 ns) — comparable to a DRAM
    /// row-miss, long enough for a transient bus glitch to clear.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_ticks: 64,
        }
    }
}

impl RetryPolicy {
    /// Whether another retry is allowed after `attempts` failed retries.
    pub fn should_retry(&self, attempts: u32) -> bool {
        attempts < self.max_attempts
    }

    /// Backoff delay before retry number `attempt` (0-based):
    /// `base_ticks * 2^attempt` DRAM clock ticks, capped at 2^20 ticks
    /// (~0.65 ms) so a misconfigured policy cannot wedge the event queue.
    pub fn backoff(&self, attempt: u32) -> Time {
        let ticks = self
            .base_ticks
            .saturating_mul(1u64 << attempt.min(20))
            .min(1 << 20);
        Time::from_ps(DRAM_TCK.as_ps() * ticks)
    }

    /// Total delay spent if every one of the policy's retries fires: the
    /// sum of [`Self::backoff`] over `0..max_attempts`, saturating. This is
    /// the bound the service layer compares against a per-op timeout, so it
    /// must never overflow regardless of configuration: each term is capped
    /// at 2^20 ticks (0.655 ms), so even `u32::MAX` attempts stay below
    /// 2^52 picoseconds-equivalents, far under `u64::MAX`.
    pub fn cumulative_backoff(&self) -> Time {
        let mut total: u64 = 0;
        for attempt in 0..self.max_attempts {
            total = total.saturating_add(self.backoff(attempt).as_ps());
            // Every attempt past the cap point contributes the same capped
            // term; close the sum arithmetically instead of iterating to
            // u32::MAX.
            if self.backoff(attempt) == self.backoff(attempt.saturating_add(1)) {
                let rest = u64::from(self.max_attempts - attempt - 1);
                total = total.saturating_add(rest.saturating_mul(self.backoff(attempt).as_ps()));
                break;
            }
        }
        Time::from_ps(total)
    }
}

/// Full recovery configuration threaded through `SystemConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecoveryConfig {
    /// Re-fetch retry policy for failed verifications.
    pub retry: RetryPolicy,
    /// Consecutive local-verify failures after which an EMCC L2 falls back
    /// to MC-side verification for the rest of the run.
    pub l2_fallback_threshold: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            retry: RetryPolicy::default(),
            l2_fallback_threshold: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_in_ticks() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_ticks: 64,
        };
        assert_eq!(p.backoff(0), Time::from_ns(40)); // 64 * 0.625 ns
        assert_eq!(p.backoff(1), Time::from_ns(80));
        assert_eq!(p.backoff(2), Time::from_ns(160));
    }

    #[test]
    fn backoff_is_capped() {
        let p = RetryPolicy {
            max_attempts: 64,
            base_ticks: 1 << 19,
        };
        let cap = Time::from_ps(DRAM_TCK.as_ps() * (1 << 20));
        assert_eq!(p.backoff(63), cap);
        assert_eq!(p.backoff(20), cap);
    }

    #[test]
    fn retry_budget() {
        let p = RetryPolicy::default();
        assert!(p.should_retry(0));
        assert!(p.should_retry(2));
        assert!(!p.should_retry(3));
        assert!(!p.should_retry(100));
    }

    #[test]
    fn outcome_helpers() {
        assert!(VerifyOutcome::Ok.is_ok());
        assert!(!VerifyOutcome::Mismatch {
            line: LineAddr::new(3)
        }
        .is_ok());
    }
}
