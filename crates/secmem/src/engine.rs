//! Bandwidth-limited AES engine pool.
//!
//! §V sizes AES bandwidth from the DDR4-3200 peak: 400 M accesses/s, five
//! AES per read + eight per write ⇒ 2.6 G AES/s for the whole chip under
//! Morphable. EMCC moves half of that from the MC to the L2s (81.25 M
//! *block operations*/s per L2 at the 50/4 split, since a block decryption
//! = 4 OTP AES + 1 MAC AES issued to parallel units).
//!
//! The pool is modeled as a pipelined server: operations *start* at a
//! bounded rate (1 / `interval`) and each takes `latency` to finish. The
//! queue delay visible at a given instant is what EMCC's adaptive-offload
//! heuristic inspects (§IV-D: "when EMCC determines that the AES queuing
//! time for a new L2 miss exceeds the latency that can be saved...").

use emcc_sim::Time;

/// A pool of AES units with a start-rate limit and fixed latency.
///
/// # Examples
///
/// ```
/// use emcc_secmem::AesPool;
/// use emcc_sim::Time;
///
/// // 100M block-ops/s, 14 ns latency.
/// let mut pool = AesPool::new(100_000_000.0, Time::from_ns(14));
/// let t0 = Time::from_ns(100);
/// let (start, done) = pool.schedule(t0);
/// assert_eq!(start, t0);
/// assert_eq!(done, t0 + Time::from_ns(14));
/// // Back-to-back ops are spaced by the 10 ns start interval.
/// let (start2, _) = pool.schedule(t0);
/// assert_eq!(start2, t0 + Time::from_ns(10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AesPool {
    interval: Time,
    latency: Time,
    next_start: Time,
    scheduled: u64,
    busy: Time,
}

impl AesPool {
    /// Creates a pool with `ops_per_second` start bandwidth and `latency`
    /// per operation.
    ///
    /// # Panics
    ///
    /// Panics if `ops_per_second` is not positive and finite.
    pub fn new(ops_per_second: f64, latency: Time) -> Self {
        assert!(
            ops_per_second.is_finite() && ops_per_second > 0.0,
            "invalid AES bandwidth"
        );
        AesPool {
            interval: Time::from_ps((1e12 / ops_per_second).round() as u64),
            latency,
            next_start: Time::ZERO,
            scheduled: 0,
            busy: Time::ZERO,
        }
    }

    /// Per-operation latency.
    pub fn latency(&self) -> Time {
        self.latency
    }

    /// Minimum spacing between operation starts.
    pub fn interval(&self) -> Time {
        self.interval
    }

    /// Queue delay a new operation would see at `now` (0 when idle).
    pub fn queue_delay(&self, now: Time) -> Time {
        self.next_start.saturating_sub(now)
    }

    /// Schedules one block operation at `now`, returning `(start, done)`.
    pub fn schedule(&mut self, now: Time) -> (Time, Time) {
        let start = now.max(self.next_start);
        self.next_start = start + self.interval;
        self.scheduled += 1;
        self.busy += self.interval;
        (start, start + self.latency)
    }

    /// Schedules one block operation and returns it as an AES work span
    /// for critical-path attribution.
    pub fn schedule_span(&mut self, now: Time) -> emcc_sim::trace::Span {
        let (start, done) = self.schedule(now);
        emcc_sim::trace::Span::new(emcc_sim::trace::Component::Aes, start, done)
    }

    /// Total operations scheduled.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Aggregate busy (reserved) start-slot time; divide by elapsed time
    /// for utilization.
    pub fn busy_time(&self) -> Time {
        self.busy
    }
}

/// Computes the paper's §V AES bandwidth split.
///
/// Returns `(mc_block_ops_per_sec, per_l2_block_ops_per_sec)` for a given
/// fraction of AES units moved to the L2s. A "block op" bundles the
/// parallel AES invocations of one block (4 OTP + 1 MAC for reads), so the
/// 2.6 G AES/s chip budget is 2.6e9/5 read-equivalent block-ops; the §V
/// arithmetic for the 50% split and 4 L2s yields 325 M AES/s = 65 M block
/// ops/s per L2.
///
/// # Examples
///
/// ```
/// use emcc_secmem::engine::split_aes_bandwidth;
///
/// let (_mc, l2) = split_aes_bandwidth(0.5, 4);
/// assert!((l2 - 65_000_000.0).abs() < 1.0);
/// ```
pub fn split_aes_bandwidth(fraction_to_l2: f64, num_l2: usize) -> (f64, f64) {
    assert!(
        (0.0..=1.0).contains(&fraction_to_l2),
        "fraction out of range"
    );
    assert!(num_l2 > 0, "need at least one L2");
    const CHIP_AES_PER_SEC: f64 = 2_600_000_000.0;
    const AES_PER_BLOCK_OP: f64 = 5.0; // 4 OTPs + 1 MAC, issued in parallel
    let total_block_ops = CHIP_AES_PER_SEC / AES_PER_BLOCK_OP;
    let to_l2 = total_block_ops * fraction_to_l2;
    (total_block_ops - to_l2, to_l2 / num_l2 as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_pool_has_no_queue() {
        let pool = AesPool::new(1e9, Time::from_ns(14));
        assert_eq!(pool.queue_delay(Time::from_ns(5)), Time::ZERO);
    }

    #[test]
    fn queue_builds_under_burst() {
        let mut pool = AesPool::new(100_000_000.0, Time::from_ns(14)); // 10ns interval
        let t = Time::from_ns(0);
        for _ in 0..5 {
            pool.schedule(t);
        }
        // After 5 back-to-back ops the 6th would wait 50 ns.
        assert_eq!(pool.queue_delay(t), Time::from_ns(50));
        assert_eq!(pool.scheduled(), 5);
    }

    #[test]
    fn queue_drains_with_time() {
        let mut pool = AesPool::new(100_000_000.0, Time::from_ns(14));
        for _ in 0..5 {
            pool.schedule(Time::ZERO);
        }
        assert_eq!(pool.queue_delay(Time::from_ns(50)), Time::ZERO);
        let (start, done) = pool.schedule(Time::from_ns(60));
        assert_eq!(start, Time::from_ns(60));
        assert_eq!(done, Time::from_ns(74));
    }

    #[test]
    fn bandwidth_split_matches_paper() {
        // §V: 50% to 4 L2s → 325M AES/s per L2 = 65M block-ops/s; the MC
        // retains 1.3G AES/s = 260M block-ops/s.
        let (mc, l2) = split_aes_bandwidth(0.5, 4);
        assert!((mc - 260_000_000.0).abs() < 1.0);
        assert!((l2 - 65_000_000.0).abs() < 1.0);
    }

    #[test]
    fn split_extremes() {
        let (mc, l2) = split_aes_bandwidth(0.0, 4);
        assert_eq!(l2, 0.0 / 4.0);
        assert!((mc - 520_000_000.0).abs() < 1.0);
        let (mc, _) = split_aes_bandwidth(1.0, 4);
        assert_eq!(mc, 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_bandwidth_rejected() {
        let _ = AesPool::new(0.0, Time::from_ns(14));
    }
}
