//! The security design points the paper compares.

use std::fmt;

/// Which secure-memory organization a simulation runs.
///
/// The paper's evaluation (Fig 16) compares a non-secure system, SC-64 and
/// Morphable baselines (both caching counters in LLC), and EMCC on top of
/// Morphable. The characterization (§III, Fig 5) additionally contrasts
/// *not* caching counters in LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityScheme {
    /// No encryption or verification: the performance ceiling.
    NonSecure,
    /// Counters cached only in the MC's private cache; misses go straight
    /// to DRAM (in parallel with data). The §III "W/o caching counters in
    /// LLC" configuration.
    McOnly,
    /// Counters additionally cached in the LLC; the MC requests them from
    /// LLC *serially after* a data LLC miss. The baseline of Figs 16–24.
    CtrInLlc,
    /// Eager Memory Cryptography in Caches: counters cached and used in
    /// L2, with parallel counter/data requests to LLC (on top of
    /// `CtrInLlc` behaviour at the MC).
    Emcc,
}

impl SecurityScheme {
    /// Whether any cryptography happens at all.
    pub const fn is_secure(self) -> bool {
        !matches!(self, SecurityScheme::NonSecure)
    }

    /// Whether counter blocks are inserted into the LLC.
    pub const fn counters_in_llc(self) -> bool {
        matches!(self, SecurityScheme::CtrInLlc | SecurityScheme::Emcc)
    }

    /// Whether L2 caches counters and decrypts/verifies locally.
    pub const fn is_emcc(self) -> bool {
        matches!(self, SecurityScheme::Emcc)
    }

    /// All schemes, in comparison order.
    pub const fn all() -> [SecurityScheme; 4] {
        [
            SecurityScheme::NonSecure,
            SecurityScheme::McOnly,
            SecurityScheme::CtrInLlc,
            SecurityScheme::Emcc,
        ]
    }
}

impl fmt::Display for SecurityScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SecurityScheme::NonSecure => "non-secure",
            SecurityScheme::McOnly => "ctr-in-MC-only",
            SecurityScheme::CtrInLlc => "ctr-in-LLC",
            SecurityScheme::Emcc => "EMCC",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_consistent() {
        assert!(!SecurityScheme::NonSecure.is_secure());
        assert!(SecurityScheme::McOnly.is_secure());
        assert!(!SecurityScheme::McOnly.counters_in_llc());
        assert!(SecurityScheme::CtrInLlc.counters_in_llc());
        assert!(SecurityScheme::Emcc.counters_in_llc());
        assert!(SecurityScheme::Emcc.is_emcc());
        assert!(!SecurityScheme::CtrInLlc.is_emcc());
    }

    #[test]
    fn display() {
        assert_eq!(SecurityScheme::Emcc.to_string(), "EMCC");
    }
}
