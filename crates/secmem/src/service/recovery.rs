//! Crash recovery: checkpoint load → journal replay → re-verification.
//!
//! The recovery state machine:
//!
//! ```text
//! LoadCheckpoint ──ok/none──▶ ReplayJournal ──ok──▶ Reverify ──clean──▶ Serve
//!       │ corrupt                  │ corrupt            │ MAC failures
//!       ▼                          ▼                    ▼
//!   journal covers seq 1?     CorruptJournal       quarantine lines,
//!    yes: full replay          (detected)          start Degraded
//!    no: CorruptCheckpoint
//! ```
//!
//! The invariant the crash campaign asserts: after `recover`, every write
//! the pre-crash service *acknowledged* reads back with its exact value,
//! or the failure is **detected** (a typed error here, or a quarantined
//! line whose reads report corruption) — never silent loss. The
//! acknowledgement point is the journal append, so:
//!
//! * a crash tearing the last record only loses unacknowledged work (the
//!   torn tail never carried an ack);
//! * a crash between checkpoint install and journal truncate leaves stale
//!   records, skipped idempotently by sequence number;
//! * a crash before checkpoint install leaves the old checkpoint plus the
//!   full journal, which replay covers.
//!
//! The operator supplies the key seed at recovery time — it is never
//! persisted, so the journal and checkpoint are ciphertext-only artifacts.

use std::collections::BTreeSet;

use emcc_counters::{CounterBlock, CounterDesign};
use emcc_crypto::{DataBlock, Mac56};
use emcc_sim::LineAddr;

use super::backend::{BackendError, StorageBackend};
use super::journal::{self, LineImage};
use super::{SecureMemoryService, ServiceConfig};
use crate::functional::{FunctionalSecureMemory, StoredLine};

/// Why recovery failed. Every variant is a *detected* failure — recovery
/// never silently drops acknowledged state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The backend could not be read.
    Backend(BackendError),
    /// The journal contains a corrupt (not merely torn) record.
    CorruptJournal {
        /// Byte offset of the offending frame.
        offset: usize,
        /// Cause.
        reason: String,
    },
    /// The checkpoint is corrupt and the journal does not reach back to
    /// sequence 1, so state before the journal's horizon is unrecoverable.
    CorruptCheckpoint {
        /// Cause.
        reason: String,
    },
    /// A record or checkpoint disagrees with the supplied configuration
    /// (design, data size) or with basic consistency (sequence gaps,
    /// out-of-range indices, malformed counter blocks).
    Inconsistent {
        /// Cause.
        reason: String,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Backend(e) => write!(f, "recovery backend failure: {e}"),
            RecoveryError::CorruptJournal { offset, reason } => {
                write!(f, "journal corrupt at byte {offset}: {reason}")
            }
            RecoveryError::CorruptCheckpoint { reason } => {
                write!(f, "checkpoint corrupt: {reason}")
            }
            RecoveryError::Inconsistent { reason } => {
                write!(f, "inconsistent persistent state: {reason}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// What recovery found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a (valid) checkpoint was loaded.
    pub had_checkpoint: bool,
    /// Line images restored from the checkpoint.
    pub checkpoint_lines: usize,
    /// Journal records applied (stale pre-checkpoint records excluded).
    pub replayed_records: usize,
    /// Stale records skipped by sequence-number idempotence.
    pub stale_records: usize,
    /// Torn-tail bytes discarded (an unacknowledged partial append).
    pub discarded_tail_bytes: usize,
    /// Lines re-verified after replay.
    pub reverified_lines: usize,
    /// Lines whose re-verification failed; reads report corruption and the
    /// service starts degraded.
    pub quarantined: Vec<LineAddr>,
    /// Highest recovered sequence number.
    pub last_seq: u64,
    /// Whether the service starts in degraded read-only mode.
    pub degraded: bool,
}

fn stored_line_of(img: &LineImage) -> StoredLine {
    StoredLine {
        cipher: DataBlock::from_words(img.cipher),
        mac: Mac56::from_u64(img.mac),
    }
}

/// Rebuilds a service from persisted state: loads the checkpoint, replays
/// the journal, rebuilds counter state, and re-verifies every reachable
/// line.
///
/// # Errors
///
/// Any [`RecoveryError`]; all of them are detected-failure reports, never
/// silent loss.
pub fn recover<B: StorageBackend>(
    backend: B,
    seed: u64,
    data_lines: u64,
    design: CounterDesign,
    cfg: ServiceConfig,
) -> Result<(SecureMemoryService<B>, RecoveryReport), RecoveryError> {
    let ckpt_bytes = backend.checkpoint_bytes().map_err(RecoveryError::Backend)?;
    let journal_bytes = backend.journal_bytes().map_err(RecoveryError::Backend)?;

    // -- ReplayJournal (scan phase): torn tails are fine, corruption not.
    let scan = journal::scan_journal(&journal_bytes).map_err(|e| match e {
        journal::JournalError::Corrupt { offset, reason } => {
            RecoveryError::CorruptJournal { offset, reason }
        }
    })?;

    // -- LoadCheckpoint.
    let checkpoint = match ckpt_bytes {
        None => None,
        Some(bytes) => match journal::decode_checkpoint(&bytes) {
            Ok(c) => Some(c),
            Err(e) => {
                let journal_covers_genesis = scan.records.first().is_some_and(|r| r.seq == 1);
                if journal_covers_genesis {
                    // Every write since seq 1 is in the journal: rebuild
                    // without the checkpoint.
                    None
                } else {
                    return Err(RecoveryError::CorruptCheckpoint { reason: e.reason });
                }
            }
        },
    };

    let mut mem = FunctionalSecureMemory::with_design(seed, data_lines, design);
    let level0_blocks = mem.tree().geometry().blocks_at_level(0);
    let mut last_seq = 0u64;
    let mut checkpoint_lines = 0usize;
    let had_checkpoint = checkpoint.is_some();

    if let Some(ckpt) = checkpoint {
        if ckpt.design != design {
            return Err(RecoveryError::Inconsistent {
                reason: format!(
                    "checkpoint design {:?} != configured {:?}",
                    ckpt.design, design
                ),
            });
        }
        if ckpt.data_lines != data_lines {
            return Err(RecoveryError::Inconsistent {
                reason: format!(
                    "checkpoint data_lines {} != configured {}",
                    ckpt.data_lines, data_lines
                ),
            });
        }
        for (index, major, tag, slots) in &ckpt.blocks {
            if *index >= level0_blocks {
                return Err(RecoveryError::Inconsistent {
                    reason: format!("checkpoint block index {index} out of range"),
                });
            }
            let block = CounterBlock::restore(design, *major, *tag, slots)
                .map_err(|reason| RecoveryError::Inconsistent { reason })?;
            mem.restore_counter_block(*index, Some(block));
        }
        for img in &ckpt.lines {
            if img.line >= data_lines {
                return Err(RecoveryError::Inconsistent {
                    reason: format!("checkpoint line {} out of range", img.line),
                });
            }
            mem.restore_line(LineAddr::new(img.line), Some(stored_line_of(img)));
            checkpoint_lines += 1;
        }
        last_seq = ckpt.last_seq;
    }

    // -- ReplayJournal (apply phase).
    let mut replayed = 0usize;
    let mut stale = 0usize;
    for rec in &scan.records {
        if rec.seq <= last_seq {
            // Pre-checkpoint record surviving a crashed truncate.
            stale += 1;
            continue;
        }
        if rec.seq != last_seq + 1 {
            return Err(RecoveryError::Inconsistent {
                reason: format!("sequence gap: expected {}, found {}", last_seq + 1, rec.seq),
            });
        }
        if rec.counter_block >= level0_blocks {
            return Err(RecoveryError::Inconsistent {
                reason: format!("record counter block {} out of range", rec.counter_block),
            });
        }
        let block = CounterBlock::restore(design, rec.major, rec.format_tag, &rec.slots)
            .map_err(|reason| RecoveryError::Inconsistent { reason })?;
        mem.restore_counter_block(rec.counter_block, Some(block));
        for img in &rec.lines {
            if img.line >= data_lines {
                return Err(RecoveryError::Inconsistent {
                    reason: format!("record line {} out of range", img.line),
                });
            }
            mem.restore_line(LineAddr::new(img.line), Some(stored_line_of(img)));
        }
        last_seq = rec.seq;
        replayed += 1;
    }

    // -- Reverify every reachable line (tree walk + MAC).
    let mut quarantined = BTreeSet::new();
    let lines = mem.written_lines();
    for &line in &lines {
        if mem.read_checked(line).is_err() {
            quarantined.insert(line);
        }
    }

    let report = RecoveryReport {
        had_checkpoint,
        checkpoint_lines,
        replayed_records: replayed,
        stale_records: stale,
        discarded_tail_bytes: scan.discarded_tail_bytes,
        reverified_lines: lines.len(),
        quarantined: quarantined.iter().copied().collect(),
        last_seq,
        degraded: !quarantined.is_empty(),
    };
    let service = SecureMemoryService::assemble(
        mem,
        backend,
        last_seq + 1,
        scan.final_check,
        quarantined,
        cfg,
    );
    Ok((service, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::adt::{MemoryAdt, ServiceError};
    use crate::service::backend::{CrashInjector, CrashSchedule, InMemoryBackend, Region};

    fn block(v: u64) -> DataBlock {
        DataBlock::from_words([v; 8])
    }

    const SEED: u64 = 7;
    const LINES: u64 = 1 << 12;

    fn fresh() -> SecureMemoryService<InMemoryBackend> {
        SecureMemoryService::new(
            InMemoryBackend::new(),
            SEED,
            LINES,
            ServiceConfig::default(),
        )
    }

    fn recover_inmem(
        backend: InMemoryBackend,
    ) -> (SecureMemoryService<InMemoryBackend>, RecoveryReport) {
        recover(
            backend,
            SEED,
            LINES,
            CounterDesign::Morphable,
            ServiceConfig::default(),
        )
        .expect("recovery succeeds")
    }

    #[test]
    fn journal_only_recovery_restores_all_acked_writes() {
        let s = fresh();
        for i in 0..30u64 {
            s.batch_write(&[(LineAddr::new(i % 7), block(i))]).unwrap();
        }
        let (r, report) = recover_inmem(s.into_backend());
        assert!(!report.had_checkpoint);
        assert_eq!(report.replayed_records, 30);
        assert_eq!(report.last_seq, 30);
        assert!(report.quarantined.is_empty());
        for i in 0..7u64 {
            let expect = block(23 + i); // last value written to each line
            let got = r.batch_read(&[LineAddr::new((23 + i) % 7)]).unwrap();
            assert_eq!(got, vec![Some(expect)]);
        }
    }

    #[test]
    fn checkpoint_plus_journal_recovery() {
        let s = fresh();
        for i in 0..10u64 {
            s.batch_write(&[(LineAddr::new(i), block(i))]).unwrap();
        }
        s.checkpoint().unwrap();
        for i in 10..15u64 {
            s.batch_write(&[(LineAddr::new(i), block(i))]).unwrap();
        }
        let (r, report) = recover_inmem(s.into_backend());
        assert!(report.had_checkpoint);
        assert_eq!(report.checkpoint_lines, 10);
        assert_eq!(report.replayed_records, 5);
        assert_eq!(report.last_seq, 15);
        for i in 0..15u64 {
            assert_eq!(
                r.batch_read(&[LineAddr::new(i)]).unwrap(),
                vec![Some(block(i))]
            );
        }
        // Sequence numbers continue, not restart.
        let ack = r.batch_write(&[(LineAddr::new(99), block(99))]).unwrap();
        assert_eq!(ack.last_seq, 16);
    }

    #[test]
    fn torn_final_record_loses_only_unacked_write() {
        let schedule = CrashSchedule {
            crash_on_op: 4,
            torn_keep: 11,
        };
        let s = SecureMemoryService::new(
            CrashInjector::new(InMemoryBackend::new(), schedule),
            SEED,
            LINES,
            ServiceConfig::default(),
        );
        let mut acked = Vec::new();
        for i in 0..10u64 {
            match s.batch_write(&[(LineAddr::new(i), block(i))]) {
                Ok(_) => acked.push(i),
                Err(ServiceError::Backend { .. }) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(acked, vec![0, 1, 2], "crash on 4th append");
        let (r, report) = recover_inmem(s.into_backend().into_inner());
        assert!(report.discarded_tail_bytes > 0, "torn tail discarded");
        assert_eq!(report.replayed_records, 3);
        for &i in &acked {
            assert_eq!(
                r.batch_read(&[LineAddr::new(i)]).unwrap(),
                vec![Some(block(i))]
            );
        }
        // The unacked write is absent — not silently half-applied.
        assert_eq!(r.batch_read(&[LineAddr::new(3)]).unwrap(), vec![None]);
    }

    #[test]
    fn stale_checkpoint_crash_window_replays_full_journal() {
        // Crash on install_checkpoint (op 7 after 6 appends): the old
        // (absent) checkpoint stays, the journal is intact, and recovery
        // replays everything.
        let schedule = CrashSchedule {
            crash_on_op: 7,
            torn_keep: 0,
        };
        let s = SecureMemoryService::new(
            CrashInjector::new(InMemoryBackend::new(), schedule),
            SEED,
            LINES,
            ServiceConfig::default(),
        );
        for i in 0..6u64 {
            s.batch_write(&[(LineAddr::new(i), block(i))]).unwrap();
        }
        assert!(s.checkpoint().is_err(), "install crashes");
        let inner = s.into_backend().into_inner();
        assert!(inner.checkpoint_bytes().unwrap().is_none());
        let (r, report) = recover_inmem(inner);
        assert!(!report.had_checkpoint);
        assert_eq!(report.replayed_records, 6);
        for i in 0..6u64 {
            assert_eq!(
                r.batch_read(&[LineAddr::new(i)]).unwrap(),
                vec![Some(block(i))]
            );
        }
    }

    #[test]
    fn crashed_truncate_leaves_stale_records_skipped_idempotently() {
        // Run a service, checkpoint manually against a backend whose
        // truncate crashes: checkpoint installed, journal keeps all
        // records. Recovery must skip them by sequence number.
        let schedule = CrashSchedule {
            crash_on_op: 7, // 5 appends + 1 install, then the truncate
            torn_keep: 0,
        };
        let s = SecureMemoryService::new(
            CrashInjector::new(InMemoryBackend::new(), schedule),
            SEED,
            LINES,
            ServiceConfig::default(),
        );
        for i in 0..5u64 {
            s.batch_write(&[(LineAddr::new(i), block(i))]).unwrap();
        }
        assert!(s.checkpoint().is_err(), "truncate crashes");
        let inner = s.into_backend().into_inner();
        assert!(inner.checkpoint_bytes().unwrap().is_some());
        assert!(!inner.journal_bytes().unwrap().is_empty());
        let (r, report) = recover_inmem(inner);
        assert!(report.had_checkpoint);
        assert_eq!(report.stale_records, 5);
        assert_eq!(report.replayed_records, 0);
        for i in 0..5u64 {
            assert_eq!(
                r.batch_read(&[LineAddr::new(i)]).unwrap(),
                vec![Some(block(i))]
            );
        }
    }

    #[test]
    fn corrupt_journal_is_detected_not_silent() {
        let s = fresh();
        for i in 0..5u64 {
            s.batch_write(&[(LineAddr::new(i), block(i))]).unwrap();
        }
        let mut backend = s.into_backend();
        assert!(backend.corrupt_byte(Region::Journal, 40, 0x10).unwrap());
        let err = recover(
            backend,
            SEED,
            LINES,
            CounterDesign::Morphable,
            ServiceConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RecoveryError::CorruptJournal { .. }));
    }

    #[test]
    fn corrupt_checkpoint_with_full_journal_rebuilds() {
        // Checkpoint corrupted, but the journal still covers seq 1..: the
        // crashed-truncate window. Recovery falls back to full replay.
        let schedule = CrashSchedule {
            crash_on_op: 7,
            torn_keep: 0,
        };
        let s = SecureMemoryService::new(
            CrashInjector::new(InMemoryBackend::new(), schedule),
            SEED,
            LINES,
            ServiceConfig::default(),
        );
        for i in 0..5u64 {
            s.batch_write(&[(LineAddr::new(i), block(i))]).unwrap();
        }
        assert!(s.checkpoint().is_err()); // truncate crashed; journal full
        let mut inner = s.into_backend().into_inner();
        assert!(inner.corrupt_byte(Region::Checkpoint, 20, 0xFF).unwrap());
        let (r, report) = recover_inmem(inner);
        assert!(!report.had_checkpoint, "corrupt checkpoint bypassed");
        assert_eq!(report.replayed_records, 5);
        for i in 0..5u64 {
            assert_eq!(
                r.batch_read(&[LineAddr::new(i)]).unwrap(),
                vec![Some(block(i))]
            );
        }
    }

    #[test]
    fn corrupt_checkpoint_without_journal_history_is_detected() {
        let s = fresh();
        for i in 0..5u64 {
            s.batch_write(&[(LineAddr::new(i), block(i))]).unwrap();
        }
        s.checkpoint().unwrap(); // journal truncated
        let mut backend = s.into_backend();
        assert!(backend.corrupt_byte(Region::Checkpoint, 20, 0xFF).unwrap());
        let err = recover(
            backend,
            SEED,
            LINES,
            CounterDesign::Morphable,
            ServiceConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RecoveryError::CorruptCheckpoint { .. }));
    }

    #[test]
    fn corrupted_line_image_is_quarantined_and_degrades() {
        // Corrupt a *line image* inside a checkpoint such that framing
        // stays valid: easiest via tampering memory pre-checkpoint, which
        // stores a MAC-inconsistent image.
        let s = fresh();
        let good = LineAddr::new(1);
        let bad = LineAddr::new(2);
        s.batch_write(&[(good, block(1)), (bad, block(2))]).unwrap();
        s.with_memory_mut(|m| m.tamper_flip_bit(bad, 9));
        s.checkpoint().unwrap();
        let (r, report) = recover_inmem(s.into_backend());
        assert_eq!(report.quarantined, vec![bad]);
        assert!(report.degraded);
        assert!(r.is_degraded());
        // Quarantined line reads report corruption; intact lines serve.
        assert!(matches!(
            r.batch_read(&[bad]),
            Err(ServiceError::Corruption(_))
        ));
        assert_eq!(r.batch_read(&[good]).unwrap(), vec![Some(block(1))]);
        // Degraded mode rejects writes.
        assert!(matches!(
            r.batch_write(&[(good, block(5))]),
            Err(ServiceError::ReadOnly { .. })
        ));
    }

    #[test]
    fn recovery_survives_rebases() {
        // SC-64 rebases journal whole-region images; recovery must land on
        // the exact same state.
        let s = SecureMemoryService::with_design(
            InMemoryBackend::new(),
            SEED,
            LINES,
            CounterDesign::Sc64,
            ServiceConfig::default(),
        );
        s.batch_write(&[(LineAddr::new(0), block(100))]).unwrap();
        s.batch_write(&[(LineAddr::new(63), block(163))]).unwrap();
        for i in 0..140u64 {
            s.batch_write(&[(LineAddr::new(5), block(i))]).unwrap();
        }
        let rebases = s.with_memory(|m| m.tree().overflows_by_level()[0]);
        assert!(rebases >= 1, "need a rebase to exercise region records");
        let (r, _) = recover(
            s.into_backend(),
            SEED,
            LINES,
            CounterDesign::Sc64,
            ServiceConfig::default(),
        )
        .unwrap();
        assert_eq!(
            r.batch_read(&[LineAddr::new(0)]).unwrap(),
            vec![Some(block(100))]
        );
        assert_eq!(
            r.batch_read(&[LineAddr::new(63)]).unwrap(),
            vec![Some(block(163))]
        );
        assert_eq!(
            r.batch_read(&[LineAddr::new(5)]).unwrap(),
            vec![Some(block(139))]
        );
    }

    #[test]
    fn wrong_design_is_detected() {
        let s = fresh();
        s.batch_write(&[(LineAddr::new(0), block(1))]).unwrap();
        s.checkpoint().unwrap();
        let err = recover(
            s.into_backend(),
            SEED,
            LINES,
            CounterDesign::Sc64,
            ServiceConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RecoveryError::Inconsistent { .. }));
    }
}
