//! Write-ahead journal and checkpoint codecs.
//!
//! The service persists *ciphertext* state only — line images and counter
//! blocks — never plaintext or keys: the key seed is supplied by the
//! operator at recovery time, so a stolen journal is no more useful than a
//! stolen DIMM. One journal record captures everything one logical write
//! mutated: the single level-0 counter block it bumped (whole-block
//! snapshot, because a rebase rewrites every minor in the block) and every
//! re-encrypted line image.
//!
//! # Frame format
//!
//! ```text
//! [ len: u32 | !len: u32 | body: len bytes | check: u64 ]
//! ```
//!
//! `check` is FNV-1a over the *previous* record's check (chaining) and the
//! body, so records cannot be reordered or spliced between journals. The
//! redundant `!len` guard distinguishes the two failure modes recovery must
//! tell apart:
//!
//! * **Torn tail** — a crash mid-append leaves a strict byte *prefix* of
//!   the final record. The frame header is incomplete, or complete but the
//!   body/check runs past end-of-file. The record was never acknowledged,
//!   so the tail is silently discarded.
//! * **Corruption** — a complete frame whose `len`/`!len` disagree or whose
//!   checksum fails. That is not an append crash (appends only truncate);
//!   it is reported as a hard [`JournalError::Corrupt`], never repaired
//!   silently.

use emcc_counters::CounterDesign;

/// FNV-1a 64-bit offset basis — the chain seed of an empty journal.
pub const CHAIN_SEED: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Sanity cap on one record's body; larger `len` fields are corruption.
/// (A Morphable rebase record: 128 slots + 128 line images ≈ 11 KB.)
const MAX_RECORD_BYTES: usize = 1 << 20;

/// Checkpoint file magic + version.
const CHECKPOINT_MAGIC: &[u8; 8] = b"EMCCKPT1";

fn fnv_mix(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One stored line's persistent image: ciphertext words + 56-bit MAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineImage {
    /// Line index.
    pub line: u64,
    /// The 512-bit ciphertext as eight words.
    pub cipher: [u64; 8],
    /// The co-located MAC (56 significant bits).
    pub mac: u64,
}

/// One journal record: the persistent effect of one acknowledged write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Strictly increasing sequence number (1-based).
    pub seq: u64,
    /// Index of the level-0 counter block the write mutated.
    pub counter_block: u64,
    /// Post-write major counter of that block.
    pub major: u64,
    /// Post-write storage format tag ([`emcc_counters::MorphFormat::tag`]).
    pub format_tag: u8,
    /// Post-write per-slot raw values ([`emcc_counters::CounterBlock::raw_slots`]).
    pub slots: Vec<u64>,
    /// Post-write image of every line the write re-encrypted.
    pub lines: Vec<LineImage>,
}

/// Why a journal failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// A complete frame failed validation at the given byte offset.
    Corrupt {
        /// Byte offset of the offending frame.
        offset: usize,
        /// Human-readable cause.
        reason: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Corrupt { offset, reason } => {
                write!(f, "journal corrupt at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Result of scanning a journal byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalScan {
    /// Every complete, checksum-valid record, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of torn tail discarded (an unacknowledged partial append).
    pub discarded_tail_bytes: usize,
    /// Chain state after the last valid record — the seed for the next
    /// append.
    pub final_check: u64,
}

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn encode_body(rec: &JournalRecord) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(
        64 + rec.slots.len() * 8 + rec.lines.len() * 80,
    ));
    w.u64(rec.seq);
    w.u64(rec.counter_block);
    w.u64(rec.major);
    w.u8(rec.format_tag);
    w.u32(rec.slots.len() as u32);
    for &s in &rec.slots {
        w.u64(s);
    }
    w.u32(rec.lines.len() as u32);
    for img in &rec.lines {
        w.u64(img.line);
        for &c in &img.cipher {
            w.u64(c);
        }
        w.u64(img.mac);
    }
    w.0
}

fn decode_body(body: &[u8]) -> Result<JournalRecord, String> {
    let mut r = Reader::new(body);
    let seq = r.u64()?;
    let counter_block = r.u64()?;
    let major = r.u64()?;
    let format_tag = r.u8()?;
    let n_slots = r.u32()? as usize;
    if n_slots > 128 {
        return Err(format!("slot count {n_slots} exceeds any design coverage"));
    }
    let mut slots = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        slots.push(r.u64()?);
    }
    let n_lines = r.u32()? as usize;
    if n_lines > 128 {
        return Err(format!("line count {n_lines} exceeds any rebase region"));
    }
    let mut lines = Vec::with_capacity(n_lines);
    for _ in 0..n_lines {
        let line = r.u64()?;
        let mut cipher = [0u64; 8];
        for c in &mut cipher {
            *c = r.u64()?;
        }
        let mac = r.u64()?;
        lines.push(LineImage { line, cipher, mac });
    }
    if !r.done() {
        return Err("trailing bytes after record body".into());
    }
    Ok(JournalRecord {
        seq,
        counter_block,
        major,
        format_tag,
        slots,
        lines,
    })
}

/// Encodes one record as a framed journal append, chaining from
/// `prev_check`. Returns the frame bytes and the new chain state.
pub fn encode_record(rec: &JournalRecord, prev_check: u64) -> (Vec<u8>, u64) {
    let body = encode_body(rec);
    let check = fnv_mix(fnv_mix(CHAIN_SEED, &prev_check.to_le_bytes()), &body);
    let mut frame = Vec::with_capacity(body.len() + 16);
    let len = body.len() as u32;
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&(!len).to_le_bytes());
    frame.extend_from_slice(&body);
    frame.extend_from_slice(&check.to_le_bytes());
    (frame, check)
}

/// Scans a journal byte stream into records, discarding a torn tail and
/// rejecting corruption.
///
/// # Errors
///
/// Returns [`JournalError::Corrupt`] for any complete frame whose length
/// guard, checksum chain, or body fails validation.
pub fn scan_journal(bytes: &[u8]) -> Result<JournalScan, JournalError> {
    let mut records = Vec::new();
    let mut check = CHAIN_SEED;
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            // Incomplete frame header: torn append.
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        let nlen = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len != !nlen {
            return Err(JournalError::Corrupt {
                offset: pos,
                reason: format!("length guard mismatch: len={len:#x} !len={nlen:#x}"),
            });
        }
        let len = len as usize;
        if len > MAX_RECORD_BYTES {
            return Err(JournalError::Corrupt {
                offset: pos,
                reason: format!("record length {len} exceeds sanity cap"),
            });
        }
        if rest.len() < 8 + len + 8 {
            // Complete header, incomplete body/checksum: torn append.
            break;
        }
        let body = &rest[8..8 + len];
        let stored = u64::from_le_bytes(rest[8 + len..8 + len + 8].try_into().unwrap());
        let expect = fnv_mix(fnv_mix(CHAIN_SEED, &check.to_le_bytes()), body);
        if stored != expect {
            return Err(JournalError::Corrupt {
                offset: pos,
                reason: "checksum chain mismatch".into(),
            });
        }
        let rec = decode_body(body).map_err(|reason| JournalError::Corrupt {
            offset: pos,
            reason,
        })?;
        check = expect;
        records.push(rec);
        pos += 8 + len + 8;
    }
    Ok(JournalScan {
        records,
        discarded_tail_bytes: bytes.len() - pos,
        final_check: check,
    })
}

/// A decoded checkpoint: full persistent state at `last_seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Counter design the state was captured under.
    pub design: CounterDesign,
    /// Protected data-line count.
    pub data_lines: u64,
    /// Sequence number of the last write the checkpoint includes.
    pub last_seq: u64,
    /// Every materialized level-0 counter block:
    /// `(index, major, format_tag, raw_slots)`.
    pub blocks: Vec<(u64, u64, u8, Vec<u64>)>,
    /// Every stored line image.
    pub lines: Vec<LineImage>,
}

/// Why a checkpoint failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    /// Human-readable cause.
    pub reason: String,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint corrupt: {}", self.reason)
    }
}

impl std::error::Error for CheckpointError {}

fn design_tag(d: CounterDesign) -> u8 {
    match d {
        CounterDesign::Monolithic => 0,
        CounterDesign::Sc64 => 1,
        CounterDesign::Morphable => 2,
    }
}

fn design_from_tag(tag: u8) -> Option<CounterDesign> {
    match tag {
        0 => Some(CounterDesign::Monolithic),
        1 => Some(CounterDesign::Sc64),
        2 => Some(CounterDesign::Morphable),
        _ => None,
    }
}

/// Encodes a checkpoint image: header, counter blocks, line images, and a
/// trailing whole-file checksum.
pub fn encode_checkpoint(ckpt: &Checkpoint) -> Vec<u8> {
    let mut w = Writer(Vec::new());
    w.0.extend_from_slice(CHECKPOINT_MAGIC);
    w.u8(design_tag(ckpt.design));
    w.u64(ckpt.data_lines);
    w.u64(ckpt.last_seq);
    w.u32(ckpt.blocks.len() as u32);
    for (index, major, tag, slots) in &ckpt.blocks {
        w.u64(*index);
        w.u64(*major);
        w.u8(*tag);
        w.u32(slots.len() as u32);
        for &s in slots {
            w.u64(s);
        }
    }
    w.u32(ckpt.lines.len() as u32);
    for img in &ckpt.lines {
        w.u64(img.line);
        for &c in &img.cipher {
            w.u64(c);
        }
        w.u64(img.mac);
    }
    let check = fnv_mix(CHAIN_SEED, &w.0);
    w.u64(check);
    w.0
}

/// Decodes and validates a checkpoint image.
///
/// # Errors
///
/// Returns [`CheckpointError`] on bad magic, a failed checksum, or any
/// structural inconsistency.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    let fail = |reason: String| CheckpointError { reason };
    if bytes.len() < CHECKPOINT_MAGIC.len() + 8 {
        return Err(fail("shorter than header + checksum".into()));
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv_mix(CHAIN_SEED, payload) != stored {
        return Err(fail("whole-file checksum mismatch".into()));
    }
    let mut r = Reader::new(payload);
    let magic = r.take(CHECKPOINT_MAGIC.len()).map_err(fail)?;
    if magic != CHECKPOINT_MAGIC {
        return Err(fail("bad magic".into()));
    }
    let design =
        design_from_tag(r.u8().map_err(fail)?).ok_or_else(|| fail("unknown design tag".into()))?;
    let data_lines = r.u64().map_err(fail)?;
    let last_seq = r.u64().map_err(fail)?;
    let n_blocks = r.u32().map_err(fail)? as usize;
    let mut blocks = Vec::with_capacity(n_blocks.min(1 << 16));
    for _ in 0..n_blocks {
        let index = r.u64().map_err(fail)?;
        let major = r.u64().map_err(fail)?;
        let tag = r.u8().map_err(fail)?;
        let n_slots = r.u32().map_err(fail)? as usize;
        if n_slots > 128 {
            return Err(fail(format!("slot count {n_slots} exceeds any coverage")));
        }
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            slots.push(r.u64().map_err(fail)?);
        }
        blocks.push((index, major, tag, slots));
    }
    let n_lines = r.u32().map_err(fail)? as usize;
    let mut lines = Vec::with_capacity(n_lines.min(1 << 16));
    for _ in 0..n_lines {
        let line = r.u64().map_err(fail)?;
        let mut cipher = [0u64; 8];
        for c in &mut cipher {
            *c = r.u64().map_err(fail)?;
        }
        let mac = r.u64().map_err(fail)?;
        lines.push(LineImage { line, cipher, mac });
    }
    if !r.done() {
        return Err(fail("trailing bytes after line images".into()));
    }
    Ok(Checkpoint {
        design,
        data_lines,
        last_seq,
        blocks,
        lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64) -> JournalRecord {
        JournalRecord {
            seq,
            counter_block: 3,
            major: 1,
            format_tag: 0,
            slots: vec![seq; 64],
            lines: vec![LineImage {
                line: 9,
                cipher: [seq; 8],
                mac: 0xABCD,
            }],
        }
    }

    fn journal_of(n: u64) -> Vec<u8> {
        let mut bytes = Vec::new();
        let mut check = CHAIN_SEED;
        for seq in 1..=n {
            let (frame, c) = encode_record(&record(seq), check);
            bytes.extend_from_slice(&frame);
            check = c;
        }
        bytes
    }

    #[test]
    fn record_roundtrip_chain() {
        let bytes = journal_of(5);
        let scan = scan_journal(&bytes).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.discarded_tail_bytes, 0);
        assert_eq!(scan.records[2], record(3));
    }

    #[test]
    fn empty_journal_scans_clean() {
        let scan = scan_journal(&[]).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.final_check, CHAIN_SEED);
    }

    #[test]
    fn torn_tail_discarded_at_every_prefix_length() {
        let full = journal_of(3);
        let two = journal_of(2);
        // Any strict prefix that cuts into record 3 must yield exactly the
        // first two records with the remainder discarded as torn tail.
        for cut in two.len() + 1..full.len() {
            let scan = scan_journal(&full[..cut]).expect("torn tail is not corruption");
            assert_eq!(scan.records.len(), 2, "cut at {cut}");
            assert_eq!(scan.discarded_tail_bytes, cut - two.len());
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = journal_of(2);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match scan_journal(&bad) {
                Err(JournalError::Corrupt { .. }) => {}
                Ok(scan) => panic!(
                    "flip at byte {i} went unnoticed: {} records, {} tail",
                    scan.records.len(),
                    scan.discarded_tail_bytes
                ),
            }
        }
    }

    #[test]
    fn records_cannot_be_reordered() {
        let (f1, c1) = encode_record(&record(1), CHAIN_SEED);
        let (f2, _) = encode_record(&record(2), c1);
        let mut swapped = f2.clone();
        swapped.extend_from_slice(&f1);
        assert!(matches!(
            scan_journal(&swapped),
            Err(JournalError::Corrupt { .. })
        ));
    }

    #[test]
    fn checkpoint_roundtrip() {
        let ckpt = Checkpoint {
            design: CounterDesign::Morphable,
            data_lines: 1 << 12,
            last_seq: 42,
            blocks: vec![(0, 2, 1, vec![3; 128]), (5, 0, 0, vec![0; 128])],
            lines: vec![LineImage {
                line: 7,
                cipher: [1, 2, 3, 4, 5, 6, 7, 8],
                mac: 99,
            }],
        };
        let bytes = encode_checkpoint(&ckpt);
        assert_eq!(decode_checkpoint(&bytes).unwrap(), ckpt);
    }

    #[test]
    fn checkpoint_byte_flips_detected() {
        let ckpt = Checkpoint {
            design: CounterDesign::Sc64,
            data_lines: 64,
            last_seq: 1,
            blocks: vec![(0, 0, 0, vec![1; 64])],
            lines: Vec::new(),
        };
        let bytes = encode_checkpoint(&ckpt);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x08;
            assert!(decode_checkpoint(&bad).is_err(), "flip at byte {i}");
        }
        // Truncation too.
        assert!(decode_checkpoint(&bytes[..bytes.len() - 3]).is_err());
    }
}
