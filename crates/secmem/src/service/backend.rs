//! Pluggable persistence backends plus deterministic fault injectors.
//!
//! A [`StorageBackend`] owns two byte stores: an append-only journal and an
//! atomically-replaceable checkpoint. The contract recovery depends on:
//!
//! * `append_journal` either appends the full buffer or (under a crash) a
//!   strict *prefix* of it — it never interleaves or reorders;
//! * `install_checkpoint` is atomic: after a crash the old checkpoint is
//!   intact or the new one is fully installed, never a mixture;
//! * `truncate_journal` happens after a successful install, so a crash
//!   between the two leaves a new checkpoint plus stale (idempotently
//!   skippable) journal records.
//!
//! [`CrashInjector`] and [`FlakyBackend`] wrap any backend to inject
//! seeded crashes (including torn final appends) and transient append
//! failures; the crash campaign and the retry/timeout tests drive them.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Why a backend operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// An I/O error from a file-backed store.
    Io(String),
    /// The (injected) machine crashed; no further operations will succeed
    /// on this instance. Recover from the persisted bytes.
    Crashed,
    /// A transient fault: retrying the same operation may succeed.
    Transient(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Io(e) => write!(f, "backend I/O error: {e}"),
            BackendError::Crashed => write!(f, "backend crashed"),
            BackendError::Transient(e) => write!(f, "transient backend fault: {e}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// Which persisted byte store a fault-injection hook targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// The append-only write-ahead journal.
    Journal,
    /// The checkpoint image.
    Checkpoint,
}

/// A persistence target for the secure-memory service.
pub trait StorageBackend: Send {
    /// Appends framed record bytes to the journal.
    ///
    /// # Errors
    ///
    /// Any [`BackendError`]; `Transient` faults may be retried.
    fn append_journal(&mut self, bytes: &[u8]) -> Result<(), BackendError>;

    /// The full journal contents.
    ///
    /// # Errors
    ///
    /// Any [`BackendError`].
    fn journal_bytes(&self) -> Result<Vec<u8>, BackendError>;

    /// Empties the journal (called after a successful checkpoint install).
    ///
    /// # Errors
    ///
    /// Any [`BackendError`].
    fn truncate_journal(&mut self) -> Result<(), BackendError>;

    /// Atomically replaces the checkpoint image.
    ///
    /// # Errors
    ///
    /// Any [`BackendError`]. On failure the previous checkpoint must
    /// remain intact.
    fn install_checkpoint(&mut self, bytes: &[u8]) -> Result<(), BackendError>;

    /// The current checkpoint image, if one was ever installed.
    ///
    /// # Errors
    ///
    /// Any [`BackendError`].
    fn checkpoint_bytes(&self) -> Result<Option<Vec<u8>>, BackendError>;

    /// Fault-injection hook: XOR one persisted byte in `region`, modelling
    /// at-rest bit rot. Returns `false` (without changing anything) when
    /// the region is empty or `offset` is out of range.
    ///
    /// # Errors
    ///
    /// Any [`BackendError`].
    fn corrupt_byte(
        &mut self,
        region: Region,
        offset: usize,
        xor: u8,
    ) -> Result<bool, BackendError>;
}

/// Volatile backend: two byte vectors. The crash campaign's fast path.
#[derive(Debug, Clone, Default)]
pub struct InMemoryBackend {
    journal: Vec<u8>,
    checkpoint: Option<Vec<u8>>,
}

impl InMemoryBackend {
    /// Creates an empty backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for InMemoryBackend {
    fn append_journal(&mut self, bytes: &[u8]) -> Result<(), BackendError> {
        self.journal.extend_from_slice(bytes);
        Ok(())
    }

    fn journal_bytes(&self) -> Result<Vec<u8>, BackendError> {
        Ok(self.journal.clone())
    }

    fn truncate_journal(&mut self) -> Result<(), BackendError> {
        self.journal.clear();
        Ok(())
    }

    fn install_checkpoint(&mut self, bytes: &[u8]) -> Result<(), BackendError> {
        self.checkpoint = Some(bytes.to_vec());
        Ok(())
    }

    fn checkpoint_bytes(&self) -> Result<Option<Vec<u8>>, BackendError> {
        Ok(self.checkpoint.clone())
    }

    fn corrupt_byte(
        &mut self,
        region: Region,
        offset: usize,
        xor: u8,
    ) -> Result<bool, BackendError> {
        let store = match region {
            Region::Journal => Some(&mut self.journal),
            Region::Checkpoint => self.checkpoint.as_mut(),
        };
        match store {
            Some(v) if offset < v.len() => {
                v[offset] ^= xor;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

/// Durable backend: a directory holding `journal.wal` and
/// `checkpoint.img`, with checkpoint installs staged through a temp file
/// and `rename` for atomicity.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
}

impl FileBackend {
    /// Opens (creating if needed) the backing directory.
    ///
    /// # Errors
    ///
    /// [`BackendError::Io`] if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, BackendError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| BackendError::Io(e.to_string()))?;
        Ok(FileBackend { dir })
    }

    fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.wal")
    }

    fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("checkpoint.img")
    }
}

impl StorageBackend for FileBackend {
    fn append_journal(&mut self, bytes: &[u8]) -> Result<(), BackendError> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.journal_path())
            .map_err(|e| BackendError::Io(e.to_string()))?;
        f.write_all(bytes)
            .map_err(|e| BackendError::Io(e.to_string()))
    }

    fn journal_bytes(&self) -> Result<Vec<u8>, BackendError> {
        match fs::read(self.journal_path()) {
            Ok(v) => Ok(v),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(BackendError::Io(e.to_string())),
        }
    }

    fn truncate_journal(&mut self) -> Result<(), BackendError> {
        fs::write(self.journal_path(), []).map_err(|e| BackendError::Io(e.to_string()))
    }

    fn install_checkpoint(&mut self, bytes: &[u8]) -> Result<(), BackendError> {
        let tmp = self.dir.join("checkpoint.tmp");
        fs::write(&tmp, bytes).map_err(|e| BackendError::Io(e.to_string()))?;
        fs::rename(&tmp, self.checkpoint_path()).map_err(|e| BackendError::Io(e.to_string()))
    }

    fn checkpoint_bytes(&self) -> Result<Option<Vec<u8>>, BackendError> {
        match fs::read(self.checkpoint_path()) {
            Ok(v) => Ok(Some(v)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(BackendError::Io(e.to_string())),
        }
    }

    fn corrupt_byte(
        &mut self,
        region: Region,
        offset: usize,
        xor: u8,
    ) -> Result<bool, BackendError> {
        let path = match region {
            Region::Journal => self.journal_path(),
            Region::Checkpoint => self.checkpoint_path(),
        };
        let mut bytes = match fs::read(&path) {
            Ok(v) => v,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(BackendError::Io(e.to_string())),
        };
        if offset >= bytes.len() {
            return Ok(false);
        }
        bytes[offset] ^= xor;
        fs::write(&path, bytes).map_err(|e| BackendError::Io(e.to_string()))?;
        Ok(true)
    }
}

/// A seeded crash point: die on the Nth mutating backend call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSchedule {
    /// 1-based index of the mutating call (`append_journal`,
    /// `install_checkpoint`, `truncate_journal`) that crashes; 0 = never.
    pub crash_on_op: u64,
    /// For an append crash: how many bytes of the final record survive
    /// (clamped to the record length). Models a torn write.
    pub torn_keep: u64,
}

impl CrashSchedule {
    /// A schedule that never fires.
    pub fn never() -> Self {
        CrashSchedule {
            crash_on_op: 0,
            torn_keep: 0,
        }
    }
}

/// Wraps a backend with a deterministic crash schedule.
///
/// Once the schedule fires, every subsequent operation returns
/// [`BackendError::Crashed`]; [`CrashInjector::into_inner`] hands the
/// surviving bytes to recovery — exactly what a reboot would find.
#[derive(Debug)]
pub struct CrashInjector<B> {
    inner: B,
    schedule: CrashSchedule,
    mutations: u64,
    crashed: bool,
}

impl<B: StorageBackend> CrashInjector<B> {
    /// Wraps `inner` under `schedule`.
    pub fn new(inner: B, schedule: CrashSchedule) -> Self {
        CrashInjector {
            inner,
            schedule,
            mutations: 0,
            crashed: false,
        }
    }

    /// Whether the schedule has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Unwraps the post-crash (or never-crashed) backend for recovery.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Counts a mutating call; true if this is the one that crashes.
    fn tick(&mut self) -> bool {
        self.mutations += 1;
        if self.schedule.crash_on_op != 0 && self.mutations == self.schedule.crash_on_op {
            self.crashed = true;
        }
        self.crashed
    }
}

impl<B: StorageBackend> StorageBackend for CrashInjector<B> {
    fn append_journal(&mut self, bytes: &[u8]) -> Result<(), BackendError> {
        if self.crashed {
            return Err(BackendError::Crashed);
        }
        if self.tick() {
            // Torn write: a strict prefix of the record reaches the medium.
            let keep = (self.schedule.torn_keep as usize).min(bytes.len());
            if keep > 0 {
                self.inner.append_journal(&bytes[..keep])?;
            }
            return Err(BackendError::Crashed);
        }
        self.inner.append_journal(bytes)
    }

    fn journal_bytes(&self) -> Result<Vec<u8>, BackendError> {
        self.inner.journal_bytes()
    }

    fn truncate_journal(&mut self) -> Result<(), BackendError> {
        if self.crashed || self.tick() {
            // Crash before the truncate applies: stale records survive.
            return Err(BackendError::Crashed);
        }
        self.inner.truncate_journal()
    }

    fn install_checkpoint(&mut self, bytes: &[u8]) -> Result<(), BackendError> {
        if self.crashed || self.tick() {
            // Crash before the atomic rename: the old checkpoint stays.
            return Err(BackendError::Crashed);
        }
        self.inner.install_checkpoint(bytes)
    }

    fn checkpoint_bytes(&self) -> Result<Option<Vec<u8>>, BackendError> {
        self.inner.checkpoint_bytes()
    }

    fn corrupt_byte(
        &mut self,
        region: Region,
        offset: usize,
        xor: u8,
    ) -> Result<bool, BackendError> {
        self.inner.corrupt_byte(region, offset, xor)
    }
}

/// Wraps a backend so the next N journal appends fail with a transient
/// fault — the adversary the retry/backoff policy is sized against.
#[derive(Debug)]
pub struct FlakyBackend<B> {
    inner: B,
    fail_next_appends: u64,
    /// Total appends attempted (including failed ones), for assertions.
    pub attempts: u64,
}

impl<B: StorageBackend> FlakyBackend<B> {
    /// Wraps `inner`; the first `fail_next_appends` appends return
    /// [`BackendError::Transient`].
    pub fn new(inner: B, fail_next_appends: u64) -> Self {
        FlakyBackend {
            inner,
            fail_next_appends,
            attempts: 0,
        }
    }

    /// Unwraps the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: StorageBackend> StorageBackend for FlakyBackend<B> {
    fn append_journal(&mut self, bytes: &[u8]) -> Result<(), BackendError> {
        self.attempts += 1;
        if self.fail_next_appends > 0 {
            self.fail_next_appends -= 1;
            return Err(BackendError::Transient("injected append fault".into()));
        }
        self.inner.append_journal(bytes)
    }

    fn journal_bytes(&self) -> Result<Vec<u8>, BackendError> {
        self.inner.journal_bytes()
    }

    fn truncate_journal(&mut self) -> Result<(), BackendError> {
        self.inner.truncate_journal()
    }

    fn install_checkpoint(&mut self, bytes: &[u8]) -> Result<(), BackendError> {
        self.inner.install_checkpoint(bytes)
    }

    fn checkpoint_bytes(&self) -> Result<Option<Vec<u8>>, BackendError> {
        self.inner.checkpoint_bytes()
    }

    fn corrupt_byte(
        &mut self,
        region: Region,
        offset: usize,
        xor: u8,
    ) -> Result<bool, BackendError> {
        self.inner.corrupt_byte(region, offset, xor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(mut b: impl StorageBackend) {
        b.append_journal(&[1, 2, 3]).unwrap();
        b.append_journal(&[4]).unwrap();
        assert_eq!(b.journal_bytes().unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(b.checkpoint_bytes().unwrap(), None);
        b.install_checkpoint(&[9, 9]).unwrap();
        assert_eq!(b.checkpoint_bytes().unwrap(), Some(vec![9, 9]));
        b.truncate_journal().unwrap();
        assert!(b.journal_bytes().unwrap().is_empty());
        assert!(b.corrupt_byte(Region::Checkpoint, 1, 0xFF).unwrap());
        assert_eq!(b.checkpoint_bytes().unwrap(), Some(vec![9, 9 ^ 0xFF]));
        assert!(!b.corrupt_byte(Region::Journal, 0, 1).unwrap());
    }

    #[test]
    fn inmemory_contract() {
        roundtrip(InMemoryBackend::new());
    }

    #[test]
    fn file_contract() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-scratch")
            .join(format!("emcc-backend-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        roundtrip(FileBackend::open(&dir).unwrap());
        // Reopening sees the persisted state.
        let b = FileBackend::open(&dir).unwrap();
        assert!(b.journal_bytes().unwrap().is_empty());
        assert!(b.checkpoint_bytes().unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_injector_tears_final_append() {
        let schedule = CrashSchedule {
            crash_on_op: 2,
            torn_keep: 2,
        };
        let mut b = CrashInjector::new(InMemoryBackend::new(), schedule);
        b.append_journal(&[1, 2, 3]).unwrap();
        assert_eq!(b.append_journal(&[4, 5, 6, 7]), Err(BackendError::Crashed));
        assert!(b.crashed());
        assert_eq!(b.append_journal(&[8]), Err(BackendError::Crashed));
        assert_eq!(b.into_inner().journal_bytes().unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn crash_injector_keeps_old_checkpoint() {
        let schedule = CrashSchedule {
            crash_on_op: 2,
            torn_keep: 0,
        };
        let mut b = CrashInjector::new(InMemoryBackend::new(), schedule);
        b.install_checkpoint(&[1]).unwrap();
        assert_eq!(b.install_checkpoint(&[2]), Err(BackendError::Crashed));
        assert_eq!(b.into_inner().checkpoint_bytes().unwrap(), Some(vec![1]));
    }

    #[test]
    fn flaky_backend_fails_then_recovers() {
        let mut b = FlakyBackend::new(InMemoryBackend::new(), 2);
        assert!(matches!(
            b.append_journal(&[1]),
            Err(BackendError::Transient(_))
        ));
        assert!(matches!(
            b.append_journal(&[1]),
            Err(BackendError::Transient(_))
        ));
        b.append_journal(&[1]).unwrap();
        assert_eq!(b.attempts, 3);
        assert_eq!(b.into_inner().journal_bytes().unwrap(), vec![1]);
    }
}
