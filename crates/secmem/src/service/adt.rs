//! The batched `MemoryADT`-style service interface.
//!
//! Mirrors the memory abstraction used by searchable-encryption layers
//! (Findex's `MemoryADT`): batched reads, batched writes, and a guarded
//! (compare-and-set) write whose guard is one address's expected current
//! value. The secure-memory service implements it over
//! [`crate::FunctionalSecureMemory`] so callers get real
//! encrypt/MAC/integrity-tree semantics behind a four-method surface.

use emcc_crypto::DataBlock;
use emcc_sim::{LineAddr, Time};

use super::backend::BackendError;
use crate::functional::ReadError;

/// Acknowledgement for a batch of writes: the journal made them durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// Journal sequence number of the batch's last record. Recovery
    /// guarantees every sequence number up to and including this one.
    pub last_seq: u64,
    /// Number of writes the batch applied.
    pub committed: usize,
}

/// Why a service request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Backpressure: the bounded in-flight window is full. Retry later;
    /// nothing was applied.
    Overloaded {
        /// Requests in flight when this one was rejected.
        in_flight: usize,
        /// The configured window.
        limit: usize,
    },
    /// The service is in degraded read-only mode after a verify-failure
    /// streak (§IV-D escalation, service level). Reads still work.
    ReadOnly {
        /// Consecutive verification failures that triggered degradation.
        failures: u32,
    },
    /// Integrity verification failed — tampering/corruption *detected*.
    Corruption(ReadError),
    /// The persistence backend failed non-transiently (or retries were
    /// exhausted). A prefix of the batch may have committed; the error
    /// reports how many.
    Backend {
        /// The underlying backend error.
        error: BackendError,
        /// Writes of this batch already durable before the failure.
        committed: usize,
    },
    /// The per-op retry budget ran past the configured timeout.
    Timeout {
        /// Backoff time accumulated before giving up.
        spent: Time,
        /// The configured per-op budget.
        budget: Time,
        /// Writes of this batch already durable before the failure.
        committed: usize,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { in_flight, limit } => {
                write!(f, "overloaded: {in_flight} in flight (limit {limit})")
            }
            ServiceError::ReadOnly { failures } => {
                write!(f, "degraded read-only mode ({failures} verify failures)")
            }
            ServiceError::Corruption(e) => write!(f, "{e}"),
            ServiceError::Backend { error, committed } => {
                write!(f, "backend failure after {committed} commits: {error}")
            }
            ServiceError::Timeout {
                spent,
                budget,
                committed,
            } => write!(
                f,
                "op timed out ({spent:?} backoff spent, budget {budget:?}, {committed} commits)"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Batched secure-memory operations.
pub trait MemoryAdt {
    /// Reads many lines; `None` for never-written lines.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] — notably `Corruption` when verification fails.
    fn batch_read(&self, addrs: &[LineAddr]) -> Result<Vec<Option<DataBlock>>, ServiceError>;

    /// Applies writes in order; the returned ack covers the whole batch.
    ///
    /// # Errors
    ///
    /// [`ServiceError`]. On `Backend`/`Timeout` failures a *prefix* of the
    /// batch is durable; the error carries the committed count.
    fn batch_write(&self, writes: &[(LineAddr, DataBlock)]) -> Result<WriteAck, ServiceError>;

    /// Compare-and-set: applies `writes` only if the line at `guard.0`
    /// currently holds `guard.1` (`None` = never written). Returns the
    /// value observed at the guard address *before* any write — equal to
    /// the guard iff the writes were applied.
    ///
    /// # Errors
    ///
    /// [`ServiceError`], as for [`Self::batch_write`].
    fn guarded_write(
        &self,
        guard: (LineAddr, Option<DataBlock>),
        writes: &[(LineAddr, DataBlock)],
    ) -> Result<Option<DataBlock>, ServiceError>;
}
