//! Crash-consistent concurrent secure-memory service.
//!
//! [`SecureMemoryService`] productizes [`FunctionalSecureMemory`] (ROADMAP
//! item 2): a `Send + Sync` service exposing the batched
//! [`MemoryAdt`] surface (`batch_read` / `batch_write` / `guarded_write`)
//! over a pluggable [`StorageBackend`], with
//!
//! * **write-ahead journaling** — every write's persistent effect (one
//!   counter block + the re-encrypted line images) is appended to the
//!   journal *before* the write is acknowledged, so a crash at any moment
//!   loses only unacknowledged work ([`journal`]);
//! * **atomic checkpointing** — [`SecureMemoryService::checkpoint`]
//!   captures full state, installs it atomically and truncates the
//!   journal; stale-checkpoint and stale-journal crash windows are closed
//!   by sequence-number idempotence ([`recovery`]);
//! * **request-level robustness** extending [`crate::RetryPolicy`] /
//!   [`crate::RecoveryConfig`]: bounded retry with exponential backoff
//!   against transient backend faults, a per-op virtual-time budget,
//!   backpressure via a bounded in-flight window with typed
//!   [`ServiceError::Overloaded`] rejection, and a degraded read-only mode
//!   entered after a verify-failure streak — the service-level mirror of
//!   the paper's §IV-D MC-fallback escalation.
//!
//! Backoff time is *accounted*, not slept: like the rest of this
//! repository the service charges virtual DRAM-tick time, which keeps
//! every retry/timeout path deterministic and testable.

pub mod adt;
pub mod backend;
pub mod journal;
pub mod recovery;

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use emcc_counters::CounterDesign;
use emcc_crypto::DataBlock;
use emcc_sim::{LineAddr, Time};

pub use adt::{MemoryAdt, ServiceError, WriteAck};
pub use backend::{
    BackendError, CrashInjector, CrashSchedule, FileBackend, FlakyBackend, InMemoryBackend, Region,
    StorageBackend,
};
pub use journal::{JournalError, JournalRecord, JournalScan, LineImage};
pub use recovery::{recover, RecoveryError, RecoveryReport};

use crate::functional::{FunctionalSecureMemory, StoredLine};
use crate::verify::{RecoveryConfig, RetryPolicy};

/// Service-level robustness knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Bounded in-flight window; further requests get
    /// [`ServiceError::Overloaded`].
    pub max_in_flight: usize,
    /// Retry policy for transient backend faults (shared with the timing
    /// model's verify-retry machinery).
    pub retry: RetryPolicy,
    /// Virtual-time budget of accumulated backoff per operation; exceeded
    /// ⇒ [`ServiceError::Timeout`].
    pub op_timeout: Time,
    /// Consecutive verification failures before the service degrades to
    /// read-only mode.
    pub degrade_after: u32,
    /// Acknowledged writes between automatic checkpoints; 0 = only
    /// explicit [`SecureMemoryService::checkpoint`] calls.
    pub checkpoint_every: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_in_flight: 64,
            retry: RetryPolicy::default(),
            op_timeout: Time::from_ns(1_000_000), // 1 ms of backoff budget
            degrade_after: 4,
            checkpoint_every: 0,
        }
    }
}

impl ServiceConfig {
    /// Lifts the timing model's [`RecoveryConfig`] to the service level:
    /// same retry policy, and the L2 fallback threshold becomes the
    /// degraded-mode streak.
    pub fn from_recovery(rc: RecoveryConfig) -> Self {
        ServiceConfig {
            retry: rc.retry,
            degrade_after: rc.l2_fallback_threshold,
            ..ServiceConfig::default()
        }
    }
}

/// Monotonic operation counters, readable without the service lock.
#[derive(Debug, Default)]
struct Stats {
    reads: AtomicU64,
    writes: AtomicU64,
    guarded_writes: AtomicU64,
    retries: AtomicU64,
    rollbacks: AtomicU64,
    overloaded: AtomicU64,
    verify_failures: AtomicU64,
    checkpoints: AtomicU64,
}

/// Snapshot of [`SecureMemoryService::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Lines served by `batch_read`.
    pub reads: u64,
    /// Writes acknowledged by `batch_write` / `guarded_write`.
    pub writes: u64,
    /// Guarded writes attempted.
    pub guarded_writes: u64,
    /// Transient-fault retries performed.
    pub retries: u64,
    /// Writes rolled back after a failed journal append.
    pub rollbacks: u64,
    /// Requests rejected by backpressure.
    pub overloaded: u64,
    /// Verification failures observed on reads.
    pub verify_failures: u64,
    /// Checkpoints installed.
    pub checkpoints: u64,
}

/// State behind the service mutex.
struct Core<B> {
    mem: FunctionalSecureMemory,
    backend: B,
    /// Next journal sequence number to assign (1-based).
    next_seq: u64,
    /// Checksum chain state of the journal's last record.
    check_chain: u64,
    /// Acknowledged writes since the last checkpoint.
    ops_since_checkpoint: u64,
    /// Consecutive read-verification failures.
    fail_streak: u32,
    /// Lines recovery could not verify; reads report detected corruption.
    quarantined: BTreeSet<LineAddr>,
}

/// Thread-safe crash-consistent secure-memory service.
///
/// # Examples
///
/// ```
/// use emcc_secmem::service::{InMemoryBackend, MemoryAdt, SecureMemoryService, ServiceConfig};
/// use emcc_crypto::DataBlock;
/// use emcc_sim::LineAddr;
///
/// let svc = SecureMemoryService::new(
///     InMemoryBackend::new(), 7, 1 << 12, ServiceConfig::default());
/// let line = LineAddr::new(3);
/// let v = DataBlock::from_words([42; 8]);
/// let ack = svc.batch_write(&[(line, v)]).unwrap();
/// assert_eq!(ack.last_seq, 1);
/// assert_eq!(svc.batch_read(&[line]).unwrap(), vec![Some(v)]);
/// ```
pub struct SecureMemoryService<B: StorageBackend> {
    core: Mutex<Core<B>>,
    cfg: ServiceConfig,
    in_flight: AtomicUsize,
    degraded: AtomicBool,
    stats: Stats,
}

impl<B: StorageBackend> std::fmt::Debug for SecureMemoryService<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureMemoryService")
            .field("cfg", &self.cfg)
            .field("in_flight", &self.in_flight.load(Ordering::Relaxed))
            .field("degraded", &self.degraded.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// RAII reservation of one slot in the service's in-flight window.
pub struct OpPermit<'a> {
    counter: &'a AtomicUsize,
}

impl Drop for OpPermit<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<B: StorageBackend> SecureMemoryService<B> {
    /// Starts a service over a *fresh* backend (empty journal, no
    /// checkpoint) with Morphable counters. Use [`recover`] to restart
    /// from persisted state.
    pub fn new(backend: B, seed: u64, data_lines: u64, cfg: ServiceConfig) -> Self {
        Self::with_design(backend, seed, data_lines, CounterDesign::Morphable, cfg)
    }

    /// [`Self::new`] with an explicit counter design.
    pub fn with_design(
        backend: B,
        seed: u64,
        data_lines: u64,
        design: CounterDesign,
        cfg: ServiceConfig,
    ) -> Self {
        Self::assemble(
            FunctionalSecureMemory::with_design(seed, data_lines, design),
            backend,
            1,
            journal::CHAIN_SEED,
            BTreeSet::new(),
            cfg,
        )
    }

    /// Internal constructor shared with recovery.
    pub(super) fn assemble(
        mem: FunctionalSecureMemory,
        backend: B,
        next_seq: u64,
        check_chain: u64,
        quarantined: BTreeSet<LineAddr>,
        cfg: ServiceConfig,
    ) -> Self {
        let degraded = !quarantined.is_empty();
        SecureMemoryService {
            core: Mutex::new(Core {
                mem,
                backend,
                next_seq,
                check_chain,
                ops_since_checkpoint: 0,
                fail_streak: 0,
                quarantined,
            }),
            cfg,
            in_flight: AtomicUsize::new(0),
            degraded: AtomicBool::new(degraded),
            stats: Stats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Whether the service is in degraded read-only mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Lines recovery quarantined (reads of these report corruption).
    pub fn quarantined(&self) -> Vec<LineAddr> {
        self.lock().quarantined.iter().copied().collect()
    }

    /// Operation counters so far.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.stats.reads.load(Ordering::Relaxed),
            writes: self.stats.writes.load(Ordering::Relaxed),
            guarded_writes: self.stats.guarded_writes.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            rollbacks: self.stats.rollbacks.load(Ordering::Relaxed),
            overloaded: self.stats.overloaded.load(Ordering::Relaxed),
            verify_failures: self.stats.verify_failures.load(Ordering::Relaxed),
            checkpoints: self.stats.checkpoints.load(Ordering::Relaxed),
        }
    }

    /// Reserves one slot of the bounded in-flight window. Every ADT call
    /// takes a slot for its duration; holding permits externally shrinks
    /// the capacity left for requests (useful for admission control and
    /// for deterministically exercising the overload path).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when the window is full.
    pub fn permit(&self) -> Result<OpPermit<'_>, ServiceError> {
        let prev = self.in_flight.fetch_add(1, Ordering::SeqCst);
        if prev >= self.cfg.max_in_flight {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            self.stats.overloaded.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::Overloaded {
                in_flight: prev,
                limit: self.cfg.max_in_flight,
            });
        }
        Ok(OpPermit {
            counter: &self.in_flight,
        })
    }

    /// Runs a closure against the functional memory under the service
    /// lock — read-only inspection (differential tests, audits).
    pub fn with_memory<R>(&self, f: impl FnOnce(&FunctionalSecureMemory) -> R) -> R {
        f(&self.lock().mem)
    }

    /// Attack/fault hook: mutate the functional memory directly (tamper
    /// helpers), bypassing the journal — models DRAM corruption, which is
    /// exactly what the integrity machinery must detect.
    pub fn with_memory_mut<R>(&self, f: impl FnOnce(&mut FunctionalSecureMemory) -> R) -> R {
        f(&mut self.lock().mem)
    }

    /// Captures a checkpoint of full persistent state, installs it
    /// atomically, and truncates the journal.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Backend`] / [`ServiceError::Timeout`]; the old
    /// checkpoint + journal remain authoritative on failure.
    pub fn checkpoint(&self) -> Result<(), ServiceError> {
        let _permit = self.permit()?;
        let mut core = self.lock();
        self.checkpoint_locked(&mut core)
    }

    /// Consumes the service and returns its backend (for post-crash
    /// inspection or recovery in tests).
    pub fn into_backend(self) -> B {
        self.core
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .backend
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Core<B>> {
        // A panic while holding the lock (e.g. a tamper helper asserting)
        // poisons it; the service state itself is still consistent because
        // every journaled mutation completes or is rolled back.
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends `bytes` with bounded retry + backoff accounting.
    fn append_with_retry(&self, core: &mut Core<B>, bytes: &[u8]) -> Result<(), ServiceError> {
        let mut attempt: u32 = 0;
        let mut spent_ps: u64 = 0;
        loop {
            match core.backend.append_journal(bytes) {
                Ok(()) => return Ok(()),
                Err(BackendError::Transient(_)) if self.cfg.retry.should_retry(attempt) => {
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    spent_ps = spent_ps.saturating_add(self.cfg.retry.backoff(attempt).as_ps());
                    if spent_ps > self.cfg.op_timeout.as_ps() {
                        return Err(ServiceError::Timeout {
                            spent: Time::from_ps(spent_ps),
                            budget: self.cfg.op_timeout,
                            committed: 0,
                        });
                    }
                    attempt += 1;
                }
                Err(e) => {
                    return Err(ServiceError::Backend {
                        error: e,
                        committed: 0,
                    })
                }
            }
        }
    }

    /// Journals and acknowledges one write. On append failure the
    /// functional state is rolled back to its pre-write image.
    fn write_one(
        &self,
        core: &mut Core<B>,
        line: LineAddr,
        value: DataBlock,
    ) -> Result<u64, ServiceError> {
        // Capture rollback images before mutating.
        let cb = core.mem.tree().geometry().counter_block_of(line);
        let prev_block = core.mem.counter_block_state(cb).cloned();
        let rebase = core.mem.tree().would_overflow_data(line);
        let prev_lines: Vec<(LineAddr, Option<StoredLine>)> = if rebase {
            let coverage = core.mem.tree().geometry().design().coverage();
            (cb * coverage..(cb + 1) * coverage)
                .map(LineAddr::new)
                .map(|l| (l, core.mem.raw(l)))
                .collect()
        } else {
            vec![(line, core.mem.raw(line))]
        };

        let log = core.mem.write_logged(line, value);
        let seq = core.next_seq;
        let rec = JournalRecord {
            seq,
            counter_block: log.counter_block,
            major: log.block.major(),
            format_tag: log.block.format().tag(),
            slots: log.block.raw_slots(),
            lines: log
                .touched
                .iter()
                .map(|(l, s)| LineImage {
                    line: l.get(),
                    cipher: *s.cipher.words(),
                    mac: s.mac.as_u64(),
                })
                .collect(),
        };
        let (frame, new_check) = journal::encode_record(&rec, core.check_chain);

        match self.append_with_retry(core, &frame) {
            Ok(()) => {
                core.check_chain = new_check;
                core.next_seq += 1;
                core.ops_since_checkpoint += 1;
                self.stats.writes.fetch_add(1, Ordering::Relaxed);
                Ok(seq)
            }
            Err(e) => {
                // The write never became durable: undo its functional
                // effect so memory and journal agree.
                core.mem.restore_counter_block(cb, prev_block);
                for (l, prev) in prev_lines {
                    core.mem.restore_line(l, prev);
                }
                self.stats.rollbacks.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn reject_if_degraded(&self) -> Result<(), ServiceError> {
        if self.degraded.load(Ordering::SeqCst) {
            return Err(ServiceError::ReadOnly {
                failures: self.cfg.degrade_after,
            });
        }
        Ok(())
    }

    /// Applies the batch under the lock; used by both write entry points.
    fn write_batch_locked(
        &self,
        core: &mut Core<B>,
        writes: &[(LineAddr, DataBlock)],
    ) -> Result<WriteAck, ServiceError> {
        let mut last_seq = core.next_seq.saturating_sub(1);
        for (i, (line, value)) in writes.iter().enumerate() {
            match self.write_one(core, *line, *value) {
                Ok(seq) => last_seq = seq,
                Err(e) => {
                    // Report how much of the batch is durable.
                    return Err(match e {
                        ServiceError::Backend { error, .. } => ServiceError::Backend {
                            error,
                            committed: i,
                        },
                        ServiceError::Timeout { spent, budget, .. } => ServiceError::Timeout {
                            spent,
                            budget,
                            committed: i,
                        },
                        other => other,
                    });
                }
            }
        }
        if self.cfg.checkpoint_every > 0 && core.ops_since_checkpoint >= self.cfg.checkpoint_every {
            self.checkpoint_locked(core)?;
        }
        Ok(WriteAck {
            last_seq,
            committed: writes.len(),
        })
    }

    fn checkpoint_locked(&self, core: &mut Core<B>) -> Result<(), ServiceError> {
        let blocks = core
            .mem
            .tree()
            .level0_blocks()
            .into_iter()
            .map(|(idx, b)| (idx, b.major(), b.format().tag(), b.raw_slots()))
            .collect();
        let lines = core
            .mem
            .written_lines()
            .into_iter()
            .map(|l| {
                let s = core.mem.raw(l).expect("written line has an image");
                LineImage {
                    line: l.get(),
                    cipher: *s.cipher.words(),
                    mac: s.mac.as_u64(),
                }
            })
            .collect();
        let ckpt = journal::Checkpoint {
            design: core.mem.tree().geometry().design(),
            data_lines: core.mem.tree().geometry().data_lines(),
            last_seq: core.next_seq - 1,
            blocks,
            lines,
        };
        let bytes = journal::encode_checkpoint(&ckpt);
        core.backend
            .install_checkpoint(&bytes)
            .map_err(|error| ServiceError::Backend {
                error,
                committed: 0,
            })?;
        core.backend
            .truncate_journal()
            .map_err(|error| ServiceError::Backend {
                error,
                committed: 0,
            })?;
        core.check_chain = journal::CHAIN_SEED;
        core.ops_since_checkpoint = 0;
        self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Reads one line under the lock, maintaining the verify-failure
    /// streak and degradation state.
    fn read_one(
        &self,
        core: &mut Core<B>,
        line: LineAddr,
    ) -> Result<Option<DataBlock>, ServiceError> {
        if core.quarantined.contains(&line) {
            return Err(ServiceError::Corruption(
                crate::functional::ReadError::MacMismatch { line },
            ));
        }
        if core.mem.raw(line).is_none() {
            self.stats.reads.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        match core.mem.read_checked(line) {
            Ok(v) => {
                core.fail_streak = 0;
                self.stats.reads.fetch_add(1, Ordering::Relaxed);
                Ok(Some(v))
            }
            Err(e) => {
                core.fail_streak += 1;
                self.stats.verify_failures.fetch_add(1, Ordering::Relaxed);
                if core.fail_streak >= self.cfg.degrade_after {
                    self.degraded.store(true, Ordering::SeqCst);
                }
                Err(ServiceError::Corruption(e))
            }
        }
    }
}

impl<B: StorageBackend> MemoryAdt for SecureMemoryService<B> {
    fn batch_read(&self, addrs: &[LineAddr]) -> Result<Vec<Option<DataBlock>>, ServiceError> {
        let _permit = self.permit()?;
        let mut core = self.lock();
        addrs
            .iter()
            .map(|&line| self.read_one(&mut core, line))
            .collect()
    }

    fn batch_write(&self, writes: &[(LineAddr, DataBlock)]) -> Result<WriteAck, ServiceError> {
        let _permit = self.permit()?;
        self.reject_if_degraded()?;
        let mut core = self.lock();
        self.write_batch_locked(&mut core, writes)
    }

    fn guarded_write(
        &self,
        guard: (LineAddr, Option<DataBlock>),
        writes: &[(LineAddr, DataBlock)],
    ) -> Result<Option<DataBlock>, ServiceError> {
        let _permit = self.permit()?;
        self.reject_if_degraded()?;
        self.stats.guarded_writes.fetch_add(1, Ordering::Relaxed);
        let mut core = self.lock();
        let current = self.read_one(&mut core, guard.0)?;
        if current == guard.1 {
            self.write_batch_locked(&mut core, writes)?;
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(v: u64) -> DataBlock {
        DataBlock::from_words([v; 8])
    }

    fn svc() -> SecureMemoryService<InMemoryBackend> {
        SecureMemoryService::new(InMemoryBackend::new(), 7, 1 << 12, ServiceConfig::default())
    }

    #[test]
    fn write_then_read_roundtrip() {
        let s = svc();
        let ack = s
            .batch_write(&[(LineAddr::new(1), block(10)), (LineAddr::new(2), block(20))])
            .unwrap();
        assert_eq!(ack.last_seq, 2);
        assert_eq!(ack.committed, 2);
        assert_eq!(
            s.batch_read(&[LineAddr::new(2), LineAddr::new(1), LineAddr::new(3)])
                .unwrap(),
            vec![Some(block(20)), Some(block(10)), None]
        );
    }

    #[test]
    fn guarded_write_applies_only_on_match() {
        let s = svc();
        let l = LineAddr::new(5);
        // Guard: expect never-written. Applies.
        let seen = s.guarded_write((l, None), &[(l, block(1))]).unwrap();
        assert_eq!(seen, None);
        assert_eq!(s.batch_read(&[l]).unwrap(), vec![Some(block(1))]);
        // Guard mismatch: no write.
        let seen = s
            .guarded_write((l, Some(block(9))), &[(l, block(2))])
            .unwrap();
        assert_eq!(seen, Some(block(1)));
        assert_eq!(s.batch_read(&[l]).unwrap(), vec![Some(block(1))]);
        // Guard match: write applies.
        let seen = s
            .guarded_write((l, Some(block(1))), &[(l, block(2))])
            .unwrap();
        assert_eq!(seen, Some(block(1)));
        assert_eq!(s.batch_read(&[l]).unwrap(), vec![Some(block(2))]);
    }

    #[test]
    fn permit_window_rejects_excess() {
        let cfg = ServiceConfig {
            max_in_flight: 2,
            ..ServiceConfig::default()
        };
        let s = SecureMemoryService::new(InMemoryBackend::new(), 7, 1 << 12, cfg);
        let p1 = s.permit().unwrap();
        let _p2 = s.permit().unwrap();
        // Window full: both a raw permit and a real op are rejected.
        assert!(matches!(
            s.permit(),
            Err(ServiceError::Overloaded {
                in_flight: 2,
                limit: 2
            })
        ));
        assert!(matches!(
            s.batch_read(&[LineAddr::new(0)]),
            Err(ServiceError::Overloaded { .. })
        ));
        assert_eq!(s.stats().overloaded, 2);
        drop(p1);
        assert!(s.batch_read(&[LineAddr::new(0)]).is_ok());
    }

    #[test]
    fn transient_faults_retry_then_succeed() {
        let cfg = ServiceConfig::default();
        let s = SecureMemoryService::new(
            FlakyBackend::new(InMemoryBackend::new(), 2),
            7,
            1 << 12,
            cfg,
        );
        let l = LineAddr::new(3);
        s.batch_write(&[(l, block(4))]).unwrap();
        assert_eq!(s.stats().retries, 2);
        assert_eq!(s.stats().rollbacks, 0);
        assert_eq!(s.batch_read(&[l]).unwrap(), vec![Some(block(4))]);
    }

    #[test]
    fn exhausted_retries_roll_back() {
        let cfg = ServiceConfig {
            retry: RetryPolicy {
                max_attempts: 2,
                base_ticks: 1,
            },
            ..ServiceConfig::default()
        };
        let s = SecureMemoryService::new(
            FlakyBackend::new(InMemoryBackend::new(), u64::MAX),
            7,
            1 << 12,
            cfg,
        );
        let l = LineAddr::new(3);
        let err = s.batch_write(&[(l, block(4))]).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Backend {
                error: BackendError::Transient(_),
                committed: 0
            }
        ));
        assert_eq!(s.stats().rollbacks, 1);
        // The failed write left no trace: line still unwritten.
        assert_eq!(s.batch_read(&[l]).unwrap(), vec![None]);
    }

    #[test]
    fn timeout_fires_before_retries_exhaust() {
        let cfg = ServiceConfig {
            retry: RetryPolicy {
                max_attempts: 64,
                base_ticks: 1 << 19,
            },
            op_timeout: Time::from_ns(100),
            ..ServiceConfig::default()
        };
        let s = SecureMemoryService::new(
            FlakyBackend::new(InMemoryBackend::new(), u64::MAX),
            7,
            1 << 12,
            cfg,
        );
        let err = s.batch_write(&[(LineAddr::new(1), block(1))]).unwrap_err();
        assert!(matches!(err, ServiceError::Timeout { .. }));
        assert_eq!(s.stats().rollbacks, 1);
    }

    #[test]
    fn verify_failure_streak_degrades_to_read_only() {
        let cfg = ServiceConfig {
            degrade_after: 3,
            ..ServiceConfig::default()
        };
        let s = SecureMemoryService::new(InMemoryBackend::new(), 7, 1 << 12, cfg);
        let good = LineAddr::new(1);
        let bad = LineAddr::new(2);
        s.batch_write(&[(good, block(1)), (bad, block(2))]).unwrap();
        s.with_memory_mut(|m| m.tamper_flip_bit(bad, 17));
        for i in 0..3 {
            assert!(!s.is_degraded(), "not yet degraded before failure {i}");
            assert!(matches!(
                s.batch_read(&[bad]),
                Err(ServiceError::Corruption(_))
            ));
        }
        assert!(s.is_degraded());
        // Writes now rejected; reads of intact lines still served.
        assert!(matches!(
            s.batch_write(&[(good, block(3))]),
            Err(ServiceError::ReadOnly { .. })
        ));
        assert_eq!(s.batch_read(&[good]).unwrap(), vec![Some(block(1))]);
        assert_eq!(s.stats().verify_failures, 3);
    }

    #[test]
    fn successful_read_resets_streak() {
        let cfg = ServiceConfig {
            degrade_after: 2,
            ..ServiceConfig::default()
        };
        let s = SecureMemoryService::new(InMemoryBackend::new(), 7, 1 << 12, cfg);
        let good = LineAddr::new(1);
        let bad = LineAddr::new(2);
        s.batch_write(&[(good, block(1)), (bad, block(2))]).unwrap();
        s.with_memory_mut(|m| m.tamper_flip_bit(bad, 17));
        assert!(s.batch_read(&[bad]).is_err());
        assert!(s.batch_read(&[good]).is_ok()); // streak broken
        assert!(s.batch_read(&[bad]).is_err());
        assert!(!s.is_degraded(), "interleaved successes keep service up");
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SecureMemoryService<InMemoryBackend>>();
        assert_send_sync::<SecureMemoryService<FileBackend>>();
    }

    #[test]
    fn journal_records_every_acked_write() {
        let s = svc();
        for i in 0..10u64 {
            s.batch_write(&[(LineAddr::new(i), block(i))]).unwrap();
        }
        let backend = s.into_backend();
        let scan = journal::scan_journal(&backend.journal_bytes().unwrap()).unwrap();
        assert_eq!(scan.records.len(), 10);
        assert_eq!(scan.records[9].seq, 10);
    }

    #[test]
    fn checkpoint_truncates_journal() {
        let s = svc();
        for i in 0..5u64 {
            s.batch_write(&[(LineAddr::new(i), block(i))]).unwrap();
        }
        s.checkpoint().unwrap();
        assert_eq!(s.stats().checkpoints, 1);
        s.batch_write(&[(LineAddr::new(40), block(40))]).unwrap();
        let backend = s.into_backend();
        assert!(backend.checkpoint_bytes().unwrap().is_some());
        let scan = journal::scan_journal(&backend.journal_bytes().unwrap()).unwrap();
        assert_eq!(scan.records.len(), 1, "journal restarted after checkpoint");
        assert_eq!(scan.records[0].seq, 6);
    }
}
