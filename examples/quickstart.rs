//! Quickstart: run one benchmark under all four secure-memory schemes and
//! compare performance — a miniature of the paper's Figure 16.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use emcc::prelude::*;

fn main() {
    let bench = Benchmark::Canneal;
    let ops_per_core = 50_000;
    let scale = WorkloadScale::Small;

    println!("EMCC quickstart: {bench} x 4 cores, {ops_per_core} mem-ops/core\n");
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>12}",
        "scheme", "time(us)", "IPC", "L2miss(ns)", "norm. perf"
    );

    let mut nonsecure_time = None;
    for scheme in SecurityScheme::all() {
        let cfg = SystemConfig::table_i(scheme);
        let sources = bench.build_scaled(1, cfg.cores, scale);
        let report =
            SecureSystem::new(cfg).run_with_warmup(sources, ops_per_core / 2, ops_per_core);
        let t = report.elapsed.as_ns_f64() / 1000.0;
        let norm = match nonsecure_time {
            None => {
                nonsecure_time = Some(t);
                1.0
            }
            Some(ns) => ns / t,
        };
        println!(
            "{:<16} {:>10.1} {:>10.2} {:>12.1} {:>11.1}%",
            scheme.to_string(),
            t,
            report.ipc(),
            report.l2_miss_latency_ns.mean(),
            norm * 100.0
        );
    }

    println!("\nThe paper's headline: EMCC recovers most of the gap between the");
    println!("ctr-in-LLC baseline and the non-secure ceiling (≈7% on average).");
}
