//! Explore the paper's latency-composition timelines (Figs 5/8/10/13/14)
//! under different parameters — e.g. what happens to EMCC's advantage as
//! AES gets slower or the NoC gets bigger.
//!
//! ```sh
//! cargo run --example timeline_explorer
//! ```

use emcc::sim::Time;
use emcc::system::timeline::{Timeline, TimelineParams, TimelineScenario};

fn main() {
    let base = TimelineParams::default();

    println!("== Paper defaults ==\n");
    for (label, sc) in [
        (
            "baseline, ctr hit in LLC (Fig 13b)",
            TimelineScenario::BaselineCtrHitLlc,
        ),
        (
            "EMCC, ctr hit in LLC (Fig 13a)",
            TimelineScenario::EmccCtrHitLlc,
        ),
    ] {
        println!("{label}:");
        print!("{}", Timeline::compose(sc, &base).render());
    }

    println!("\n== EMCC advantage vs AES latency (Fig 18's mechanism) ==");
    for aes_ns in [14u64, 20, 25, 30, 40] {
        let mut p = base;
        p.crypto = p.crypto.with_aes(Time::from_ns(aes_ns));
        let b = Timeline::compose(TimelineScenario::BaselineCtrHitLlc, &p).total;
        let e = Timeline::compose(TimelineScenario::EmccCtrHitLlc, &p).total;
        println!(
            "AES {aes_ns:>2} ns: baseline {:>5.1} ns, EMCC {:>5.1} ns, saving {:>5.1} ns",
            b.as_ns_f64(),
            e.as_ns_f64(),
            (b - e).as_ns_f64()
        );
    }

    println!("\n== EMCC advantage vs NoC one-way latency (bigger meshes / chiplets) ==");
    for noc_ns in [5u64, 7, 10, 15, 20] {
        let mut p = base;
        p.noc_one_way = Time::from_ns(noc_ns);
        // Direct LLC latency = slice SRAM + a NoC round trip, so it grows
        // with the mesh too.
        p.direct_llc = Time::from_ns(4) + p.noc_one_way * 2;
        let b = Timeline::compose(TimelineScenario::BaselineCtrHitLlc, &p).total;
        let e = Timeline::compose(TimelineScenario::EmccCtrHitLlc, &p).total;
        println!(
            "NoC {noc_ns:>2} ns: baseline {:>5.1} ns, EMCC {:>5.1} ns, saving {:>5.1} ns",
            b.as_ns_f64(),
            e.as_ns_f64(),
            (b - e).as_ns_f64()
        );
    }
    println!("\nThe saving grows with both AES latency and NoC latency — the");
    println!("paper's §III-B prediction that the problem worsens going forward.");
}
