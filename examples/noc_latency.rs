//! Reproduce the paper's Figure 3: the distribution of LLC hit latency on
//! a 28-core mesh, rendered as an ASCII histogram.
//!
//! ```sh
//! cargo run --example noc_latency
//! ```

use emcc::noc::{Mesh, NocLatency};
use emcc::sim::{Histogram, Time};

fn main() {
    let mesh = Mesh::xeon_w3175x();
    let noc = NocLatency::calibrated();
    let l2_tag = Time::from_ns(4);
    let sram = Time::from_ns(4);

    let mut h = Histogram::new(14.0, 1.0, 26);
    for core in 0..mesh.num_cores() {
        for slice in 0..mesh.num_cores() {
            let hops = mesh.hops_core_to_core(core, slice);
            h.add_time(l2_tag + noc.one_way(hops, false) + sram + noc.one_way(hops, true));
        }
    }

    println!("LLC hit latency distribution (Fig 3), 6x5 mesh, 28 cores\n");
    for i in 0..h.num_bins() {
        let frac = h.bin_fraction(i);
        if frac == 0.0 {
            continue;
        }
        let bar = "#".repeat((frac * 250.0).round() as usize);
        println!(
            "{:>3.0} ns | {:<50} {:>5.1}%",
            h.bin_lower(i),
            bar,
            frac * 100.0
        );
    }
    println!(
        "\nmean {:.1} ns (paper: 23 ns), p50 {:.1} ns, p95 {:.1} ns",
        h.mean(),
        h.percentile(50.0).expect("non-empty"),
        h.percentile(95.0).expect("non-empty"),
    );
    println!(
        "some hits take >10 ns longer than others — the distributed-LLC effect\n\
         that makes counter accesses in LLC expensive (the paper's motivation)."
    );
}
