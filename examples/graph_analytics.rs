//! Graph analytics under secure memory: run the eight graphBIG kernels on
//! a synthetic power-law graph and compare Morphable vs EMCC — the
//! workloads the paper's introduction motivates.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use emcc::prelude::*;
use emcc::workloads::kernels::GraphKernel;

fn main() {
    let kernels = [
        GraphKernel::PageRank,
        GraphKernel::Bfs,
        GraphKernel::Dfs,
        GraphKernel::ShortestPath,
    ];
    let scale = WorkloadScale::Small;
    let (warmup, measure) = (20_000, 40_000);

    println!("Graph analytics under secure memory ({scale:?} scale)\n");
    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "kernel", "Morphable", "EMCC", "benefit"
    );

    for k in kernels {
        let bench = Benchmark::Graph(k);
        let mut t = [0.0f64; 2];
        for (i, scheme) in [SecurityScheme::CtrInLlc, SecurityScheme::Emcc]
            .into_iter()
            .enumerate()
        {
            let cfg = SystemConfig::table_i(scheme);
            let sources = bench.build_scaled(3, cfg.cores, scale);
            let r = SecureSystem::new(cfg).run_with_warmup(sources, warmup, measure);
            t[i] = r.elapsed.as_ns_f64();
        }
        println!(
            "{:<16} {:>10.1}us {:>10.1}us {:>9.1}%",
            k.paper_name(),
            t[0] / 1000.0,
            t[1] / 1000.0,
            (t[0] / t[1] - 1.0) * 100.0
        );
    }

    println!("\nIrregular traversals (BFS/DFS/sssp) benefit most: their counters");
    println!("miss the MC cache and EMCC hides the LLC counter-access latency.");
}
