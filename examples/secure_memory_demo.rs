//! Functional secure-memory demo: real encryption, MACs, integrity tree —
//! and what happens when an attacker with physical access tampers with
//! DRAM contents (the paper's §II threat model).
//!
//! ```sh
//! cargo run --example secure_memory_demo
//! ```

use emcc::crypto::DataBlock;
use emcc::secmem::FunctionalSecureMemory;
use emcc::sim::LineAddr;

fn main() {
    let mut mem = FunctionalSecureMemory::new(0xC0FFEE, 1 << 20);
    let line = LineAddr::new(0x40);
    let secret = DataBlock::from_words([
        0x5365_6372_6574_2121, // program data the attacker wants
        2,
        3,
        4,
        5,
        6,
        7,
        8,
    ]);

    println!("== confidentiality ==");
    mem.write(line, secret);
    let raw = mem.raw(line).expect("line was written");
    println!("plaintext word 0:  {:#018x}", secret.words()[0]);
    println!(
        "DRAM (bus probe):  {:#018x}  <- ciphertext only",
        raw.cipher.words()[0]
    );
    println!("MAC co-located:    {}", raw.mac);

    println!("\n== freshness (counter-mode) ==");
    mem.write(line, secret); // same plaintext again
    let raw2 = mem.raw(line).expect("line still exists");
    println!(
        "same plaintext re-written -> new ciphertext: {:#018x}",
        raw2.cipher.words()[0]
    );
    assert_ne!(raw.cipher, raw2.cipher, "pads must never repeat");

    println!("\n== integrity: bit-flip attack ==");
    let snapshot = mem.raw(line).expect("snapshot for later replay");
    mem.tamper_flip_bit(line, 3);
    match mem.read(line) {
        Err(e) => println!("read after tamper: DETECTED ({e})"),
        Ok(_) => unreachable!("tampering must not go unnoticed"),
    }

    println!("\n== integrity: replay attack ==");
    mem.write(line, DataBlock::from_words([99; 8])); // victim stores v2
    mem.tamper_replay(line, snapshot); // attacker restores old (valid!) v1
    match mem.read(line) {
        Err(e) => println!("read after replay: DETECTED ({e})"),
        Ok(_) => unreachable!("replay must not go unnoticed"),
    }

    println!("\n== EMCC split verification ==");
    let line2 = LineAddr::new(0x80);
    mem.write(line2, secret);
    let via_mc = mem.read(line2).expect("normal read verifies");
    let via_l2 = mem.read_split(line2).expect("split read verifies");
    assert_eq!(via_mc, via_l2);
    println!("MC-side full verify == L2-side (AES half vs MAC xor dot-product): OK");

    println!(
        "\ncounters: {} overflows (level 0), {} lines re-encrypted by rebases",
        mem.tree().overflows_by_level()[0],
        mem.reencrypted_lines()
    );
}
