//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use emcc::counters::format::{decode_morphable, encode_morphable};
use emcc::counters::{CounterBlock, CounterDesign, MorphFormat, TreeGeometry};
use emcc::crypto::mac::gf64_mul;
use emcc::crypto::{BlockCipherKeys, DataBlock};
use emcc::secmem::FunctionalSecureMemory;
use emcc::sim::{LineAddr, Time};

proptest! {
    /// Counter-mode encryption round-trips for arbitrary data, address
    /// and counter.
    #[test]
    fn encrypt_decrypt_roundtrip(
        words in prop::array::uniform8(any::<u64>()),
        addr in 0u64..(1 << 40),
        counter in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let keys = BlockCipherKeys::from_seed(seed);
        let plain = DataBlock::from_words(words);
        let cipher = keys.encrypt_block(addr, counter, &plain);
        prop_assert_eq!(keys.decrypt_block(addr, counter, &cipher), plain);
    }

    /// Any single-bit corruption of the ciphertext is detected by the MAC.
    #[test]
    fn any_bit_flip_detected(
        words in prop::array::uniform8(any::<u64>()),
        bit in 0usize..512,
        counter in any::<u64>(),
    ) {
        let keys = BlockCipherKeys::from_seed(7);
        let plain = DataBlock::from_words(words);
        let cipher = keys.encrypt_block(0x1000, counter, &plain);
        let mac = keys.mac_block(0x1000, counter, &cipher);
        let tampered = cipher.with_bit_flipped(bit);
        prop_assert!(!keys.verify_block(0x1000, counter, &tampered, mac));
    }

    /// Decryption with the wrong counter never returns the plaintext
    /// (freshness) and fails verification (anti-replay).
    #[test]
    fn wrong_counter_rejected(
        words in prop::array::uniform8(any::<u64>()),
        counter in 0u64..u64::MAX - 1,
    ) {
        let keys = BlockCipherKeys::from_seed(11);
        let plain = DataBlock::from_words(words);
        let cipher = keys.encrypt_block(0x40, counter, &plain);
        let mac = keys.mac_block(0x40, counter, &cipher);
        prop_assert_ne!(keys.decrypt_block(0x40, counter + 1, &cipher), plain);
        prop_assert!(!keys.verify_block(0x40, counter + 1, &cipher, mac));
    }

    /// GF(2^64) multiplication is commutative and distributes over XOR.
    #[test]
    fn gf64_field_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        prop_assert_eq!(gf64_mul(a, b), gf64_mul(b, a));
        prop_assert_eq!(gf64_mul(a, b ^ c), gf64_mul(a, b) ^ gf64_mul(a, c));
        prop_assert_eq!(gf64_mul(gf64_mul(a, b), c), gf64_mul(a, gf64_mul(b, c)));
    }

    /// Morphable encode/decode round-trips for any representable minors.
    #[test]
    fn morphable_roundtrip(
        values in prop::collection::vec(0u16..=127, 1..=30),
        positions in prop::collection::vec(0usize..128, 1..=30),
        major in any::<u64>(),
        mac in 0u64..(1 << 56),
    ) {
        let mut minors = [0u16; 128];
        for (v, p) in values.iter().zip(&positions) {
            minors[*p] = *v;
        }
        if let Some(fmt) = MorphFormat::fitting(&minors) {
            let bytes = encode_morphable(fmt, major, &minors, mac);
            let (f2, m2, minors2, mac2) = decode_morphable(&bytes).expect("valid tag");
            prop_assert_eq!(f2, fmt);
            prop_assert_eq!(m2, major);
            prop_assert_eq!(mac2, mac);
            prop_assert_eq!(minors2, minors);
        }
    }

    /// Counter values are strictly monotonic per slot under any write
    /// sequence, for every design (the security invariant: pads never
    /// repeat).
    #[test]
    fn counters_strictly_monotonic(
        slots in prop::collection::vec(0usize..64, 1..400),
        design_idx in 0usize..3,
    ) {
        let design = CounterDesign::all()[design_idx];
        let mut block = CounterBlock::new(design);
        let n = design.coverage() as usize;
        let mut last: Vec<u64> = (0..n).map(|s| block.counter(s)).collect();
        for s in slots {
            let s = s % n;
            let r = block.increment(s);
            prop_assert!(r.new_counter > last[s], "slot {} not monotonic", s);
            // Rebase changes every slot's counter; all must still move
            // forward (re-encryption with strictly fresh counters).
            for (i, l) in last.iter_mut().enumerate() {
                let now = block.counter(i);
                prop_assert!(now >= *l || i == s, "slot {} went backwards", i);
                *l = now;
            }
        }
    }

    /// Tree geometry: every data line maps to a valid counter block, and
    /// the verification path is consistent parent chaining.
    #[test]
    fn tree_geometry_consistency(line in 0u64..(1 << 31), design_idx in 0usize..3) {
        let design = CounterDesign::all()[design_idx];
        let g = TreeGeometry::new(design, 1 << 31);
        let la = LineAddr::new(line);
        let cb = g.counter_block_of(la);
        prop_assert!(cb < g.blocks_at_level(0));
        prop_assert!((g.slot_of(la) as u64) < design.coverage());
        let path = g.verification_path(la);
        prop_assert_eq!(path.len() as u32, g.num_levels());
        // Each element's (level, index) chains by arity division.
        let mut expect = (0u32, cb);
        for node in path {
            prop_assert_eq!(g.node_of_addr(node), expect);
            expect = match g.parent_of(expect.0, expect.1) {
                Some(p) => p,
                None => break,
            };
        }
    }

    /// The functional secure memory returns exactly what was written,
    /// under arbitrary interleavings of writes and reads.
    #[test]
    fn functional_memory_linearizes(
        ops in prop::collection::vec((0u64..256, any::<u64>()), 1..120),
    ) {
        let mut mem = FunctionalSecureMemory::with_design(5, 1 << 14, CounterDesign::Sc64);
        let mut shadow = std::collections::HashMap::new();
        for (line, value) in ops {
            mem.write(LineAddr::new(line), DataBlock::from_words([value; 8]));
            shadow.insert(line, value);
            // Random earlier line must still verify and match.
            if let Some((&l, &v)) = shadow.iter().next() {
                let got = mem.read(LineAddr::new(l)).expect("verified read");
                prop_assert_eq!(got, DataBlock::from_words([v; 8]));
            }
        }
    }

    /// Any single-bit flip of a stored line's ciphertext is detected, and
    /// the split read (OTP first, as EMCC overlaps it with the data fetch)
    /// agrees with the monolithic verdict.
    #[test]
    fn stored_cipher_bit_flip_detected(
        line in 0u64..512,
        bit in 0usize..512,
        value in any::<u64>(),
    ) {
        let mut m = FunctionalSecureMemory::new(3, 1 << 10);
        let la = LineAddr::new(line);
        m.write(la, DataBlock::from_words([value; 8]));
        m.tamper_flip_bit(la, bit);
        prop_assert!(m.read(la).is_err());
        prop_assert!(m.read_split(la).is_err());
    }

    /// Any single-bit flip of a stored line's 56-bit MAC is detected.
    #[test]
    fn stored_mac_bit_flip_detected(
        line in 0u64..512,
        bit in 0usize..56,
        value in any::<u64>(),
    ) {
        let mut m = FunctionalSecureMemory::new(5, 1 << 10);
        let la = LineAddr::new(line);
        m.write(la, DataBlock::from_words([value; 8]));
        m.tamper_mac_flip_bit(la, bit);
        prop_assert!(m.read(la).is_err());
        prop_assert!(m.read_split(la).is_err());
    }

    /// Any single-bit flip of any node on a line's verification path — at
    /// any tree level, in the node image or its co-located MAC — fails the
    /// tree walk, for every counter design.
    #[test]
    fn tree_bit_flip_detected_at_every_level(
        line in 0u64..(1 << 14),
        path_step in 0usize..8,
        bit in 0usize..568,
        design_idx in 0usize..3,
    ) {
        let design = CounterDesign::all()[design_idx];
        let mut m = FunctionalSecureMemory::with_design(9, 1 << 14, design);
        let la = LineAddr::new(line);
        m.write(la, DataBlock::from_words([0xF00D; 8]));
        let g = m.tree().geometry();
        let path = g.verification_path(la);
        let (level, index) = g.node_of_addr(path[path_step % path.len()]);
        prop_assert!(m.verify_path(la).is_ok(), "clean path must verify");
        m.tamper_tree_flip_bit(level, index, bit);
        prop_assert!(m.verify_path(la).is_err(), "level {} missed", level);
        prop_assert!(m.read_checked(la).is_err());
    }

    /// A replayed stale snapshot is detected no matter how many writes
    /// advanced the counter since the capture (anti-rollback).
    #[test]
    fn replay_detected_after_rewrites(
        line in 0u64..256,
        rewrites in 1usize..8,
        value in any::<u64>(),
    ) {
        let mut m = FunctionalSecureMemory::new(13, 1 << 10);
        let la = LineAddr::new(line);
        m.write(la, DataBlock::from_words([value; 8]));
        let stale = m.raw(la).expect("line just written");
        for i in 0..rewrites {
            m.write(la, DataBlock::from_words([value ^ (i as u64 + 1); 8]));
        }
        m.tamper_replay(la, stale);
        prop_assert!(m.read(la).is_err());
        prop_assert!(m.read_split(la).is_err());
    }

    /// Time arithmetic: saturating subtraction never underflows and
    /// max/min are consistent.
    #[test]
    fn time_arithmetic(a in 0u64..(1 << 50), b in 0u64..(1 << 50)) {
        let (ta, tb) = (Time::from_ps(a), Time::from_ps(b));
        prop_assert!(ta.saturating_sub(tb) <= ta);
        prop_assert_eq!(ta.saturating_sub(tb) + ta.min(tb), ta);
        prop_assert_eq!(ta.checked_sub(tb).is_some(), a >= b);
        prop_assert_eq!(ta.max(tb).as_ps(), a.max(b));
        prop_assert_eq!((ta + tb).as_ps(), a + b);
    }
}
