//! Cross-crate integration tests: the full system driven end-to-end,
//! checking the paper's qualitative claims hold in the assembled model.

use emcc::dram::RequestClass;
use emcc::prelude::*;
use emcc::workloads::kernels::GraphKernel;

fn params() -> (u64, u64) {
    (2_000, 6_000) // (warmup, measure) per core
}

fn run(bench: Benchmark, cfg: SystemConfig) -> SimReport {
    let (w, m) = params();
    let sources = bench.build_scaled(11, cfg.cores, WorkloadScale::Test);
    SecureSystem::new(cfg).run_with_warmup(sources, w, m)
}

#[test]
fn security_costs_performance_and_emcc_recovers_some() {
    // The paper's Fig 16 ordering on an irregular workload:
    // non-secure ≥ EMCC ≥ Morphable baseline.
    let ns = run(
        Benchmark::Canneal,
        SystemConfig::table_i(SecurityScheme::NonSecure),
    );
    let base = run(
        Benchmark::Canneal,
        SystemConfig::table_i(SecurityScheme::CtrInLlc),
    );
    let emcc = run(
        Benchmark::Canneal,
        SystemConfig::table_i(SecurityScheme::Emcc),
    );
    assert!(ns.elapsed < emcc.elapsed, "non-secure must be fastest");
    assert!(
        emcc.elapsed < base.elapsed,
        "EMCC ({}) must beat the baseline ({}) on canneal",
        emcc.elapsed,
        base.elapsed
    );
}

#[test]
fn caching_counters_in_llc_reduces_dram_counter_traffic() {
    // Fig 2's claim: the LLC absorbs counter traffic.
    let meta = |r: &SimReport| {
        r.dram.count_for(RequestClass::Counter) + r.dram.count_for(RequestClass::TreeNode)
    };
    let without = run(
        Benchmark::Canneal,
        SystemConfig::table_i(SecurityScheme::McOnly),
    );
    let with = run(
        Benchmark::Canneal,
        SystemConfig::table_i(SecurityScheme::CtrInLlc),
    );
    assert!(
        meta(&with) < meta(&without),
        "LLC caching must reduce counter DRAM traffic: {} vs {}",
        meta(&with),
        meta(&without)
    );
}

#[test]
fn bigger_llc_improves_counter_hits() {
    // Fig 7 vs Fig 6: more LLC, fewer counter LLC-misses.
    let small = run(
        Benchmark::Canneal,
        SystemConfig::table_i(SecurityScheme::CtrInLlc),
    );
    let big = run(
        Benchmark::Canneal,
        SystemConfig::table_i(SecurityScheme::CtrInLlc).with_llc_total(48 * 1024 * 1024),
    );
    assert!(
        big.ctr_llc_miss_frac() <= small.ctr_llc_miss_frac() + 0.02,
        "bigger LLC should not increase counter misses ({:.3} vs {:.3})",
        big.ctr_llc_miss_frac(),
        small.ctr_llc_miss_frac()
    );
}

#[test]
fn emcc_useless_counter_accesses_are_rare() {
    // Fig 11: caching counters in L2 filters useless accesses (paper 3.2%).
    // At Test scale canneal is maximally random, so counter reuse is far
    // below paper scale; the bound here only guards against the filter
    // breaking entirely (paper-scale calibration lives in EXPERIMENTS.md).
    let r = run(
        Benchmark::Canneal,
        SystemConfig::table_i(SecurityScheme::Emcc),
    );
    assert!(
        r.useless_ctr_frac() < 0.60,
        "useless counter fraction too high: {:.3}",
        r.useless_ctr_frac()
    );
}

#[test]
fn emcc_counter_requests_close_to_baseline() {
    // Fig 12: EMCC's total counter accesses to LLC stay near the serial
    // baseline's (paper: within ~4.2%).
    let base = run(
        Benchmark::Canneal,
        SystemConfig::table_i(SecurityScheme::CtrInLlc),
    );
    let emcc = run(
        Benchmark::Canneal,
        SystemConfig::table_i(SecurityScheme::Emcc),
    );
    let b = base.ctr_llc_access_frac();
    let e = emcc.ctr_llc_access_frac();
    assert!(
        e < b + 0.25,
        "EMCC counter-access inflation too large: {e:.3} vs baseline {b:.3}"
    );
}

#[test]
fn slower_aes_grows_emcc_benefit() {
    // Fig 18's trend on one benchmark.
    let benefit = |aes_ns: u64| {
        let base = run(
            Benchmark::Canneal,
            SystemConfig::table_i(SecurityScheme::CtrInLlc).with_aes_latency(Time::from_ns(aes_ns)),
        );
        let emcc = run(
            Benchmark::Canneal,
            SystemConfig::table_i(SecurityScheme::Emcc).with_aes_latency(Time::from_ns(aes_ns)),
        );
        base.elapsed.as_ns_f64() / emcc.elapsed.as_ns_f64()
    };
    let b14 = benefit(14);
    let b25 = benefit(25);
    assert!(
        b25 > b14 - 0.02,
        "benefit should not shrink with slower AES: {b25:.3} vs {b14:.3}"
    );
}

#[test]
fn eight_channels_cut_queuing_delay() {
    // Fig 22's core claim.
    let one = run(Benchmark::Mcf, SystemConfig::table_i(SecurityScheme::Emcc));
    let eight = run(
        Benchmark::Mcf,
        SystemConfig::table_i(SecurityScheme::Emcc).with_channels(8),
    );
    let q = |r: &SimReport| r.dram.bucket(RequestClass::Data, false).queuing_ns.mean();
    assert!(
        q(&eight) <= q(&one),
        "8 channels must not increase read queuing ({:.1} vs {:.1})",
        q(&eight),
        q(&one)
    );
    // Note: end-to-end runtime can go either way at tiny scale (channel
    // striping trades row locality for parallelism); Fig 21's speedup
    // claim holds for the bandwidth-bound paper-scale runs.
}

#[test]
fn sc64_overflows_more_than_morphable() {
    // SC-64's 64-block coverage means more counter-block churn; Morphable
    // was designed to reduce overflow + miss costs.
    let mut sc = SystemConfig::table_i(SecurityScheme::CtrInLlc);
    sc.counter_design = emcc::counters::CounterDesign::Sc64;
    let sc64 = run(Benchmark::Mcf, sc);
    let morph = run(
        Benchmark::Mcf,
        SystemConfig::table_i(SecurityScheme::CtrInLlc),
    );
    // Compare DRAM counter traffic: SC-64's halved coverage needs more
    // counter blocks for the same footprint.
    assert!(
        sc64.dram.count_for(RequestClass::Counter) >= morph.dram.count_for(RequestClass::Counter),
        "SC-64 should fetch at least as many counter blocks"
    );
}

#[test]
fn regular_workloads_barely_touch_counters_in_l2() {
    // Fig 24's point: EMCC is harmless for cache-friendly programs.
    let r = run(
        Benchmark::Regular(0),
        SystemConfig::table_i(SecurityScheme::Emcc),
    );
    assert!(
        r.useless_ctr_frac() < 0.10,
        "blackscholes useless counter fraction: {:.3}",
        r.useless_ctr_frac()
    );
}

#[test]
fn graph_kernels_run_under_all_schemes() {
    for scheme in SecurityScheme::all() {
        let r = run(
            Benchmark::Graph(GraphKernel::TriangleCount),
            SystemConfig::table_i(scheme),
        );
        assert!(r.mem_ops > 0 && !r.elapsed.is_zero(), "{scheme} failed");
    }
}

#[test]
fn reports_are_internally_consistent() {
    let r = run(
        Benchmark::Omnetpp,
        SystemConfig::table_i(SecurityScheme::Emcc),
    );
    // Counter-source fractions partition DRAM reads.
    let total = r.ctr_mc_hit_frac() + r.ctr_llc_hit_frac() + r.ctr_llc_miss_frac();
    assert!((total - 1.0).abs() < 1e-9 || r.ctr_source.iter().sum::<u64>() == 0);
    // Every DRAM data read is decrypted exactly once somewhere; a handful
    // may still be in flight when the last core retires.
    let decrypted = r.decrypted_at_l2 + r.decrypted_at_mc;
    assert!(
        r.dram_data_reads.abs_diff(decrypted) <= 32,
        "decryption accounting must cover DRAM data reads: {} vs {}",
        decrypted,
        r.dram_data_reads
    );
    // L2 hits + misses = L2 accesses for data.
    assert!(r.l2_hits <= r.l2_accesses);
}

#[test]
fn timing_counters_match_functional_model_for_every_design() {
    // Differential check: after a mixed read/write trace, the timing
    // model's per-line data counters must equal the counters an
    // order-accurate functional secure memory derives from the same
    // write-back sequence — for all three counter designs. The shadow
    // checker mirrors every MC write-back into a FunctionalSecureMemory
    // and diffs tree state at finalize.
    use emcc::counters::CounterDesign;

    for design in CounterDesign::all() {
        let mut cfg = SystemConfig::table_i(SecurityScheme::Emcc).with_shadow_check(true);
        cfg.counter_design = design;
        // Shrink the hierarchy so dirty lines actually reach DRAM.
        cfg.l2_size = 128 * 1024;
        cfg.llc_slice_size = 32 * 1024;
        let r = run(Benchmark::Mcf, cfg);
        assert!(r.shadow_lines > 0, "{design:?}: no write-backs mirrored");
        assert_eq!(
            r.shadow_mismatches, 0,
            "{design:?}: timing counters diverged from the functional model"
        );
    }
}
